"""Broadcast-commit OCC simulator."""

import pytest

from repro.config import SimulationConfig
from repro.core.policy import CCAPolicy, EDFPolicy
from repro.occ.simulator import OCCSimulator
from repro.workload.generator import generate_workload

from tests.conftest import make_spec


def config(**overrides) -> SimulationConfig:
    defaults = dict(
        n_transaction_types=5,
        updates_mean=3.0,
        updates_std=1.0,
        db_size=50,
        n_transactions=5,
        arrival_rate=1.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def run(workload, policy=None, trace=None, **overrides):
    return OCCSimulator(
        config(**overrides), workload, policy or EDFPolicy(), trace=trace
    ).run()


class TestOptimisticExecution:
    def test_single_transaction(self):
        spec = make_spec(1, [1, 2, 3], deadline=100.0, compute=10.0)
        result = run([spec])
        assert result.policy_name == "OCC-EDF-HP"
        assert result.records[0].commit_time == pytest.approx(30.0)
        assert result.total_restarts == 0

    def test_no_blocking_ever(self):
        """Conflicting transactions interleave freely before validation."""
        events = []
        a = make_spec(1, [1, 2], arrival=0.0, deadline=1000.0, compute=10.0)
        b = make_spec(2, [1, 9], arrival=5.0, deadline=50.0, compute=10.0)
        run([a, b], trace=lambda name, **kw: events.append(name))
        assert "lock_wait" not in events

    def test_committer_invalidates_conflicting_reader(self):
        """The urgent transaction preempts, runs, and commits first; its
        broadcast restarts the slow one that touched a shared item."""
        slow = make_spec(1, [1, 2, 3], arrival=0.0, deadline=1000.0, compute=10.0)
        urgent = make_spec(2, [1, 9], arrival=5.0, deadline=50.0, compute=10.0)
        result = run([slow, urgent])
        restarts = {r.tid: r.restarts for r in result.records}
        commits = {r.tid: r.commit_time for r in result.records}
        # Urgent preempts at 5, runs 20 ms, commits at 25 — no rollback
        # cost in OCC (writes were private).
        assert commits[2] == pytest.approx(25.0)
        assert restarts[1] == 1
        # Slow restarts from scratch at 25 and finishes at 55.
        assert commits[1] == pytest.approx(55.0)

    def test_no_invalidation_without_overlap(self):
        slow = make_spec(1, [1, 2], arrival=0.0, deadline=1000.0, compute=10.0)
        urgent = make_spec(2, [8, 9], arrival=5.0, deadline=60.0, compute=10.0)
        result = run([slow, urgent])
        assert result.total_restarts == 0

    def test_victim_not_restarted_if_it_committed_first(self):
        """Validation is against *live* transactions only."""
        first = make_spec(1, [1], arrival=0.0, deadline=50.0, compute=10.0)
        second = make_spec(2, [1], arrival=0.0, deadline=100.0, compute=10.0)
        result = run([first, second])
        assert result.total_restarts == 0

    def test_firm_deadlines_drop(self):
        doomed = make_spec(1, [1, 2], arrival=0.0, deadline=15.0, compute=10.0)
        result = run([doomed], firm_deadlines=True)
        assert result.n_dropped == 1
        assert result.n_committed == 0


class TestOccDisk:
    def test_io_leg(self):
        spec = make_spec(
            1, [1, 2], deadline=200.0, compute=10.0, io_items=frozenset({1})
        )
        result = run([spec], disk_resident=True)
        assert result.records[0].commit_time == pytest.approx(45.0)

    def test_cpu_filled_during_io_wait(self):
        """No locks means no noncontributing executions: any ready
        transaction may use the CPU during an IO wait."""
        io_tx = make_spec(
            1, [1, 2], arrival=0.0, deadline=200.0, compute=10.0,
            io_items=frozenset({1}),
        )
        conflicting = make_spec(2, [2, 9], arrival=1.0, deadline=500.0, compute=10.0)
        result = run([io_tx, conflicting], disk_resident=True)
        commits = {r.tid: r.commit_time for r in result.records}
        # The conflicting one runs 1..21 during the IO wait and commits
        # BEFORE the IO transaction returns — so it survives validation.
        assert commits[2] == pytest.approx(21.0)
        assert result.total_restarts == 0


class TestOccWorkloads:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize(
        "policy_factory", [lambda: EDFPolicy(), lambda: CCAPolicy(1.0)]
    )
    def test_generated_workload_drains(self, seed, policy_factory):
        cfg = config(
            n_transaction_types=10,
            updates_mean=6.0,
            db_size=30,
            n_transactions=100,
            arrival_rate=12.0,
        )
        workload = generate_workload(cfg, seed)
        result = OCCSimulator(cfg, workload, policy_factory()).run()
        assert result.n_committed == cfg.n_transactions
        assert sum(r.restarts for r in result.records) == result.total_restarts

    def test_firm_workload_conservation(self):
        cfg = config(
            n_transaction_types=10,
            updates_mean=6.0,
            db_size=25,
            n_transactions=100,
            arrival_rate=15.0,
            firm_deadlines=True,
        )
        workload = generate_workload(cfg, seed=2)
        result = OCCSimulator(cfg, workload, EDFPolicy()).run()
        assert result.n_total == cfg.n_transactions
        assert result.n_missed == 0
