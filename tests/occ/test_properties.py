"""Property-based tests of the OCC simulator."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.policy import CCAPolicy, EDFPolicy
from repro.occ.simulator import OCCSimulator

from tests.core.test_simulator_properties import BASE_CONFIG, DISK_CONFIG, workloads

COMMON_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestOccProperties:
    @pytest.mark.parametrize(
        "policy_factory", [lambda: EDFPolicy(), lambda: CCAPolicy(1.0)]
    )
    @given(workload=workloads())
    @COMMON_SETTINGS
    def test_terminates_and_commits_all(self, policy_factory, workload):
        result = OCCSimulator(BASE_CONFIG, workload, policy_factory()).run()
        assert result.n_committed == len(workload)
        assert sum(r.restarts for r in result.records) == result.total_restarts

    @given(workload=workloads())
    @COMMON_SETTINGS
    def test_no_blocking_events_ever(self, workload):
        events = []
        OCCSimulator(
            BASE_CONFIG,
            workload,
            EDFPolicy(),
            trace=lambda name, **kw: events.append(name),
        ).run()
        assert "lock_wait" not in events

    @given(workload=workloads())
    @COMMON_SETTINGS
    def test_firm_conservation(self, workload):
        config = BASE_CONFIG.replace(firm_deadlines=True)
        result = OCCSimulator(config, workload, EDFPolicy()).run()
        assert result.n_total == len(workload)
        assert result.n_missed == 0
        for record in result.records:
            assert record.commit_time <= record.deadline + 1e-6

    @given(workload=workloads(disk=True))
    @COMMON_SETTINGS
    def test_disk_workloads_drain(self, workload):
        result = OCCSimulator(DISK_CONFIG, workload, EDFPolicy()).run()
        assert result.n_committed == len(workload)
        assert 0.0 <= result.disk_utilization <= 1.0

    @given(workload=workloads())
    @COMMON_SETTINGS
    def test_determinism(self, workload):
        first = OCCSimulator(BASE_CONFIG, workload, EDFPolicy()).run()
        second = OCCSimulator(BASE_CONFIG, workload, EDFPolicy()).run()
        assert first.records == second.records

    @given(workload=workloads())
    @COMMON_SETTINGS
    def test_commit_never_before_own_cpu_demand(self, workload):
        by_tid = {spec.tid: spec for spec in workload}
        result = OCCSimulator(BASE_CONFIG, workload, EDFPolicy()).run()
        for record in result.records:
            spec = by_tid[record.tid]
            assert record.commit_time >= spec.arrival_time + spec.cpu_time - 1e-9
