"""``repro profile``: trace export, stage tables, kernel digest.

The CLI contract: exit 0 with a Perfetto-loadable trace JSON on disk,
exit 2 on usage errors (same cell grammar as ``repro trace``), cache
always bypassed so the timing is of real simulations.  The digest
rendering itself is unit-tested here too, against a hand-built
snapshot, so the format stays checked even if the CLI smoke cells stop
exercising some counter family.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_profile_parser, main
from repro.experiments.report import render_kernel_digest
from repro.obs.prof import validate_chrome_trace


class TestProfileParser:
    def test_rejects_tables(self):
        # table1/table2 have no sweep; there is nothing to profile.
        with pytest.raises(SystemExit):
            build_profile_parser().parse_args(["table1"])

    def test_accepts_sweep_experiments(self):
        args = build_profile_parser().parse_args(
            ["fig4a", "--cell", "4,1,CCA", "--scale", "quick"]
        )
        assert args.experiment == "fig4a"
        assert args.cell == "4,1,CCA"


class TestProfileCell:
    def test_cell_mode_writes_valid_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(
            [
                "profile", "fig4a", "--scale", "quick",
                "--cell", "4,1,CCA", "--out", str(out),
            ]
        ) == 0
        printed = capsys.readouterr().out
        assert "cell x=4 seed=1 policy=CCA" in printed
        assert "stage timing" in printed
        assert "workload_gen" in printed and "simulate" in printed
        assert "aggregate timers" in printed
        assert "[kernel digest]" in printed
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        assert doc["experiment"] == "fig4a"
        names = {event["name"] for event in doc["traceEvents"]}
        assert "cell.simulate" in names

    def test_unknown_cell_is_usage_error(self, tmp_path, capsys):
        assert main(
            [
                "profile", "fig4a", "--scale", "quick",
                "--cell", "99,1,CCA", "--out", str(tmp_path / "t.json"),
            ]
        ) == 2
        assert "x values" in capsys.readouterr().err


class TestProfileSweep:
    def test_sweep_mode_profiles_every_cell(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(
            ["profile", "fig5f", "--scale", "quick", "--out", str(out)]
        ) == 0
        printed = capsys.readouterr().out
        assert "cells" in printed and "sims/s" in printed
        assert "cache_put" not in printed  # cache bypassed, never written
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        names = [event["name"] for event in doc["traceEvents"]]
        assert "sweep.execute_cells" in names


class TestKernelDigest:
    SNAPSHOT = {
        "counters": {
            "sweep.engine{engine=kernel}": 5,
            "sweep.engine{engine=reference}": 1,
            "kernel.fusion_spans{kind=free,policy=CCA}": 10,
            "kernel.fusion_spans{kind=locked,policy=CCA}": 2,
            "kernel.fused_ops{policy=CCA}": 36,
            "kernel.fusion_truncated{policy=CCA}": 1,
            "kernel.fusion_arrival_crossings{policy=CCA}": 4,
            "kernel.penalty_scans{mode=numpy,policy=CCA}": 7,
            "kernel.penalty_scans{mode=scalar,policy=CCA}": 3,
            "kernel.cca_prunes{policy=CCA,site=choose}": 9,
            "kernel.mask_builds{kind=data_words,policy=CCA}": 6,
            "kernel.events_fired{policy=CCA}": 400,
            "sim.commits{policy=CCA}": 100,
        },
        "histograms": {},
    }

    def test_renders_all_families(self):
        digest = render_kernel_digest(self.SNAPSHOT)
        assert "[kernel digest]" in digest
        assert "engines: kernel=5 reference=1" in digest
        assert "12 spans (free 10, locked 2)" in digest
        assert "36 ops fused (3.00/span)" in digest
        assert "1 truncated, 4 arrival crossings" in digest
        assert "penalty scans: numpy=7 scalar=3" in digest
        assert "cca prunes: choose=9" in digest
        assert "mask builds: 6; kernel events: 400" in digest

    def test_empty_without_kernel_counters(self):
        assert render_kernel_digest({"counters": {"sim.commits": 3}}) == ""
        assert render_kernel_digest({"counters": {}}) == ""
