"""Kernel→reference self-healing: guarded cells, bundles, replay.

The contract under test: with a :class:`FallbackPolicy` active, a
kernel cell that dies on an unexpected exception re-runs on the
sanitized reference engine and yields *the* bit-identical result — a
sweep with fallbacks equals an all-reference sweep exactly — while the
failure is quarantined into a bundle that ``repro replay`` reproduces
bit-for-bit.  Budget aborts never heal (the slower engine would only
blow the budget harder).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments import faults, parallel
from repro.experiments.cache import cache_key
from repro.experiments.faults import FaultPlan, InjectedKernelFault
from repro.experiments.parallel import (
    RetryPolicy,
    cells_for_sweep,
    execute_cells,
    last_stats,
    simulate_cell,
)
from repro.experiments.quarantine import (
    BUNDLE_KIND,
    BUNDLE_SCHEMA,
    CellEnvelope,
    FallbackPolicy,
    bundle_dir_for,
    config_from_dict,
    kernel_eligible,
    load_bundle,
    replay_bundle,
    run_cell_guarded,
    write_bundle,
)
from repro.sim import engine as sim_engine
from repro.sim.engine import MemoryBudgetExceeded

SEEDS = (1, 2)
RATES = (2.0, 6.0)
POLICIES = ("CCA", "EDF-HP")


@pytest.fixture(autouse=True)
def _clean_fault_state():
    faults.install(None)
    parallel.take_failures()
    parallel.take_fallbacks()
    yield
    faults.install(None)
    parallel.take_failures()
    parallel.take_fallbacks()


@pytest.fixture
def tiny_config(mm_config):
    return mm_config.replace(n_transactions=12)


@pytest.fixture
def cells(tiny_config):
    configs = {rate: tiny_config.replace(arrival_rate=rate) for rate in RATES}
    return cells_for_sweep(configs, SEEDS, POLICIES)


def kernel_plan_for(config, seed, policy) -> FaultPlan:
    """A plan whose schedule fires a kernel fault on exactly this cell."""
    key = cache_key(config, seed, policy)
    for plan_seed in range(500):
        plan = FaultPlan(seed=plan_seed, kernel=0.5, max_failures=1)
        if plan.decide(key, 1) == "kernel":
            return plan
    raise AssertionError("no plan seed faults this cell")


class TestEligibility:
    def test_auto_and_kernel_engines_eligible(self, tiny_config):
        assert kernel_eligible(tiny_config.replace(engine="auto"))
        assert kernel_eligible(tiny_config.replace(engine="kernel"))

    def test_reference_engine_not_eligible(self, tiny_config):
        assert not kernel_eligible(tiny_config.replace(engine="reference"))

    def test_sanitized_cells_not_eligible(self, tiny_config):
        assert not kernel_eligible(tiny_config.replace(sanitize=True))


class TestGuardedRunner:
    def test_clean_cell_returns_bare_envelope(self, tiny_config, tmp_path):
        envelope = run_cell_guarded(
            tiny_config, 1, "CCA", 1,
            observed=False, profiled=False,
            max_wall_s=None, max_memory_mb=None,
            fallback=FallbackPolicy(quarantine_dir=str(tmp_path)),
        )
        assert isinstance(envelope, CellEnvelope)
        assert envelope.fallback is None
        assert envelope.outcome == simulate_cell(tiny_config, 1, "CCA")

    def test_kernel_fault_heals_to_reference_result(self, tiny_config, tmp_path):
        faults.install(kernel_plan_for(tiny_config, 1, "CCA"))
        envelope = run_cell_guarded(
            tiny_config, 1, "CCA", 1,
            observed=False, profiled=False,
            max_wall_s=None, max_memory_mb=None,
            fallback=FallbackPolicy(quarantine_dir=str(tmp_path)),
        )
        record = envelope.fallback
        assert record is not None
        assert record["exception"] == "InjectedKernelFault"
        assert record["engine"] == "reference"
        assert record["sanitized"] is True
        assert record["reproduced"] is True
        # Bit-identical healing: the healed outcome IS the clean result.
        faults.install(None)
        clean = simulate_cell(
            tiny_config.replace(engine="reference"), 1, "CCA"
        )
        assert envelope.outcome == clean

    def test_reference_cell_failure_propagates(self, tiny_config, tmp_path):
        reference = tiny_config.replace(engine="reference")
        faults.install(kernel_plan_for(reference, 1, "CCA"))
        with pytest.raises(InjectedKernelFault):
            run_cell_guarded(
                reference, 1, "CCA", 1,
                observed=False, profiled=False,
                max_wall_s=None, max_memory_mb=None,
                fallback=FallbackPolicy(quarantine_dir=str(tmp_path)),
            )

    def test_budget_aborts_never_heal(self, tiny_config, tmp_path, monkeypatch):
        monkeypatch.setattr(
            sim_engine, "rss_bytes", lambda: 10 * 1024 * 1024 * 1024
        )
        with pytest.raises(MemoryBudgetExceeded) as excinfo:
            run_cell_guarded(
                tiny_config, 1, "CCA", 1,
                observed=False, profiled=False,
                max_wall_s=None, max_memory_mb=1.0,
                fallback=FallbackPolicy(quarantine_dir=str(tmp_path)),
            )
        assert "events" in excinfo.value.progress
        assert not any(tmp_path.iterdir())  # no bundle for budget aborts

    def test_unwritable_quarantine_still_heals(self, tiny_config, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("in the way")
        faults.install(kernel_plan_for(tiny_config, 1, "CCA"))
        envelope = run_cell_guarded(
            tiny_config, 1, "CCA", 1,
            observed=False, profiled=False,
            max_wall_s=None, max_memory_mb=None,
            fallback=FallbackPolicy(quarantine_dir=str(blocker)),
        )
        assert envelope.fallback is not None
        assert envelope.fallback["bundle"] is None


class TestBundles:
    def trigger(self, tiny_config, tmp_path) -> tuple:
        plan = kernel_plan_for(tiny_config, 1, "CCA")
        faults.install(plan)
        policy = FallbackPolicy(quarantine_dir=str(tmp_path), capture_tail=64)
        try:
            key = cache_key(tiny_config, 1, "CCA")
            faults.inject_kernel_fault(key, 1)
        except InjectedKernelFault as exc:
            path, reproduced = write_bundle(
                tiny_config, 1, "CCA", 1, exc,
                max_wall_s=None, max_memory_mb=None, fallback=policy,
            )
        return path, reproduced, policy

    def test_bundle_contents(self, tiny_config, tmp_path):
        path, reproduced, policy = self.trigger(tiny_config, tmp_path)
        assert reproduced is True
        assert path == str(bundle_dir_for(tiny_config, 1, "CCA", policy))
        doc = load_bundle(path)
        assert doc["kind"] == BUNDLE_KIND
        assert doc["schema"] == BUNDLE_SCHEMA
        assert doc["cell"] == {"seed": 1, "policy": "CCA"}
        assert doc["scenario_hash"] == cache_key(tiny_config, 1, "CCA")
        assert doc["exception"] == "InjectedKernelFault"
        assert "InjectedKernelFault" in doc["traceback"]
        assert doc["fault_spec"] is not None
        assert doc["capture_exception"] == "InjectedKernelFault"
        assert doc["tail_capacity"] == 64
        # trace.jsonl mirrors the bundle's tail for human inspection.
        with open(f"{path}/trace.jsonl") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert lines == doc["tail_events"]

    def test_config_round_trips_through_bundle(self, tiny_config, tmp_path):
        path, _, _ = self.trigger(tiny_config, tmp_path)
        doc = load_bundle(path)
        assert config_from_dict(doc["config"]) == tiny_config

    def test_load_rejects_non_bundles(self, tmp_path):
        bogus = tmp_path / "bundle.json"
        bogus.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="not a quarantine bundle"):
            load_bundle(tmp_path)

    def test_replay_reproduces_bit_for_bit(self, tiny_config, tmp_path):
        path, _, _ = self.trigger(tiny_config, tmp_path)
        faults.install(None)  # replay installs the bundle's own plan
        report = replay_bundle(path)
        assert report["matched"] is True
        assert report["tail_matched"] is True
        assert report["reproduced_at_capture"] is True
        assert report["expected"]["exception"] == "InjectedKernelFault"
        # ... and restores the caller's (empty) plan afterwards.
        assert faults.active_plan() is None

    def test_replay_detects_scenario_drift(self, tiny_config, tmp_path):
        path, _, _ = self.trigger(tiny_config, tmp_path)
        doc = load_bundle(path)
        doc["config"]["arrival_rate"] = doc["config"]["arrival_rate"] + 1.0
        with open(f"{path}/bundle.json", "w") as handle:
            json.dump(doc, handle)
        with pytest.raises(ValueError, match="scenario hash mismatch"):
            replay_bundle(path)


class TestSweepFallbacks:
    """End-to-end: sweeps heal kernel faults and record them."""

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_sweep_with_fallback_matches_reference_run(
        self, cells, tmp_path, jobs
    ):
        reference_cells = [
            dataclasses.replace(
                c, config=c.config.replace(engine="reference")
            )
            for c in cells
        ]
        baseline = execute_cells(reference_cells, jobs=1)

        plan = FaultPlan(seed=3, kernel=0.4, max_failures=1)
        hit = [
            c.key for c in cells
            if plan.decide(cache_key(c.config, c.seed, c.policy), 1) == "kernel"
        ]
        assert hit, "plan must fault at least one cell"
        faults.install(plan)
        healed = execute_cells(
            cells,
            jobs=jobs,
            fallback=FallbackPolicy(quarantine_dir=str(tmp_path)),
        )
        stats = last_stats()

        assert healed == baseline  # figures identical to all-reference
        assert [
            (r["cell"]["x"], r["cell"]["policy"], r["cell"]["seed"])
            for r in stats.engine_fallbacks
        ] == sorted(hit)
        assert stats.failures == []  # healed cells are not failures
        drained = parallel.take_fallbacks()
        assert drained == stats.engine_fallbacks
        assert parallel.take_fallbacks() == []

    def test_no_fallback_policy_means_plain_failures(self, cells):
        plan = FaultPlan(seed=3, kernel=0.4, max_failures=1)
        faults.install(plan)
        result = execute_cells(
            cells, jobs=1, retry=RetryPolicy(on_error="retry", max_attempts=3)
        )
        stats = last_stats()
        assert stats.engine_fallbacks == []
        assert any(
            f.exception == "InjectedKernelFault" for f in stats.failures
        )
        faults.install(None)
        assert result == execute_cells(cells, jobs=1)

    def test_fallback_records_progress_through_session(self, cells, tmp_path):
        plan = FaultPlan(seed=3, kernel=0.4, max_failures=1)
        faults.install(plan)
        execute_cells(
            cells,
            jobs=1,
            fallback=FallbackPolicy(quarantine_dir=str(tmp_path)),
        )
        records = parallel.take_fallbacks()
        assert records
        for record in records:
            assert set(record) >= {
                "cell", "exception", "engine", "sanitized", "bundle",
            }
            assert record["engine"] == "reference"


class TestFailureProgress:
    def test_budget_failure_carries_progress(self, tiny_config, monkeypatch):
        monkeypatch.setattr(
            sim_engine, "rss_bytes", lambda: 10 * 1024 * 1024 * 1024
        )
        cells = cells_for_sweep(
            {2.0: tiny_config.replace(arrival_rate=2.0)}, (1,), ("CCA",)
        )
        execute_cells(
            cells,
            jobs=1,
            retry=RetryPolicy(on_error="skip", max_attempts=1, memory_mb=1.0),
        )
        failures = parallel.take_failures()
        assert len(failures) == 1
        failure = failures[0]
        assert failure.exception == "MemoryBudgetExceeded"
        assert failure.progress is not None
        assert failure.progress["rss_bytes"] == 10 * 1024 * 1024 * 1024
        assert "events" in failure.progress
        assert "committed" in failure.progress
        assert failure.to_dict()["progress"] == failure.progress
