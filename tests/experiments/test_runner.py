"""Multi-seed runner and sweeps."""

import pytest

from repro.experiments.runner import (
    compare_policies,
    policy_factory,
    run_policy,
    sweep,
)


SEEDS = (1, 2)


class TestRunPolicy:
    def test_one_result_per_seed(self, mm_config):
        results = run_policy(mm_config, "EDF-HP", SEEDS)
        assert len(results) == 2
        assert all(r.policy_name == "EDF-HP" for r in results)
        assert all(r.n_committed == mm_config.n_transactions for r in results)

    def test_accepts_factory(self, mm_config):
        results = run_policy(mm_config, policy_factory("cca"), SEEDS)
        assert all(r.policy_name == "CCA" for r in results)

    def test_factory_reads_penalty_weight_from_config(self, mm_config):
        factory = policy_factory("cca")
        assert factory(mm_config.replace(penalty_weight=7.0)).penalty_weight == 7.0


class TestComparePolicies:
    def test_paired_summaries(self, mm_config):
        summaries = compare_policies(mm_config, SEEDS)
        assert set(summaries) == {"EDF-HP", "CCA"}
        assert summaries["EDF-HP"].n_runs == 2
        assert summaries["CCA"].n_runs == 2

    def test_extra_policies(self, mm_config):
        summaries = compare_policies(
            mm_config, (1,), policies=("EDF-HP", "CCA", "EDF-Wait")
        )
        assert set(summaries) == {"EDF-HP", "CCA", "EDF-Wait"}


class TestSweep:
    def test_sweep_structure(self, mm_config):
        configs = {
            rate: mm_config.replace(arrival_rate=rate) for rate in (2.0, 6.0)
        }
        swept = sweep(configs, SEEDS)
        assert set(swept) == {2.0, 6.0}
        for summaries in swept.values():
            assert set(summaries) == {"EDF-HP", "CCA"}

    def test_progress_callback(self, mm_config):
        seen = []
        configs = {4.0: mm_config}
        sweep(configs, (1,), progress=seen.append)
        assert seen == [4.0]

    def test_load_monotonicity(self, mm_config):
        """Sanity of the harness end to end: much heavier load cannot
        reduce EDF-HP mean lateness on the same seeds."""
        configs = {
            rate: mm_config.replace(arrival_rate=rate) for rate in (1.0, 20.0)
        }
        swept = sweep(configs, (1, 2, 3))
        light = swept[1.0]["EDF-HP"].mean_lateness.mean
        heavy = swept[20.0]["EDF-HP"].mean_lateness.mean
        assert heavy >= light
