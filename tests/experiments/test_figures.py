"""Structural tests of the per-figure experiments (tiny scale)."""

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.figures import (
    ALL_EXPERIMENTS,
    DISK_ARRIVAL_RATES,
    FIGURE_SWEEPS,
    MM_ARRIVAL_RATES,
    MM_RATE_SWEEP,
    PENALTY_WEIGHTS,
    clear_cache,
    experiment_cells,
    fig4a,
    fig4c,
    fig5a,
    fig5b,
    run_experiment,
    table1,
    table2,
)

TINY = ExperimentScale("tiny", 2, 2, 0.05)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestSweepSpecs:
    def test_every_experiment_declares_its_sweeps(self):
        assert set(FIGURE_SWEEPS) == set(ALL_EXPERIMENTS)
        assert FIGURE_SWEEPS["table1"] == ()
        assert len(FIGURE_SWEEPS["fig5a"]) == 2  # one weight sweep per rate
        # 4a/4b/4c share the literal same spec object (shared memo key).
        assert FIGURE_SWEEPS["fig4b"][0] is FIGURE_SWEEPS["fig4a"][0]

    def test_cells_enumerate_the_cross_product(self):
        cells = MM_RATE_SWEEP.cells(TINY)
        assert len(cells) == len(MM_ARRIVAL_RATES) * 2 * len(MM_RATE_SWEEP.seeds(TINY))
        keys = {cell.key for cell in cells}
        assert len(keys) == len(cells)
        assert {cell.policy for cell in cells} == {"EDF-HP", "CCA"}
        for cell in cells:
            assert cell.config.arrival_rate == cell.x

    def test_experiment_cells_concatenates_sweeps(self):
        assert experiment_cells("table1", TINY) == []
        fig5a_cells = experiment_cells("fig5a", TINY)
        assert len(fig5a_cells) == 2 * len(PENALTY_WEIGHTS) * len(
            FIGURE_SWEEPS["fig5a"][0].seeds(TINY)
        )
        with pytest.raises(KeyError):
            experiment_cells("fig99", TINY)

    def test_spec_run_matches_cells(self):
        swept = MM_RATE_SWEEP.run(TINY)
        assert set(swept) == set(MM_ARRIVAL_RATES)
        assert set(swept[1.0]) == {"EDF-HP", "CCA"}


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        expected = {
            "table1", "table2",
            "fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f",
            "fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f",
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_run_experiment_dispatch(self):
        result = run_experiment("table1", TINY)
        assert result.figure_id == "table1"

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig9z", TINY)


class TestTables:
    def test_table1_documents_parameters(self):
        result = table1()
        assert "50" in result.notes
        assert "12.5" in result.notes

    def test_table2_documents_disk(self):
        result = table2()
        assert "25" in result.notes
        assert "62.5" in result.notes


class TestFigureStructure:
    def test_fig4a_series(self):
        result = fig4a(TINY)
        assert set(result.series) == {"EDF-HP", "CCA"}
        for points in result.series.values():
            assert [x for x, _ in points] == list(MM_ARRIVAL_RATES)
            assert all(0.0 <= y <= 100.0 for _, y in points)

    def test_fig4c_reuses_fig4a_sweep(self):
        fig4a(TINY)
        result = fig4c(TINY)  # must come from the cache: same sweep
        assert set(result.series) == {"EDF-HP", "CCA"}
        assert all(y >= 0.0 for pts in result.series.values() for _, y in pts)

    def test_fig5a_two_rates(self):
        result = fig5a(TINY)
        assert set(result.series) == {"5 TPS", "8 TPS"}
        for points in result.series.values():
            assert [x for x, _ in points] == sorted(PENALTY_WEIGHTS)

    def test_fig5b_disk_axis(self):
        result = fig5b(TINY)
        for points in result.series.values():
            assert [x for x, _ in points] == list(DISK_ARRIVAL_RATES)

    def test_improvement_figures_have_both_metrics(self):
        result = run_experiment("fig4b", TINY)
        assert set(result.series) == {"Miss Percent", "Mean Lateness"}

    def test_dbsize_figures(self):
        result = run_experiment("fig4f", TINY)
        xs = [x for x, _ in result.series["CCA"]]
        assert xs == [float(s) for s in range(100, 1001, 100)]
