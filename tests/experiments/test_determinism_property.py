"""Property test: simulation is a pure function of (config, seed, policy).

The whole parallel/caching subsystem rests on one invariant: a sweep
cell's result depends only on its inputs — no hidden global RNG state,
no import-order effects, no per-process drift.  Hypothesis drives random
small configurations through :func:`repro.experiments.runner.run_policy`
and :func:`repro.experiments.parallel.simulate_cell` and requires
bit-identical results

* across two invocations in the same process, and
* across a subprocess boundary (a fresh worker in a process pool),

which is exactly the contract the parity tests rely on at fixed seeds.
"""

from __future__ import annotations

import atexit
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig
from repro.experiments.parallel import simulate_cell
from repro.experiments.runner import run_policy

_POOL: Optional[ProcessPoolExecutor] = None


def _pool() -> ProcessPoolExecutor:
    """One long-lived single worker, shared by all examples (forking per
    example would dominate the test's runtime)."""
    global _POOL
    if _POOL is None:
        _POOL = ProcessPoolExecutor(max_workers=1)
        atexit.register(_POOL.shutdown)
    return _POOL


configs = st.builds(
    SimulationConfig,
    n_transaction_types=st.integers(min_value=2, max_value=8),
    updates_mean=st.floats(min_value=2.0, max_value=6.0),
    updates_std=st.floats(min_value=0.0, max_value=3.0),
    db_size=st.integers(min_value=5, max_value=60),
    arrival_rate=st.floats(min_value=1.0, max_value=20.0),
    n_transactions=st.integers(min_value=5, max_value=25),
    abort_cost=st.floats(min_value=0.0, max_value=8.0),
    penalty_weight=st.floats(min_value=0.0, max_value=10.0),
    disk_resident=st.booleans(),
    firm_deadlines=st.booleans(),
)

policies = st.sampled_from(("EDF-HP", "CCA", "EDF-Wait", "LSF-HP"))

seeds = st.integers(min_value=0, max_value=10_000)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(config=configs, policy=policies, seed=seeds)
def test_run_policy_deterministic_in_process(config, policy, seed):
    first = run_policy(config, policy, (seed,))
    second = run_policy(config, policy, (seed,))
    assert first == second


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(config=configs, policy=policies, seed=seeds)
def test_simulate_cell_deterministic_across_subprocess(config, policy, seed):
    local = simulate_cell(config, seed, policy)
    remote = _pool().submit(simulate_cell, config, seed, policy).result()
    assert local == remote
