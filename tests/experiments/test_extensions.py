"""Extension experiments (ext-* CLI entries)."""

import pytest

from repro.cli import ALL_RUNNABLE, build_parser
from repro.experiments.config import ExperimentScale
from repro.experiments.extensions import (
    EXTENSION_EXPERIMENTS,
    ext_bursty,
    ext_disk_scheduling,
    ext_occ,
    ext_shared_locks,
)
from repro.experiments.figures import clear_cache

TINY = ExperimentScale("tiny", 2, 2, 0.05)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestRegistry:
    def test_extension_ids(self):
        assert set(EXTENSION_EXPERIMENTS) == {
            "ext-shared-locks",
            "ext-multiprocessor",
            "ext-occ",
            "ext-bursty",
            "ext-disk-sched",
            "ext-slack",
            "ext-wp",
        }

    def test_cli_accepts_extension_ids(self):
        args = build_parser().parse_args(["ext-occ"])
        assert args.experiment == "ext-occ"

    def test_all_runnable_merges_both_registries(self):
        assert "fig4a" in ALL_RUNNABLE
        assert "ext-shared-locks" in ALL_RUNNABLE


class TestExtensionResults:
    def test_shared_locks_series(self):
        result = ext_shared_locks(TINY)
        assert set(result.series) == {"EDF-HP", "CCA"}
        xs = [x for x, _ in result.series["CCA"]]
        assert xs == [0.0, 25.0, 50.0, 75.0, 90.0]

    def test_occ_covers_both_semantics(self):
        result = ext_occ(TINY)
        assert set(result.series) == {"EDF-HP", "CCA", "OCC"}
        for points in result.series.values():
            assert [x for x, _ in points] == [0.0, 1.0]
            assert all(0.0 <= y <= 100.0 for _, y in points)

    def test_bursty_two_models(self):
        result = ext_bursty(TINY)
        for points in result.series.values():
            assert len(points) == 2

    def test_disk_scheduling_two_disciplines(self):
        result = ext_disk_scheduling(TINY)
        for points in result.series.values():
            assert len(points) == 2
            assert all(y >= 0.0 for _, y in points)


class TestSlackSensitivity:
    def test_misses_fall_as_deadlines_loosen(self):
        from repro.experiments.extensions import ext_slack

        result = ext_slack(TINY)
        for name, points in result.series.items():
            by_scale = dict(points)
            assert by_scale[0.25] >= by_scale[2.0], name

    def test_registered(self):
        assert "ext-slack" in EXTENSION_EXPERIMENTS
