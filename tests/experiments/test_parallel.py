"""Parallel executor parity: ``jobs=N`` output equals serial output.

The determinism guarantee of :mod:`repro.experiments.parallel` — merge
by cell key, never by completion order; regenerate workloads
deterministically per cell — must make parallel, cached, and serial
executions bit-identical for the same seeds.  These tests hold that
for the executor, the runner entry points, and a full figure sweep,
with the cache cold, warm, and disabled.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import figures
from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentScale
from repro.experiments.parallel import (
    SweepCell,
    cells_for_sweep,
    execute_cells,
    last_stats,
)
from repro.experiments.runner import compare_policies, run_policy, sweep
from repro.tracing import TraceCounters

SEEDS = (1, 2)
RATES = (2.0, 6.0)


@pytest.fixture(autouse=True)
def _fresh_figure_memo():
    figures.clear_cache()
    yield
    figures.clear_cache()


@pytest.fixture
def configs(mm_config):
    small = mm_config.replace(n_transactions=30)
    return {rate: small.replace(arrival_rate=rate) for rate in RATES}


def assert_summaries_equal(left, right):
    """Metric-by-metric equality of two sweep outputs."""
    assert list(left) == list(right)
    for x in left:
        assert list(left[x]) == list(right[x])
        for policy in left[x]:
            a, b = left[x][policy], right[x][policy]
            for field in dataclasses.fields(a):
                assert getattr(a, field.name) == getattr(b, field.name), (
                    f"{field.name} differs at x={x}, policy={policy}"
                )


class TestExecuteCells:
    def test_parallel_equals_serial(self, configs):
        cells = cells_for_sweep(configs, SEEDS, ("EDF-HP", "CCA"))
        serial = execute_cells(cells, jobs=1)
        parallel = execute_cells(cells, jobs=4)
        assert serial == parallel
        assert list(serial) == sorted(serial)  # merged in cell-key order

    def test_duplicate_cells_rejected(self, configs):
        cell = SweepCell(x=1.0, policy="CCA", seed=1, config=configs[2.0])
        with pytest.raises(ValueError, match="duplicate"):
            execute_cells([cell, cell])

    def test_stats_count_runs_and_hits(self, configs, tmp_path):
        cells = cells_for_sweep(configs, SEEDS, ("CCA",))
        cache = ResultCache(tmp_path)
        execute_cells(cells, jobs=1, cache=cache)
        cold = last_stats()
        assert cold.cells_total == len(cells)
        assert cold.cells_run == len(cells)
        assert cold.cache_hits == 0
        execute_cells(cells, jobs=1, cache=cache)
        warm = last_stats()
        assert warm.cells_run == 0
        assert warm.cache_hits == len(cells)


class TestSweepParity:
    def test_jobs4_equals_serial(self, configs):
        serial = sweep(configs, SEEDS, jobs=1)
        parallel = sweep(configs, SEEDS, jobs=4)
        assert_summaries_equal(serial, parallel)

    def test_parity_cold_warm_and_disabled_cache(self, configs, tmp_path):
        baseline = sweep(configs, SEEDS, jobs=1)  # cache disabled
        cache = ResultCache(tmp_path)
        cold = sweep(configs, SEEDS, jobs=4, cache=cache)
        assert cache.counters.hits == 0 and cache.counters.stores > 0
        warm = sweep(configs, SEEDS, jobs=4, cache=cache)
        assert last_stats().cells_run == 0
        assert_summaries_equal(baseline, cold)
        assert_summaries_equal(baseline, warm)

    def test_warm_cache_parity_across_jobs(self, configs, tmp_path):
        """Serial compute, parallel replay (and vice versa) agree."""
        cache = ResultCache(tmp_path)
        serial_cold = sweep(configs, SEEDS, jobs=1, cache=cache)
        parallel_warm = sweep(configs, SEEDS, jobs=4, cache=cache)
        assert_summaries_equal(serial_cold, parallel_warm)

    def test_compare_policies_parity(self, mm_config):
        small = mm_config.replace(n_transactions=30)
        serial = compare_policies(small, SEEDS)
        parallel = compare_policies(small, SEEDS, jobs=2)
        assert list(serial) == list(parallel)
        for policy in serial:
            assert serial[policy] == parallel[policy]

    def test_run_policy_parity(self, mm_config):
        small = mm_config.replace(n_transactions=30)
        assert run_policy(small, "CCA", SEEDS) == run_policy(
            small, "CCA", SEEDS, jobs=2
        )

    def test_trace_stream_is_deterministic(self, configs):
        streams = []
        for jobs in (1, 4):
            counters = TraceCounters()
            sweep(configs, SEEDS, jobs=jobs, trace=counters)
            streams.append(
                (counters.count("sweep_cell"), counters.last["sweep_cell"])
            )
        assert streams[0] == streams[1]


class TestFigureSweeps:
    """The acceptance criterion: a warm-cache figure rerun simulates
    nothing, and still produces identical curves."""

    SCALE = ExperimentScale("tiny", 1, 1, 0.05)

    def test_warm_rerun_of_figure_sweep_runs_zero_sims(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold_counters = TraceCounters()
        cold = figures.run_experiment(
            "fig4a", self.SCALE, cache=cache, trace=cold_counters
        )
        assert cold_counters.total("sweep_end", "cells_run") > 0

        figures.clear_cache()  # bypass the in-process memo
        warm_counters = TraceCounters()
        warm = figures.run_experiment(
            "fig4a", self.SCALE, jobs=2, cache=cache, trace=warm_counters
        )
        assert warm_counters.total("sweep_end", "cells_run") == 0
        assert warm_counters.total("sweep_end", "cache_hits") == (
            warm_counters.total("sweep_end", "cells")
        )
        assert warm.series == cold.series
