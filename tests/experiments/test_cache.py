"""On-disk result cache: key sensitivity and corruption tolerance.

The cache key must change when *anything* that could change a result
changes — every configuration field, the seed, the policy name, and the
serialization schema version.  Damaged entries must be discarded and
recomputed, never crashed on or served.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.config import SimulationConfig
from repro.experiments import cache as cache_mod
from repro.experiments.cache import (
    ResultCache,
    cache_key,
    result_from_dict,
    result_to_dict,
)
from repro.experiments.parallel import simulate_cell

BASE = SimulationConfig()

#: A valid alternative value for every SimulationConfig field (fields
#: whose generic tweak below would violate validation).
_SPECIAL_TWEAKS = {
    "update_time_classes": (0.4, 4.0, 40.0),
    "read_fraction": 0.5,
    "disk_scheduling": "priority",
    "arrival_model": "bursty",
    "disk_access_prob": 0.7,
    "engine": "reference",
}


def _tweaked(field: dataclasses.Field):
    """A different-but-valid value for one config field."""
    if field.name in _SPECIAL_TWEAKS:
        return _SPECIAL_TWEAKS[field.name]
    value = getattr(BASE, field.name)
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 0.25
    raise AssertionError(
        f"no tweak rule for field {field.name!r}; extend _SPECIAL_TWEAKS"
    )


class TestCacheKey:
    @pytest.mark.parametrize(
        "field", [f.name for f in dataclasses.fields(SimulationConfig)]
    )
    def test_every_config_field_changes_the_key(self, field):
        changed = BASE.replace(
            **{field: _tweaked(SimulationConfig.__dataclass_fields__[field])}
        )
        assert cache_key(BASE, 1, "CCA") != cache_key(changed, 1, "CCA")

    def test_seed_changes_the_key(self):
        assert cache_key(BASE, 1, "CCA") != cache_key(BASE, 2, "CCA")

    def test_policy_name_changes_the_key(self):
        assert cache_key(BASE, 1, "CCA") != cache_key(BASE, 1, "EDF-HP")

    def test_schema_version_changes_the_key(self):
        assert cache_key(BASE, 1, "CCA") != cache_key(
            BASE, 1, "CCA", schema_version=cache_mod.SCHEMA_VERSION + 1
        )

    def test_key_is_stable(self):
        assert cache_key(BASE, 1, "CCA") == cache_key(
            SimulationConfig(), 1, "CCA"
        )


@pytest.fixture
def small_config(mm_config):
    return mm_config.replace(n_transactions=20)


@pytest.fixture
def result(small_config):
    return simulate_cell(small_config, seed=3, policy_name="CCA")


class TestSerialization:
    def test_round_trip_is_identical(self, result):
        assert result_from_dict(result_to_dict(result)) == result

    def test_round_trip_through_json_text(self, result):
        text = json.dumps(result_to_dict(result))
        assert result_from_dict(json.loads(text)) == result


class TestResultCache:
    def test_get_miss_then_put_then_hit(self, tmp_path, small_config, result):
        cache = ResultCache(tmp_path)
        assert cache.get(small_config, 3, "CCA") is None
        cache.put(small_config, 3, "CCA", result)
        assert cache.get(small_config, 3, "CCA") == result
        assert dataclasses.astuple(cache.counters) == (1, 1, 1, 0, 0)

    def test_entries_do_not_cross_cells(self, tmp_path, small_config, result):
        cache = ResultCache(tmp_path)
        cache.put(small_config, 3, "CCA", result)
        assert cache.get(small_config, 4, "CCA") is None
        assert cache.get(small_config, 3, "EDF-HP") is None
        assert cache.get(small_config.replace(db_size=99), 3, "CCA") is None

    @pytest.mark.parametrize(
        "damage",
        [
            b"not json at all",
            b"{\"schema\": 1, \"key\": \"wrong\"",  # truncated
            b"{}",  # missing fields
            b"[1, 2, 3]",  # wrong shape
            b"",  # empty file
        ],
        ids=["garbage", "truncated", "empty-object", "wrong-shape", "empty"],
    )
    def test_corrupt_entry_discarded_and_recomputed(
        self, tmp_path, small_config, result, damage
    ):
        cache = ResultCache(tmp_path)
        path = cache.put(small_config, 3, "CCA", result)
        path.write_bytes(damage)
        assert cache.get(small_config, 3, "CCA") is None
        assert cache.counters.discarded == 1
        assert cache.counters.misses == 1
        assert not path.exists()  # bad entry removed
        cache.put(small_config, 3, "CCA", result)
        assert cache.get(small_config, 3, "CCA") == result

    def test_truncated_json_counts_one_discard_one_miss(
        self, tmp_path, small_config, result
    ):
        cache = ResultCache(tmp_path)
        path = cache.put(small_config, 3, "CCA", result)
        path.write_bytes(path.read_bytes()[:-20])  # chop the tail off
        assert cache.get(small_config, 3, "CCA") is None
        assert (cache.counters.discarded, cache.counters.misses) == (1, 1)
        assert not path.exists()

    def test_wrong_schema_in_entry_counts_one_discard_one_miss(
        self, tmp_path, small_config, result
    ):
        cache = ResultCache(tmp_path)
        path = cache.put(small_config, 3, "CCA", result)
        entry = json.loads(path.read_text())
        entry["schema"] = cache_mod.SCHEMA_VERSION + 99
        path.write_text(json.dumps(entry))
        assert cache.get(small_config, 3, "CCA") is None
        assert (cache.counters.discarded, cache.counters.misses) == (1, 1)
        assert not path.exists()

    def test_schema_bump_invalidates_entry(
        self, tmp_path, small_config, result, monkeypatch
    ):
        cache = ResultCache(tmp_path)
        path = cache.put(small_config, 3, "CCA", result)
        monkeypatch.setattr(cache_mod, "SCHEMA_VERSION", cache_mod.SCHEMA_VERSION + 1)
        # The key itself changed, so the old entry is simply unreachable.
        assert cache.get(small_config, 3, "CCA") is None
        assert path.exists()  # old entry untouched, just never served

    def test_misfiled_entry_rejected(self, tmp_path, small_config, result):
        """An entry whose recorded key disagrees with its filename
        (e.g. hand-copied) is discarded, not served."""
        cache = ResultCache(tmp_path)
        source = cache.put(small_config, 3, "CCA", result)
        target = cache.path_for(cache_key(small_config, 4, "CCA"))
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(source.read_bytes())
        assert cache.get(small_config, 4, "CCA") is None
        assert (cache.counters.discarded, cache.counters.misses) == (1, 1)
        assert not target.exists()  # misfiled copy removed, original kept
        assert source.exists()

    def test_default_dir_honors_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert ResultCache().root == tmp_path / "elsewhere"

    def test_atomic_writes_leave_no_temp_files(
        self, tmp_path, small_config, result
    ):
        cache = ResultCache(tmp_path)
        for seed in range(3):
            cache.put(small_config, seed, "CCA", result)
        leftovers = [
            name
            for _, _, names in os.walk(tmp_path)
            for name in names
            if name.endswith(".tmp")
        ]
        assert leftovers == []


class TestSafePut:
    """Write failures degrade to a counter instead of crashing a sweep."""

    @pytest.fixture
    def broken_root(self, tmp_path):
        """A cache root that cannot hold entries: the root *is a file*,
        so ``mkdir`` fails with an OSError even when running as root
        (unlike permission bits, which root bypasses)."""
        root = tmp_path / "not-a-directory"
        root.write_text("occupied")
        return root

    def test_first_failure_disables_further_writes(
        self, broken_root, small_config, result
    ):
        cache = ResultCache(broken_root)
        for seed in range(5):
            assert cache.safe_put(small_config, seed, "CCA", result) is None
        assert cache.counters.put_errors == 1  # not one per cell
        assert cache.write_disabled

    def test_safe_put_matches_put_on_healthy_cache(
        self, tmp_path, small_config, result
    ):
        cache = ResultCache(tmp_path)
        path = cache.safe_put(small_config, 3, "CCA", result)
        assert path is not None and path.exists()
        assert cache.counters.put_errors == 0
        assert not cache.write_disabled
        assert cache.get(small_config, 3, "CCA") == result

    def test_sweep_over_unwritable_cache_dir_completes(
        self, broken_root, small_config
    ):
        """Satellite: a sweep whose cache cannot be written still
        produces full results (and parity with no cache at all)."""
        from repro.experiments.parallel import (
            cells_for_sweep,
            execute_cells,
            last_stats,
        )

        tiny = small_config.replace(n_transactions=15)
        cells = cells_for_sweep({1.0: tiny}, (1, 2), ("CCA",))
        broken = execute_cells(cells, jobs=1, cache=ResultCache(broken_root))
        plain = execute_cells(cells, jobs=1, cache=None)
        assert broken == plain
        assert last_stats().cells_run == len(cells)


class TestCrashSafety:
    """Atomic, durable writes: a killed worker never corrupts the cache."""

    def test_put_fsyncs_before_publishing(
        self, tmp_path, small_config, result, monkeypatch
    ):
        """The data must be forced to disk *before* os.replace makes the
        entry visible — rename-then-sync leaves a window where a host
        crash publishes a truncated entry."""
        calls = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync", lambda fd: (calls.append("fsync"), real_fsync(fd))[1]
        )
        monkeypatch.setattr(
            os,
            "replace",
            lambda src, dst: (
                calls.append("replace"), real_replace(src, dst)
            )[1],
        )
        ResultCache(tmp_path).put(small_config, 1, "CCA", result)
        assert "fsync" in calls and "replace" in calls
        assert calls.index("fsync") < calls.index("replace")

    def test_interrupted_write_leaves_no_entry(
        self, tmp_path, small_config, result, monkeypatch
    ):
        """A crash mid-write (simulated: fsync explodes) must leave the
        final path absent — the next run gets a clean miss, never a
        truncated read — and must not leak the temp file."""
        def boom(fd):
            raise OSError(5, "injected I/O error")

        monkeypatch.setattr(os, "fsync", boom)
        cache = ResultCache(tmp_path)
        with pytest.raises(OSError):
            cache.put(small_config, 1, "CCA", result)
        key = cache_key(small_config, 1, "CCA")
        assert not cache.path_for(key).exists()
        leftovers = [
            p for p in tmp_path.rglob("*") if p.is_file()
        ]
        assert leftovers == []  # temp file unlinked on the way out
        assert cache.get(small_config, 1, "CCA") is None  # clean miss

    def test_stale_tmp_files_never_served(
        self, tmp_path, small_config, result
    ):
        """A stale ``.tmp`` from a killed worker sits inertly beside the
        real entries: lookups ignore it and a later put still lands."""
        cache = ResultCache(tmp_path)
        key = cache_key(small_config, 1, "CCA")
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        stale = path.parent / f".{key[:8]}-killed.tmp"
        stale.write_text('{"schema": 1, "truncat')
        assert cache.get(small_config, 1, "CCA") is None
        cache.put(small_config, 1, "CCA", result)
        assert cache.get(small_config, 1, "CCA") == result
        assert stale.exists()  # untouched; harmless
