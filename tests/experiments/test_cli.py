"""Command-line interface."""

import os

import pytest

from repro.cli import build_parser, build_trace_parser, main
from repro.experiments import faults
from repro.experiments.cache import cache_key
from repro.experiments.config import ExperimentScale
from repro.experiments.figures import clear_cache, experiment_cells
from repro.obs.manifest import load_manifest, validate_manifest


@pytest.fixture(autouse=True)
def fresh_cache(tmp_path, monkeypatch):
    """Clear the in-process sweep memo and isolate the on-disk cache
    (the CLI caches by default; tests must not touch ~/.cache)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))
    clear_cache()
    yield
    clear_cache()


class TestParser:
    def test_experiment_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_scale_choices(self):
        args = build_parser().parse_args(["fig4a", "--scale", "quick"])
        assert args.scale == "quick"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4a", "--scale", "huge"])


class TestMain:
    def test_table_experiment_prints(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "done in" in out

    def test_csv_export(self, tmp_path, capsys, monkeypatch):
        # Use a tiny scale via env to keep the run fast; fig5f is one of
        # the cheapest sweeps (single policy, disk, 75 transactions).
        monkeypatch.setenv("REPRO_SCALE", "quick")
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert main(["fig5f", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "fig5f.csv").exists()
        assert "wrote" in capsys.readouterr().out

    def test_scale_flag_overrides_env(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert main(["table2", "--scale", "quick"]) == 0
        assert "scale=quick" in capsys.readouterr().out


class TestExecutionFlags:
    def test_jobs_flag_accepted(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert main(["fig5f", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "fig5f" in out
        assert "sweeps:" in out and "cache hits" in out

    def test_jobs_must_be_positive(self):
        assert main(["fig5f", "--jobs", "0"]) == 2

    def test_no_cache_leaves_cache_dir_empty(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        cache_dir = tmp_path / "never-created"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        assert main(["fig5f", "--no-cache"]) == 0
        assert not cache_dir.exists()

    def test_warm_cache_run_does_zero_sims(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        cache_dir = tmp_path / "cli-cache"
        assert main(["fig5f", "--cache-dir", str(cache_dir)]) == 0
        first = capsys.readouterr().out
        assert "0 cache hits" in first
        clear_cache()  # drop the in-process memo; force the disk path
        assert main(["fig5f", "--cache-dir", str(cache_dir)]) == 0
        second = capsys.readouterr().out
        assert "0 sims" in second


class TestReport:
    def test_report_writes_valid_manifest(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        runs = tmp_path / "runs"
        assert main(["fig5f", "--report", str(runs)]) == 0
        assert "wrote manifest" in capsys.readouterr().out
        manifests = list(runs.glob("fig5f-quick-*.json"))
        assert len(manifests) == 1
        manifest = load_manifest(manifests[0])
        assert validate_manifest(manifest) == []
        assert manifest["experiment"] == "fig5f"
        assert manifest["n_cells"] > 0
        assert manifest["config_hash"]
        assert manifest["cache"]["misses"] == manifest["n_cells"]
        assert manifest["cell_wall_ms"]["count"] == manifest["n_cells"]
        assert manifest["policies"] == ["CCA"]

    def test_cached_rerun_manifest_counts_hits(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        runs = tmp_path / "runs"
        assert main(["fig5f", "--report", str(runs)]) == 0
        clear_cache()
        assert main(["fig5f", "--report", str(runs)]) == 0
        latest = max(runs.glob("fig5f-quick-*.json"), key=lambda p: p.stat().st_mtime)
        manifest = load_manifest(latest)
        assert manifest["cache"]["hits"] == manifest["n_cells"]
        assert manifest["cache"]["misses"] == 0

    def test_table_manifest_is_valid_without_cells(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        assert main(["table1", "--report", str(runs)]) == 0
        manifest = load_manifest(next(runs.glob("table1-*.json")))
        assert validate_manifest(manifest) == []
        assert manifest["n_cells"] == 0
        assert manifest["config_hash"] is None

    def test_manifest_analysis_disabled_without_flag(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        assert main(["table1", "--report", str(runs)]) == 0
        manifest = load_manifest(next(runs.glob("table1-*.json")))
        assert manifest["analysis"] == {"enabled": False}


class TestAnalyzeFlag:
    def test_analyze_digest_and_manifest_section(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        runs = tmp_path / "runs"
        assert main(["fig5f", "--analyze", "--report", str(runs)]) == 0
        out = capsys.readouterr().out
        assert "[analyze fig5f: clean" in out
        assert "miss floor" in out
        manifest = load_manifest(next(runs.glob("fig5f-quick-*.json")))
        assert validate_manifest(manifest) == []
        analysis = manifest["analysis"]
        assert analysis["enabled"] is True
        assert analysis["clean"] is True
        codes = [verdict["code"] for verdict in analysis["verdicts"]]
        assert codes == [
            "ANA001", "ANA002", "ANA003", "ANA004", "ANA005", "ANA006",
        ]
        assert len(analysis["cells"]) > 0

    def test_analyze_without_report_still_prints(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert main(["table1", "--analyze"]) == 0
        assert "[analyze table1: clean" in capsys.readouterr().out


def _fault_spec(max_failures: int = 1, max_hits: int = None) -> str:
    """A ``--faults`` spec whose crash schedule deterministically hits
    at least one (but never every) fig5f quick-scale cell."""
    cells = experiment_cells("fig5f", ExperimentScale.quick())
    max_hits = len(cells) - 1 if max_hits is None else max_hits
    for seed in range(500):
        plan = faults.FaultPlan(seed=seed, crash=0.2, max_failures=max_failures)
        hits = sum(
            plan.decide(cache_key(c.config, c.seed, c.policy), 1) is not None
            for c in cells
        )
        if 1 <= hits <= max_hits:
            return plan.to_spec()
    raise AssertionError("no suitable fault seed")


class TestFaultToleranceFlags:
    def test_retries_must_be_positive(self, capsys):
        assert main(["fig5f", "--on-error", "retry", "--retries", "0"]) == 2
        assert "max_attempts" in capsys.readouterr().err

    def test_timeout_must_be_positive(self, capsys):
        assert main(["fig5f", "--timeout", "0"]) == 2
        assert "timeout" in capsys.readouterr().err

    def test_bad_fault_spec_rejected(self, capsys):
        assert main(["fig5f", "--faults", "explode=1.0"]) == 2
        assert "--faults" in capsys.readouterr().err

    def test_fault_env_cleared_after_run(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        spec = _fault_spec()
        assert main(
            ["fig5f", "--on-error", "retry", "--faults", spec]
        ) == 0
        assert faults.FAULTS_ENV not in os.environ

    def test_retry_recovers_and_matches_fault_free(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        clean_dir, chaos_dir = tmp_path / "clean", tmp_path / "chaos"
        assert main(["fig5f", "--no-cache", "--csv", str(clean_dir)]) == 0
        capsys.readouterr()
        clear_cache()  # drop the in-process memo; force a real re-sweep
        assert main(
            [
                "fig5f",
                "--no-cache",
                "--csv",
                str(chaos_dir),
                "--on-error",
                "retry",
                "--faults",
                _fault_spec(),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "faulted" in out and "recovered" in out
        assert (clean_dir / "fig5f.csv").read_text() == (
            chaos_dir / "fig5f.csv"
        ).read_text()

    def test_fail_mode_aborts_with_checkpoint_notice(
        self, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert main(
            ["fig5f", "--no-cache", "--faults", _fault_spec()]
        ) == 1
        err = capsys.readouterr().err
        assert "aborted" in err
        assert "checkpointed" in err

    def test_skip_mode_drops_cells_and_exits_nonzero(
        self, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        spec = _fault_spec(max_failures=10**6, max_hits=2)
        assert main(
            [
                "fig5f",
                "--no-cache",
                "--on-error",
                "skip",
                "--retries",
                "2",
                "--faults",
                spec,
            ]
        ) == 1
        out = capsys.readouterr().out
        assert "DROPPED" in out
        assert "fig5f" in out  # figure still rendered from survivors

    def test_manifest_records_failures(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        runs = tmp_path / "runs"
        assert main(
            [
                "fig5f",
                "--no-cache",
                "--report",
                str(runs),
                "--on-error",
                "retry",
                "--faults",
                _fault_spec(),
            ]
        ) == 0
        manifest = load_manifest(next(runs.glob("fig5f-quick-*.json")))
        assert validate_manifest(manifest) == []
        assert manifest["failures"]
        for failure in manifest["failures"]:
            assert failure["exception"] == "InjectedCrash"
            assert failure["recovered"] is True
            assert set(failure["cell"]) == {"x", "policy", "seed"}

    def test_fault_free_manifest_has_empty_failures(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        runs = tmp_path / "runs"
        assert main(["fig5f", "--no-cache", "--report", str(runs)]) == 0
        manifest = load_manifest(next(runs.glob("fig5f-quick-*.json")))
        assert manifest["failures"] == []


class TestTrace:
    def test_trace_parser_rejects_tables(self):
        with pytest.raises(SystemExit):
            build_trace_parser().parse_args(["table1"])

    def test_trace_prints_gantt_table_and_metrics(self, capsys):
        assert main(["trace", "fig4a", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "CPU schedule" in out
        assert "event" in out and "count" in out
        assert "sim.commits" in out
        assert "policy=EDF-HP" in out

    def test_trace_selects_requested_cell(self, capsys):
        assert main(
            ["trace", "fig4a", "--scale", "quick", "--cell", "2,3,CCA"]
        ) == 0
        out = capsys.readouterr().out
        assert "x=2 seed=3 policy=CCA" in out

    def test_trace_rejects_unknown_cell(self, capsys):
        assert main(
            ["trace", "fig4a", "--scale", "quick", "--cell", "99,1,CCA"]
        ) == 2
        err = capsys.readouterr().err
        assert "x values" in err and "policies" in err

    def test_trace_rejects_malformed_cell(self, capsys):
        assert main(["trace", "fig4a", "--cell", "1,2"]) == 2
        assert main(["trace", "fig4a", "--cell", "a,b,CCA"]) == 2

    def test_trace_jsonl_export(self, tmp_path, capsys):
        out_file = tmp_path / "events" / "cell.jsonl"
        assert main(
            ["trace", "fig5f", "--scale", "quick", "--jsonl", str(out_file)]
        ) == 0
        assert out_file.exists()
        assert out_file.read_text().startswith("{")
