"""Chaos tests: fault-tolerant sweep execution under injected faults.

The fault-injection harness (:mod:`repro.experiments.faults`) schedules
worker crashes, hangs, corrupt payloads, process deaths, and interrupts
deterministically per cell, so these tests can hold the executor to the
same invariants as fault-free runs:

* retried sweeps converge to the *bit-identical* fault-free result, at
  any ``jobs`` count;
* ``on_error=skip`` drops exactly the same cells serially and in
  parallel;
* an interrupted sweep checkpoints completed cells and a re-launch
  recomputes only the missing ones (``sweep.cells_run``).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import faults
from repro.experiments import parallel
from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.faults import FaultPlan
from repro.experiments.parallel import (
    RetryPolicy,
    SweepError,
    cells_for_sweep,
    execute_cells,
    last_stats,
)
from repro.obs.registry import MetricsRegistry

SEEDS = (1, 2, 3)
RATES = (2.0, 6.0)
POLICIES = ("CCA", "EDF-HP")


@pytest.fixture(autouse=True)
def _clean_fault_state():
    """No fault plan (or stale failure records) leaks across tests."""
    faults.install(None)
    parallel.take_failures()
    parallel.take_fallbacks()
    yield
    faults.install(None)
    parallel.take_failures()
    parallel.take_fallbacks()


@pytest.fixture
def cells(mm_config):
    tiny = mm_config.replace(n_transactions=12)
    configs = {rate: tiny.replace(arrival_rate=rate) for rate in RATES}
    return cells_for_sweep(configs, SEEDS, POLICIES)


def fault_schedule(plan: FaultPlan, cells, attempt: int = 1) -> dict:
    """Which cells the plan faults on ``attempt`` (key -> fault kind)."""
    hits = {}
    for cell in cells:
        kind = plan.decide(
            cache_key(cell.config, cell.seed, cell.policy), attempt
        )
        if kind is not None:
            hits[cell.key] = kind
    return hits


def plan_hitting(cells, min_hits: int = 2, max_hits: int = None, **rates) -> FaultPlan:
    """A deterministic plan whose schedule faults >= ``min_hits`` cells.

    Searches plan seeds so the tests never depend on one lucky hash;
    the chosen plan is still fully deterministic.
    """
    max_hits = len(cells) - 1 if max_hits is None else max_hits
    for seed in range(500):
        plan = FaultPlan(seed=seed, **rates)
        hits = fault_schedule(plan, cells)
        if min_hits <= len(hits) <= max_hits:
            return plan
    raise AssertionError(f"no plan seed yields {min_hits}..{max_hits} faults")


class TestChaosParity:
    """Transient faults + retries converge to the fault-free result."""

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_retry_matches_fault_free(self, cells, jobs):
        baseline = execute_cells(cells, jobs=1)

        plan = plan_hitting(cells, crash=0.4, max_failures=2)
        faults.install(plan)
        chaotic = execute_cells(
            cells, jobs=jobs, retry=RetryPolicy(on_error="retry", max_attempts=3)
        )
        stats = last_stats()

        assert stats.failed_attempts >= 2  # faults actually fired
        assert stats.retries == stats.failed_attempts
        assert all(failure.recovered for failure in stats.failures)
        assert chaotic == baseline  # bit-identical results

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_merged_counters_match_fault_free(self, cells, jobs):
        """Worker metric deltas merge identically with and without
        retries: only successful attempts ship deltas, merged in key
        order per round."""
        clean = MetricsRegistry()
        execute_cells(cells, jobs=1, metrics=clean)

        plan = plan_hitting(cells, crash=0.4, max_failures=2)
        faults.install(plan)
        chaotic = MetricsRegistry()
        execute_cells(
            cells,
            jobs=jobs,
            metrics=chaotic,
            retry=RetryPolicy(on_error="retry", max_attempts=3),
        )

        clean_counters = clean.snapshot()["counters"]
        chaos_counters = chaotic.snapshot()["counters"]
        # The executor's own failure counters differ by design.
        for name in ("sweep.failures", "sweep.retries"):
            chaos_counters.pop(name, None)
        assert chaos_counters == clean_counters


class TestSkipMode:
    def test_permanent_faults_drop_same_cells_at_any_jobs(self, cells):
        baseline = execute_cells(cells, jobs=1)
        plan = plan_hitting(
            cells, crash=0.3, max_failures=10**6  # permanent: retries never win
        )
        doomed = set(fault_schedule(plan, cells))
        retry = RetryPolicy(on_error="skip", max_attempts=2)

        faults.install(plan)
        serial = execute_cells(cells, jobs=1, retry=retry)
        serial_stats = last_stats()
        parallel_run = execute_cells(cells, jobs=4, retry=retry)
        parallel_stats = last_stats()

        assert set(serial) == set(baseline) - doomed
        assert serial == parallel_run  # same drops, same survivors
        assert serial_stats.cells_skipped == len(doomed)
        assert parallel_stats.cells_skipped == len(doomed)
        for stats in (serial_stats, parallel_stats):
            terminal = [f for f in stats.failures if not f.recovered]
            assert {f.key for f in terminal} == doomed
            assert all(f.attempts == 2 for f in terminal)

    def test_exhausted_retries_raise_without_skip(self, cells):
        plan = plan_hitting(cells, crash=0.3, max_failures=10**6)
        faults.install(plan)
        with pytest.raises(SweepError) as excinfo:
            execute_cells(
                cells, jobs=1, retry=RetryPolicy(on_error="retry", max_attempts=2)
            )
        assert excinfo.value.failures
        assert all(f.exception == "InjectedCrash" for f in excinfo.value.failures)


class TestFailMode:
    def test_first_failure_aborts(self, cells):
        plan = plan_hitting(cells, crash=0.4)
        faults.install(plan)
        with pytest.raises(SweepError) as excinfo:
            execute_cells(cells, jobs=1)  # default RetryPolicy: on_error=fail
        assert len(excinfo.value.failures) == 1
        assert excinfo.value.failures[0].attempts == 1

    def test_completed_cells_checkpointed_before_abort(self, cells, tmp_path):
        cache = ResultCache(tmp_path)
        plan = plan_hitting(cells, crash=0.4)
        first_doomed = min(fault_schedule(plan, cells))
        survivors_before = [c for c in sorted(cells, key=lambda c: c.key)
                            if c.key < first_doomed]
        faults.install(plan)
        with pytest.raises(SweepError):
            execute_cells(cells, jobs=1, cache=cache)
        for cell in survivors_before:
            assert cache.get(cell.config, cell.seed, cell.policy) is not None


class TestCorruptPayloads:
    def test_corrupt_payload_detected_and_retried(self, cells):
        baseline = execute_cells(cells, jobs=1)
        plan = plan_hitting(cells, corrupt=0.4, max_failures=1)
        faults.install(plan)
        results = execute_cells(
            cells, jobs=1, retry=RetryPolicy(on_error="retry", max_attempts=2)
        )
        stats = last_stats()
        assert results == baseline
        assert stats.failed_attempts >= 2
        assert all(f.exception == "CorruptResultError" for f in stats.failures)
        assert all(f.recovered for f in stats.failures)

    def test_corrupt_payload_detected_in_pool_mode(self, cells):
        baseline = execute_cells(cells, jobs=1)
        plan = plan_hitting(cells, corrupt=0.4, max_failures=1)
        faults.install(plan)
        results = execute_cells(
            cells, jobs=4, retry=RetryPolicy(on_error="retry", max_attempts=2)
        )
        assert results == baseline


class TestTimeouts:
    def test_hung_worker_times_out_and_recovers(self, cells):
        baseline = execute_cells(cells, jobs=1)
        plan = plan_hitting(
            cells, min_hits=1, max_hits=2, hang=0.15, max_failures=1, hang_s=1.5
        )
        faults.install(plan)
        results = execute_cells(
            cells,
            jobs=2,
            retry=RetryPolicy(on_error="retry", max_attempts=3, timeout=0.25),
        )
        stats = last_stats()
        assert results == baseline
        assert stats.timeouts >= 1
        assert stats.pool_rebuilds >= 1  # hung worker's pool was replaced
        assert any(f.exception == "CellTimeoutError" for f in stats.failures)
        assert all(f.recovered for f in stats.failures)


class TestDeadWorkers:
    def test_killed_worker_rebuilds_pool_and_recovers(self, cells):
        baseline = execute_cells(cells, jobs=1)
        plan = plan_hitting(cells, min_hits=1, max_hits=2, die=0.15, max_failures=1)
        faults.install(plan)
        results = execute_cells(
            cells, jobs=2, retry=RetryPolicy(on_error="retry", max_attempts=3)
        )
        stats = last_stats()
        assert results == baseline
        assert stats.pool_rebuilds >= 1
        assert stats.failed_attempts >= 1

    def test_die_downgrades_to_crash_in_serial(self, cells):
        """A ``die`` fault must never hard-kill the main process."""
        baseline = execute_cells(cells, jobs=1)
        plan = plan_hitting(cells, min_hits=1, max_hits=2, die=0.15, max_failures=1)
        faults.install(plan)
        results = execute_cells(
            cells, jobs=1, retry=RetryPolicy(on_error="retry", max_attempts=3)
        )
        stats = last_stats()
        assert results == baseline
        assert any(f.exception == "InjectedCrash" for f in stats.failures)


class TestInterruptAndResume:
    """The SIGINT story: checkpoint on interrupt, resume from the cache."""

    def _interrupt_plan(self, cells) -> FaultPlan:
        """A plan whose first interrupt (in key order) leaves some cells
        completed *and* some never attempted."""
        ordered = sorted(cells, key=lambda c: c.key)
        for seed in range(500):
            plan = FaultPlan(seed=seed, interrupt=0.25, max_failures=10**6)
            hits = fault_schedule(plan, ordered)
            if not hits:
                continue
            first = next(
                i for i, cell in enumerate(ordered) if cell.key in hits
            )
            if 2 <= first <= len(ordered) - 3:
                return plan
        raise AssertionError("no suitable interrupt plan found")

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_interrupted_sweep_resumes_from_checkpoint(
        self, cells, tmp_path, jobs
    ):
        cache = ResultCache(tmp_path)
        plan = self._interrupt_plan(cells)
        faults.install(plan)
        with pytest.raises(KeyboardInterrupt):
            execute_cells(cells, jobs=jobs, cache=cache)
        interrupted = last_stats()
        assert 0 < interrupted.cells_run < len(cells)  # partial checkpoint

        # Re-launch without faults: only the missing cells are simulated.
        faults.install(None)
        cache.reset_counters()
        results = execute_cells(cells, jobs=jobs, cache=cache)
        resumed = last_stats()
        assert len(results) == len(cells)
        assert resumed.cache_hits == interrupted.cells_run
        assert resumed.cells_run == len(cells) - interrupted.cells_run
        assert results == execute_cells(cells, jobs=1, cache=None)


class TestFaultPlanDeterminism:
    def test_schedule_independent_of_call_order(self, cells):
        plan = FaultPlan(seed=7, crash=0.5)
        forward = fault_schedule(plan, cells)
        backward = fault_schedule(plan, list(reversed(cells)))
        assert forward == backward

    def test_spec_round_trip(self):
        plan = FaultPlan(
            seed=42, crash=0.3, hang=0.1, max_failures=2, hang_s=0.25
        )
        assert faults.parse_spec(plan.to_spec()) == plan

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            faults.parse_spec("crash=0.8,hang=0.5")  # rates sum > 1
        with pytest.raises(ValueError):
            faults.parse_spec("explode=1.0")
        with pytest.raises(ValueError):
            faults.parse_spec("crash")

    def test_faults_stop_after_max_failures(self):
        plan = FaultPlan(seed=1, crash=1.0, max_failures=2)
        assert plan.decide("cell", 1) == "crash"
        assert plan.decide("cell", 2) == "crash"
        assert plan.decide("cell", 3) is None

    def test_env_round_trip_activates_plan(self, monkeypatch):
        plan = FaultPlan(seed=9, crash=0.5)
        monkeypatch.setenv(faults.FAULTS_ENV, plan.to_spec())
        assert faults.active_plan() == plan
        monkeypatch.delenv(faults.FAULTS_ENV)
        assert faults.active_plan() is None


class TestKernelEngineChaos:
    """The chaos matrix extended to explicit kernel-engine cells.

    Every invariant above holds when cells *force* ``engine="kernel"``
    — and the new ``kernel`` fault kind composes with worker faults:
    with a :class:`FallbackPolicy` active, kernel faults heal onto the
    reference engine while crashes still retry, converging to the
    fault-free (all-reference-identical) result.
    """

    @pytest.fixture
    def kernel_cells(self, cells):
        return [
            dataclasses.replace(
                cell, config=cell.config.replace(engine="kernel")
            )
            for cell in cells
        ]

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_retry_matches_fault_free_on_kernel_engine(
        self, kernel_cells, jobs
    ):
        baseline = execute_cells(kernel_cells, jobs=1)
        plan = plan_hitting(kernel_cells, crash=0.4, max_failures=2)
        faults.install(plan)
        chaotic = execute_cells(
            kernel_cells,
            jobs=jobs,
            retry=RetryPolicy(on_error="retry", max_attempts=3),
        )
        stats = last_stats()
        assert stats.failed_attempts >= 2
        assert all(failure.recovered for failure in stats.failures)
        assert chaotic == baseline

    def test_kernel_fault_without_fallback_is_retryable(self, kernel_cells):
        """Without a FallbackPolicy, ``kernel`` faults are ordinary
        transient worker failures: retries outlast them."""
        baseline = execute_cells(kernel_cells, jobs=1)
        plan = plan_hitting(kernel_cells, kernel=0.4, max_failures=1)
        faults.install(plan)
        results = execute_cells(
            kernel_cells,
            jobs=1,
            retry=RetryPolicy(on_error="retry", max_attempts=2),
        )
        stats = last_stats()
        assert results == baseline
        assert stats.engine_fallbacks == []
        assert any(
            f.exception == "InjectedKernelFault" for f in stats.failures
        )

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_mixed_faults_heal_and_retry_to_parity(
        self, kernel_cells, tmp_path, jobs
    ):
        """Kernel faults heal (fallback records), crashes retry
        (failure records), and the merged output still equals the
        clean reference run bit-for-bit."""
        from repro.experiments.quarantine import FallbackPolicy

        reference_cells = [
            dataclasses.replace(
                cell, config=cell.config.replace(engine="reference")
            )
            for cell in kernel_cells
        ]
        baseline = execute_cells(reference_cells, jobs=1)

        plan = plan_hitting(
            kernel_cells, min_hits=2, crash=0.2, kernel=0.3, max_failures=1
        )
        schedule = fault_schedule(plan, kernel_cells)
        healed_keys = sorted(
            key for key, kind in schedule.items() if kind == "kernel"
        )
        faults.install(plan)
        results = execute_cells(
            kernel_cells,
            jobs=jobs,
            retry=RetryPolicy(on_error="retry", max_attempts=3),
            fallback=FallbackPolicy(quarantine_dir=str(tmp_path)),
        )
        stats = last_stats()

        assert results == baseline
        assert [
            (r["cell"]["x"], r["cell"]["policy"], r["cell"]["seed"])
            for r in stats.engine_fallbacks
        ] == healed_keys
        crashed = {key for key, kind in schedule.items() if kind == "crash"}
        assert {f.key for f in stats.failures} == crashed
        assert all(f.recovered for f in stats.failures)
