"""Shape reproduction: the paper's qualitative claims, checked end to end.

These run at quick scale (3-4 seeds, quarter-size runs) and assert the
*shapes* the paper reports — who wins, roughly where, and in which
direction curves move.  Absolute values are compared against the paper in
EXPERIMENTS.md, not here (our substrate is a re-built simulator).

The module shares one sweep cache so the whole file costs a handful of
simulations.
"""

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.figures import (
    clear_cache,
    fig4a,
    fig4b,
    fig4c,
    fig4f,
    fig5a,
    fig5b,
    fig5c,
    fig5d,
)

QUICK = ExperimentScale.quick()


@pytest.fixture(scope="module", autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def series_dict(result, name):
    return dict(result.series[name])


def mean(values):
    values = list(values)
    return sum(values) / len(values)


class TestFig4MainMemory:
    def test_miss_percent_rises_with_load(self):
        result = fig4a(QUICK)
        for name in ("EDF-HP", "CCA"):
            points = series_dict(result, name)
            assert mean(points[x] for x in (8.0, 9.0, 10.0)) > mean(
                points[x] for x in (1.0, 2.0, 3.0)
            )

    def test_cca_at_or_below_edf_hp_overall(self):
        result = fig4a(QUICK)
        edf = series_dict(result, "EDF-HP")
        cca = series_dict(result, "CCA")
        assert mean(cca.values()) <= mean(edf.values())
        # Under the heavy-load half CCA should win clearly.
        heavy = [x for x in edf if x >= 6.0]
        assert mean(cca[x] for x in heavy) < mean(edf[x] for x in heavy)

    def test_improvement_positive_under_load(self):
        result = fig4b(QUICK)
        miss = series_dict(result, "Miss Percent")
        lateness = series_dict(result, "Mean Lateness")
        heavy = [x for x in miss if x >= 6.0]
        assert mean(miss[x] for x in heavy) > 0.0
        assert mean(lateness[x] for x in heavy) > 0.0

    def test_restarts_rise_then_fall(self):
        """Figure 4c: the restart curve peaks in the 6..9 tr/s region and
        declines past the peak (paper Section 4.1's explanation)."""
        result = fig4c(QUICK)
        for name in ("EDF-HP", "CCA"):
            points = series_dict(result, name)
            peak_rate = max(points, key=points.get)
            assert 5.0 <= peak_rate <= 9.0
            assert points[10.0] < points[peak_rate]
            assert points[1.0] < points[peak_rate]

    def test_cca_restarts_below_edf_before_peak(self):
        result = fig4c(QUICK)
        edf = series_dict(result, "EDF-HP")
        cca = series_dict(result, "CCA")
        mid = [x for x in edf if 3.0 <= x <= 8.0]
        assert mean(cca[x] for x in mid) < mean(edf[x] for x in mid)

    def test_dbsize_contention_effect(self):
        """Figure 4f: small databases (heavy contention) hurt both
        algorithms; CCA's edge is largest there."""
        result = fig4f(QUICK)
        edf = series_dict(result, "EDF-HP")
        cca = series_dict(result, "CCA")
        assert edf[100.0] > edf[1000.0]
        assert cca[100.0] <= edf[100.0]


class TestFig5PenaltyWeightAndDisk:
    def test_penalty_weight_stability(self):
        """Figure 5a: miss percent is insensitive to w over 1..20."""
        result = fig5a(QUICK)
        for name, points in result.series.items():
            by_weight = dict(points)
            nonzero = [by_weight[w] for w in (1.0, 2.0, 5.0, 10.0, 15.0, 20.0)]
            spread = max(nonzero) - min(nonzero)
            # Stability: the w >= 1 plateau varies far less than the full
            # possible range; a loose bound that still catches regressions
            # where the weight dominates the deadline.
            assert spread <= 10.0, f"{name}: plateau spread {spread}"

    def test_disk_miss_percent_cca_wins_under_load(self):
        result = fig5b(QUICK)
        edf = series_dict(result, "EDF-HP")
        cca = series_dict(result, "CCA")
        heavy = [x for x in edf if x >= 4.0]
        assert mean(cca[x] for x in heavy) <= mean(edf[x] for x in heavy)

    def test_disk_restarts_edf_monotone_cca_flat(self):
        """Figure 5c: the headline disk result — EDF-HP restarts grow
        monotonically with load (noncontributing executions); CCA's stay
        low, resembling the main-memory curve."""
        result = fig5c(QUICK)
        edf = series_dict(result, "EDF-HP")
        cca = series_dict(result, "CCA")
        # Trend check via halves (single-seed noise makes strict
        # point-wise monotonicity too brittle).
        light = mean(edf[x] for x in (1.0, 2.0, 3.0))
        heavy = mean(edf[x] for x in (5.0, 6.0, 7.0))
        assert heavy > 2.0 * light
        # CCA clearly below EDF-HP at load.
        assert mean(cca[x] for x in (5.0, 6.0, 7.0)) < heavy
        # CCA everywhere at or below EDF-HP.
        assert all(cca[x] <= edf[x] + 1e-9 for x in edf)

    def test_disk_improvement_positive_at_load(self):
        result = fig5d(QUICK)
        lateness = series_dict(result, "Mean Lateness")
        heavy = [x for x in lateness if x >= 4.0]
        assert mean(lateness[x] for x in heavy) > 0.0
