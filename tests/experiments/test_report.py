"""ASCII rendering and CSV export."""

import csv

from repro.experiments.figures import FigureResult
from repro.experiments.report import render_figure, write_csv


def sample_result():
    return FigureResult(
        figure_id="figX",
        title="Sample",
        x_label="Rate",
        y_label="Miss",
        series={
            "EDF-HP": [(1.0, 5.0), (2.0, 10.0)],
            "CCA": [(1.0, 4.0), (2.0, 7.5)],
        },
        paper_expectation="CCA below EDF-HP.",
    )


class TestRender:
    def test_contains_header_and_rows(self):
        text = render_figure(sample_result())
        assert "figX: Sample" in text
        assert "EDF-HP" in text and "CCA" in text
        assert "10.000" in text and "7.500" in text
        assert "paper expectation" in text

    def test_handles_missing_points(self):
        result = FigureResult(
            figure_id="f",
            title="t",
            x_label="x",
            y_label="y",
            series={"A": [(1.0, 2.0)], "B": [(3.0, 4.0)]},
        )
        text = render_figure(result)
        assert "-" in text  # placeholder for the missing cross points

    def test_table_only_result(self):
        result = FigureResult(
            figure_id="table1",
            title="params",
            x_label="",
            y_label="",
            series={},
            notes="db size 300",
        )
        text = render_figure(result)
        assert "db size 300" in text


class TestCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(sample_result(), tmp_path)
        assert path.name == "figX.csv"
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["Rate", "EDF-HP", "CCA"]
        assert rows[1] == ["1.0", "5.0", "4.0"]
        assert rows[2] == ["2.0", "10.0", "7.5"]

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "out"
        path = write_csv(sample_result(), target)
        assert path.exists()
