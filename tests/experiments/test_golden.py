"""Golden regression tests: seed-pinned figure data vs committed JSON.

Small-scale, seed-pinned runs of ``fig4a``, ``fig5a`` and ``table1``
are compared point-by-point against fixtures committed under
``tests/experiments/golden/``.  The simulator is deterministic, so any
drift here means a scheduler/workload refactor changed the paper's
curves — which must be a conscious decision, not an accident.  The
comparison is tolerance-based (``rel=1e-6``) so a legitimately benign
change to float *formatting* cannot trip it, but any real numeric shift
will.

To regenerate after an intentional behaviour change::

    PYTHONPATH=src python tests/experiments/test_golden.py --regen

and commit both the new fixtures and the change that motivated them.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import figures
from repro.experiments.config import ExperimentScale

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Pinned run shape: 2 seeds, 100 transactions (10% of full).  Small
#: enough for CI, large enough that every scheduler path is exercised.
GOLDEN_SCALE = ExperimentScale("golden", 2, 2, 0.1)

GOLDEN_IDS = ("fig4a", "fig5a", "table1")


def compute(figure_id: str) -> dict:
    """The figure's data in fixture form (plain JSON types)."""
    figures.clear_cache()
    try:
        result = figures.run_experiment(figure_id, GOLDEN_SCALE)
    finally:
        figures.clear_cache()
    return {
        "figure_id": result.figure_id,
        "scale": GOLDEN_SCALE.name,
        "series": {
            name: [[x, y] for x, y in points]
            for name, points in result.series.items()
        },
        "notes": result.notes,
    }


def fixture_path(figure_id: str) -> Path:
    return GOLDEN_DIR / f"{figure_id}.json"


@pytest.mark.parametrize("figure_id", GOLDEN_IDS)
def test_matches_golden(figure_id):
    path = fixture_path(figure_id)
    assert path.exists(), (
        f"missing golden fixture {path}; regenerate with "
        f"'PYTHONPATH=src python {Path(__file__).relative_to(Path.cwd())} --regen'"
    )
    golden = json.loads(path.read_text())
    actual = compute(figure_id)

    assert actual["figure_id"] == golden["figure_id"]
    assert actual["notes"] == golden["notes"]
    assert set(actual["series"]) == set(golden["series"]), (
        f"{figure_id}: series set changed"
    )
    for name, expected_points in golden["series"].items():
        actual_points = actual["series"][name]
        assert len(actual_points) == len(expected_points), (
            f"{figure_id}/{name}: point count changed"
        )
        for (ax, ay), (ex, ey) in zip(actual_points, expected_points):
            assert ax == ex, f"{figure_id}/{name}: x grid changed ({ax} != {ex})"
            assert ay == pytest.approx(ey, rel=1e-6, abs=1e-9), (
                f"{figure_id}/{name} at x={ex}: {ay} != golden {ey} — a "
                f"refactor shifted the paper's curve; if intentional, "
                f"regenerate the golden fixtures"
            )


def regenerate() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for figure_id in GOLDEN_IDS:
        data = compute(figure_id)
        path = fixture_path(figure_id)
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
