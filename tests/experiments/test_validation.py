"""Reproduction self-check module."""

import pytest

from repro.cli import main
from repro.experiments.config import ExperimentScale
from repro.experiments.figures import clear_cache
from repro.experiments.validation import (
    CheckResult,
    render_report,
    validate_all,
)

TINY = ExperimentScale("tiny", 2, 2, 0.05)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestCheckResult:
    def test_str_pass(self):
        check = CheckResult("fig4a", "CCA wins", True, "by 2 points")
        assert str(check) == "[PASS] fig4a: CCA wins — by 2 points"

    def test_str_fail_without_detail(self):
        check = CheckResult("fig4a", "CCA wins", False)
        assert str(check) == "[FAIL] fig4a: CCA wins"


class TestValidateAll:
    def test_covers_every_figure(self):
        checks = validate_all(TINY)
        figures = {check.figure_id for check in checks}
        assert figures == {
            "fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f",
            "fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f",
        }

    def test_report_counts(self):
        checks = [
            CheckResult("a", "x", True),
            CheckResult("b", "y", False),
        ]
        report = render_report(checks)
        assert "1/2 claims verified" in report
        assert "[FAIL] b: y" in report


class TestCliValidate:
    def test_validate_command_runs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        # The quick-scale shapes should all verify; exit code 0.
        assert main(["validate", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "claims verified" in out
        assert "[PASS]" in out
