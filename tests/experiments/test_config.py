"""Base parameter sets and run scaling."""

import pytest

from repro.experiments.config import (
    DISK_BASE,
    DISK_SEEDS,
    MAIN_MEMORY_BASE,
    MAIN_MEMORY_SEEDS,
    ExperimentScale,
)


class TestBaseParameters:
    def test_table1_values(self):
        cfg = MAIN_MEMORY_BASE
        assert cfg.n_transaction_types == 50
        assert cfg.updates_mean == 20.0
        assert cfg.updates_std == 10.0
        assert cfg.compute_per_update == 4.0
        assert cfg.min_slack == 0.2
        assert cfg.max_slack == 8.0
        assert cfg.abort_cost == 4.0
        assert cfg.penalty_weight == 1.0
        assert not cfg.disk_resident
        assert cfg.n_transactions == 1000

    def test_table2_values(self):
        cfg = DISK_BASE
        assert cfg.disk_resident
        assert cfg.abort_cost == 5.0
        assert cfg.disk_access_time == 25.0
        assert cfg.disk_access_prob == 0.1
        assert cfg.n_transactions == 300

    def test_capacity_calculation(self):
        """Paper Section 4.1: 4 ms x 20 updates = 80 ms/transaction ->
        capacity 12.5 trs/sec."""
        cfg = MAIN_MEMORY_BASE
        per_tx = cfg.updates_mean * cfg.compute_per_update
        assert 1000.0 / per_tx == pytest.approx(12.5)

    def test_seed_counts_match_paper(self):
        assert len(MAIN_MEMORY_SEEDS) == 10
        assert len(DISK_SEEDS) == 30


class TestScale:
    def test_full_is_paper_exact(self):
        scale = ExperimentScale.full()
        assert scale.seeds_for(MAIN_MEMORY_BASE) == MAIN_MEMORY_SEEDS
        assert scale.seeds_for(DISK_BASE) == DISK_SEEDS
        assert scale.scale_config(MAIN_MEMORY_BASE).n_transactions == 1000

    def test_quick_shrinks(self):
        scale = ExperimentScale.quick()
        assert len(scale.seeds_for(MAIN_MEMORY_BASE)) == 3
        assert scale.scale_config(MAIN_MEMORY_BASE).n_transactions == 250

    def test_scale_never_below_floor(self):
        scale = ExperimentScale.quick()
        tiny = MAIN_MEMORY_BASE.replace(n_transactions=60)
        assert scale.scale_config(tiny).n_transactions == 50

    def test_from_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert ExperimentScale.from_env().name == "default"

    def test_from_env_named(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert ExperimentScale.from_env().name == "quick"

    def test_repro_full_alias(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.setenv("REPRO_FULL", "1")
        assert ExperimentScale.from_env().name == "full"

    def test_from_env_invalid(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.setenv("REPRO_SCALE", "gigantic")
        with pytest.raises(ValueError):
            ExperimentScale.from_env()
