"""Improvement metric and paired comparisons."""

import pytest

from repro.metrics.comparison import PolicyComparison, improvement_percent

from tests.metrics.test_summary import record, result
from repro.metrics.summary import summarize


class TestImprovementPercent:
    def test_paper_formula(self):
        # (EDF - CCA) / EDF * 100
        assert improvement_percent(10.0, 7.0) == pytest.approx(30.0)

    def test_regression_is_negative(self):
        assert improvement_percent(10.0, 12.0) == pytest.approx(-20.0)

    def test_equal_values_zero(self):
        assert improvement_percent(5.0, 5.0) == pytest.approx(0.0)

    def test_both_zero(self):
        assert improvement_percent(0.0, 0.0) == 0.0

    def test_zero_baseline_nonzero_challenger(self):
        assert improvement_percent(0.0, 3.0) == -100.0


class TestPolicyComparison:
    def make(self, edf_miss, cca_miss):
        edf = summarize(
            [
                result(
                    policy="EDF-HP",
                    records=[record(1, 150 if edf_miss else 50, 100)],
                )
            ]
        )
        cca = summarize(
            [
                result(
                    policy="CCA",
                    records=[record(1, 150 if cca_miss else 50, 100)],
                )
            ]
        )
        return PolicyComparison(baseline=edf, challenger=cca)

    def test_improvement_when_cca_meets_deadline(self):
        comparison = self.make(edf_miss=True, cca_miss=False)
        assert comparison.miss_percent_improvement == pytest.approx(100.0)
        assert comparison.mean_lateness_improvement == pytest.approx(100.0)

    def test_no_improvement_when_identical(self):
        comparison = self.make(edf_miss=True, cca_miss=True)
        assert comparison.miss_percent_improvement == pytest.approx(0.0)

    def test_unbalanced_run_counts_rejected(self):
        edf = summarize(
            [result(policy="EDF-HP"), result(policy="EDF-HP")]
        )
        cca = summarize([result(policy="CCA")])
        with pytest.raises(ValueError):
            PolicyComparison(baseline=edf, challenger=cca)
