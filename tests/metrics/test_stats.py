"""Confidence intervals and paired significance tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import (
    ConfidenceInterval,
    mean_confidence_interval,
    paired_t_test,
)


class TestConfidenceInterval:
    def test_contains_mean(self):
        interval = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert interval.mean == pytest.approx(2.5)
        assert 2.5 in interval
        assert interval.lower < 2.5 < interval.upper

    def test_wider_at_higher_confidence(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        narrow = mean_confidence_interval(values, confidence=0.80)
        wide = mean_confidence_interval(values, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_shrinks_with_more_data(self):
        few = mean_confidence_interval([1.0, 3.0] * 3)
        many = mean_confidence_interval([1.0, 3.0] * 30)
        assert many.half_width < few.half_width

    def test_single_value_degenerate(self):
        interval = mean_confidence_interval([7.0])
        assert interval.lower == interval.upper == interval.mean == 7.0

    def test_zero_variance(self):
        interval = mean_confidence_interval([5.0, 5.0, 5.0])
        assert interval.half_width == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0], confidence=1.5)

    def test_str(self):
        text = str(mean_confidence_interval([1.0, 2.0, 3.0]))
        assert "@95%" in text

    @given(
        values=st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=40),
        confidence=st.floats(0.5, 0.999),
    )
    @settings(max_examples=60)
    def test_interval_always_brackets_mean(self, values, confidence):
        interval = mean_confidence_interval(values, confidence)
        assert interval.lower <= interval.mean <= interval.upper


class TestPairedTTest:
    def test_clear_difference_is_significant(self):
        baseline = [10.0, 11.2, 12.0, 10.5, 11.5, 12.4]
        challenger = [7.1, 8.0, 9.2, 7.5, 8.4, 9.5]
        result = paired_t_test(baseline, challenger)
        assert result.mean_difference == pytest.approx(2.98, abs=0.1)
        assert result.significant()
        assert result.n_pairs == 6

    def test_identical_sequences_not_significant(self):
        values = [1.0, 2.0, 3.0]
        result = paired_t_test(values, values)
        assert result.p_value == 1.0
        assert not result.significant()

    def test_noise_not_significant(self):
        baseline = [10.0, 12.0, 9.0, 11.0]
        challenger = [11.0, 9.5, 11.5, 10.0]
        result = paired_t_test(baseline, challenger)
        assert not result.significant(alpha=0.01)

    def test_pairing_beats_unpaired_on_correlated_seeds(self):
        """The reason paired comparison matters: per-seed workload noise
        dwarfs the policy effect, but the paired differences are clean."""
        seed_noise = [0.0, 20.0, 40.0, 60.0, 80.0]
        jitter = [0.01, -0.02, 0.03, -0.01, 0.02]
        baseline = [10.0 + noise for noise in seed_noise]
        challenger = [
            9.0 + noise + j for noise, j in zip(seed_noise, jitter)
        ]  # always ~1 better
        result = paired_t_test(baseline, challenger)
        assert result.significant(alpha=0.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [2.0])
        with pytest.raises(ValueError):
            paired_t_test([1.0, 2.0], [1.0])


class TestEndToEndSignificance:
    def test_cca_improvement_is_statistically_significant(self, mm_config):
        """On paired workloads at high contention the CCA-vs-EDF restart
        difference is significant even with few seeds."""
        from repro.core.policy import CCAPolicy, EDFPolicy
        from repro.core.simulator import RTDBSimulator
        from repro.workload.generator import generate_workload

        config = mm_config.replace(db_size=20, arrival_rate=12.0, n_transactions=150)
        edf_values, cca_values = [], []
        for seed in range(1, 9):
            workload = generate_workload(config, seed)
            edf_values.append(
                RTDBSimulator(config, workload, EDFPolicy())
                .run()
                .restarts_per_transaction
            )
            cca_values.append(
                RTDBSimulator(config, workload, CCAPolicy(1.0))
                .run()
                .restarts_per_transaction
            )
        result = paired_t_test(edf_values, cca_values)
        assert result.mean_difference > 0  # CCA restarts less
        assert result.significant(alpha=0.05)
