"""Summary statistics."""

import pytest

from repro.core.simulator import SimulationResult, TransactionRecord
from repro.metrics.summary import Statistic, summarize


def record(tid, commit, deadline, restarts=0):
    return TransactionRecord(
        tid=tid,
        type_id=0,
        arrival_time=0.0,
        deadline=deadline,
        commit_time=commit,
        restarts=restarts,
    )


def result(policy="CCA", records=(), restarts=0, makespan=1000.0):
    records = tuple(records)
    return SimulationResult(
        policy_name=policy,
        n_committed=len(records),
        n_missed=sum(1 for r in records if r.missed),
        total_restarts=restarts,
        makespan=makespan,
        cpu_utilization=0.5,
        disk_utilization=0.0,
        mean_plist_size=1.5,
        records=records,
    )


class TestStatistic:
    def test_mean_std(self):
        stat = Statistic.of([1.0, 2.0, 3.0])
        assert stat.mean == pytest.approx(2.0)
        assert stat.std == pytest.approx(1.0)
        assert stat.minimum == 1.0
        assert stat.maximum == 3.0
        assert stat.n == 3

    def test_single_value(self):
        stat = Statistic.of([5.0])
        assert stat.mean == 5.0
        assert stat.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Statistic.of([])

    def test_format(self):
        assert f"{Statistic.of([1.23456]):.2f}" == "1.23"


class TestResultMetrics:
    def test_miss_percent(self):
        res = result(records=[record(1, 50, 100), record(2, 150, 100)])
        assert res.miss_percent == pytest.approx(50.0)

    def test_mean_lateness_is_tardiness(self):
        res = result(records=[record(1, 50, 100), record(2, 160, 100)])
        # Early commit contributes 0, late one contributes 60.
        assert res.mean_lateness == pytest.approx(30.0)
        assert res.mean_signed_lateness == pytest.approx((-50 + 60) / 2)

    def test_restarts_per_transaction(self):
        res = result(records=[record(1, 1, 10), record(2, 2, 10)], restarts=3)
        assert res.restarts_per_transaction == pytest.approx(1.5)

    def test_empty_result_metrics(self):
        res = result(records=[])
        assert res.miss_percent == 0.0
        assert res.mean_lateness == 0.0
        assert res.restarts_per_transaction == 0.0


class TestSummarize:
    def test_aggregates_across_seeds(self):
        runs = [
            result(records=[record(1, 150, 100)]),   # 100% miss
            result(records=[record(1, 50, 100)]),    # 0% miss
        ]
        summary = summarize(runs)
        assert summary.n_runs == 2
        assert summary.miss_percent.mean == pytest.approx(50.0)
        assert summary.policy_name == "CCA"

    def test_mixed_policies_rejected(self):
        with pytest.raises(ValueError):
            summarize([result(policy="CCA"), result(policy="EDF-HP")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
