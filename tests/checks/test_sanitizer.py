"""RTSan integration tests: clean runs stay clean and bit-identical.

The load-bearing property is *parity*: a sanitized run must produce the
same :class:`SimulationResult` as an unsanitized run of the same cell —
the sanitizer observes, it never steers.  The per-invariant fault
triggers live in ``test_mutations.py``.
"""

from __future__ import annotations

import pytest

from repro.checks.sanitizer import Sanitizer, attach
from repro.checks.violations import EventTrail, INVARIANT_CODES, InvariantViolation
from repro.core.policy import make_policy
from repro.core.simulator import RTDBSimulator
from repro.workload.generator import generate_workload

POLICIES = ["EDF-HP", "FCFS", "LSF-HP", "EDF-WP", "CCA", "EDF-Wait"]


def run_cell(config, seed, policy_name, **kwargs):
    workload = generate_workload(config, seed)
    policy = make_policy(policy_name, penalty_weight=config.penalty_weight)
    return RTDBSimulator(config, workload, policy, **kwargs)


class TestCleanRuns:
    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_main_memory_parity(self, mm_config, policy_name):
        base = run_cell(mm_config, 7, policy_name).run()
        sim = run_cell(mm_config, 7, policy_name, sanitize=True)
        assert sim.sanitizer is not None
        result = sim.run()
        assert result == base
        assert sim.sanitizer.events_checked > 0

    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_disk_resident_parity(self, disk_config, policy_name):
        base = run_cell(disk_config, 7, policy_name).run()
        sim = run_cell(disk_config, 7, policy_name, sanitize=True)
        result = sim.run()
        assert result == base

    def test_multiple_seeds_stay_clean(self, mm_config):
        for seed in range(3):
            run_cell(mm_config, seed, "CCA", sanitize=True).run()

    def test_high_contention_stays_clean(self, mm_config):
        # Essentially every pair conflicts: wounds and waits everywhere.
        hot = mm_config.replace(db_size=8, arrival_rate=12.0)
        for policy_name in POLICIES:
            run_cell(hot, 3, policy_name, sanitize=True).run()


class TestWiring:
    def test_config_flag_attaches(self, mm_config):
        sim = run_cell(mm_config.replace(sanitize=True), 7, "EDF-HP")
        assert sim.sanitizer is not None

    def test_kwarg_overrides_config(self, mm_config):
        sim = run_cell(mm_config.replace(sanitize=True), 7, "EDF-HP",
                       sanitize=False)
        assert sim.sanitizer is None

    def test_off_by_default_costs_nothing(self, mm_config):
        sim = run_cell(mm_config, 7, "EDF-HP")
        assert sim.sanitizer is None
        assert sim.sim.on_event is None

    def test_user_trace_hook_still_sees_events(self, mm_config):
        events = []

        def hook(name, **fields):
            events.append(name)

        sim = run_cell(mm_config, 7, "EDF-HP", trace=hook, sanitize=True)
        sim.run()
        assert "dispatch" in events and "commit" in events

    def test_attach_registers_engine_hook(self, mm_config):
        sim = run_cell(mm_config, 7, "EDF-HP")
        sanitizer = attach(sim)
        assert sim.sim.on_event == sanitizer.on_engine_event


class TestViolationType:
    def test_codes_catalogued(self):
        assert sorted(INVARIANT_CODES) == [
            "RTS001", "RTS002", "RTS003", "RTS004", "RTS005", "RTS006",
        ]

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="RTS999"):
            InvariantViolation("RTS999", "nope")

    def test_message_carries_context(self):
        violation = InvariantViolation(
            "RTS002",
            "blocked under CCA",
            time=12.5,
            tids=(3, 4),
            trace=((12.0, "lock_wait", (("tx", "tx3"),)),),
        )
        text = str(violation)
        assert "RTS002" in text
        assert "Theorem 1" in text
        assert "t=12.5" in text
        assert "[3, 4]" in text
        assert "lock_wait" in text

    def test_trail_is_bounded(self):
        trail = EventTrail(maxlen=4)
        for i in range(10):
            trail.record(float(i), "e", ())
        assert len(trail) == 4
        assert trail.tail(2) == ((8.0, "e", ()), (9.0, "e", ()))

    def test_sanitizer_trail_in_violation(self, mm_config):
        sim = run_cell(mm_config, 7, "EDF-HP")
        sanitizer = Sanitizer(sim)
        sanitizer.on_trace("dispatch", time=1.0, tx=None)
        assert len(sanitizer.trail) == 1
