"""Golden fixture for the determinism linter.

Every DET rule must fire at least once on this file; the CI gate in
``tests/checks/test_lint_cli.py`` fails when a rule stops triggering
(meaning the linter regressed).  The file is lint fodder only — it is
parsed, never imported.
"""

import os
import random
import time
import uuid
from datetime import datetime


def stamp_events(events):
    # DET001: wall-clock read on the simulation path.
    started = time.time()
    logged = datetime.now()
    return started, logged, events


def jitter_arrivals(arrivals):
    # DET002: process-global RNG and entropy sources.
    noise = random.random()
    rng = random.Random()
    token = uuid.uuid4()
    return [a + noise for a in arrivals], rng, token


def drain_ready_set(ready):
    # DET003: set iteration order leaks into the schedule.
    blocked = {1, 2, 3}
    order = list(blocked)
    for tx in blocked:
        order.append(tx)
    doubled = [tx * 2 for tx in blocked]
    return order, doubled, ready


def tie_break(transactions):
    # DET004: id() is a process-dependent address.
    return sorted(transactions, key=lambda tx: id(tx))


def priority_key(tx, others):
    # DET005: float accumulation inside a priority key function.
    total = 0.0
    for other in others:
        total += other.service
    weighted = sum(o.service for o in others)
    return total + weighted + tx.deadline


def read_tuning():
    # DET006: environment reads outside experiments/.
    scale = os.environ.get("REPRO_SCALE", "default")
    jobs = os.getenv("REPRO_JOBS")
    return scale, jobs


def hash_ordering(transactions):
    # DET007: str hash() ordering is salted per process.
    by_hash = sorted(transactions, key=hash)
    by_name_hash = sorted(transactions, key=lambda tx: hash(tx.name))
    for policy in {"edf", "cca", "edf-wait"}:
        by_hash.append(policy)
    return by_hash, by_name_hash


def hash_priority_key(tx):
    # DET007: a hash-derived priority differs run to run.
    return hash(tx.program_name)


def choose_victim(live, lock_table, plist):
    # DET008: plain-dict table order becomes the dispatch/wound order.
    candidates = [tx for tx in live.values()]
    for item, waiters in lock_table.items():
        candidates.extend(waiters)
    ordered_tids = list(plist.keys())
    safe = sorted(live.values())  # blessed: sorted() absorbs the order
    return candidates, ordered_tids, safe


def sanctioned_wall_clock():
    # The suppression syntax silences a finding without hiding it.
    return time.perf_counter()  # repro: allow[DET001] -- fixture: suppression demo
