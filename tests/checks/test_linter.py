"""Unit tests for the determinism linter's rules, scopes and suppressions."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.checks.linter import (
    Finding,
    applicable_rules,
    lint_paths,
    lint_source,
    parse_suppressions,
)
from repro.checks.rules import Scope, all_rules, get_rule, is_known

ALL_CODES = [rule.code for rule in all_rules()]


def findings_for(source: str, codes=None) -> list[Finding]:
    active, _ = lint_source(source, "snippet.py", codes or ALL_CODES)
    return active


def codes_of(source: str) -> set[str]:
    return {finding.code for finding in findings_for(source)}


# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_all_eight_rules_registered(self):
        assert ALL_CODES == [
            "DET001", "DET002", "DET003", "DET004", "DET005", "DET006",
            "DET007", "DET008",
        ]

    def test_rules_carry_scope_and_rationale(self):
        for rule in all_rules():
            assert rule.summary
            assert rule.rationale
            assert rule.scope in (Scope.SIM_PATH, Scope.NON_EXPERIMENTS)

    def test_environ_rule_applies_beyond_sim_path(self):
        assert get_rule("DET006").scope is Scope.NON_EXPERIMENTS

    def test_is_known(self):
        assert is_known("DET001")
        assert not is_known("DET999")


# ---------------------------------------------------------------------------
# DET001 — wall-clock reads
# ---------------------------------------------------------------------------

class TestWallClock:
    def test_time_time(self):
        src = "import time\nt = time.time()\n"
        assert codes_of(src) == {"DET001"}

    def test_perf_counter_via_alias(self):
        src = "import time as _time\nt = _time.perf_counter()\n"
        assert codes_of(src) == {"DET001"}

    def test_from_import(self):
        src = "from time import monotonic\nt = monotonic()\n"
        assert codes_of(src) == {"DET001"}

    def test_datetime_now(self):
        src = "import datetime\nt = datetime.datetime.now()\n"
        assert codes_of(src) == {"DET001"}

    def test_simulated_clock_is_fine(self):
        src = "def f(sim):\n    return sim.now\n"
        assert codes_of(src) == set()

    def test_time_sleep_not_flagged(self):
        src = "import time\ntime.sleep(1)\n"
        assert codes_of(src) == set()


# ---------------------------------------------------------------------------
# DET002 — unseeded RNG
# ---------------------------------------------------------------------------

class TestRng:
    def test_global_random(self):
        src = "import random\nx = random.random()\n"
        assert codes_of(src) == {"DET002"}

    def test_global_shuffle(self):
        src = "import random\nrandom.shuffle(items)\n"
        assert codes_of(src) == {"DET002"}

    def test_unseeded_random_instance(self):
        src = "import random\nrng = random.Random()\n"
        assert codes_of(src) == {"DET002"}

    def test_seeded_random_instance_is_fine(self):
        src = "import random\nrng = random.Random(42)\n"
        assert codes_of(src) == set()

    def test_instance_method_is_fine(self):
        # rng.random() on a (seeded) instance is the sanctioned pattern.
        src = "def f(rng):\n    return rng.random()\n"
        assert codes_of(src) == set()

    def test_uuid4_and_urandom(self):
        src = "import os\nimport uuid\na = uuid.uuid4()\nb = os.urandom(8)\n"
        assert codes_of(src) == {"DET002"}

    def test_numpy_global_rng(self):
        src = "import numpy\nx = numpy.random.rand(3)\n"
        assert codes_of(src) == {"DET002"}


# ---------------------------------------------------------------------------
# DET003 — unordered iteration
# ---------------------------------------------------------------------------

class TestSetIteration:
    def test_for_over_set_literal(self):
        src = "for x in {1, 2, 3}:\n    print(x)\n"
        assert codes_of(src) == {"DET003"}

    def test_for_over_set_local(self):
        src = "def f():\n    s = set()\n    for x in s:\n        pass\n"
        assert codes_of(src) == {"DET003"}

    def test_comprehension_over_set_call(self):
        src = "def f(a, b):\n    return [x for x in set(a) & set(b)]\n"
        assert codes_of(src) == {"DET003"}

    def test_list_of_set_returning_method(self):
        src = "def f(lockmgr, tx):\n    return list(lockmgr.held_items(tx))\n"
        assert codes_of(src) == {"DET003"}

    def test_sorted_set_is_fine(self):
        src = "def f(s):\n    return sorted(set(s))\n"
        assert codes_of(src) == set()

    def test_order_insensitive_consumers_are_fine(self):
        src = "def f():\n    s = {1, 2}\n    return max(s), len(s), any(s)\n"
        assert codes_of(src) == set()

    def test_reassignment_clears_set_tracking(self):
        src = (
            "def f():\n"
            "    s = set()\n"
            "    s = sorted(s)\n"
            "    for x in s:\n"
            "        pass\n"
        )
        assert codes_of(src) == set()

    def test_dict_iteration_is_fine(self):
        src = "def f(d):\n    for k in d:\n        pass\n"
        assert codes_of(src) == set()


# ---------------------------------------------------------------------------
# DET004 — id()-based ordering
# ---------------------------------------------------------------------------

class TestIdOrdering:
    def test_id_call(self):
        src = "def f(tx):\n    return id(tx)\n"
        assert codes_of(src) == {"DET004"}

    def test_locally_bound_id_is_fine(self):
        src = "from operator import itemgetter as id\nx = id(0)\n"
        assert codes_of(src) == set()


# ---------------------------------------------------------------------------
# DET005 — float accumulation in key functions
# ---------------------------------------------------------------------------

class TestFloatAccumulation:
    def test_augmented_accumulation_in_priority_func(self):
        src = (
            "def priority_key(items):\n"
            "    total = 0.0\n"
            "    for i in items:\n"
            "        total += i\n"
            "    return total\n"
        )
        assert codes_of(src) == {"DET005"}

    def test_sum_in_penalty_func(self):
        src = "def penalty_of(items):\n    return sum(items)\n"
        assert codes_of(src) == {"DET005"}

    def test_same_pattern_outside_key_funcs_is_fine(self):
        src = (
            "def tally(items):\n"
            "    total = 0.0\n"
            "    for i in items:\n"
            "        total += i\n"
            "    return total, sum(items)\n"
        )
        assert codes_of(src) == set()

    def test_int_accumulator_is_fine(self):
        src = (
            "def priority_key(items):\n"
            "    count = 0\n"
            "    for i in items:\n"
            "        count += 1\n"
            "    return count\n"
        )
        assert codes_of(src) == set()


# ---------------------------------------------------------------------------
# DET006 — environment reads
# ---------------------------------------------------------------------------

class TestEnvironReads:
    def test_environ_subscript(self):
        src = "import os\nx = os.environ['REPRO_SCALE']\n"
        assert codes_of(src) == {"DET006"}

    def test_environ_get(self):
        src = "import os\nx = os.environ.get('REPRO_SCALE')\n"
        assert codes_of(src) == {"DET006"}

    def test_getenv(self):
        src = "import os\nx = os.getenv('REPRO_JOBS')\n"
        assert codes_of(src) == {"DET006"}

    def test_from_import_environ(self):
        src = "from os import environ\nx = environ['HOME']\n"
        assert codes_of(src) == {"DET006"}

    def test_one_finding_per_chain(self):
        src = "import os\nx = os.environ.get('A', 'b')\n"
        assert len(findings_for(src)) == 1


# ---------------------------------------------------------------------------
# DET007 — string-hash ordering
# ---------------------------------------------------------------------------

class TestHashOrdering:
    def test_sorted_key_hash(self):
        src = "order = sorted(names, key=hash)\n"
        assert codes_of(src) == {"DET007"}

    def test_min_max_key_hash(self):
        src = "lo = min(names, key=hash)\nhi = max(names, key=hash)\n"
        assert [f.code for f in findings_for(src)] == ["DET007", "DET007"]

    def test_list_sort_key_hash(self):
        src = "names.sort(key=hash)\n"
        assert codes_of(src) == {"DET007"}

    def test_key_lambda_wrapping_hash(self):
        src = "order = sorted(txs, key=lambda tx: hash(tx.name))\n"
        assert codes_of(src) == {"DET007"}

    def test_hash_inside_priority_key_function(self):
        src = "def priority_key(tx):\n    return hash(tx.program_name)\n"
        assert codes_of(src) == {"DET007"}

    def test_str_set_literal_iteration(self):
        src = "for policy in {'edf', 'cca'}:\n    pass\n"
        assert "DET007" in codes_of(src)  # DET003 also fires

    def test_non_str_set_literal_is_det003_only(self):
        src = "for tx in {1, 2, 3}:\n    pass\n"
        assert codes_of(src) == {"DET003"}

    def test_sorted_with_stable_key_is_clean(self):
        src = "order = sorted(txs, key=lambda tx: tx.tid)\n"
        assert codes_of(src) == set()

    def test_hash_outside_key_function_is_clean(self):
        src = "def bucket_of(tx):\n    return hash(tx) % 8\n"
        assert codes_of(src) == set()

    def test_shadowed_hash_is_clean(self):
        src = (
            "from mylib import digest as hash\n"
            "order = sorted(txs, key=hash)\n"
        )
        assert codes_of(src) == set()


# ---------------------------------------------------------------------------
# DET008 — dict-table iteration in scheduling decisions
# ---------------------------------------------------------------------------

class TestDictTableIteration:
    def test_values_in_choose_function(self):
        src = (
            "def _choose(self):\n"
            "    return [tx for tx in self.live.values()]\n"
        )
        assert codes_of(src) == {"DET008"}

    def test_items_over_lock_table_in_dispatch(self):
        src = (
            "def dispatch_next(lock_table):\n"
            "    for item, waiters in lock_table.items():\n"
            "        pass\n"
        )
        assert codes_of(src) == {"DET008"}

    def test_keys_over_plist_in_resolve(self):
        src = (
            "def _resolve_conflicts(self):\n"
            "    tids = list(self._plist.keys())\n"
            "    return tids\n"
        )
        assert codes_of(src) == {"DET008"}

    def test_sorted_view_is_blessed(self):
        src = (
            "def _choose(self):\n"
            "    return sorted(self.live.values(), key=key)\n"
        )
        assert codes_of(src) == set()

    def test_order_insensitive_reducers_are_blessed(self):
        src = (
            "def _choose(self):\n"
            "    lo = min(self.live.values(), key=key, default=None)\n"
            "    busy = any(self.lock_table.values())\n"
            "    return lo, busy\n"
        )
        assert codes_of(src) == set()

    def test_non_decision_function_is_clean(self):
        src = (
            "def snapshot_metrics(self):\n"
            "    return list(self.live.values())\n"
        )
        assert codes_of(src) == set()

    def test_non_table_receiver_is_clean(self):
        src = (
            "def choose_color(self):\n"
            "    return [c for c in self.palette.values()]\n"
        )
        assert codes_of(src) == set()

    def test_module_level_iteration_is_clean(self):
        # No enclosing function means no scheduling decision.
        src = "order = list(lock_table.values())\n"
        assert codes_of(src) == set()

    def test_table_view_passed_to_helper_fires(self):
        src = (
            "def _choose(self):\n"
            "    return choose_primary(self.live.values(), key)\n"
        )
        assert codes_of(src) == {"DET008"}


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

class TestSuppressions:
    def test_same_line_allow_suppresses(self):
        src = "import time\nt = time.time()  # repro: allow[DET001]\n"
        active, suppressed = lint_source(src, "s.py", ALL_CODES)
        assert active == []
        assert [f.code for f in suppressed] == ["DET001"]
        assert suppressed[0].suppressed

    def test_justification_text_allowed(self):
        src = (
            "import time\n"
            "t = time.time()  # repro: allow[DET001] -- guard only raises\n"
        )
        active, suppressed = lint_source(src, "s.py", ALL_CODES)
        assert active == [] and len(suppressed) == 1

    def test_multiple_codes(self):
        src = (
            "import os, time\n"
            "x = (time.time(), os.getenv('A'))"
            "  # repro: allow[DET001, DET006]\n"
        )
        active, suppressed = lint_source(src, "s.py", ALL_CODES)
        assert active == []
        assert sorted(f.code for f in suppressed) == ["DET001", "DET006"]

    def test_wrong_code_does_not_suppress(self):
        src = "import time\nt = time.time()  # repro: allow[DET002]\n"
        active, suppressed = lint_source(src, "s.py", ALL_CODES)
        assert [f.code for f in active] == ["DET001"]
        assert suppressed == []

    def test_other_line_does_not_suppress(self):
        src = (
            "import time\n"
            "# repro: allow[DET001]\n"
            "t = time.time()\n"
        )
        active, _ = lint_source(src, "s.py", ALL_CODES)
        assert [f.code for f in active] == ["DET001"]

    def test_parse_suppressions_maps_lines(self):
        src = "a = 1\nb = 2  # repro: allow[DET003,DET005]\n"
        assert parse_suppressions(src) == {2: frozenset({"DET003", "DET005"})}


# ---------------------------------------------------------------------------
# Scope classification
# ---------------------------------------------------------------------------

class TestScopes:
    def test_sim_path_dirs_get_all_rules(self):
        for head in ("sim", "core", "rtdb", "analysis", "workload", "occ", "mp"):
            rules = applicable_rules(Path(f"src/repro/{head}/module.py"))
            assert [r.code for r in rules] == ALL_CODES, head

    def test_experiments_get_no_rules(self):
        assert applicable_rules(Path("src/repro/experiments/runner.py")) == ()

    def test_other_repro_modules_get_environ_rule_only(self):
        rules = applicable_rules(Path("src/repro/obs/hooks.py"))
        assert [r.code for r in rules] == ["DET006"]
        rules = applicable_rules(Path("src/repro/config.py"))
        assert [r.code for r in rules] == ["DET006"]

    def test_outside_repro_gets_all_rules(self):
        rules = applicable_rules(Path("tests/checks/fixtures/known_bad.py"))
        assert [r.code for r in rules] == ALL_CODES


# ---------------------------------------------------------------------------
# lint_paths plumbing
# ---------------------------------------------------------------------------

class TestLintPaths:
    def test_unknown_select_code_raises(self):
        with pytest.raises(ValueError, match="DET999"):
            lint_paths([Path(__file__)], select=["DET999"])

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        result = lint_paths([bad])
        assert not result.clean
        assert result.findings == []
        assert len(result.errors) == 1 and "syntax error" in result.errors[0]

    def test_findings_sorted_and_counted(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(
            "import time\n"
            "b = time.time()\n"
            "a = time.monotonic()\n"
        )
        result = lint_paths([mod])
        assert [f.line for f in result.findings] == [2, 3]
        assert result.counts_by_code() == {"DET001": 2}
        assert result.files_checked == 1
