"""CLI, JSON-schema and CI-gate tests for ``repro lint``.

Two gates live here:

* the golden fixture ``fixtures/known_bad.py`` must trigger **every**
  DET rule — if a rule stops firing, the linter regressed;
* ``repro lint`` over the installed ``repro`` package must exit 0 —
  the tree stays self-clean (violations are fixed or carry a justified
  suppression).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.checks.cli import default_lint_root, lint_main
from repro.checks.linter import lint_paths
from repro.checks.report import JSON_SCHEMA_VERSION, render_json, render_text
from repro.checks.rules import all_rules

FIXTURE = Path(__file__).parent / "fixtures" / "known_bad.py"

#: The stable shape of one finding object in the JSON report.
FINDING_KEYS = {"path", "line", "col", "code", "message", "suppressed"}


class TestGoldenFixture:
    def test_every_rule_fires_on_the_fixture(self):
        """CI gate: each DET rule must keep triggering on known-bad code."""
        result = lint_paths([FIXTURE])
        fired = set(result.counts_by_code())
        expected = {rule.code for rule in all_rules()}
        assert fired == expected, (
            f"rules that stopped firing on the golden fixture: "
            f"{sorted(expected - fired)}"
        )

    def test_fixture_suppression_demo_is_recorded(self):
        result = lint_paths([FIXTURE])
        assert [f.code for f in result.suppressed] == ["DET001"]

    def test_fixture_exit_code_is_one(self, capsys):
        assert lint_main([str(FIXTURE)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "finding(s)" in out


class TestSelfClean:
    def test_repro_package_lints_clean(self):
        """CI gate: the shipped tree has no unsuppressed findings."""
        result = lint_paths([default_lint_root()])
        assert result.clean, render_text(result)
        # The deliberate suppressions (engine wall-clock guard, penalty
        # accumulation, wait-promote set scan) stay visible as such.
        assert len(result.suppressed) >= 5

    def test_cli_exit_zero_on_package(self, capsys):
        assert lint_main([]) == 0
        assert "0 finding(s)" in capsys.readouterr().out


class TestJsonSchema:
    def test_report_shape_is_stable(self):
        result = lint_paths([FIXTURE])
        payload = json.loads(render_json(result))
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert set(payload) == {
            "version",
            "files_checked",
            "clean",
            "findings",
            "suppressed",
            "errors",
            "summary",
            "rules",
        }
        assert payload["files_checked"] == 1
        assert payload["clean"] is False
        for finding in payload["findings"]:
            assert set(finding) == FINDING_KEYS
            assert isinstance(finding["line"], int)
            assert finding["suppressed"] is False
        for finding in payload["suppressed"]:
            assert set(finding) == FINDING_KEYS
            assert finding["suppressed"] is True
        assert payload["summary"] == result.counts_by_code()
        assert set(payload["rules"]) == {r.code for r in all_rules()}
        for entry in payload["rules"].values():
            assert set(entry) == {"name", "summary", "scope"}

    def test_cli_json_output_parses(self, capsys):
        assert lint_main([str(FIXTURE), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["summary"]  # non-empty on the bad fixture

    def test_errors_surface_in_json(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        assert lint_main([str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert len(payload["errors"]) == 1


class TestCliFlags:
    def test_select_restricts_codes(self, capsys):
        assert lint_main([str(FIXTURE), "--select", "DET004"]) == 1
        out = capsys.readouterr().out
        assert "DET004" in out and "DET001" not in out

    def test_select_unknown_code_is_usage_error(self, capsys):
        assert lint_main([str(FIXTURE), "--select", "DET999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert lint_main(["does/not/exist.py"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.code in out

    def test_show_suppressed_lists_allows(self, capsys):
        assert lint_main([str(FIXTURE), "--show-suppressed"]) == 1
        assert "suppressed (# repro: allow[DET001])" in capsys.readouterr().out

    def test_main_cli_dispatches_lint(self, capsys):
        from repro.cli import main

        assert main(["lint", str(FIXTURE)]) == 1
        assert "DET001" in capsys.readouterr().out
