"""Mutation tests: each seeded fault must trigger exactly its invariant.

Every test plants one deliberate scheduler/lock-manager bug (the kind
RTSan exists to catch) and asserts the sanitizer raises the matching
:class:`InvariantViolation` — and *that* violation, not a neighbouring
one.  If a check regresses into a no-op, its mutation test fails, which
is the CI gate the ISSUE requires.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.checks.sanitizer import Sanitizer
from repro.checks.violations import InvariantViolation
from repro.core.policy import make_policy
from repro.core.simulator import RTDBSimulator
from repro.core import simulator as simulator_module
from repro.core.scheduler import choose_primary
from repro.rtdb.locks import LockManager
from repro.rtdb.transaction import Transaction
from repro.sim.events import Event
from repro.workload.generator import generate_workload

from tests.conftest import make_spec


def build(config, policy_name, seed=7, **kwargs):
    workload = generate_workload(config, seed)
    policy = make_policy(policy_name, penalty_weight=config.penalty_weight)
    return RTDBSimulator(config, workload, policy, sanitize=True, **kwargs)


def expect(code: str):
    return pytest.raises(InvariantViolation, match=code)


@pytest.fixture
def hot_config(mm_config):
    """Heavy contention so every fault site is actually exercised."""
    return mm_config.replace(db_size=8, arrival_rate=12.0)


class TestLockTableMutations:
    def test_dropped_lock_release_raises_rts001(self, hot_config, monkeypatch):
        # The classic leak: commit/abort forgets to give the locks back.
        monkeypatch.setattr(
            LockManager, "release_all", lambda self, tx: []
        )
        with expect("RTS001") as exc_info:
            build(hot_config, "EDF-HP").run()
        assert exc_info.value.code == "RTS001"

    def test_stale_waiter_raises_rts001(self, mm_config):
        # A queue entry for a transaction that is not LOCK_BLOCKED.
        sim = build(mm_config, "EDF-HP")
        tx = Transaction(make_spec(1, [5]))
        sim.live[tx.tid] = tx
        sim.lockmgr.enqueue_waiter(tx, 5)  # tx.state is still CREATED
        with expect("RTS001"):
            sim.sanitizer.on_engine_event(
                Event(0.0, lambda event: None, kind="probe")
            )


class TestTheorem1Mutation:
    def test_lock_wait_under_cca_raises_rts002(self, hot_config, monkeypatch):
        # Break the pre-analysis guarantee: CCA stops wounding, so a
        # conflicting request blocks — the wait Theorem 1 forbids.
        monkeypatch.setattr(
            RTDBSimulator, "_should_wound", lambda self, tx, holder: False
        )
        with expect("RTS002") as exc_info:
            build(hot_config, "CCA", eager_wounds=False).run()
        assert exc_info.value.code == "RTS002"
        assert exc_info.value.tids  # names the blocked transaction


class TestTheorem2Mutation:
    def test_mutual_wound_raises_rts003(self, mm_config):
        # Drive the trace hook with a circular abort: A wounds B and B
        # wounds A at the same scheduling instant.
        sim = build(mm_config, "LSF-HP")  # continuous: skips RTS004 arm
        a = Transaction(make_spec(1, [1]))
        b = Transaction(make_spec(2, [2]))
        sanitizer = sim.sanitizer
        sanitizer.on_trace("abort", time=4.0, tx=b, by=a, cause="lock")
        with expect("RTS003"):
            sanitizer.on_trace("abort", time=4.0, tx=a, by=b, cause="lock")

    def test_wounds_at_distinct_instants_are_legal(self, mm_config):
        sim = build(mm_config, "LSF-HP")
        a = Transaction(make_spec(1, [1]))
        b = Transaction(make_spec(2, [2]))
        sanitizer = sim.sanitizer
        sanitizer.on_trace("abort", time=4.0, tx=b, by=a, cause="lock")
        sanitizer.on_trace("abort", time=5.0, tx=a, by=b, cause="lock")


class TestPriorityOrderMutations:
    def test_swapped_wound_comparison_raises_rts004(
        self, hot_config, monkeypatch
    ):
        # Swap the High Priority comparison: the *lower*-priority
        # requester now wounds the higher-priority holder.
        def swapped(self, tx, holder):
            if self._priority_key(tx) < self._priority_key(holder):
                return True
            return self._would_deadlock(tx, holder)

        monkeypatch.setattr(RTDBSimulator, "_should_wound", swapped)
        with expect("RTS004") as exc_info:
            build(hot_config, "EDF-HP", eager_wounds=False).run()
        assert exc_info.value.code == "RTS004"

    def test_degenerate_priority_key_raises_rts004(
        self, hot_config, monkeypatch
    ):
        # A key that maps every transaction to the same tuple destroys
        # the total order the dispatch rule needs.
        monkeypatch.setattr(
            RTDBSimulator, "_priority_key", lambda self, tx: (0.0,)
        )
        with expect("RTS004"):
            build(hot_config, "EDF-HP").run()

    def test_nan_priority_key_raises_rts004(self, hot_config, monkeypatch):
        monkeypatch.setattr(
            RTDBSimulator,
            "_priority_key",
            lambda self, tx: (float("nan"), tx.tid),
        )
        with expect("RTS004"):
            build(hot_config, "EDF-HP").run()


class TestMonotonicityMutation:
    def test_backwards_event_raises_rts005(self):
        stub = SimpleNamespace(now=5.0, lockmgr=LockManager(), live={})
        sanitizer = Sanitizer(stub)
        sanitizer.on_engine_event(Event(5.0, lambda event: None, kind="a"))
        with expect("RTS005"):
            sanitizer.on_engine_event(Event(1.0, lambda event: None, kind="b"))


class TestIOWaitMutation:
    def test_incompatible_secondary_raises_rts006(
        self, disk_config, monkeypatch
    ):
        # IOwait-schedule that ignores the compatibility test: it now
        # dispatches conflicting secondaries (noncontributing execution).
        monkeypatch.setattr(
            simulator_module,
            "choose_secondary",
            lambda ready, partially_executed, oracle, key: choose_primary(
                ready, key
            ),
        )
        hot = disk_config.replace(db_size=8, arrival_rate=12.0)
        with expect("RTS006") as exc_info:
            build(hot, "CCA").run()
        assert exc_info.value.code == "RTS006"
