"""The trace event catalog: every kind the simulator emits, with the
fields :data:`repro.tracing.EVENT_SCHEMA` documents.

Hand-built scenarios steer the scheduler through every code path that
traces — preemption, both abort causes, IO staleness, lock waits and
wakes, wait-promote deadlock breaking, tree decision points, and firm
drops — then every recorded event is checked field-for-field against
the schema.  Instrumentation (metric hooks, the trace CLI) relies on
exactly this catalog.
"""

import dataclasses

import pytest

from repro.config import SimulationConfig
from repro.core.policy import make_policy
from repro.core.simulator import RTDBSimulator
from repro.tracing import EVENT_SCHEMA, EventLog

from tests.conftest import make_spec


def mm_config(**overrides) -> SimulationConfig:
    defaults = dict(
        n_transaction_types=5,
        updates_mean=3.0,
        updates_std=1.0,
        db_size=50,
        abort_cost=4.0,
        n_transactions=5,
        arrival_rate=1.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def disk_config(**overrides) -> SimulationConfig:
    return mm_config(
        disk_resident=True,
        disk_access_time=25.0,
        disk_access_prob=0.5,
        **overrides,
    )


def run(config, specs, policy_name="EDF-HP", **kwargs) -> EventLog:
    log = EventLog()
    policy = make_policy(policy_name, penalty_weight=config.penalty_weight)
    RTDBSimulator(config, specs, policy, trace=log, **kwargs).run()
    return log


def scenario_preempt_and_dispatch_abort() -> EventLog:
    """A runs; urgent B preempts it (disjoint items), urgent C wounds a
    conflicting holder at dispatch: preempt + abort(cause=dispatch)."""
    specs = [
        make_spec(1, [1, 2], arrival=0.0, deadline=500.0, compute=20.0),
        make_spec(2, [8, 9], arrival=5.0, deadline=60.0, compute=10.0),
        make_spec(3, [1, 5], arrival=10.0, deadline=90.0, compute=10.0),
    ]
    return run(mm_config(), specs)


def scenario_lock_wait_and_wake() -> EventLog:
    """A holds item 1 across a disk access; lower-priority B blocks on
    it and is woken when A commits: lock_wait + lock_wake."""
    specs = [
        make_spec(1, [1, 2], arrival=0.0, deadline=300.0, compute=5.0,
                  io_items=frozenset({1})),
        make_spec(2, [1], arrival=2.0, deadline=800.0, compute=5.0),
    ]
    return run(disk_config(), specs)


def scenario_io_stale() -> EventLog:
    """Urgent B wounds A (eager HP, at B's dispatch) while A's disk
    access is in flight; the completion arrives for a dead epoch:
    abort(cause=dispatch) + io_stale."""
    specs = [
        make_spec(1, [1, 2], arrival=0.0, deadline=800.0, compute=5.0,
                  io_items=frozenset({1})),
        make_spec(2, [1], arrival=2.0, deadline=100.0, compute=5.0),
    ]
    return run(disk_config(), specs)


def scenario_lock_abort() -> EventLog:
    """Under lazy wounds (``eager_wounds=False``) conflicts resolve at
    the lock request, not at dispatch: urgent B runs into A's held item
    and wounds it there: abort(cause=lock)."""
    specs = [
        make_spec(1, [1, 2], arrival=0.0, deadline=900.0, compute=20.0),
        make_spec(2, [1], arrival=5.0, deadline=100.0, compute=5.0),
    ]
    return run(mm_config(), specs, eager_wounds=False)


def scenario_deadlock_break() -> EventLog:
    """Classic crossed lock order under wait-promote: A takes 1 then
    wants 2, B takes 2 then wants 1; the cycle is broken by wounding."""
    specs = [
        make_spec(1, [1, 2], arrival=0.0, deadline=900.0, compute=5.0,
                  io_items=frozenset({1})),
        make_spec(2, [2, 1], arrival=1.0, deadline=900.0, compute=5.0,
                  io_items=frozenset({2})),
    ]
    return run(disk_config(), specs, policy_name="EDF-WP")


def scenario_decision() -> EventLog:
    """A tree transaction resolves a decision point mid-run."""
    spec = make_spec(1, [1, 2, 3], deadline=500.0, compute=5.0)
    spec = dataclasses.replace(spec, node_schedule=((1, "left"),))
    return run(mm_config(), [spec])


def scenario_drop() -> EventLog:
    """Firm semantics kill a transaction that cannot make its deadline."""
    spec = make_spec(1, [1, 2], deadline=10.0, compute=50.0)
    return run(mm_config(firm_deadlines=True), [spec])


SCENARIOS = (
    scenario_preempt_and_dispatch_abort,
    scenario_lock_wait_and_wake,
    scenario_io_stale,
    scenario_lock_abort,
    scenario_deadlock_break,
    scenario_decision,
    scenario_drop,
)


@pytest.fixture(scope="module")
def all_events() -> list[dict]:
    events: list[dict] = []
    for scenario in SCENARIOS:
        events.extend(scenario())
    return events


class TestEventSchema:
    def test_schema_covers_fifteen_kinds(self):
        assert len(EVENT_SCHEMA) == 15

    def test_scenarios_produce_every_kind(self, all_events):
        seen = {event["event"] for event in all_events}
        missing = set(EVENT_SCHEMA) - seen
        assert not missing, f"no scenario produced: {sorted(missing)}"

    def test_every_event_matches_its_schema(self, all_events):
        for event in all_events:
            kind = event["event"]
            assert kind in EVENT_SCHEMA, f"undocumented event kind {kind!r}"
            fields = set(event) - {"event"}
            assert fields == set(EVENT_SCHEMA[kind]), (
                f"{kind} fields {sorted(fields)} != "
                f"documented {sorted(EVENT_SCHEMA[kind])}"
            )

    def test_every_event_is_timestamped_and_flat(self, all_events):
        for event in all_events:
            assert isinstance(event["time"], float)
            for value in event.values():
                assert not hasattr(value, "tid"), "unflattened transaction"


class TestScenarioDetails:
    def test_preempt_scenario(self):
        log = scenario_preempt_and_dispatch_abort()
        assert log.of("preempt")
        aborts = log.of("abort")
        assert aborts and all(a["cause"] == "dispatch" for a in aborts)

    def test_lock_acquire_records_item_and_mode(self):
        log = scenario_lock_wait_and_wake()
        acquires = log.of("lock_acquire")
        assert acquires
        assert acquires[0]["tx"] == 1 and acquires[0]["item"] == 1
        assert all(isinstance(a["exclusive"], bool) for a in acquires)

    def test_lock_release_on_commit(self):
        log = scenario_lock_wait_and_wake()
        releases = log.of("lock_release")
        commits = log.of("commit")
        assert len(releases) == len(commits)
        assert all(r["reason"] == "commit" for r in releases)
        by_tid = {r["tx"]: r for r in releases}
        assert sorted(by_tid[1]["items"]) == [1, 2]

    def test_lock_release_on_abort(self):
        log = scenario_lock_abort()
        aborted = [r for r in log.of("lock_release") if r["reason"] == "abort"]
        assert aborted and aborted[0]["tx"] == 1
        assert 1 in aborted[0]["items"]

    def test_lock_release_on_drop(self):
        log = scenario_drop()
        dropped = [r for r in log.of("lock_release") if r["reason"] == "drop"]
        assert dropped and dropped[0]["tx"] == 1

    def test_lock_wait_records_item_and_holders(self):
        log = scenario_lock_wait_and_wake()
        waits = log.of("lock_wait")
        assert waits
        assert waits[0]["item"] == 1
        assert waits[0]["holders"] == [1]
        wakes = log.of("lock_wake")
        assert wakes and wakes[0]["tx"] == 2

    def test_io_stale_scenario(self):
        log = scenario_io_stale()
        aborts = log.of("abort")
        assert aborts and aborts[0]["cause"] == "dispatch"
        assert aborts[0]["tx"] == 1 and aborts[0]["by"] == 2
        assert log.of("io_stale")

    def test_lock_abort_scenario(self):
        log = scenario_lock_abort()
        aborts = log.of("abort")
        assert aborts
        assert aborts[0] == {
            "event": "abort", "time": aborts[0]["time"],
            "tx": 1, "by": 2, "cause": "lock",
        }

    def test_deadlock_break_scenario(self):
        log = scenario_deadlock_break()
        breaks = log.of("deadlock_break")
        assert breaks
        assert {breaks[0]["tx"], breaks[0]["by"]} == {1, 2}

    def test_decision_scenario(self):
        log = scenario_decision()
        decisions = log.of("decision")
        assert decisions == [
            {"event": "decision", "time": decisions[0]["time"], "tx": 1,
             "node": "left"}
        ]

    def test_drop_scenario(self):
        log = scenario_drop()
        drops = log.of("drop")
        assert drops and drops[0]["tx"] == 1
