"""Event log and schedule reconstruction."""

import json

import pytest

from repro.config import SimulationConfig
from repro.core.policy import CCAPolicy, EDFPolicy
from repro.core.simulator import RTDBSimulator
from repro.tracing import EventLog
from repro.workload.generator import generate_workload

from tests.conftest import make_spec


def config(**overrides) -> SimulationConfig:
    defaults = dict(
        n_transaction_types=5,
        updates_mean=3.0,
        updates_std=1.0,
        db_size=50,
        abort_cost=4.0,
        n_transactions=5,
        arrival_rate=1.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestEventLog:
    def test_records_flattened_events(self):
        log = EventLog()
        spec = make_spec(1, [1, 2], deadline=100.0, compute=10.0)
        RTDBSimulator(config(), [spec], EDFPolicy(), trace=log).run()
        assert len(log) > 0
        kinds = {event["event"] for event in log}
        assert {"arrival", "dispatch", "commit"} <= kinds
        # Transactions are stored as ids, never objects.
        for event in log:
            for value in event.values():
                assert not hasattr(value, "tid")

    def test_of_filters_by_kind(self):
        log = EventLog()
        specs = [
            make_spec(1, [1], deadline=50.0, compute=10.0),
            make_spec(2, [9], arrival=1.0, deadline=100.0, compute=10.0),
        ]
        RTDBSimulator(config(), specs, EDFPolicy(), trace=log).run()
        assert len(log.of("commit")) == 2
        assert len(log.of("arrival")) == 2

    def test_jsonl_roundtrip(self, tmp_path):
        log = EventLog()
        spec = make_spec(1, [1], deadline=50.0, compute=10.0)
        RTDBSimulator(config(), [spec], EDFPolicy(), trace=log).run()
        path = log.to_jsonl(tmp_path / "schedule.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(log)
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["event"] == "arrival"


class TestCpuIntervals:
    def test_single_transaction_single_interval(self):
        log = EventLog()
        spec = make_spec(1, [1, 2], arrival=5.0, deadline=100.0, compute=10.0)
        RTDBSimulator(config(), [spec], EDFPolicy(), trace=log).run()
        intervals = log.cpu_intervals()
        assert len(intervals) == 1
        assert intervals[0].tid == 1
        assert intervals[0].start == pytest.approx(5.0)
        assert intervals[0].end == pytest.approx(25.0)
        assert intervals[0].duration == pytest.approx(20.0)

    def test_preemption_splits_intervals(self):
        log = EventLog()
        long_tx = make_spec(1, [1, 2], arrival=0.0, deadline=500.0, compute=20.0)
        urgent = make_spec(2, [8, 9], arrival=5.0, deadline=60.0, compute=10.0)
        RTDBSimulator(config(), [long_tx, urgent], EDFPolicy(), trace=log).run()
        intervals = log.cpu_intervals()
        by_tid = {}
        for interval in intervals:
            by_tid.setdefault(interval.tid, []).append(interval)
        assert len(by_tid[1]) == 2  # before and after the preemption
        assert len(by_tid[2]) == 1
        # Total CPU time is conserved.
        assert sum(iv.duration for iv in by_tid[1]) == pytest.approx(40.0)
        assert sum(iv.duration for iv in by_tid[2]) == pytest.approx(20.0)

    def test_intervals_never_overlap(self):
        cfg = config(
            n_transaction_types=8,
            updates_mean=5.0,
            db_size=25,
            n_transactions=60,
            arrival_rate=12.0,
        )
        log = EventLog()
        workload = generate_workload(cfg, seed=3)
        RTDBSimulator(cfg, workload, CCAPolicy(1.0), trace=log).run()
        intervals = sorted(log.cpu_intervals(), key=lambda iv: iv.start)
        for earlier, later in zip(intervals, intervals[1:]):
            assert earlier.end <= later.start + 1e-9


class TestTrailingInterval:
    """Regression: a dispatch with no later CPU-releasing event used to
    vanish from the reconstruction, understating CPU time for the
    transaction holding the CPU when the log ends."""

    def test_open_interval_closed_at_last_event(self):
        log = EventLog()
        log("dispatch", time=5.0, tx=1)
        log("arrival", time=20.0, tx=2)  # log ends mid-execution
        intervals = log.cpu_intervals()
        assert len(intervals) == 1
        assert intervals[0].tid == 1
        assert intervals[0].start == pytest.approx(5.0)
        assert intervals[0].end == pytest.approx(20.0)

    def test_zero_length_trailing_interval_is_dropped(self):
        log = EventLog()
        log("dispatch", time=5.0, tx=1)
        assert log.cpu_intervals() == []

    def test_total_cpu_time_matches_utilization(self):
        cfg = config(n_transactions=20, arrival_rate=10.0)
        log = EventLog()
        workload = generate_workload(cfg, seed=11)
        result = RTDBSimulator(cfg, workload, EDFPolicy(), trace=log).run()
        busy = sum(iv.duration for iv in log.cpu_intervals())
        assert busy == pytest.approx(
            result.cpu_utilization * result.makespan, rel=1e-6
        )


class TestKindCounts:
    def test_counts_sorted_by_frequency(self):
        log = EventLog()
        specs = [
            make_spec(1, [1], deadline=50.0, compute=10.0),
            make_spec(2, [9], arrival=1.0, deadline=100.0, compute=10.0),
        ]
        RTDBSimulator(config(), specs, EDFPolicy(), trace=log).run()
        counts = log.kind_counts()
        assert counts["arrival"] == 2
        assert list(counts.values()) == sorted(counts.values(), reverse=True)

    def test_table_renders_counts(self):
        log = EventLog()
        log("dispatch", time=0.0, tx=1)
        table = log.kind_table()
        assert "dispatch" in table and "1" in table
        assert EventLog().kind_table() == "(no events recorded)"


class TestJsonlParents:
    def test_missing_parent_directories_created(self, tmp_path):
        log = EventLog()
        log("dispatch", time=0.0, tx=1)
        path = log.to_jsonl(tmp_path / "a" / "b" / "events.jsonl")
        assert path.exists()
        assert json.loads(path.read_text())["tx"] == 1


class TestGantt:
    def test_renders_rows(self):
        log = EventLog()
        specs = [
            make_spec(1, [1], deadline=50.0, compute=10.0),
            make_spec(2, [9], arrival=1.0, deadline=100.0, compute=10.0),
        ]
        RTDBSimulator(config(), specs, EDFPolicy(), trace=log).run()
        chart = log.gantt(width=40)
        assert "tx    1" in chart
        assert "tx    2" in chart
        assert "#" in chart

    def test_empty_log(self):
        assert "no CPU activity" in EventLog().gantt()

    def test_max_rows_caps_output(self):
        cfg = config(
            n_transaction_types=8,
            updates_mean=4.0,
            db_size=40,
            n_transactions=30,
            arrival_rate=15.0,
        )
        log = EventLog()
        RTDBSimulator(cfg, generate_workload(cfg, seed=2), EDFPolicy(), trace=log).run()
        chart = log.gantt(width=40, max_rows=5)
        rows = [line for line in chart.splitlines() if line.startswith("tx")]
        assert len(rows) == 5
        assert "more transactions not shown" in chart
