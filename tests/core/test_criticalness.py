"""Multiple criticalness classes (paper future work) end to end."""

import pytest

from repro.config import SimulationConfig
from repro.core.policy import CriticalnessCCAPolicy
from repro.core.simulator import RTDBSimulator

from tests.conftest import make_spec


def config():
    return SimulationConfig(
        n_transaction_types=3,
        updates_mean=2.0,
        updates_std=1.0,
        db_size=30,
        abort_cost=4.0,
        n_transactions=3,
        arrival_rate=1.0,
    )


class TestCriticalnessScheduling:
    def test_critical_transaction_preempts_urgent_ordinary_one(self):
        ordinary = make_spec(
            1, [1, 2], arrival=0.0, deadline=50.0, compute=10.0, criticalness=0
        )
        critical = make_spec(
            2, [8, 9], arrival=5.0, deadline=5000.0, compute=10.0, criticalness=1
        )
        result = RTDBSimulator(
            config(), [ordinary, critical], CriticalnessCCAPolicy(1.0)
        ).run()
        commits = {r.tid: r.commit_time for r in result.records}
        # Despite its huge deadline, the critical transaction runs first
        # (5..25); the ordinary one (5 of 20 ms served) finishes at 40.
        assert commits[2] == pytest.approx(25.0)
        assert commits[1] == pytest.approx(40.0)

    def test_critical_transaction_wounds_ordinary_holder(self):
        holder = make_spec(
            1, [1, 2, 3], arrival=0.0, deadline=100.0, compute=10.0, criticalness=0
        )
        critical = make_spec(
            2, [1], arrival=5.0, deadline=9000.0, compute=10.0, criticalness=2
        )
        result = RTDBSimulator(
            config(), [holder, critical], CriticalnessCCAPolicy(1.0)
        ).run()
        restarts = {r.tid: r.restarts for r in result.records}
        assert restarts[1] == 1
        assert restarts[2] == 0

    def test_cca_ordering_within_a_class(self):
        a = make_spec(
            1, [1], arrival=0.0, deadline=500.0, compute=10.0, criticalness=1
        )
        b = make_spec(
            2, [2], arrival=0.0, deadline=100.0, compute=10.0, criticalness=1
        )
        result = RTDBSimulator(config(), [a, b], CriticalnessCCAPolicy(1.0)).run()
        commits = {r.tid: r.commit_time for r in result.records}
        assert commits[2] < commits[1]


class TestGeneratedCriticalnessWorkloads:
    def test_levels_assigned_uniformly(self):
        from repro.workload.generator import generate_workload

        cfg = config().replace(
            criticalness_levels=3, n_transactions=300, arrival_rate=5.0
        )
        workload = generate_workload(cfg, seed=1)
        levels = {spec.criticalness for spec in workload}
        assert levels == {0, 1, 2}

    def test_single_level_default(self):
        from repro.workload.generator import generate_workload

        cfg = config().replace(n_transactions=50, arrival_rate=5.0)
        workload = generate_workload(cfg, seed=1)
        assert {spec.criticalness for spec in workload} == {0}

    def test_critical_class_misses_less_under_load(self):
        """End to end: with CriticalnessCCA, the top class's miss rate is
        no worse than the bottom class's on an overloaded system."""
        from repro.core.simulator import RTDBSimulator
        from repro.workload.generator import generate_workload

        cfg = config().replace(
            criticalness_levels=2,
            n_transactions=250,
            arrival_rate=11.0,
            db_size=30,
            n_transaction_types=20,
            updates_mean=20.0,
            updates_std=10.0,
        )
        miss = {0: [0, 0], 1: [0, 0]}  # level -> [missed, total]
        for seed in (1, 2, 3):
            workload = generate_workload(cfg, seed)
            by_tid = {spec.tid: spec.criticalness for spec in workload}
            result = RTDBSimulator(
                cfg, workload, CriticalnessCCAPolicy(1.0)
            ).run()
            for record in result.records:
                level = by_tid[record.tid]
                miss[level][1] += 1
                if record.missed:
                    miss[level][0] += 1
        low_rate = miss[0][0] / miss[0][1]
        high_rate = miss[1][0] / miss[1][1]
        assert high_rate <= low_rate + 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            config().replace(criticalness_levels=0)
