"""Wait-for cycle detection (the LSF baseline's deadlock guard).

Under deadline-static priorities (EDF) wound-wait cannot deadlock, but
LSF's continuously drifting priorities can create wait-for cycles (the
paper cites this as an LSF defect).  The simulator breaks a cycle at
creation time by wounding instead of waiting.  These tests drive the
check directly (white-box) and through full LSF simulations.
"""

import pytest

from repro.core.policy import EDFPolicy, LSFPolicy
from repro.core.simulator import RTDBSimulator
from repro.rtdb.transaction import Transaction, TxState
from repro.workload.generator import generate_workload

from tests.conftest import make_spec


def make_simulator(mm_config, specs, policy=None):
    return RTDBSimulator(mm_config, specs, policy or EDFPolicy())


class TestWouldDeadlock:
    def test_two_cycle_detected(self, mm_config):
        specs = [make_spec(1, [1, 2]), make_spec(2, [2, 1])]
        sim = make_simulator(mm_config, specs)
        t1, t2 = Transaction(specs[0]), Transaction(specs[1])
        sim.live = {1: t1, 2: t2}
        # t1 holds item 1 and waits for item 2; item 2 is held by t2.
        sim.lockmgr.acquire(t1, 1)
        sim.lockmgr.acquire(t2, 2)
        t1.state = TxState.LOCK_BLOCKED
        t1.blocked_on = 2
        # t2 asking to wait on item 1 (held by t1) would close the cycle.
        assert sim._would_deadlock(t2, t1)

    def test_three_cycle_detected(self, mm_config):
        specs = [make_spec(1, [1]), make_spec(2, [2]), make_spec(3, [3])]
        sim = make_simulator(mm_config, specs)
        t1, t2, t3 = (Transaction(spec) for spec in specs)
        sim.live = {1: t1, 2: t2, 3: t3}
        sim.lockmgr.acquire(t1, 1)
        sim.lockmgr.acquire(t2, 2)
        sim.lockmgr.acquire(t3, 3)
        t1.state = TxState.LOCK_BLOCKED
        t1.blocked_on = 2      # t1 -> t2
        t2.state = TxState.LOCK_BLOCKED
        t2.blocked_on = 3      # t2 -> t3
        # t3 waiting on item 1 (held by t1) closes t3 -> t1 -> t2 -> t3.
        assert sim._would_deadlock(t3, t1)

    def test_chain_without_cycle_is_fine(self, mm_config):
        specs = [make_spec(1, [1]), make_spec(2, [2]), make_spec(3, [3])]
        sim = make_simulator(mm_config, specs)
        t1, t2, t3 = (Transaction(spec) for spec in specs)
        sim.live = {1: t1, 2: t2, 3: t3}
        sim.lockmgr.acquire(t1, 1)
        sim.lockmgr.acquire(t2, 2)
        t1.state = TxState.LOCK_BLOCKED
        t1.blocked_on = 2      # t1 -> t2 and t2 is runnable
        assert not sim._would_deadlock(t3, t1)

    def test_holder_not_blocked_is_fine(self, mm_config):
        specs = [make_spec(1, [1]), make_spec(2, [2])]
        sim = make_simulator(mm_config, specs)
        t1, t2 = Transaction(specs[0]), Transaction(specs[1])
        sim.live = {1: t1, 2: t2}
        sim.lockmgr.acquire(t1, 1)
        assert not sim._would_deadlock(t2, t1)


class TestLsfEndToEnd:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_lsf_always_terminates_under_contention(self, mm_config, seed):
        """Heavy contention + continuous priorities: every run must still
        drain (RTDBSimulator.run raises on liveness failure)."""
        config = mm_config.replace(db_size=12, arrival_rate=15.0, n_transactions=50)
        workload = generate_workload(config, seed)
        result = RTDBSimulator(config, workload, LSFPolicy()).run()
        assert result.n_committed == config.n_transactions
