"""EDF-WP: Wait Promote conflict resolution ([AG89], paper Section 3.2).

The paper's critique of EDF-WP: nonabortive resolution "causes too much
waiting" and "has deadlock problems".  These tests pin the mechanism —
blocking instead of wounding, priority inheritance, and wait-for cycles
actually forming and being broken.
"""

import pytest

from repro.config import SimulationConfig
from repro.core.policy import EDFPolicy, EDFWPPolicy
from repro.core.simulator import RTDBSimulator
from repro.workload.generator import generate_workload

from tests.conftest import make_spec


def config(**overrides) -> SimulationConfig:
    defaults = dict(
        n_transaction_types=5,
        updates_mean=3.0,
        updates_std=1.0,
        db_size=50,
        abort_cost=4.0,
        n_transactions=5,
        arrival_rate=1.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def run(workload, trace=None, **overrides):
    return RTDBSimulator(
        config(**overrides), workload, EDFWPPolicy(), trace=trace
    ).run()


class TestWaiting:
    def test_urgent_conflicting_arrival_waits(self):
        """Where EDF-HP wounds, EDF-WP blocks the urgent arrival behind
        the holder."""
        holder = make_spec(1, [1, 2, 3], arrival=0.0, deadline=1000.0, compute=10.0)
        urgent = make_spec(2, [1, 9], arrival=5.0, deadline=80.0, compute=10.0)
        events = []
        result = run(
            [holder, urgent], trace=lambda name, **kw: events.append(name)
        )
        assert result.total_restarts == 0
        assert "lock_wait" in events
        commits = {r.tid: r.commit_time for r in result.records}
        # Holder finishes undisturbed (promotion keeps it on the CPU),
        # then the urgent one runs.
        assert commits[1] == pytest.approx(30.0)
        assert commits[2] == pytest.approx(50.0)

    def test_priority_inheritance_pulls_holder_through(self):
        """Without promotion, an intermediate-priority transaction would
        run ahead of the low-priority holder while the urgent one waits
        (classic priority inversion).  With promotion the holder runs at
        its waiter's priority and releases the lock sooner."""
        holder = make_spec(1, [1, 2], arrival=0.0, deadline=2000.0, compute=10.0)
        urgent = make_spec(2, [1], arrival=5.0, deadline=60.0, compute=10.0)
        middle = make_spec(3, [8, 9], arrival=6.0, deadline=500.0, compute=10.0)
        result = run([holder, urgent, middle])
        commits = {r.tid: r.commit_time for r in result.records}
        # Holder (promoted to urgent's priority) finishes its remaining
        # work first, then the urgent waiter, then the middle one.
        assert commits[1] < commits[3]
        assert commits[2] < commits[3]
        assert result.total_restarts == 0

    def test_non_conflicting_work_preempts_normally(self):
        holder = make_spec(1, [1], arrival=0.0, deadline=1000.0, compute=20.0)
        urgent = make_spec(2, [9], arrival=5.0, deadline=60.0, compute=10.0)
        result = run([holder, urgent])
        commits = {r.tid: r.commit_time for r in result.records}
        # The urgent one preempts at its arrival (t=5) and runs 10 ms.
        assert commits[2] == pytest.approx(15.0)
        assert commits[1] == pytest.approx(30.0)


class TestDeadlock:
    def test_wait_for_cycle_forms_and_is_broken(self):
        """The paper's 'EDF-WP has deadlock problems', concretely: two
        transactions acquire items in opposite orders; the cycle is
        detected at creation and broken by a wound."""
        # Low priority: locks item 1 first, then wants item 2.
        first = make_spec(1, [1, 2], arrival=0.0, deadline=1000.0, compute=10.0)
        # High priority: preempts at t=5, locks item 2, then wants item 1.
        second = make_spec(2, [2, 1], arrival=5.0, deadline=100.0, compute=10.0)
        events = []
        result = run(
            [first, second], trace=lambda name, **kw: events.append(name)
        )
        assert "deadlock_break" in events
        assert result.total_restarts >= 1
        assert result.n_committed == 2

    def test_no_cycle_no_wound(self):
        """Same-order acquisition cannot deadlock: zero wounds."""
        first = make_spec(1, [1, 2], arrival=0.0, deadline=1000.0, compute=10.0)
        second = make_spec(2, [1, 2], arrival=5.0, deadline=100.0, compute=10.0)
        result = run([first, second])
        assert result.total_restarts == 0


class TestWorkloads:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_generated_workloads_drain(self, seed):
        cfg = config(
            n_transaction_types=10,
            updates_mean=6.0,
            db_size=25,
            n_transactions=100,
            arrival_rate=12.0,
        )
        workload = generate_workload(cfg, seed)
        result = RTDBSimulator(cfg, workload, EDFWPPolicy()).run()
        assert result.n_committed == cfg.n_transactions

    def test_wp_restarts_far_below_hp(self):
        """EDF-WP's whole point: (almost) no aborts — at the price of
        waiting, visible as higher lateness under contention."""
        cfg = config(
            n_transaction_types=10,
            updates_mean=6.0,
            db_size=25,
            n_transactions=150,
            arrival_rate=12.0,
        )
        wp_restarts = hp_restarts = 0.0
        for seed in (1, 2, 3):
            workload = generate_workload(cfg, seed)
            wp_restarts += RTDBSimulator(
                cfg, workload, EDFWPPolicy()
            ).run().restarts_per_transaction
            hp_restarts += RTDBSimulator(
                cfg, workload, EDFPolicy()
            ).run().restarts_per_transaction
        assert wp_restarts < hp_restarts
