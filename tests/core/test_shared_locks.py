"""Shared-lock extension end to end (paper future work #1).

The paper's conclusion: "The effect of shared locks in transactions ...
will affect the performance of RTDBS" and "shared locks will make the
dynamic cost an even more important factor".  These tests exercise
read/write workloads through the oracle and the full simulator.
"""

import pytest

from repro.analysis.relations import Conflict, Safety
from repro.config import SimulationConfig
from repro.core.oracle import SetOracle
from repro.core.policy import CCAPolicy, EDFPolicy
from repro.core.simulator import RTDBSimulator
from repro.rtdb.transaction import Operation, Transaction, TransactionSpec
from repro.workload.generator import generate_workload


def rw_spec(tid, accesses, arrival=0.0, deadline=1000.0, compute=10.0):
    """accesses: list of (item, is_write)."""
    return TransactionSpec(
        tid=tid,
        type_id=0,
        arrival_time=arrival,
        deadline=deadline,
        operations=tuple(
            Operation(item=item, compute_time=compute, is_write=write)
            for item, write in accesses
        ),
    )


def config(**overrides):
    defaults = dict(
        n_transaction_types=5,
        updates_mean=3.0,
        updates_std=1.0,
        db_size=50,
        abort_cost=4.0,
        n_transactions=5,
        arrival_rate=1.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestRwSets:
    def test_spec_sets(self):
        spec = rw_spec(1, [(1, True), (2, False), (3, False)])
        assert spec.write_set == frozenset({1})
        assert spec.read_set == frozenset({2, 3})
        assert spec.data_set == frozenset({1, 2, 3})

    def test_item_both_read_and_written_counts_as_write(self):
        spec = rw_spec(1, [(1, False), (1, True)])
        assert spec.write_set == frozenset({1})
        assert spec.read_set == frozenset()


class TestRwOracle:
    def test_read_read_never_conflicts(self):
        oracle = SetOracle()
        a = Transaction(rw_spec(1, [(1, False), (2, False)]))
        b = Transaction(rw_spec(2, [(1, False), (3, False)]))
        assert oracle.conflict(a, b) is Conflict.NONE

    def test_read_write_conflicts(self):
        oracle = SetOracle()
        reader = Transaction(rw_spec(1, [(1, False)]))
        writer = Transaction(rw_spec(2, [(1, True)]))
        assert oracle.conflict(reader, writer) is Conflict.CERTAIN
        assert oracle.conflict(writer, reader) is Conflict.CERTAIN

    def test_reader_safe_until_writer_threatens(self):
        oracle = SetOracle()
        reader = Transaction(rw_spec(1, [(1, False), (5, False)]))
        writer = Transaction(rw_spec(2, [(1, True)]))
        assert oracle.safety(reader, writer) is Safety.SAFE  # nothing read yet
        reader.record_access(1, write=False)
        assert oracle.safety(reader, writer) is Safety.UNSAFE

    def test_reader_safe_wrt_other_reader(self):
        oracle = SetOracle()
        a = Transaction(rw_spec(1, [(1, False)]))
        a.record_access(1, write=False)
        b = Transaction(rw_spec(2, [(1, False), (2, True)]))
        assert oracle.safety(a, b) is Safety.SAFE

    def test_writer_unsafe_wrt_reader(self):
        oracle = SetOracle()
        writer = Transaction(rw_spec(1, [(1, True)]))
        writer.record_access(1, write=True)
        reader = Transaction(rw_spec(2, [(1, False)]))
        assert oracle.safety(writer, reader) is Safety.UNSAFE


class TestRwSimulation:
    def test_readers_share_without_wounding(self):
        """Two overlapping pure readers never wound each other."""
        a = rw_spec(1, [(1, False), (2, False)], arrival=0.0, deadline=200.0)
        b = rw_spec(2, [(1, False), (3, False)], arrival=5.0, deadline=100.0)
        result = RTDBSimulator(config(), [a, b], EDFPolicy()).run()
        assert result.total_restarts == 0
        assert result.n_committed == 2

    def test_urgent_writer_wounds_reader(self):
        reader = rw_spec(1, [(1, False), (2, False)], arrival=0.0, deadline=1000.0)
        writer = rw_spec(2, [(1, True)], arrival=5.0, deadline=50.0)
        result = RTDBSimulator(config(), [reader, writer], EDFPolicy()).run()
        restarts = {r.tid: r.restarts for r in result.records}
        assert restarts[1] == 1
        assert restarts[2] == 0

    def test_urgent_reader_wounds_writer(self):
        writer = rw_spec(1, [(1, True), (2, True)], arrival=0.0, deadline=1000.0)
        reader = rw_spec(2, [(1, False)], arrival=5.0, deadline=50.0)
        result = RTDBSimulator(config(), [writer, reader], EDFPolicy()).run()
        restarts = {r.tid: r.restarts for r in result.records}
        assert restarts[1] == 1

    def test_writer_wounds_every_lower_priority_reader(self):
        """Lazy mode: a writer arriving at a read-shared item wounds all
        its readers in one operation."""
        r1 = rw_spec(1, [(1, False), (7, False)], arrival=0.0, deadline=1000.0)
        r2 = rw_spec(2, [(1, False), (8, False)], arrival=1.0, deadline=900.0)
        writer = rw_spec(3, [(1, True)], arrival=12.0, deadline=50.0)
        result = RTDBSimulator(
            config(), [r1, r2, writer], EDFPolicy(), eager_wounds=False
        ).run()
        restarts = {r.tid: r.restarts for r in result.records}
        assert restarts[3] == 0
        assert restarts[1] + restarts[2] >= 2

    def test_read_heavy_workload_restarts_less(self):
        """More shared access -> fewer conflicts -> fewer restarts, at
        matched load."""
        heavy = config(
            n_transaction_types=10,
            updates_mean=6.0,
            db_size=20,
            n_transactions=120,
            arrival_rate=12.0,
        )
        write_only = generate_workload(heavy.replace(read_fraction=0.0), seed=3)
        read_heavy = generate_workload(heavy.replace(read_fraction=0.8), seed=3)
        result_w = RTDBSimulator(heavy, write_only, CCAPolicy(1.0)).run()
        result_r = RTDBSimulator(heavy, read_heavy, CCAPolicy(1.0)).run()
        assert (
            result_r.restarts_per_transaction <= result_w.restarts_per_transaction
        )
        assert result_r.miss_percent <= result_w.miss_percent + 1.0

    def test_theorem1_still_holds_with_shared_locks(self):
        cfg = config(
            n_transaction_types=8,
            updates_mean=5.0,
            db_size=25,
            n_transactions=80,
            arrival_rate=10.0,
            read_fraction=0.5,
        )
        events = []
        workload = generate_workload(cfg, seed=5)
        result = RTDBSimulator(
            cfg,
            workload,
            CCAPolicy(1.0),
            trace=lambda name, **kw: events.append(name),
        ).run()
        assert result.n_committed == cfg.n_transactions
        assert "lock_wait" not in events
