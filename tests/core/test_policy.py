"""Priority policies."""

import math

import pytest

from repro.core.policy import (
    CCAPolicy,
    EDFWPPolicy,
    CriticalnessCCAPolicy,
    EDFPolicy,
    EDFWaitPolicy,
    FCFSPolicy,
    LSFPolicy,
    StaticEvaluationPolicy,
    make_policy,
)
from repro.rtdb.transaction import Transaction

from tests.conftest import make_spec


class FakeSystem:
    """Minimal SystemView with scripted penalties."""

    def __init__(self, now=0.0, penalties=None):
        self.now = now
        self._penalties = penalties or {}

    def penalty_of_conflict(self, tx):
        return self._penalties.get(tx.tid, 0.0)


def tx(tid, deadline=100.0, arrival=0.0, criticalness=0):
    return Transaction(
        make_spec(tid, [1, 2], deadline=deadline, arrival=arrival,
                  criticalness=criticalness)
    )


class TestEDF:
    def test_earlier_deadline_higher_priority(self):
        system = FakeSystem()
        policy = EDFPolicy()
        early = policy.priority(tx(1, deadline=50.0), system)
        late = policy.priority(tx(2, deadline=100.0), system)
        assert early > late

    def test_flags(self):
        policy = EDFPolicy()
        assert not policy.continuous
        assert not policy.uses_pre_analysis
        assert policy.name == "EDF-HP"


class TestFCFS:
    def test_earlier_arrival_higher_priority(self):
        system = FakeSystem()
        policy = FCFSPolicy()
        assert policy.priority(tx(1, arrival=0.0), system) > policy.priority(
            tx(2, arrival=10.0), system
        )


class TestLSF:
    def test_less_slack_higher_priority(self):
        system = FakeSystem(now=0.0)
        policy = LSFPolicy()
        tight = tx(1, deadline=20.0)   # slack = 20 - 0 - 8
        loose = tx(2, deadline=200.0)
        assert policy.priority(tight, system) > policy.priority(loose, system)

    def test_priority_changes_with_time(self):
        """Continuous evaluation: the same transaction's priority rises
        as its slack shrinks."""
        policy = LSFPolicy()
        transaction = tx(1, deadline=100.0)
        early = policy.priority(transaction, FakeSystem(now=0.0))
        late = policy.priority(transaction, FakeSystem(now=80.0))
        assert late > early
        assert policy.continuous


class TestCCA:
    def test_zero_weight_matches_edf_ordering(self):
        system = FakeSystem(penalties={1: 100.0, 2: 0.0})
        cca = CCAPolicy(0.0)
        edf = EDFPolicy()
        a, b = tx(1, deadline=50.0), tx(2, deadline=100.0)
        assert (cca.priority(a, system) > cca.priority(b, system)) == (
            edf.priority(a, system) > edf.priority(b, system)
        )

    def test_penalty_lowers_priority(self):
        system = FakeSystem(penalties={1: 60.0, 2: 0.0})
        policy = CCAPolicy(1.0)
        # Same deadline: the penalized transaction sorts lower.
        assert policy.priority(tx(2, deadline=100.0), system) > policy.priority(
            tx(1, deadline=100.0), system
        )

    def test_penalty_can_be_outweighed_by_deadline_urgency(self):
        """The paper's starvation argument: deadline urgency eventually
        compensates any penalty."""
        system = FakeSystem(penalties={1: 50.0})
        policy = CCAPolicy(1.0)
        urgent_but_penalized = tx(1, deadline=10.0)
        relaxed = tx(2, deadline=1000.0)
        assert policy.priority(urgent_but_penalized, system) > policy.priority(
            relaxed, system
        )

    def test_weight_scales_penalty_contribution(self):
        system = FakeSystem(penalties={1: 10.0})
        heavy = CCAPolicy(100.0).priority(tx(1, deadline=100.0), system)
        light = CCAPolicy(0.1).priority(tx(1, deadline=100.0), system)
        assert light > heavy

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            CCAPolicy(-1.0)

    def test_flags(self):
        policy = CCAPolicy(1.0)
        assert policy.continuous
        assert policy.uses_pre_analysis


class TestEDFWait:
    def test_any_penalty_sorts_below_all_conflict_free(self):
        system = FakeSystem(penalties={1: 0.001, 2: 0.0})
        policy = EDFWaitPolicy()
        tiny_penalty_urgent = tx(1, deadline=1.0)
        no_penalty_relaxed = tx(2, deadline=10_000.0)
        assert policy.priority(no_penalty_relaxed, system) > policy.priority(
            tiny_penalty_urgent, system
        )

    def test_edf_order_within_conflict_free_band(self):
        system = FakeSystem()
        policy = EDFWaitPolicy()
        assert policy.priority(tx(1, deadline=10.0), system) > policy.priority(
            tx(2, deadline=20.0), system
        )

    def test_is_infinite_weight_cca(self):
        assert math.isinf(EDFWaitPolicy().penalty_weight)


class TestCriticalness:
    def test_higher_class_dominates(self):
        system = FakeSystem(penalties={1: 1000.0})
        policy = CriticalnessCCAPolicy(1.0)
        critical = tx(1, deadline=10_000.0, criticalness=2)
        ordinary = tx(2, deadline=1.0, criticalness=0)
        assert policy.priority(critical, system) > policy.priority(ordinary, system)

    def test_cca_order_within_class(self):
        system = FakeSystem()
        policy = CriticalnessCCAPolicy(1.0)
        assert policy.priority(
            tx(1, deadline=10.0, criticalness=1), system
        ) > policy.priority(tx(2, deadline=20.0, criticalness=1), system)


class TestStaticEvaluation:
    def test_priority_frozen_after_first_evaluation(self):
        policy = StaticEvaluationPolicy(CCAPolicy(1.0))
        transaction = tx(1, deadline=100.0)
        first = policy.priority(transaction, FakeSystem(penalties={1: 0.0}))
        # The penalty has changed, but the frozen policy ignores it.
        second = policy.priority(transaction, FakeSystem(penalties={1: 500.0}))
        assert first == second

    def test_restart_re_evaluates(self):
        policy = StaticEvaluationPolicy(CCAPolicy(1.0))
        transaction = tx(1, deadline=100.0)
        before = policy.priority(transaction, FakeSystem(penalties={1: 500.0}))
        transaction.restart()
        after = policy.priority(transaction, FakeSystem(penalties={1: 0.0}))
        assert after > before

    def test_inherits_pre_analysis_flag(self):
        assert StaticEvaluationPolicy(CCAPolicy(1.0)).uses_pre_analysis
        assert not StaticEvaluationPolicy(EDFPolicy()).uses_pre_analysis
        assert not StaticEvaluationPolicy(CCAPolicy(1.0)).continuous

    def test_name(self):
        assert StaticEvaluationPolicy(CCAPolicy(1.0)).name == "CCA-static"


class TestMakePolicy:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("edf", EDFPolicy),
            ("edf-wp", EDFWPPolicy),
            ("EDF-HP", EDFPolicy),
            ("cca", CCAPolicy),
            ("edf-wait", EDFWaitPolicy),
            ("lsf", LSFPolicy),
            ("LSF-HP", LSFPolicy),
            ("fcfs", FCFSPolicy),
            ("criticalness-cca", CriticalnessCCAPolicy),
        ],
    )
    def test_names(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_cca_weight_passed_through(self):
        assert make_policy("cca", penalty_weight=5.0).penalty_weight == 5.0

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("round-robin")
