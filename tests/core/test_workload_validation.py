"""Workload validation shared by all three simulators."""

import pytest

from repro.core.policy import EDFPolicy
from repro.core.simulator import RTDBSimulator
from repro.mp.simulator import MultiprocessorSimulator
from repro.occ.simulator import OCCSimulator

from tests.conftest import make_spec


@pytest.mark.parametrize(
    "factory",
    [
        lambda cfg, wl: RTDBSimulator(cfg, wl, EDFPolicy()),
        lambda cfg, wl: MultiprocessorSimulator(cfg, wl, EDFPolicy(), n_cpus=2),
        lambda cfg, wl: OCCSimulator(cfg, wl, EDFPolicy()),
    ],
    ids=["single-cpu", "multiprocessor", "occ"],
)
class TestSharedValidation:
    def test_duplicate_tids_rejected(self, factory, mm_config):
        workload = [make_spec(1, [1]), make_spec(1, [2])]
        with pytest.raises(ValueError, match="duplicate"):
            factory(mm_config, workload)

    def test_out_of_database_item_rejected(self, factory, mm_config):
        workload = [make_spec(1, [mm_config.db_size + 1])]
        with pytest.raises(KeyError):
            factory(mm_config, workload)

    def test_empty_workload_rejected(self, factory, mm_config):
        with pytest.raises(ValueError):
            factory(mm_config, [])

    def test_run_once_only(self, factory, mm_config):
        simulator = factory(mm_config, [make_spec(1, [1])])
        simulator.run()
        with pytest.raises(RuntimeError):
            simulator.run()
