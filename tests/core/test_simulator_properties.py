"""Property-based simulator tests over random hand-rolled workloads.

Hypothesis generates adversarial workload shapes (bursty arrivals, heavy
item contention, tight deadlines) and we assert the structural
invariants that must hold for *every* schedule, under every policy:
termination with all commits, consistent metrics, restart accounting, and
CCA's no-lock-wait theorem.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig
from repro.core.policy import CCAPolicy, EDFPolicy, EDFWaitPolicy, LSFPolicy, FCFSPolicy
from repro.core.simulator import RTDBSimulator
from repro.rtdb.transaction import Operation, TransactionSpec

BASE_CONFIG = SimulationConfig(
    n_transaction_types=5,
    updates_mean=3.0,
    updates_std=1.0,
    db_size=8,  # tiny: heavy contention on purpose
    abort_cost=4.0,
    n_transactions=10,
    arrival_rate=10.0,
)

DISK_CONFIG = BASE_CONFIG.replace(
    disk_resident=True, disk_access_time=20.0, disk_access_prob=0.3
)


@st.composite
def workloads(draw, disk=False):
    """A list of 1..10 hand-rolled transaction specs on 8 items."""
    n = draw(st.integers(1, 10))
    specs = []
    for tid in range(n):
        arrival = draw(st.floats(0.0, 100.0))
        n_ops = draw(st.integers(1, 5))
        items = draw(
            st.lists(
                st.integers(0, 7), min_size=n_ops, max_size=n_ops, unique=True
            )
        )
        compute = draw(st.floats(0.5, 20.0))
        operations = tuple(
            Operation(
                item=item,
                compute_time=compute,
                io_time=20.0 if disk and draw(st.booleans()) else 0.0,
            )
            for item in items
        )
        resource = sum(op.compute_time + op.io_time for op in operations)
        slack = draw(st.floats(0.0, 8.0))
        specs.append(
            TransactionSpec(
                tid=tid,
                type_id=tid % 5,
                arrival_time=arrival,
                deadline=arrival + resource * (1.0 + slack),
                operations=operations,
            )
        )
    return specs


POLICIES = [
    lambda: EDFPolicy(),
    lambda: CCAPolicy(1.0),
    lambda: CCAPolicy(0.0),
    lambda: EDFWaitPolicy(),
    lambda: LSFPolicy(),
    lambda: FCFSPolicy(),
]

COMMON_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestMainMemoryProperties:
    @pytest.mark.parametrize("policy_factory", POLICIES)
    @given(workload=workloads())
    @COMMON_SETTINGS
    def test_every_schedule_terminates_and_commits_all(
        self, policy_factory, workload
    ):
        result = RTDBSimulator(BASE_CONFIG, workload, policy_factory()).run()
        assert result.n_committed == len(workload)
        assert 0.0 <= result.miss_percent <= 100.0
        assert result.mean_lateness >= 0.0
        assert 0.0 <= result.cpu_utilization <= 1.0
        assert sum(r.restarts for r in result.records) == result.total_restarts

    @given(workload=workloads())
    @COMMON_SETTINGS
    def test_cpu_busy_at_least_total_work(self, workload):
        result = RTDBSimulator(BASE_CONFIG, workload, EDFPolicy()).run()
        busy = result.cpu_utilization * result.makespan
        total_work = sum(spec.cpu_time for spec in workload)
        assert busy >= total_work - 1e-6

    @given(workload=workloads())
    @COMMON_SETTINGS
    def test_cca_never_lock_waits(self, workload):
        events = []
        RTDBSimulator(
            BASE_CONFIG,
            workload,
            CCAPolicy(1.0),
            trace=lambda name, **kw: events.append(name),
        ).run()
        assert "lock_wait" not in events

    @given(workload=workloads())
    @COMMON_SETTINGS
    def test_determinism(self, workload):
        a = RTDBSimulator(BASE_CONFIG, workload, CCAPolicy(1.0)).run()
        b = RTDBSimulator(BASE_CONFIG, workload, CCAPolicy(1.0)).run()
        assert a.records == b.records

    @given(workload=workloads())
    @COMMON_SETTINGS
    def test_commit_never_before_own_cpu_demand(self, workload):
        by_tid = {spec.tid: spec for spec in workload}
        result = RTDBSimulator(BASE_CONFIG, workload, CCAPolicy(1.0)).run()
        for record in result.records:
            spec = by_tid[record.tid]
            assert record.commit_time >= spec.arrival_time + spec.cpu_time - 1e-9


class TestDiskProperties:
    @pytest.mark.parametrize(
        "policy_factory", [lambda: EDFPolicy(), lambda: CCAPolicy(1.0)]
    )
    @given(workload=workloads(disk=True))
    @COMMON_SETTINGS
    def test_every_disk_schedule_terminates(self, policy_factory, workload):
        result = RTDBSimulator(DISK_CONFIG, workload, policy_factory()).run()
        assert result.n_committed == len(workload)
        assert 0.0 <= result.disk_utilization <= 1.0

    @given(workload=workloads(disk=True))
    @COMMON_SETTINGS
    def test_commit_never_before_own_resource_demand(self, workload):
        by_tid = {spec.tid: spec for spec in workload}
        result = RTDBSimulator(DISK_CONFIG, workload, EDFPolicy()).run()
        for record in result.records:
            spec = by_tid[record.tid]
            assert (
                record.commit_time >= spec.arrival_time + spec.resource_time - 1e-9
            )
