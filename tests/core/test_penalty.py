"""Penalty of conflict."""

import pytest

from repro.core.oracle import SetOracle
from repro.core.penalty import penalty_of_conflict
from repro.rtdb.recovery import FixedRecovery, ProportionalRecovery
from repro.rtdb.transaction import Transaction

from tests.conftest import make_spec


def running_tx(tid, items, accessed, service):
    tx = Transaction(make_spec(tid, items))
    for item in accessed:
        tx.record_access(item)
    tx.service_received = service
    return tx


@pytest.fixture
def oracle():
    return SetOracle()


class TestPenalty:
    def test_no_partially_executed_no_penalty(self, oracle):
        candidate = Transaction(make_spec(1, [1, 2]))
        assert penalty_of_conflict(candidate, [], oracle) == 0.0

    def test_unsafe_transaction_contributes_service_time(self, oracle):
        candidate = Transaction(make_spec(1, [1, 2]))
        victim = running_tx(2, [1, 9], accessed=[1], service=30.0)
        penalty = penalty_of_conflict(
            candidate, [victim], oracle, recovery=FixedRecovery(4.0)
        )
        assert penalty == pytest.approx(34.0)

    def test_safe_transaction_contributes_nothing(self, oracle):
        candidate = Transaction(make_spec(1, [1, 2]))
        bystander = running_tx(2, [8, 9], accessed=[8], service=30.0)
        assert penalty_of_conflict(candidate, [bystander], oracle) == 0.0

    def test_holder_of_unrelated_item_is_safe(self, oracle):
        """A transaction whose *future* accesses overlap the candidate but
        which has not yet touched shared items only blocks, so it adds no
        penalty (it will not be rolled back)."""
        candidate = Transaction(make_spec(1, [1, 2]))
        not_yet = running_tx(2, [9, 1], accessed=[9], service=30.0)
        assert penalty_of_conflict(candidate, [not_yet], oracle) == 0.0

    def test_multiple_victims_sum(self, oracle):
        candidate = Transaction(make_spec(1, [1, 2, 3]))
        v1 = running_tx(2, [1, 8], accessed=[1], service=10.0)
        v2 = running_tx(3, [2, 9], accessed=[2], service=20.0)
        penalty = penalty_of_conflict(
            candidate, [v1, v2], oracle, recovery=FixedRecovery(5.0)
        )
        assert penalty == pytest.approx(10.0 + 5.0 + 20.0 + 5.0)

    def test_candidate_excluded_from_own_penalty(self, oracle):
        candidate = running_tx(1, [1, 2], accessed=[1], service=50.0)
        assert penalty_of_conflict(candidate, [candidate], oracle) == 0.0

    def test_include_rollback_false_drops_recovery_term(self, oracle):
        """The pseudo-code variant: effective service time only."""
        candidate = Transaction(make_spec(1, [1]))
        victim = running_tx(2, [1], accessed=[1], service=30.0)
        penalty = penalty_of_conflict(
            candidate,
            [victim],
            oracle,
            recovery=FixedRecovery(4.0),
            include_rollback=False,
        )
        assert penalty == pytest.approx(30.0)

    def test_no_recovery_model_means_service_only(self, oracle):
        candidate = Transaction(make_spec(1, [1]))
        victim = running_tx(2, [1], accessed=[1], service=30.0)
        assert penalty_of_conflict(candidate, [victim], oracle) == pytest.approx(30.0)

    def test_proportional_recovery_in_penalty(self, oracle):
        candidate = Transaction(make_spec(1, [1]))
        victim = running_tx(2, [1], accessed=[1], service=100.0)
        penalty = penalty_of_conflict(
            candidate,
            [victim],
            oracle,
            recovery=ProportionalRecovery(factor=0.5),
        )
        assert penalty == pytest.approx(100.0 + 50.0)
