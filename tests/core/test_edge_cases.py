"""Edge cases at the seams of the simulator's state machine."""

import pytest

from repro.config import SimulationConfig
from repro.core.policy import CCAPolicy, EDFPolicy
from repro.core.simulator import RTDBSimulator

from tests.conftest import make_spec


def config(**overrides) -> SimulationConfig:
    defaults = dict(
        n_transaction_types=5,
        updates_mean=3.0,
        updates_std=1.0,
        db_size=50,
        abort_cost=4.0,
        n_transactions=5,
        arrival_rate=1.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def run(workload, policy=None, trace=None, **overrides):
    return RTDBSimulator(
        config(**overrides), workload, policy or EDFPolicy(), trace=trace
    ).run()


class TestExactTimeBoundaries:
    def test_preemption_at_exact_phase_completion(self):
        """An arrival landing exactly when the running transaction's
        compute finishes: the preemption path must account the operation
        as completed (no double counting, no lost work)."""
        first = make_spec(1, [1], arrival=0.0, deadline=100.0, compute=10.0)
        urgent = make_spec(2, [9], arrival=10.0, deadline=40.0, compute=10.0)
        result = run([first, urgent])
        commits = {r.tid: r.commit_time for r in result.records}
        assert result.total_restarts == 0
        assert commits[2] == pytest.approx(20.0)
        # The first transaction's work was done by t=10; it only needed
        # the commit bookkeeping when re-dispatched.
        assert commits[1] == pytest.approx(20.0)
        total_busy = result.cpu_utilization * result.makespan
        assert total_busy == pytest.approx(20.0, rel=1e-6)

    def test_simultaneous_arrivals_ordered_by_priority(self):
        a = make_spec(1, [1], arrival=5.0, deadline=500.0, compute=10.0)
        b = make_spec(2, [2], arrival=5.0, deadline=100.0, compute=10.0)
        result = run([a, b])
        commits = {r.tid: r.commit_time for r in result.records}
        assert commits[2] == pytest.approx(15.0)
        assert commits[1] == pytest.approx(25.0)


class TestFirmDeadlineEdges:
    def test_kill_during_rollback_phase(self):
        """A transaction can die while working off rollback debt; the
        debt dies with it."""
        holder = make_spec(1, [1, 2], arrival=0.0, deadline=1000.0, compute=10.0)
        # Urgent wounds at t=5, then pays 4 ms rollback; its firm
        # deadline lands inside that rollback window (t=7).
        urgent = make_spec(2, [1, 9], arrival=5.0, deadline=7.0, compute=10.0)
        bystander = make_spec(3, [8], arrival=6.0, deadline=200.0, compute=10.0)
        result = run([holder, urgent, bystander], firm_deadlines=True)
        assert result.n_dropped == 1
        assert result.n_committed == 2
        commits = {r.tid: r.commit_time for r in result.records}
        # After the kill at t=7 the bystander takes over immediately.
        assert commits[3] == pytest.approx(17.0)

    def test_kill_while_disk_serving_discards_completion(self):
        events = []
        doomed = make_spec(
            1, [1, 2], arrival=0.0, deadline=10.0, compute=10.0,
            io_items=frozenset({1}), io_time=25.0,
        )
        result = run(
            [doomed],
            disk_resident=True,
            firm_deadlines=True,
            trace=lambda name, **kw: events.append(name),
        )
        assert result.n_dropped == 1
        # The in-flight transfer completed after the kill and was
        # discarded via the epoch/state check.
        assert "io_stale" in events

    def test_kill_frees_locks_for_waiters(self):
        cfg_overrides = dict(disk_resident=True, firm_deadlines=True)
        # Holder locks item 1, goes to disk (25 ms), dies at t=12.
        holder = make_spec(
            1, [1], arrival=0.0, deadline=12.0, compute=10.0,
            io_items=frozenset({1}),
        )
        # Lower-priority waiter blocks on item 1 at t=1.
        waiter = make_spec(2, [1], arrival=1.0, deadline=300.0, compute=10.0)
        result = run([holder, waiter], **cfg_overrides)
        assert result.n_dropped == 1
        assert result.n_committed == 1
        record = result.records[0]
        assert record.tid == 2
        # Woken by the kill at t=12, re-requests, runs 10 ms.
        assert record.commit_time == pytest.approx(22.0)


class TestCcaDiskPrimaryWound:
    def test_top_priority_arrival_wounds_io_active_primary(self):
        """Under CCA a new globally-top-priority transaction becomes the
        primary immediately — even if the old primary is mid-transfer;
        the old primary is wounded and its completion discarded."""
        events = []
        old_primary = make_spec(
            1, [1, 2], arrival=0.0, deadline=400.0, compute=10.0,
            io_items=frozenset({1}), io_time=25.0,
        )
        usurper = make_spec(2, [1, 9], arrival=5.0, deadline=60.0, compute=10.0)
        result = run(
            [old_primary, usurper],
            CCAPolicy(1.0),
            disk_resident=True,
            trace=lambda name, **kw: events.append(name),
        )
        assert "abort" in events
        assert "io_stale" in events
        restarts = {r.tid: r.restarts for r in result.records}
        assert restarts[1] >= 1
        assert restarts[2] == 0
        assert result.n_committed == 2


class TestPlistAccounting:
    def test_mean_plist_reflects_concurrent_holders(self):
        """Two overlapping partially executed transactions -> the time
        average sits between 1 and 2 for most of the run."""
        a = make_spec(1, [1, 2, 3, 4], arrival=0.0, deadline=1000.0, compute=10.0)
        b = make_spec(2, [8, 9], arrival=5.0, deadline=60.0, compute=10.0)
        result = run([a, b])
        assert 0.5 < result.mean_plist_size <= 2.0
