"""Main-memory simulator: hand-crafted schedules with exact timings.

These tests pin down the scheduling semantics the figures rely on:
preemption, wound-wait with abort cost, restart-from-scratch, EDF-Wait's
deferral, and the cost-conscious decision that distinguishes CCA from
EDF-HP (the paper's motivating example in miniature).
"""

import pytest

from repro.config import SimulationConfig
from repro.core.policy import CCAPolicy, EDFPolicy, EDFWaitPolicy
from repro.core.simulator import RTDBSimulator

from tests.conftest import make_spec


def config(**overrides) -> SimulationConfig:
    defaults = dict(
        n_transaction_types=5,
        updates_mean=3.0,
        updates_std=1.0,
        db_size=50,
        abort_cost=4.0,
        n_transactions=5,
        arrival_rate=1.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def run(workload, policy, **config_overrides):
    return RTDBSimulator(config(**config_overrides), workload, policy).run()


class TestSingleTransaction:
    def test_runs_in_isolation(self):
        spec = make_spec(1, [1, 2, 3], arrival=0.0, deadline=100.0, compute=10.0)
        result = run([spec], EDFPolicy())
        assert result.n_committed == 1
        record = result.records[0]
        assert record.commit_time == pytest.approx(30.0)
        assert not record.missed
        assert result.total_restarts == 0
        assert result.cpu_utilization == pytest.approx(1.0)

    def test_deadline_miss_detected(self):
        spec = make_spec(1, [1, 2], arrival=0.0, deadline=15.0, compute=10.0)
        result = run([spec], EDFPolicy())
        assert result.n_missed == 1
        assert result.miss_percent == pytest.approx(100.0)
        assert result.records[0].tardiness == pytest.approx(5.0)

    def test_arrival_delay_respected(self):
        spec = make_spec(1, [1], arrival=42.0, deadline=100.0, compute=10.0)
        result = run([spec], EDFPolicy())
        assert result.records[0].commit_time == pytest.approx(52.0)


class TestNonConflictingPreemption:
    def test_earlier_deadline_preempts(self):
        long_tx = make_spec(1, [1, 2], arrival=0.0, deadline=500.0, compute=20.0)
        urgent = make_spec(2, [8, 9], arrival=5.0, deadline=60.0, compute=10.0)
        result = run([long_tx, urgent], EDFPolicy())
        commits = {r.tid: r.commit_time for r in result.records}
        # Urgent runs 5..25; the long one resumes (not restarts!) and
        # finishes its remaining 35 ms by t=60.
        assert commits[2] == pytest.approx(25.0)
        assert commits[1] == pytest.approx(60.0)
        assert result.total_restarts == 0

    def test_later_deadline_does_not_preempt(self):
        running = make_spec(1, [1], arrival=0.0, deadline=50.0, compute=10.0)
        relaxed = make_spec(2, [9], arrival=2.0, deadline=500.0, compute=10.0)
        result = run([running, relaxed], EDFPolicy())
        commits = {r.tid: r.commit_time for r in result.records}
        assert commits[1] == pytest.approx(10.0)
        assert commits[2] == pytest.approx(20.0)


class TestWoundWait:
    def test_conflicting_urgent_arrival_wounds_holder(self):
        """EDF-HP: the higher-priority requester aborts the lock holder
        and pays the rollback cost on the CPU."""
        holder = make_spec(1, [1, 2, 3], arrival=0.0, deadline=1000.0, compute=10.0)
        urgent = make_spec(2, [1, 9], arrival=5.0, deadline=50.0, compute=10.0)
        result = run([holder, urgent], EDFPolicy())
        commits = {r.tid: r.commit_time for r in result.records}
        restarts = {r.tid: r.restarts for r in result.records}
        # Urgent: preempts at 5, wounds (4 ms rollback), computes 2x10.
        assert commits[2] == pytest.approx(5 + 4 + 20)
        # Holder restarts from scratch: 3x10 after the urgent one.
        assert commits[1] == pytest.approx(29 + 30)
        assert restarts == {1: 1, 2: 0}
        assert result.total_restarts == 1

    def test_abort_cost_zero(self):
        holder = make_spec(1, [1, 2], arrival=0.0, deadline=1000.0, compute=10.0)
        urgent = make_spec(2, [1], arrival=5.0, deadline=50.0, compute=10.0)
        result = run([holder, urgent], EDFPolicy(), abort_cost=0.0)
        commits = {r.tid: r.commit_time for r in result.records}
        assert commits[2] == pytest.approx(15.0)

    def test_wounded_transaction_releases_all_locks(self):
        """After a wound, the victim's other locks are free for others."""
        holder = make_spec(1, [1, 2], arrival=0.0, deadline=1000.0, compute=10.0)
        urgent = make_spec(2, [1], arrival=12.0, deadline=60.0, compute=10.0)
        # At t=12 the holder has locks on 1 and 2 (second op underway).
        other = make_spec(3, [2], arrival=13.0, deadline=80.0, compute=10.0)
        result = run([holder, urgent, other], EDFPolicy())
        assert result.n_committed == 3
        commits = {r.tid: r.commit_time for r in result.records}
        # urgent: 12 + 4 (rollback) + 10 = 26; other: 26..36 takes item 2
        # freely because the wounded holder released it.
        assert commits[2] == pytest.approx(26.0)
        assert commits[3] == pytest.approx(36.0)


class TestEDFWait:
    def test_conflicting_urgent_arrival_waits_instead_of_wounding(self):
        holder = make_spec(1, [1, 2, 3], arrival=0.0, deadline=1000.0, compute=10.0)
        urgent = make_spec(2, [1, 9], arrival=5.0, deadline=80.0, compute=10.0)
        result = run([holder, urgent], EDFWaitPolicy())
        commits = {r.tid: r.commit_time for r in result.records}
        # Holder finishes undisturbed at 30; urgent runs 30..50.
        assert commits[1] == pytest.approx(30.0)
        assert commits[2] == pytest.approx(50.0)
        assert result.total_restarts == 0

    def test_non_conflicting_arrival_still_preempts(self):
        holder = make_spec(1, [1, 2, 3], arrival=0.0, deadline=1000.0, compute=10.0)
        urgent = make_spec(2, [8, 9], arrival=5.0, deadline=80.0, compute=10.0)
        result = run([holder, urgent], EDFWaitPolicy())
        commits = {r.tid: r.commit_time for r in result.records}
        # Urgent runs 5..25; the holder (5 of 30 ms served) resumes and
        # finishes its remaining 25 ms at t=50.
        assert commits[2] == pytest.approx(25.0)
        assert commits[1] == pytest.approx(50.0)


class TestCostConsciousDecision:
    """The paper's motivating scenario: EDF-HP throws away a nearly
    finished long transaction; CCA lets it finish first."""

    def scenario(self):
        long_tx = make_spec(
            1, [1, 2, 3, 4], arrival=0.0, deadline=2500.0, compute=500.0
        )
        urgent = make_spec(2, [1, 9], arrival=1800.0, deadline=2200.0, compute=10.0)
        return [long_tx, urgent]

    def test_edf_hp_wounds_and_misses(self):
        result = run(self.scenario(), EDFPolicy())
        commits = {r.tid: r.commit_time for r in result.records}
        assert result.total_restarts == 1
        assert commits[2] == pytest.approx(1800 + 4 + 20)
        assert commits[1] == pytest.approx(1824 + 2000)
        assert result.n_missed == 1  # the long transaction misses 2500

    def test_cca_finishes_the_long_transaction_first(self):
        result = run(self.scenario(), CCAPolicy(1.0))
        commits = {r.tid: r.commit_time for r in result.records}
        assert result.total_restarts == 0
        assert commits[1] == pytest.approx(2000.0)
        assert commits[2] == pytest.approx(2020.0)
        assert result.n_missed == 0

    def test_cca_zero_weight_behaves_like_edf_hp(self):
        result = run(self.scenario(), CCAPolicy(0.0))
        assert result.total_restarts == 1
        assert result.n_missed == 1


class TestDeterminism:
    def test_same_workload_same_policy_identical_results(self, mm_config, mm_workload):
        first = RTDBSimulator(mm_config, mm_workload, CCAPolicy(1.0)).run()
        second = RTDBSimulator(mm_config, mm_workload, CCAPolicy(1.0)).run()
        assert first.records == second.records
        assert first.total_restarts == second.total_restarts

    def test_simulator_instance_runs_once(self, mm_config, mm_workload):
        simulator = RTDBSimulator(mm_config, mm_workload, EDFPolicy())
        simulator.run()
        with pytest.raises(RuntimeError):
            simulator.run()


class TestAggregates:
    def test_all_transactions_commit(self, mm_config, mm_workload):
        result = RTDBSimulator(mm_config, mm_workload, EDFPolicy()).run()
        assert result.n_committed == mm_config.n_transactions
        assert {r.tid for r in result.records} == {
            s.tid for s in mm_workload
        }

    def test_cpu_busy_time_bounded_by_makespan(self, mm_config, mm_workload):
        result = RTDBSimulator(mm_config, mm_workload, CCAPolicy(1.0)).run()
        assert 0.0 < result.cpu_utilization <= 1.0

    def test_no_restarts_means_busy_equals_total_work(self, mm_config, mm_workload):
        result = RTDBSimulator(mm_config, mm_workload, EDFWaitPolicy()).run()
        if result.total_restarts == 0:
            total_work = sum(spec.cpu_time for spec in mm_workload)
            measured = result.cpu_utilization * result.makespan
            assert measured == pytest.approx(total_work, rel=1e-6)

    def test_empty_workload_rejected(self, mm_config):
        with pytest.raises(ValueError):
            RTDBSimulator(mm_config, [], EDFPolicy())


class TestWorkloadValidation:
    def test_item_outside_database_rejected(self, mm_config):
        bad = make_spec(1, [mm_config.db_size + 5])
        with pytest.raises(KeyError, match="outside the database"):
            RTDBSimulator(mm_config, [bad], EDFPolicy())
