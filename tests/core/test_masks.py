"""Property tests: the flat bitmask tables equal the reference oracles.

:mod:`repro.core.masks` re-expresses the reference set-algebra oracles
(:class:`SetOracle`, :class:`RelationTable`) as integer bitmasks and
dense arrays for the kernel engine's hot path.  These tests establish
the equivalences the kernel relies on, over randomized access sets:

* ``flat_safety``/``flat_conflict`` == ``SetOracle.safety``/``conflict``
  for every partial access state, including shared (read) locks;
* ``SpecMasks`` packs exactly the declared sets and its precomputed
  ``conflict_slots`` matrix equals pairwise ``SetOracle.conflict``;
* the uint64 word matrices are a faithful split of the Python-int masks
  and reproduce the same UNSAFE verdicts via numpy;
* ``StateTable`` reproduces ``RelationTable`` over every (program, node)
  state pair of randomized tree programs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.relations import Conflict, Safety
from repro.core.masks import (
    CONFLICT_FROM_CODE,
    SAFETY_FROM_CODE,
    SpecMasks,
    StateTable,
    flat_conflict,
    flat_safety,
    items_mask,
    mask_items,
    mask_to_words,
)
from repro.core.oracle import SetOracle, TreeOracle, replay_transaction
from repro.rtdb.transaction import Operation, TransactionSpec
from repro.workload.programs import TreeWorkloadGenerator
from repro.config import SimulationConfig

DB_SIZE = 130  # > 2 uint64 words, so the word split is exercised

COMMON_SETTINGS = settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

item_sets = st.frozensets(st.integers(0, DB_SIZE - 1), max_size=12)


def spec_from_sets(tid, reads, writes):
    """A spec whose declared data/write sets are exactly reads|writes."""
    operations = tuple(
        Operation(item=item, compute_time=1.0, is_write=item in writes)
        for item in sorted(reads | writes)
    ) or (Operation(item=0, compute_time=1.0),)
    return TransactionSpec(
        tid=tid,
        type_id=0,
        arrival_time=0.0,
        deadline=100.0,
        operations=operations,
    )


@st.composite
def access_states(draw):
    """A spec plus a consistent partial access state over it."""
    reads = draw(item_sets)
    writes = draw(item_sets)
    spec = spec_from_sets(0, reads - writes, writes)
    progress = draw(st.integers(0, len(spec.operations)))
    done = spec.operations[:progress]
    accessed = frozenset(op.item for op in done)
    accessed_writes = frozenset(op.item for op in done if op.is_write)
    return spec, accessed, accessed_writes


class TestMaskPrimitives:
    @given(items=item_sets)
    @COMMON_SETTINGS
    def test_items_mask_roundtrip(self, items):
        assert mask_items(items_mask(items)) == sorted(items)

    @given(items=item_sets)
    @COMMON_SETTINGS
    def test_word_split_preserves_every_bit(self, items):
        mask = items_mask(items)
        n_words = (DB_SIZE + 63) // 64
        words = mask_to_words(mask, n_words)
        rebuilt = 0
        for index, word in enumerate(words.tolist()):
            rebuilt |= word << (64 * index)
        assert rebuilt == mask

    @given(a=item_sets, b=item_sets)
    @COMMON_SETTINGS
    def test_word_intersection_equals_mask_intersection(self, a, b):
        n_words = (DB_SIZE + 63) // 64
        wa = mask_to_words(items_mask(a), n_words)
        wb = mask_to_words(items_mask(b), n_words)
        assert bool(np.bitwise_and(wa, wb).any()) == bool(a & b)


class TestFlatVsSetOracle:
    @given(subject=access_states(), runner=access_states())
    @COMMON_SETTINGS
    def test_safety_matches(self, subject, runner):
        subject_spec, accessed, accessed_writes = subject
        runner_spec, _, _ = runner
        runner_spec = spec_from_sets(
            1,
            {op.item for op in runner_spec.operations if not op.is_write},
            {op.item for op in runner_spec.operations if op.is_write},
        )
        subject_tx = replay_transaction(subject_spec, accessed, accessed_writes)
        runner_tx = replay_transaction(runner_spec)
        expected = SetOracle().safety(subject_tx, runner_tx)
        code = flat_safety(
            items_mask(accessed),
            items_mask(accessed_writes),
            items_mask(runner_tx.data_set),
            items_mask(runner_tx.write_set),
        )
        assert SAFETY_FROM_CODE[code] is expected

    @given(a=access_states(), b=access_states())
    @COMMON_SETTINGS
    def test_conflict_matches(self, a, b):
        a_spec, _, _ = a
        b_spec, _, _ = b
        b_spec = spec_from_sets(
            1,
            {op.item for op in b_spec.operations if not op.is_write},
            {op.item for op in b_spec.operations if op.is_write},
        )
        a_tx, b_tx = replay_transaction(a_spec), replay_transaction(b_spec)
        expected = SetOracle().conflict(a_tx, b_tx)
        code = flat_conflict(
            items_mask(a_tx.data_set),
            items_mask(a_tx.write_set),
            items_mask(b_tx.data_set),
            items_mask(b_tx.write_set),
        )
        assert CONFLICT_FROM_CODE[code] is expected


@st.composite
def workloads(draw):
    """2..8 specs with mixed read/write sets on DB_SIZE items."""
    n = draw(st.integers(2, 8))
    specs = []
    for tid in range(n):
        reads = draw(item_sets)
        writes = draw(item_sets)
        specs.append(spec_from_sets(tid, reads - writes, writes))
    return specs


class TestSpecMasks:
    @given(specs=workloads())
    @COMMON_SETTINGS
    def test_declared_sets_pack_exactly(self, specs):
        masks = SpecMasks.from_specs(specs, DB_SIZE)
        for slot, spec in enumerate(specs):
            tx = replay_transaction(spec)
            assert frozenset(mask_items(masks.data[slot])) == tx.data_set
            assert frozenset(mask_items(masks.write[slot])) == tx.write_set
            rebuilt = 0
            for index, word in enumerate(masks.data_words[slot].tolist()):
                rebuilt |= word << (64 * index)
            assert rebuilt == masks.data[slot]

    @given(specs=workloads())
    @COMMON_SETTINGS
    def test_conflict_slots_equal_pairwise_set_oracle(self, specs):
        masks = SpecMasks.from_specs(specs, DB_SIZE)
        oracle = SetOracle()
        txs = [replay_transaction(spec) for spec in specs]
        for i in range(len(specs)):
            for j in range(len(specs)):
                expected = (
                    i != j
                    and oracle.conflict(txs[i], txs[j]) is Conflict.CERTAIN
                )
                assert bool(masks.conflict_slots[i] >> j & 1) == expected

    @given(specs=workloads())
    @COMMON_SETTINGS
    def test_numpy_unsafe_scan_equals_scalar(self, specs):
        """The kernel's batched penalty membership test, in miniature."""
        masks = SpecMasks.from_specs(specs, DB_SIZE)
        oracle = SetOracle()
        # Fully-accessed subjects: accessed == declared sets.
        txs = [
            replay_transaction(
                spec,
                accessed={op.item for op in spec.operations},
                accessed_writes={
                    op.item for op in spec.operations if op.is_write
                },
            )
            for spec in specs
        ]
        acc_words = masks.data_words
        aw_words = masks.write_words
        for runner in range(len(specs)):
            unsafe = (
                np.bitwise_and(aw_words, masks.data_words[runner]).any(axis=1)
                | np.bitwise_and(acc_words, masks.write_words[runner]).any(axis=1)
            )
            for subject in range(len(specs)):
                expected = (
                    oracle.safety(txs[subject], txs[runner]) is Safety.UNSAFE
                )
                assert bool(unsafe[subject]) == expected


class TestStateTable:
    @given(
        seed=st.integers(0, 2**20),
        branches=st.integers(2, 3),
        types=st.integers(2, 5),
    )
    @settings(
        max_examples=50, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_equals_relation_table_everywhere(self, seed, branches, types):
        config = SimulationConfig(
            n_transaction_types=types,
            updates_mean=3.0,
            updates_std=1.0,
            db_size=12,
            n_transactions=2,
        )
        table, _ = TreeWorkloadGenerator(
            config, seed, n_branches=branches
        ).generate()
        flat = StateTable(table)
        for name_a, label_a in flat.states:
            i = flat.index_of(name_a, label_a)
            for name_b, label_b in flat.states:
                j = flat.index_of(name_b, label_b)
                assert SAFETY_FROM_CODE[flat.safety_code(i, j)] is table.safety(
                    name_a, label_a, name_b, label_b
                )
                assert CONFLICT_FROM_CODE[
                    flat.conflict_code(i, j)
                ] is table.conflict(name_a, label_a, name_b, label_b)

    @given(seed=st.integers(0, 2**20))
    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_tree_oracle_codes_match_live_transactions(self, seed):
        """StateTable answers == TreeOracle answers for live instances."""
        config = SimulationConfig(
            n_transaction_types=3,
            updates_mean=3.0,
            updates_std=1.0,
            db_size=12,
            n_transactions=6,
        )
        table, specs = TreeWorkloadGenerator(config, seed).generate()
        oracle = TreeOracle(table)
        flat = StateTable(table)
        txs = [replay_transaction(spec) for spec in specs]
        for a in txs:
            ia = flat.index_of(a.spec.program_name, a.node_label)
            for b in txs:
                ib = flat.index_of(b.spec.program_name, b.node_label)
                assert SAFETY_FROM_CODE[
                    flat.safety_code(ia, ib)
                ] is oracle.safety(a, b)
                assert CONFLICT_FROM_CODE[
                    flat.conflict_code(ia, ib)
                ] is oracle.conflict(a, b)
