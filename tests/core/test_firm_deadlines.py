"""Firm-deadline semantics ([Har91], config.firm_deadlines).

Under firm deadlines a transaction that reaches its deadline uncommitted
is killed and leaves the system; commits never count as misses (a late
transaction would have been killed first).
"""

import pytest

from repro.config import SimulationConfig
from repro.core.policy import CCAPolicy, EDFPolicy
from repro.core.simulator import RTDBSimulator
from repro.workload.generator import generate_workload

from tests.conftest import make_spec


def config(**overrides) -> SimulationConfig:
    defaults = dict(
        n_transaction_types=5,
        updates_mean=3.0,
        updates_std=1.0,
        db_size=50,
        abort_cost=4.0,
        firm_deadlines=True,
        n_transactions=5,
        arrival_rate=1.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def run(workload, policy=None, **overrides):
    return RTDBSimulator(config(**overrides), workload, policy or EDFPolicy()).run()


class TestDropSemantics:
    def test_hopeless_transaction_is_dropped(self):
        doomed = make_spec(1, [1, 2], arrival=0.0, deadline=15.0, compute=10.0)
        result = run([doomed])
        assert result.n_committed == 0
        assert result.n_dropped == 1
        assert result.drop_percent == pytest.approx(100.0)

    def test_feasible_transaction_commits(self):
        fine = make_spec(1, [1, 2], arrival=0.0, deadline=100.0, compute=10.0)
        result = run([fine])
        assert result.n_committed == 1
        assert result.n_dropped == 0
        assert not result.records[0].missed

    def test_commit_exactly_at_deadline_survives(self):
        exact = make_spec(1, [1, 2], arrival=0.0, deadline=20.0, compute=10.0)
        result = run([exact])
        assert result.n_committed == 1
        assert result.records[0].commit_time == pytest.approx(20.0)

    def test_drop_frees_cpu_and_locks(self):
        """A dropped running transaction releases everything; the next
        one proceeds immediately."""
        doomed = make_spec(1, [1, 2, 3], arrival=0.0, deadline=15.0, compute=10.0)
        follower = make_spec(2, [1], arrival=0.0, deadline=100.0, compute=10.0)
        result = run([doomed, follower])
        assert result.n_dropped == 1
        commits = {r.tid: r.commit_time for r in result.records}
        # Doomed runs 0..15 then dies; follower takes item 1 freely.
        assert commits[2] == pytest.approx(25.0)
        assert result.total_restarts == 0

    def test_no_commit_ever_misses_under_firm_semantics(self):
        cfg = config(
            n_transaction_types=10,
            updates_mean=6.0,
            db_size=25,
            n_transactions=120,
            arrival_rate=15.0,
        )
        workload = generate_workload(cfg, seed=3)
        result = RTDBSimulator(cfg, workload, EDFPolicy()).run()
        assert result.n_missed == 0
        assert result.n_total == cfg.n_transactions
        assert result.miss_or_drop_percent == pytest.approx(result.drop_percent)

    def test_dropped_waiter_leaves_lock_queue(self):
        cfg = config(disk_resident=True, disk_access_time=25.0)
        holder = make_spec(
            1, [1], arrival=0.0, deadline=200.0, compute=10.0,
            io_items=frozenset({1}),
        )
        # Lower priority than the IO-waiting holder: waits on item 1,
        # then dies at its deadline while still queued.
        waiter = make_spec(2, [1, 9], arrival=1.0, deadline=220.0, compute=10.0)
        result = RTDBSimulator(cfg, [holder, waiter], EDFPolicy()).run()
        assert result.n_committed + result.n_dropped == 2

    def test_soft_vs_firm_comparison(self):
        """Firm kills make room: survivors meet deadlines that soft-mode
        stragglers would have blocked."""
        cfg = config(
            firm_deadlines=False,
            n_transaction_types=10,
            updates_mean=6.0,
            db_size=25,
            n_transactions=120,
            arrival_rate=20.0,
        )
        workload = generate_workload(cfg, seed=4)
        soft = RTDBSimulator(cfg, workload, CCAPolicy(1.0)).run()
        firm = RTDBSimulator(
            cfg.replace(firm_deadlines=True), workload, CCAPolicy(1.0)
        ).run()
        assert firm.n_total == soft.n_committed == cfg.n_transactions
        # Firm mode commits fewer but never late; its failure rate is
        # comparable to soft-mode's miss rate on the same workload.
        assert firm.n_missed == 0
        assert firm.n_committed <= soft.n_committed
