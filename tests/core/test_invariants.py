"""Schedule-level invariants: the paper's Theorems 1 and 2 as runtime
checks over generated workloads.

* Theorem 1 (no deadlock / no lock wait in CCA): a CCA schedule never
  produces a ``lock_wait`` event, and every simulation terminates with
  all transactions committed (termination is asserted inside
  ``RTDBSimulator.run``).
* Lemma 1 / HP: under deadline-static priorities the wounded transaction
  always has a strictly later deadline than the wounding one.
* Theorem 2 (no circular abort): no pair of transactions wounds each
  other without either making progress in between.
* Conservation: every lock is released by the end; restart counters on
  records sum to the global counter; the CPU never runs two phases at
  once (single-CPU property).
"""

import pytest

from repro.core.policy import CCAPolicy, EDFPolicy, EDFWaitPolicy, LSFPolicy
from repro.core.simulator import RTDBSimulator
from repro.workload.generator import generate_workload


class TraceRecorder:
    def __init__(self):
        self.events = []

    def __call__(self, name, **fields):
        self.events.append((name, fields))

    def of(self, name):
        return [fields for event_name, fields in self.events if event_name == name]


def run_traced(config, seed, policy):
    workload = generate_workload(config, seed)
    recorder = TraceRecorder()
    result = RTDBSimulator(config, workload, policy, trace=recorder).run()
    return result, recorder


SEEDS = [1, 2, 3]


class TestTheorem1NoLockWaitUnderCCA:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_main_memory(self, mm_config, seed):
        _, recorder = run_traced(mm_config, seed, CCAPolicy(1.0))
        assert recorder.of("lock_wait") == []

    @pytest.mark.parametrize("seed", SEEDS)
    def test_disk_resident(self, disk_config, seed):
        _, recorder = run_traced(disk_config, seed, CCAPolicy(1.0))
        assert recorder.of("lock_wait") == []

    @pytest.mark.parametrize("seed", SEEDS)
    def test_edf_wait_never_aborts_flat_workloads(self, mm_config, seed):
        """EDF-Wait (w = inf) defers penalized transactions, so on flat
        main-memory workloads no wound ever becomes necessary."""
        result, recorder = run_traced(mm_config, seed, EDFWaitPolicy())
        assert result.total_restarts == 0
        assert recorder.of("abort") == []


class TestHighPriorityWounding:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_edf_victim_always_has_later_deadline(self, mm_config, seed):
        _, recorder = run_traced(mm_config, seed, EDFPolicy())
        for abort in recorder.of("abort"):
            victim, wounder = abort["tx"], abort["by"]
            assert victim.deadline > wounder.deadline

    @pytest.mark.parametrize("seed", SEEDS)
    def test_edf_victim_always_has_later_deadline_disk(self, disk_config, seed):
        _, recorder = run_traced(disk_config, seed, EDFPolicy())
        for abort in recorder.of("abort"):
            assert abort["tx"].deadline > abort["by"].deadline

    @pytest.mark.parametrize("seed", SEEDS)
    def test_running_transaction_is_never_the_victim(self, mm_config, seed):
        """Only the running transaction wounds; it cannot wound itself."""
        _, recorder = run_traced(mm_config, seed, CCAPolicy(1.0))
        for abort in recorder.of("abort"):
            assert abort["tx"].tid != abort["by"].tid


class TestTheorem2NoCircularAbort:
    @pytest.mark.parametrize("policy_factory", [
        lambda: CCAPolicy(1.0),
        lambda: EDFPolicy(),
    ])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_no_mutual_wounding_at_same_instant(self, mm_config, seed, policy_factory):
        """A circular abort would show as A wounding B and B wounding A
        at the same simulated time (neither able to progress)."""
        _, recorder = run_traced(mm_config, seed, policy_factory())
        by_time: dict[float, set[tuple[int, int]]] = {}
        for abort in recorder.of("abort"):
            pair = (abort["by"].tid, abort["tx"].tid)
            by_time.setdefault(abort["time"], set()).add(pair)
        for time, pairs in by_time.items():
            for wounder, victim in pairs:
                assert (victim, wounder) not in pairs, (
                    f"mutual wound between {wounder} and {victim} at t={time}"
                )


class TestConservation:
    @pytest.mark.parametrize(
        "policy_factory",
        [lambda: EDFPolicy(), lambda: CCAPolicy(1.0), lambda: LSFPolicy()],
    )
    @pytest.mark.parametrize("seed", SEEDS)
    def test_restart_counters_agree(self, mm_config, seed, policy_factory):
        workload = generate_workload(mm_config, seed)
        result = RTDBSimulator(mm_config, workload, policy_factory()).run()
        assert sum(r.restarts for r in result.records) == result.total_restarts

    @pytest.mark.parametrize("seed", SEEDS)
    def test_commit_after_arrival_plus_own_work(self, mm_config, seed):
        workload = generate_workload(mm_config, seed)
        by_tid = {spec.tid: spec for spec in workload}
        result = RTDBSimulator(mm_config, workload, CCAPolicy(1.0)).run()
        for record in result.records:
            spec = by_tid[record.tid]
            assert record.commit_time >= spec.arrival_time + spec.cpu_time - 1e-9

    @pytest.mark.parametrize("seed", SEEDS)
    def test_disk_commit_includes_io_legs(self, disk_config, seed):
        workload = generate_workload(disk_config, seed)
        by_tid = {spec.tid: spec for spec in workload}
        result = RTDBSimulator(disk_config, workload, CCAPolicy(1.0)).run()
        for record in result.records:
            spec = by_tid[record.tid]
            assert (
                record.commit_time
                >= spec.arrival_time + spec.resource_time - 1e-9
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_single_cpu_serial_dispatch(self, mm_config, seed):
        """Between two dispatches of different transactions there must be
        a preemption, block, commit or abort of the previous one — the
        CPU never runs two transactions at once."""
        _, recorder = run_traced(mm_config, seed, CCAPolicy(1.0))
        current = None
        for name, fields in recorder.events:
            if name == "dispatch":
                assert current is None or current != fields["tx"].tid
                current = fields["tx"].tid
            elif name in ("preempt", "commit", "io_start", "lock_wait"):
                if current is not None and fields["tx"].tid == current:
                    current = None


class TestStarvationFreedom:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_transaction_eventually_commits_under_load(self, seed, mm_config):
        """The paper's fifth property: deadlines dominate eventually, so
        even heavily penalized transactions commit."""
        config = mm_config.replace(arrival_rate=20.0, n_transactions=80)
        workload = generate_workload(config, seed)
        result = RTDBSimulator(config, workload, CCAPolicy(5.0)).run()
        assert result.n_committed == config.n_transactions
