"""Real-time disk scheduling (config.disk_scheduling = "priority")."""

import pytest

from repro.config import SimulationConfig
from repro.core.policy import CCAPolicy, EDFPolicy
from repro.core.simulator import RTDBSimulator
from repro.rtdb.disk import Disk
from repro.rtdb.transaction import Transaction
from repro.sim.engine import Simulator
from repro.workload.generator import generate_workload

from tests.conftest import make_spec


class TestPriorityDiskUnit:
    def test_priority_order_serves_most_urgent_first(self):
        sim = Simulator()
        completions = []
        disk = Disk(
            sim,
            lambda tx, epoch: completions.append(tx.tid),
            order_key=lambda tx: -tx.deadline,
        )
        first = Transaction(make_spec(1, [1], deadline=500.0))
        relaxed = Transaction(make_spec(2, [2], deadline=400.0))
        urgent = Transaction(make_spec(3, [3], deadline=100.0))
        disk.request(first, 25.0)     # starts immediately (disk idle)
        disk.request(relaxed, 25.0)
        disk.request(urgent, 25.0)
        sim.run()
        # The active access is never preempted, but the queue reorders.
        assert completions == [1, 3, 2]

    def test_fcfs_still_default(self):
        sim = Simulator()
        completions = []
        disk = Disk(sim, lambda tx, epoch: completions.append(tx.tid))
        for tid, deadline in ((1, 500.0), (2, 100.0)):
            disk.request(Transaction(make_spec(tid, [tid], deadline=deadline)), 25.0)
        sim.run()
        assert completions == [1, 2]


class TestConfigValidation:
    def test_unknown_discipline_rejected(self):
        with pytest.raises(ValueError, match="disk scheduling"):
            SimulationConfig(disk_scheduling="elevator")


class TestEndToEnd:
    def scenario_config(self, discipline):
        return SimulationConfig(
            n_transaction_types=10,
            updates_mean=6.0,
            updates_std=2.0,
            db_size=60,
            disk_resident=True,
            disk_access_time=25.0,
            disk_access_prob=0.4,
            abort_cost=5.0,
            disk_scheduling=discipline,
            n_transactions=120,
            arrival_rate=6.0,
        )

    @pytest.mark.parametrize("discipline", ["fcfs", "priority"])
    @pytest.mark.parametrize(
        "policy_factory", [lambda: EDFPolicy(), lambda: CCAPolicy(1.0)]
    )
    def test_full_run_drains(self, discipline, policy_factory):
        cfg = self.scenario_config(discipline)
        workload = generate_workload(cfg, seed=2)
        result = RTDBSimulator(cfg, workload, policy_factory()).run()
        assert result.n_committed == cfg.n_transactions

    def test_priority_disk_reduces_lateness_under_io_load(self):
        """With a congested disk, serving urgent transactions' IO first
        lowers mean lateness vs FCFS on the same workloads."""
        seeds = (1, 2, 3, 4, 5)
        lateness = {}
        for discipline in ("fcfs", "priority"):
            cfg = self.scenario_config(discipline)
            total = 0.0
            for seed in seeds:
                workload = generate_workload(cfg, seed)
                total += RTDBSimulator(cfg, workload, EDFPolicy()).run().mean_lateness
            lateness[discipline] = total / len(seeds)
        assert lateness["priority"] <= lateness["fcfs"] * 1.05
