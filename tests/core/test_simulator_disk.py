"""Disk-resident simulator: IO waits, IOwait-schedule, noncontributing
executions, and abort-during-IO semantics."""

import pytest

from repro.config import SimulationConfig
from repro.core.policy import CCAPolicy, EDFPolicy
from repro.core.simulator import RTDBSimulator

from tests.conftest import make_spec


def config(**overrides) -> SimulationConfig:
    defaults = dict(
        n_transaction_types=5,
        updates_mean=3.0,
        updates_std=1.0,
        db_size=50,
        abort_cost=5.0,
        disk_resident=True,
        disk_access_time=25.0,
        disk_access_prob=0.1,
        n_transactions=5,
        arrival_rate=1.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def run(workload, policy, trace=None, **overrides):
    return RTDBSimulator(
        config(**overrides), workload, policy, trace=trace
    ).run()


class TestBasicIO:
    def test_io_leg_before_compute(self):
        spec = make_spec(
            1, [1, 2], arrival=0.0, deadline=200.0, compute=10.0,
            io_items=frozenset({1}), io_time=25.0,
        )
        result = run([spec], EDFPolicy())
        # op1: io 25 then compute 10; op2: compute 10.
        assert result.records[0].commit_time == pytest.approx(45.0)
        assert result.disk_utilization > 0

    def test_multiple_io_legs_serialize_on_disk(self):
        a = make_spec(1, [1], arrival=0.0, deadline=500.0, compute=10.0,
                      io_items=frozenset({1}))
        b = make_spec(2, [9], arrival=0.0, deadline=600.0, compute=10.0,
                      io_items=frozenset({9}))
        result = run([a, b], EDFPolicy())
        commits = {r.tid: r.commit_time for r in result.records}
        # A's access 0..25; B queues behind it 25..50.
        assert commits[1] == pytest.approx(35.0)
        assert commits[2] == pytest.approx(60.0)


class TestIOWaitSchedule:
    def scenario(self):
        """Primary does IO; a conflicting and a compatible transaction
        are ready."""
        primary = make_spec(
            1, [1, 2], arrival=0.0, deadline=200.0, compute=10.0,
            io_items=frozenset({1}),
        )
        conflicting = make_spec(
            2, [2, 5, 6, 7], arrival=1.0, deadline=500.0, compute=10.0
        )
        compatible = make_spec(3, [8, 9], arrival=1.0, deadline=800.0, compute=10.0)
        return [primary, conflicting, compatible]

    def test_cca_runs_only_the_compatible_secondary(self):
        events = []
        result = run(
            self.scenario(),
            CCAPolicy(1.0),
            trace=lambda name, **kw: events.append((name, kw)),
        )
        assert result.total_restarts == 0
        commits = {r.tid: r.commit_time for r in result.records}
        # Compatible secondary runs 1..21 during the primary's IO wait;
        # CPU idles 21..25; primary computes 25..45; conflicting runs
        # 45..85.
        assert commits[3] == pytest.approx(21.0)
        assert commits[1] == pytest.approx(45.0)
        assert commits[2] == pytest.approx(85.0)
        # The conflicting transaction must never have been dispatched
        # while the primary was on the disk (no noncontributing run).
        dispatches_before_io_done = [
            kw["tx"].tid
            for name, kw in events
            if name == "dispatch" and kw["time"] < 25.0
        ]
        assert 2 not in dispatches_before_io_done

    def test_edf_hp_noncontributing_execution_gets_wounded(self):
        result = run(self.scenario(), EDFPolicy())
        assert result.total_restarts == 1
        commits = {r.tid: r.commit_time for r in result.records}
        # EDF-HP runs the conflicting transaction during the IO wait
        # (1..25); the primary returns, wounds it at item 2 (5 ms
        # rollback), computes 25..35 (op 1) and 40..50 (op 2).
        assert commits[1] == pytest.approx(50.0)
        # Victim restarts from scratch after the primary: 4 ops x 10.
        assert commits[2] == pytest.approx(90.0)
        assert commits[3] == pytest.approx(110.0)

    def test_cca_idles_when_nothing_compatible(self):
        primary = make_spec(
            1, [1, 2], arrival=0.0, deadline=200.0, compute=10.0,
            io_items=frozenset({1}),
        )
        conflicting = make_spec(2, [2, 5], arrival=1.0, deadline=500.0, compute=10.0)
        result = run([primary, conflicting], CCAPolicy(1.0))
        assert result.total_restarts == 0
        commits = {r.tid: r.commit_time for r in result.records}
        assert commits[1] == pytest.approx(45.0)
        assert commits[2] == pytest.approx(65.0)
        # CPU idle during the whole IO wait: utilization reflects it.
        busy = result.cpu_utilization * result.makespan
        assert busy == pytest.approx(40.0, rel=1e-6)


class TestAbortDuringIO:
    def test_victim_in_disk_queue_is_removed(self):
        """A queued (not yet served) transaction wounded by the primary
        leaves the disk queue immediately."""
        first_io = make_spec(
            1, [9], arrival=0.0, deadline=500.0, compute=10.0,
            io_items=frozenset({9}),
        )
        victim = make_spec(
            2, [1, 5], arrival=1.0, deadline=600.0, compute=10.0,
            io_items=frozenset({5}),
        )
        # At t=12 the victim has locked item 5 (t=11) and sits in the
        # disk queue behind tid 1's transfer (0..25).
        urgent = make_spec(3, [5, 6], arrival=12.0, deadline=100.0, compute=10.0)
        events = []
        result = run(
            [first_io, victim, urgent],
            EDFPolicy(),
            trace=lambda name, **kw: events.append((name, kw)),
        )
        assert result.n_committed == 3
        # The victim restarted at least once (wounded by the urgent one
        # while queued behind tid 1's disk access).
        restarts = {r.tid: r.restarts for r in result.records}
        assert restarts[2] >= 1

    def test_stale_io_completion_is_discarded(self):
        """Wounded during its disk access: the transfer completes but the
        result is ignored; the victim restarts cleanly."""
        victim = make_spec(
            1, [1, 5], arrival=0.0, deadline=600.0, compute=10.0,
            io_items=frozenset({1}),
        )
        urgent = make_spec(2, [1, 6], arrival=5.0, deadline=100.0, compute=10.0)
        events = []
        result = run(
            [victim, urgent],
            EDFPolicy(),
            trace=lambda name, **kw: events.append((name, kw)),
        )
        assert result.n_committed == 2
        stale = [kw for name, kw in events if name == "io_stale"]
        assert stale, "expected the victim's in-flight access to be discarded"
        restarts = {r.tid: r.restarts for r in result.records}
        assert restarts[1] >= 1


class TestDiskMetrics:
    def test_disk_utilization_counts_transfers(self, disk_config, disk_workload):
        result = RTDBSimulator(disk_config, disk_workload, CCAPolicy(1.0)).run()
        assert 0.0 <= result.disk_utilization <= 1.0
        expected_busy = result.disk_utilization * result.makespan
        io_time_lower_bound = sum(
            op.io_time for s in disk_workload for op in s.operations
        )
        # Restarted transactions repeat their IO, so measured busy time is
        # at least the workload's nominal IO demand.
        assert expected_busy >= io_time_lower_bound - 1e-6
