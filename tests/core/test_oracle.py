"""Conflict/safety oracles."""

import pytest

from repro.analysis.relations import Conflict, Safety
from repro.analysis.table import RelationTable
from repro.analysis.tree import TransactionTree
from repro.core.oracle import OptimisticConflictOracle, SetOracle, TreeOracle
from repro.rtdb.transaction import Transaction

from tests.analysis.test_tree import paper_program_a, paper_program_b
from tests.conftest import make_spec


def tx(tid, items, accessed=(), program_name="", node_label=None):
    spec = make_spec(tid, items)
    if program_name:
        spec = spec.__class__(
            tid=tid,
            type_id=0,
            arrival_time=spec.arrival_time,
            deadline=spec.deadline,
            operations=spec.operations,
            program_name=program_name,
        )
    transaction = Transaction(spec)
    for item in accessed:
        transaction.record_access(item)
    if node_label is not None:
        transaction.node_label = node_label
    return transaction


class TestSetOracle:
    def test_conflict_iff_write_sets_intersect(self):
        oracle = SetOracle()
        assert oracle.conflict(tx(1, [1, 2]), tx(2, [2, 3])) is Conflict.CERTAIN
        assert oracle.conflict(tx(1, [1, 2]), tx(2, [3, 4])) is Conflict.NONE

    def test_no_conditional_flavors_for_flat_programs(self):
        oracle = SetOracle()
        relation = oracle.conflict(tx(1, [1]), tx(2, [1]))
        assert relation is not Conflict.CONDITIONAL

    def test_unsafe_iff_accessed_overlaps_runner_writes(self):
        oracle = SetOracle()
        subject = tx(1, [1, 9], accessed=[1])
        runner = tx(2, [1, 2])
        assert oracle.safety(subject, runner) is Safety.UNSAFE

    def test_safe_when_accessed_disjoint_from_runner(self):
        oracle = SetOracle()
        subject = tx(1, [9, 1], accessed=[9])  # will access 1, hasn't yet
        runner = tx(2, [1, 2])
        assert oracle.safety(subject, runner) is Safety.SAFE

    def test_fresh_transaction_always_safe(self):
        oracle = SetOracle()
        assert oracle.safety(tx(1, [1]), tx(2, [1])) is Safety.SAFE


class TestTreeOracle:
    @pytest.fixture
    def oracle(self):
        table = RelationTable(
            [
                TransactionTree(paper_program_a()),
                TransactionTree(paper_program_b()),
            ]
        )
        return TreeOracle(table)

    def test_conflict_uses_current_nodes(self, oracle):
        a_root = tx(1, [0], program_name="A")  # node defaults to root "A"
        b = tx(2, [1, 2, 3], program_name="B")
        assert oracle.conflict(a_root, b) is Conflict.CONDITIONAL

        a_committed = tx(1, [0, 1, 2, 3], program_name="A", node_label="Aa")
        assert oracle.conflict(a_committed, b) is Conflict.CERTAIN

        a_other = tx(1, [0, 4, 5, 6], program_name="A", node_label="Ab")
        assert oracle.conflict(a_other, b) is Conflict.NONE

    def test_safety_uses_current_nodes(self, oracle):
        b = tx(2, [1, 2, 3], program_name="B")
        a_root = tx(1, [0], program_name="A")
        assert oracle.safety(b, a_root) is Safety.CONDITIONALLY_UNSAFE
        a_safe = tx(1, [0, 4, 5, 6], program_name="A", node_label="Ab")
        assert oracle.safety(b, a_safe) is Safety.SAFE


class TestOptimisticWrapper:
    @pytest.fixture
    def oracle(self):
        table = RelationTable(
            [
                TransactionTree(paper_program_a()),
                TransactionTree(paper_program_b()),
            ]
        )
        return OptimisticConflictOracle(TreeOracle(table))

    def test_conditional_downgraded_to_none(self, oracle):
        a_root = tx(1, [0], program_name="A")
        b = tx(2, [1, 2, 3], program_name="B")
        assert oracle.conflict(a_root, b) is Conflict.NONE

    def test_certain_conflict_preserved(self, oracle):
        a_committed = tx(1, [0, 1], program_name="A", node_label="Aa")
        b = tx(2, [1, 2, 3], program_name="B")
        assert oracle.conflict(a_committed, b) is Conflict.CERTAIN

    def test_safety_passthrough(self, oracle):
        b = tx(2, [1, 2, 3], program_name="B", accessed=[1])
        a_root = tx(1, [0], program_name="A")
        assert oracle.safety(b, a_root) is Safety.CONDITIONALLY_UNSAFE
