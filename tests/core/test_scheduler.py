"""The scheduling procedures as pure functions."""

from repro.core.oracle import SetOracle
from repro.core.scheduler import choose_primary, choose_secondary, is_compatible
from repro.rtdb.transaction import Transaction

from tests.conftest import make_spec


def tx(tid, items, deadline=100.0, accessed=()):
    transaction = Transaction(make_spec(tid, items, deadline=deadline))
    for item in accessed:
        transaction.record_access(item)
    return transaction


def edf_key(transaction):
    return (-transaction.deadline, -transaction.tid)


class TestChoosePrimary:
    def test_empty_returns_none(self):
        assert choose_primary([], edf_key) is None

    def test_highest_priority_wins(self):
        a = tx(1, [1], deadline=100.0)
        b = tx(2, [2], deadline=50.0)
        c = tx(3, [3], deadline=75.0)
        assert choose_primary([a, b, c], edf_key) is b

    def test_tie_broken_by_key(self):
        a = tx(1, [1], deadline=100.0)
        b = tx(2, [2], deadline=100.0)
        # Identical deadlines: the -tid component prefers the smaller tid.
        assert choose_primary([a, b], edf_key) is a

    def test_first_max_wins_on_exact_key_tie(self):
        a = tx(1, [1])
        assert choose_primary([a], edf_key) is a


class TestIsCompatible:
    def test_compatible_when_disjoint_from_all(self):
        oracle = SetOracle()
        candidate = tx(1, [1, 2])
        plist = [tx(2, [3, 4], accessed=[3]), tx(3, [5], accessed=[5])]
        assert is_compatible(candidate, plist, oracle)

    def test_incompatible_on_any_conflict(self):
        oracle = SetOracle()
        candidate = tx(1, [1, 2])
        plist = [tx(2, [9], accessed=[9]), tx(3, [2, 5], accessed=[5])]
        assert not is_compatible(candidate, plist, oracle)

    def test_self_is_ignored(self):
        """A partially executed transaction is compatible with itself —
        resuming it conflicts with nobody new."""
        oracle = SetOracle()
        candidate = tx(1, [1, 2], accessed=[1])
        assert is_compatible(candidate, [candidate], oracle)

    def test_empty_plist_always_compatible(self):
        assert is_compatible(tx(1, [1]), [], SetOracle())


class TestChooseSecondary:
    def test_highest_priority_compatible_wins(self):
        oracle = SetOracle()
        plist = [tx(10, [1], accessed=[1])]
        urgent_conflicting = tx(1, [1, 2], deadline=10.0)
        relaxed_compatible = tx(2, [5, 6], deadline=500.0)
        moderate_compatible = tx(3, [7, 8], deadline=100.0)
        chosen = choose_secondary(
            [urgent_conflicting, relaxed_compatible, moderate_compatible],
            plist,
            oracle,
            edf_key,
        )
        assert chosen is moderate_compatible

    def test_returns_none_when_nothing_compatible(self):
        """The paper's NIL: better to idle than run a noncontributing
        execution."""
        oracle = SetOracle()
        plist = [tx(10, [1, 5], accessed=[1])]
        ready = [tx(1, [1]), tx(2, [5])]
        assert choose_secondary(ready, plist, oracle, edf_key) is None

    def test_empty_ready_queue_returns_none(self):
        assert choose_secondary([], [], SetOracle(), edf_key) is None
