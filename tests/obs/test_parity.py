"""Serial/parallel/cached parity of sweep-level metrics.

The executor promises that a registry fed by a parallel run holds the
same counters as one fed by a serial run of the same cells — worker
snapshots merge in cell-key order, never completion order.  Wall-clock
series (``sweep.cell_wall_ms`` and the ``prof.stage_ms`` stage timing
histograms) are the documented exception.
"""

import pytest

from repro.config import SimulationConfig
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import SweepCell, execute_cells
from repro.obs.registry import MetricsRegistry

#: Series measuring real time: same structure (keys, counts) at any
#: ``jobs``, but the recorded values necessarily differ run to run.
WALL_CLOCK_SERIES = ("sweep.cell_wall_ms",)
WALL_CLOCK_PREFIXES = ("prof.",)


def _is_wall_clock(key: str) -> bool:
    return key in WALL_CLOCK_SERIES or key.startswith(WALL_CLOCK_PREFIXES)


def small_config(**overrides) -> SimulationConfig:
    defaults = dict(
        n_transaction_types=5,
        updates_mean=4.0,
        updates_std=2.0,
        db_size=40,
        abort_cost=4.0,
        n_transactions=30,
        arrival_rate=8.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def cells() -> list[SweepCell]:
    return [
        SweepCell(x=rate, policy=policy, seed=seed, config=small_config(arrival_rate=rate))
        for rate in (4.0, 8.0)
        for policy in ("EDF-HP", "CCA")
        for seed in (1, 2)
    ]


def deterministic_part(snapshot: dict) -> dict:
    """A snapshot minus its wall-clock series and capacity gauges."""
    return {
        "counters": dict(snapshot["counters"]),
        "histograms": {
            key: data
            for key, data in snapshot["histograms"].items()
            if not _is_wall_clock(key)
        },
    }


class TestCounterParity:
    def test_parallel_equals_serial(self):
        serial = MetricsRegistry()
        execute_cells(cells(), jobs=1, metrics=serial)
        parallel_registry = MetricsRegistry()
        execute_cells(cells(), jobs=2, metrics=parallel_registry)
        assert deterministic_part(serial.snapshot()) == deterministic_part(
            parallel_registry.snapshot()
        )

    def test_wall_histogram_has_one_sample_per_computed_cell(self):
        registry = MetricsRegistry()
        batch = cells()
        execute_cells(batch, jobs=2, metrics=registry)
        wall = registry.histogram("sweep.cell_wall_ms")
        assert wall.count == len(batch)

    def test_sweep_counters(self):
        registry = MetricsRegistry()
        batch = cells()
        execute_cells(batch, jobs=1, metrics=registry)
        assert registry.counter("sweep.cells").value == len(batch)
        assert registry.counter("sweep.cells_run").value == len(batch)
        assert registry.counter("sweep.cache_hits").value == 0

    def test_cached_cells_contribute_no_sim_counters(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        batch = cells()
        cold = MetricsRegistry()
        cold_results = execute_cells(batch, jobs=1, cache=cache, metrics=cold)
        warm = MetricsRegistry()
        warm_results = execute_cells(batch, jobs=1, cache=cache, metrics=warm)
        assert warm_results == cold_results
        assert warm.counter("sweep.cache_hits").value == len(batch)
        assert warm.counter("sweep.cells_run").value == 0
        # No cell simulated -> no simulator counters materialized.
        assert not any(
            key.startswith("sim.") for key in warm.snapshot()["counters"]
        )

    def test_results_identical_with_and_without_metrics(self):
        bare = execute_cells(cells(), jobs=1)
        observed = execute_cells(cells(), jobs=2, metrics=MetricsRegistry())
        assert bare == observed

    def test_per_policy_counters_isolated(self):
        registry = MetricsRegistry()
        execute_cells(cells(), jobs=1, metrics=registry)
        counters = registry.snapshot()["counters"]
        for policy in ("EDF-HP", "CCA"):
            assert f"sim.commits{{policy={policy}}}" in counters
            assert counters[f"sim.commits{{policy={policy}}}"] > 0
