"""Time-series sampler: daemon ticking, snapshots, export."""

import csv
import json

import pytest

from repro.config import SimulationConfig
from repro.core.policy import EDFPolicy
from repro.core.simulator import RTDBSimulator
from repro.obs.sampler import SAMPLE_FIELDS, TimeSeriesSampler
from repro.workload.generator import generate_workload


def config(**overrides) -> SimulationConfig:
    defaults = dict(
        n_transaction_types=5,
        updates_mean=4.0,
        updates_std=2.0,
        db_size=40,
        abort_cost=4.0,
        n_transactions=40,
        arrival_rate=8.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def run_sampled(interval: float = 50.0, seed: int = 3):
    cfg = config()
    sampler = TimeSeriesSampler(interval=interval)
    result = RTDBSimulator(
        cfg, generate_workload(cfg, seed), EDFPolicy(), sampler=sampler
    ).run()
    return sampler, result


class TestSampling:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(interval=0.0)

    def test_samples_land_on_the_interval_grid(self):
        sampler, result = run_sampled(interval=50.0)
        assert len(sampler) > 0
        for index, sample in enumerate(sampler):
            assert sample.time == pytest.approx(50.0 * (index + 1))

    def test_daemon_ticks_never_extend_the_run(self):
        cfg = config()
        workload = generate_workload(cfg, seed=3)
        bare = RTDBSimulator(cfg, list(workload), EDFPolicy()).run()
        sampler = TimeSeriesSampler(interval=50.0)
        sampled = RTDBSimulator(
            cfg, list(workload), EDFPolicy(), sampler=sampler
        ).run()
        assert sampled == bare
        assert all(sample.time <= bare.makespan for sample in sampler)

    def test_snapshot_fields_are_consistent(self):
        sampler, result = run_sampled()
        for sample in sampler:
            waiting = sample.ready + sample.lock_waiting + sample.io_waiting
            assert sample.live >= waiting
            assert sample.running in (0, 1)
            assert 0.0 <= sample.cpu_utilization <= 1.0
            assert sample.committed <= result.n_committed
        # Cumulative series never decrease.
        for earlier, later in zip(sampler.samples, sampler.samples[1:]):
            assert later.committed >= earlier.committed
            assert later.restarts >= earlier.restarts

    def test_attach_is_single_use(self):
        cfg = config(n_transactions=5)
        sampler = TimeSeriesSampler()
        RTDBSimulator(
            cfg, generate_workload(cfg, 1), EDFPolicy(), sampler=sampler
        ).run()
        with pytest.raises(RuntimeError):
            RTDBSimulator(
                cfg, generate_workload(cfg, 2), EDFPolicy(), sampler=sampler
            ).run()


class TestExport:
    def test_csv_roundtrip_creates_parents(self, tmp_path):
        sampler, _ = run_sampled()
        path = sampler.to_csv(tmp_path / "deep" / "nested" / "queues.csv")
        assert path.exists()
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == list(SAMPLE_FIELDS)
        assert len(rows) == len(sampler) + 1

    def test_jsonl_roundtrip(self, tmp_path):
        sampler, _ = run_sampled()
        path = sampler.to_jsonl(tmp_path / "sub" / "queues.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(sampler)
        first = json.loads(lines[0])
        assert set(first) == set(SAMPLE_FIELDS)
