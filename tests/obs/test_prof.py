"""Span profiler: recording, merging, Chrome-trace export, parity.

Three contracts under test:

* **Recording** — spans/timers/counters land with the documented
  shapes, worker state round-trips through ``export_state``/``extend``,
  and ``phase_totals``/``aggregate_summary`` summarize deterministically.
* **Export** — ``chrome_trace`` emits a document our own validator (and
  therefore Perfetto) accepts, and the validator rejects the malformed
  shapes it claims to.
* **Non-interference** — simulation results are bit-identical with a
  profiler (and kernel introspection) attached, on both engines, and
  ``engine="auto"`` keeps the kernel under profiling while falling back
  for samplers (the documented asymmetry).
"""

from __future__ import annotations

import json

import pytest

from repro.config import SimulationConfig
from repro.core.factory import make_simulator
from repro.core.kernel import KernelSimulator
from repro.core.policy import make_policy
from repro.core.simulator import RTDBSimulator
from repro.obs.prof import (
    SpanProfiler,
    host_provenance,
    observe_stage,
    validate_chrome_trace,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import TimeSeriesSampler
from repro.workload.generator import generate_workload

CONFIG = SimulationConfig(n_transactions=120, arrival_rate=8.0)


def run_cell(engine_cls, policy="CCA", **kwargs):
    workload = generate_workload(CONFIG, seed=7)
    pol = make_policy(policy, penalty_weight=CONFIG.penalty_weight)
    return engine_cls(CONFIG, workload, pol, **kwargs).run()


class TestRecording:
    def test_span_context_manager_records_interval(self):
        prof = SpanProfiler(pid=1)
        with prof.span("work", "stage", n=3):
            pass
        assert len(prof.spans) == 1
        pid, name, cat, start, dur, args = prof.spans[0]
        assert (pid, name, cat, args) == (1, "work", "stage", {"n": 3})
        assert dur >= 0.0

    def test_add_span_is_retroactive(self):
        prof = SpanProfiler(pid=1)
        t0 = prof.begin()
        prof.add_span("late", "cell", t0, t0 + 0.5)
        assert prof.spans[0][4] == pytest.approx(0.5)

    def test_timer_handles_are_get_or_create(self):
        prof = SpanProfiler()
        timer = prof.timer("kernel.ev_phase", "kernel")
        assert prof.timer("kernel.ev_phase", "kernel") is timer
        timer.add(0.25, calls=5)
        summary = prof.aggregate_summary()
        assert summary["kernel.ev_phase"]["calls"] == 5
        assert summary["kernel.ev_phase"]["total_ms"] == pytest.approx(250.0)

    def test_export_state_extend_round_trip(self):
        worker = SpanProfiler(pid=99)
        with worker.span("cell.simulate", "stage"):
            pass
        worker.counter("live_set", 4.0)
        worker.timer("kernel.ev_arrival").add(0.1, calls=10)
        parent = SpanProfiler(pid=1)
        parent.timer("kernel.ev_arrival").add(0.2, calls=20)
        parent.extend(worker.export_state())
        assert [span[0] for span in parent.spans] == [99]
        assert parent.samples[0][0] == 99
        merged = parent.aggregates["kernel.ev_arrival"]
        assert merged.calls == 30
        assert merged.total_s == pytest.approx(0.3)

    def test_phase_totals_sums_spans_and_aggregates(self):
        prof = SpanProfiler(pid=1)
        t0 = prof.begin()
        prof.add_span("engine.event_loop", "engine", t0, t0 + 0.020)
        prof.add_span("engine.event_loop", "engine", t0, t0 + 0.030)
        prof.timer("kernel.penalty_scan").add(0.005, calls=3)
        totals = prof.phase_totals()
        assert totals["engine.event_loop"]["total_ms"] == pytest.approx(50.0)
        assert totals["engine.event_loop"]["calls"] == 2
        assert totals["kernel.penalty_scan"]["calls"] == 3
        assert list(totals) == sorted(totals)


class TestChromeTrace:
    def profiler_with_data(self):
        prof = SpanProfiler(pid=1)
        with prof.span("sweep.execute_cells", "stage"):
            with prof.span("cell.simulate", "stage", seed=7):
                pass
        prof.counter("sim_time", 12.5)
        prof.timer("kernel.ev_phase").add(0.004, calls=8)
        return prof

    def test_document_passes_own_validator(self):
        doc = self.profiler_with_data().chrome_trace(extra={"experiment": "x"})
        assert validate_chrome_trace(doc) == []
        assert doc["experiment"] == "x"

    def test_document_is_json_serializable_and_rebased(self):
        doc = self.profiler_with_data().chrome_trace()
        json.dumps(doc)
        timestamps = [
            event["ts"] for event in doc["traceEvents"] if "ts" in event
        ]
        assert min(timestamps) == 0.0

    def test_tracks_named_per_process(self):
        prof = self.profiler_with_data()
        worker = SpanProfiler(pid=2)
        with worker.span("cell.simulate", "stage"):
            pass
        prof.extend(worker.export_state())
        doc = prof.chrome_trace()
        metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["pid"] for e in metadata} == {1, 2}

    def test_counter_events_emitted(self):
        doc = self.profiler_with_data().chrome_trace()
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters and counters[0]["args"] == {"value": 12.5}

    def test_aggregates_section_included(self):
        doc = self.profiler_with_data().chrome_trace()
        assert doc["aggregates"]["kernel.ev_phase"]["calls"] == 8

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        self.profiler_with_data().write_chrome_trace(path)
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    @pytest.mark.parametrize(
        "doc, fragment",
        [
            ({}, "traceEvents missing"),
            ({"traceEvents": "nope"}, "traceEvents missing"),
            ({"traceEvents": [42]}, "not an object"),
            (
                {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": 1}]},
                ".name missing",
            ),
            (
                {"traceEvents": [{"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 0}]},
                ".dur missing",
            ),
            (
                {"traceEvents": [{"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": -5, "dur": 1}]},
                ".ts missing, non-numeric, or negative",
            ),
            (
                {"traceEvents": [{"name": "a", "ph": "C", "pid": 1, "tid": 1, "ts": 0}]},
                ".args missing",
            ),
            (
                {"traceEvents": [{"name": "a", "ph": "Z", "pid": 1, "tid": 1, "ts": 0}]},
                "not a supported phase",
            ),
        ],
    )
    def test_validator_rejects_malformed(self, doc, fragment):
        problems = validate_chrome_trace(doc)
        assert problems and fragment in problems[0]


class TestHostProvenance:
    def test_shape(self):
        host = host_provenance()
        assert set(host) == {
            "python",
            "implementation",
            "numpy",
            "platform",
            "cpu_model",
            "cpu_count",
            "endianness",
        }
        assert isinstance(host["cpu_count"], int)
        json.dumps(host)


class TestObserveStage:
    def test_lands_in_stage_histogram(self):
        registry = MetricsRegistry()
        observe_stage(registry, "simulate", 12.0)
        observe_stage(registry, "simulate", 8.0)
        snapshot = registry.snapshot()
        series = snapshot["histograms"]["prof.stage_ms{stage=simulate}"]
        assert series["count"] == 2
        assert series["mean"] == pytest.approx(10.0)


class TestProfilingParity:
    """Profiling and introspection never perturb simulation results."""

    @pytest.mark.parametrize("engine_cls", [KernelSimulator, RTDBSimulator])
    @pytest.mark.parametrize("policy", ["EDF-HP", "CCA"])
    def test_results_identical_with_profiler(self, engine_cls, policy):
        bare = run_cell(engine_cls, policy)
        prof = SpanProfiler()
        profiled = run_cell(engine_cls, policy, profile=prof)
        assert profiled == bare
        assert prof.spans  # the engine actually recorded phases

    @pytest.mark.parametrize("engine_cls", [KernelSimulator, RTDBSimulator])
    def test_trace_stream_identical_with_profiler(self, engine_cls):
        from repro.tracing import EventLog

        bare_log, profiled_log = EventLog(), EventLog()
        run_cell(engine_cls, "CCA", trace=bare_log)
        run_cell(engine_cls, "CCA", trace=profiled_log, profile=SpanProfiler())
        assert profiled_log.events == bare_log.events

    @pytest.mark.parametrize("policy", ["EDF-HP", "CCA"])
    def test_sim_metrics_identical_with_profiler(self, policy):
        def sim_counters(**kwargs):
            registry = MetricsRegistry()
            run_cell(KernelSimulator, policy, metrics=registry, **kwargs)
            return {
                key: value
                for key, value in registry.snapshot()["counters"].items()
                if key.startswith("sim.")
            }

        assert sim_counters(profile=SpanProfiler()) == sim_counters()

    def test_results_identical_with_introspection(self):
        bare = run_cell(KernelSimulator, "CCA")
        registry = MetricsRegistry()
        introspected = run_cell(
            KernelSimulator, "CCA", metrics=registry, introspect=True
        )
        assert introspected == bare
        counters = registry.snapshot()["counters"]
        assert any(key.startswith("kernel.") for key in counters)

    def test_introspection_counters_deterministic(self):
        def kernel_counters():
            registry = MetricsRegistry()
            run_cell(KernelSimulator, "CCA", metrics=registry, introspect=True)
            return {
                key: value
                for key, value in registry.snapshot()["counters"].items()
                if key.startswith("kernel.")
            }

        first = kernel_counters()
        assert first == kernel_counters()
        assert first["kernel.events_fired{policy=CCA}"] > 0


class TestEngineAutoFallback:
    """The documented ``engine="auto"`` asymmetry: profilers keep the
    kernel selected; samplers force the reference engine."""

    def make(self, **kwargs):
        workload = generate_workload(CONFIG, seed=7)
        policy = make_policy("CCA", penalty_weight=CONFIG.penalty_weight)
        return make_simulator(CONFIG, workload, policy, **kwargs)

    def test_profiler_keeps_kernel(self):
        assert CONFIG.engine == "auto"
        simulator = self.make(profile=SpanProfiler(), introspect=True)
        assert isinstance(simulator, KernelSimulator)

    def test_sampler_falls_back_to_reference(self):
        simulator = self.make(sampler=TimeSeriesSampler(interval=1.0))
        assert isinstance(simulator, RTDBSimulator)

    def test_fallback_and_kernel_agree(self):
        with_sampler = self.make(sampler=TimeSeriesSampler(interval=1.0))
        with_profiler = self.make(profile=SpanProfiler())
        assert with_sampler.run() == with_profiler.run()
