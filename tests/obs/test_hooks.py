"""Simulator-to-registry bridges: slack bands, instrument bundles,
trace-hook counting, and fan-out."""

from repro.config import SimulationConfig
from repro.core.policy import CCAPolicy, EDFPolicy
from repro.core.simulator import RTDBSimulator
from repro.obs.hooks import (
    SLACK_BANDS,
    MetricsTraceHook,
    SimulatorMetrics,
    fanout,
    slack_band,
)
from repro.obs.registry import MetricsRegistry
from repro.tracing import EventLog
from repro.workload.generator import generate_workload


def config(**overrides) -> SimulationConfig:
    defaults = dict(
        n_transaction_types=5,
        updates_mean=4.0,
        updates_std=2.0,
        db_size=40,
        abort_cost=4.0,
        n_transactions=40,
        arrival_rate=8.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestSlackBand:
    def test_band_edges(self):
        # slack = (deadline - arrival) / resource_time - 1
        assert slack_band(0.0, 150.0, 100.0) == "tight"  # slack 0.5
        assert slack_band(0.0, 300.0, 100.0) == "medium"  # slack 2.0
        assert slack_band(0.0, 900.0, 100.0) == "loose"  # slack 8.0

    def test_boundaries_go_to_upper_band(self):
        assert slack_band(0.0, 200.0, 100.0) == "medium"  # slack exactly 1.0
        assert slack_band(0.0, 500.0, 100.0) == "loose"  # slack exactly 4.0

    def test_degenerate_resource_time_is_loose(self):
        assert slack_band(0.0, 100.0, 0.0) == SLACK_BANDS[-1]


class TestSimulatorMetrics:
    def test_instruments_carry_policy_label(self):
        registry = MetricsRegistry()
        SimulatorMetrics(registry, "CCA")
        assert "sim.dispatches{policy=CCA}" in registry.counters
        assert "sim.aborts{cause=lock,policy=CCA}" in registry.counters
        for band in SLACK_BANDS:
            key = f"sim.deadline_misses_by_slack{{band={band},policy=CCA}}"
            assert key in registry.counters

    def test_deadline_miss_increments_total_and_band(self):
        registry = MetricsRegistry()
        metrics = SimulatorMetrics(registry, "CCA")
        metrics.deadline_miss(0.0, 150.0, 100.0)  # tight
        metrics.deadline_miss(0.0, 900.0, 100.0)  # loose
        assert registry.counter("sim.deadline_misses", policy="CCA").value == 2
        assert (
            registry.counter(
                "sim.deadline_misses_by_slack", policy="CCA", band="tight"
            ).value
            == 1
        )
        assert (
            registry.counter(
                "sim.deadline_misses_by_slack", policy="CCA", band="loose"
            ).value
            == 1
        )

    def test_simulator_feeds_registry(self):
        cfg = config()
        registry = MetricsRegistry()
        workload = generate_workload(cfg, seed=3)
        result = RTDBSimulator(
            cfg, workload, EDFPolicy(), metrics=registry
        ).run()
        commits = registry.counter("sim.commits", policy="EDF-HP").value
        dispatches = registry.counter("sim.dispatches", policy="EDF-HP").value
        assert commits == result.n_committed
        assert dispatches >= commits  # every commit needed >= 1 dispatch
        aborts = (
            registry.counter("sim.aborts", policy="EDF-HP", cause="dispatch").value
            + registry.counter("sim.aborts", policy="EDF-HP", cause="lock").value
        )
        assert aborts == result.total_restarts
        # Restart histogram saw one observation per commit.
        restarts = registry.histogram(
            "sim.restarts_at_commit", policy="EDF-HP"
        )
        assert restarts.count == result.n_committed

    def test_miss_counters_match_result(self):
        cfg = config(arrival_rate=12.0)
        registry = MetricsRegistry()
        workload = generate_workload(cfg, seed=5)
        result = RTDBSimulator(
            cfg, workload, EDFPolicy(), metrics=registry
        ).run()
        misses = registry.counter("sim.deadline_misses", policy="EDF-HP").value
        assert misses == result.n_missed
        by_band = sum(
            registry.counter(
                "sim.deadline_misses_by_slack", policy="EDF-HP", band=band
            ).value
            for band in SLACK_BANDS
        )
        assert by_band == misses

    def test_cca_counts_penalty_evaluations(self):
        cfg = config()
        registry = MetricsRegistry()
        workload = generate_workload(cfg, seed=3)
        RTDBSimulator(
            cfg, workload, CCAPolicy(penalty_weight=1.0), metrics=registry
        ).run()
        assert registry.counter("sim.penalty_evals", policy="CCA").value > 0

    def test_metrics_do_not_change_results(self):
        cfg = config()
        workload = generate_workload(cfg, seed=9)
        bare = RTDBSimulator(cfg, list(workload), EDFPolicy()).run()
        observed = RTDBSimulator(
            cfg, list(workload), EDFPolicy(), metrics=MetricsRegistry()
        ).run()
        assert bare == observed


class TestMetricsTraceHook:
    def test_counts_every_trace_event(self):
        cfg = config(n_transactions=20)
        registry = MetricsRegistry()
        log = EventLog()
        hook = fanout(log, MetricsTraceHook(registry))
        RTDBSimulator(
            cfg, generate_workload(cfg, seed=2), EDFPolicy(), trace=hook
        ).run()
        for kind, count in log.kind_counts().items():
            assert registry.counter(f"trace.{kind}").value == count


class TestFanout:
    def test_forwards_to_all_hooks(self):
        seen_a, seen_b = [], []
        hook = fanout(
            lambda name, **fields: seen_a.append((name, fields)),
            None,
            lambda name, **fields: seen_b.append((name, fields)),
        )
        hook("dispatch", tx=7)
        assert seen_a == [("dispatch", {"tx": 7})]
        assert seen_b == seen_a
