"""Metrics registry: instruments, snapshots, deterministic merging."""

import json

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    series_name,
)


class TestSeriesName:
    def test_bare_name_without_labels(self):
        assert series_name("sim.commits", {}) == "sim.commits"

    def test_labels_sorted_into_braces(self):
        name = series_name("sim.aborts", {"policy": "CCA", "cause": "lock"})
        assert name == "sim.aborts{cause=lock,policy=CCA}"

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("m", policy="CCA", cause="lock")
        b = registry.counter("m", cause="lock", policy="CCA")
        assert a is b


class TestCounterAndGauge:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        counter = registry.counter("sim.commits", policy="EDF-HP")
        counter.inc()
        counter.inc(4)
        assert registry.counter("sim.commits", policy="EDF-HP").value == 5
        # A different label set is a different series.
        assert registry.counter("sim.commits", policy="CCA").value == 0

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("sweep.jobs").set(4)
        registry.gauge("sweep.jobs").set(2)
        assert registry.gauge("sweep.jobs").value == 2


class TestHistogram:
    def test_default_buckets(self):
        histogram = Histogram()
        assert histogram.bounds == DEFAULT_BUCKETS
        assert len(histogram.bucket_counts) == len(DEFAULT_BUCKETS) + 1

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))

    def test_observe_updates_aggregates(self):
        histogram = Histogram(bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == pytest.approx(555.5)
        assert histogram.minimum == 0.5
        assert histogram.maximum == 500.0
        assert histogram.mean == pytest.approx(555.5 / 4)
        # One value per bucket, including the overflow bucket.
        assert histogram.bucket_counts == [1, 1, 1, 1]

    def test_quantiles_clamped_to_observed_range(self):
        histogram = Histogram(bounds=(10.0, 20.0))
        for _ in range(100):
            histogram.observe(15.0)
        assert histogram.quantile(0.0) == 10.0 or histogram.quantile(0.0) >= 10.0
        assert 10.0 <= histogram.p50 <= 20.0
        assert histogram.p99 <= histogram.maximum
        assert histogram.quantile(1.0) == histogram.maximum

    def test_quantile_ordering(self):
        histogram = Histogram()
        for value in range(1, 1001):
            histogram.observe(float(value))
        assert histogram.p50 <= histogram.p95 <= histogram.p99
        # p50 of uniform 1..1000 should land broadly mid-range.
        assert 250.0 <= histogram.p50 <= 750.0

    def test_empty_histogram_is_quiet(self):
        histogram = Histogram()
        assert histogram.mean == 0.0
        assert histogram.p50 == 0.0

    def test_quantile_range_check(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)


class TestSnapshotAndMerge:
    def test_snapshot_is_json_ready_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(3.0)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must not raise
        assert list(snapshot["counters"]) == ["a", "b"]
        data = snapshot["histograms"]["h"]
        assert data["count"] == 1
        assert data["min"] == data["max"] == 3.0

    def test_empty_histogram_snapshot_has_null_extremes(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        data = registry.snapshot()["histograms"]["h"]
        assert data["min"] is None and data["max"] is None

    def test_merge_sums_counters_and_buckets(self):
        parts = [MetricsRegistry() for _ in range(3)]
        whole = MetricsRegistry()
        for index, part in enumerate(parts):
            for registry in (part, whole):
                registry.counter("c", policy="CCA").inc(index + 1)
                registry.histogram("h").observe(10.0 * (index + 1))
                registry.gauge("g").set(index)

        merged = MetricsRegistry()
        for part in parts:
            merged.merge_snapshot(part.snapshot())
        assert merged.snapshot() == whole.snapshot()

    def test_merge_order_independent_for_counters(self):
        a = MetricsRegistry()
        a.counter("c").inc(1)
        a.histogram("h").observe(5.0)
        b = MetricsRegistry()
        b.counter("c").inc(10)
        b.histogram("h").observe(50.0)

        forward = MetricsRegistry()
        forward.merge_snapshot(a.snapshot())
        forward.merge_snapshot(b.snapshot())
        backward = MetricsRegistry()
        backward.merge_snapshot(b.snapshot())
        backward.merge_snapshot(a.snapshot())
        assert forward.snapshot() == backward.snapshot()

    def test_merge_rejects_mismatched_bucket_bounds(self):
        source = MetricsRegistry()
        source.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        target = MetricsRegistry()
        target.histogram("h", buckets=(10.0, 20.0)).observe(15.0)
        with pytest.raises(ValueError, match="bounds mismatch"):
            target.merge_snapshot(source.snapshot())

    def test_merge_into_empty_registry_round_trips(self):
        source = MetricsRegistry()
        source.counter("sim.commits", policy="CCA").inc(7)
        source.histogram("sim.noncontributing_ms", policy="CCA").observe(12.0)
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        assert target.snapshot() == source.snapshot()


class TestSummary:
    def test_summary_lists_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(2.0)
        text = registry.summary()
        assert "c = 3" in text
        assert "g = 1" in text
        assert "h: n=1" in text

    def test_empty_registry_summary(self):
        assert MetricsRegistry().summary() == "(no metrics recorded)"
