"""Run manifests: hashing, schema validation, round trips."""

from pathlib import Path

import pytest

from repro.obs.manifest import (
    ACCEPTED_SCHEMA_VERSIONS,
    MANIFEST_KIND,
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    config_hash,
    load_manifest,
    manifest_filename,
    validate_manifest,
    write_manifest,
)
from repro.obs.prof import observe_stage
from repro.obs.registry import MetricsRegistry


def triples(seed_count: int = 2) -> list[tuple[dict, int, str]]:
    return [
        ({"arrival_rate": 4.0, "db_size": 100}, seed, policy)
        for seed in range(1, seed_count + 1)
        for policy in ("EDF-HP", "CCA")
    ]


def registry_with_data() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("sim.commits", policy="CCA").inc(10)
    registry.counter("sweep.cache_hits").inc(3)
    registry.histogram("sweep.cell_wall_ms").observe(12.5)
    return registry


class TestConfigHash:
    def test_stable_across_enumeration_order(self):
        cells = triples()
        assert config_hash(cells) == config_hash(list(reversed(cells)))

    def test_sensitive_to_config_seed_and_policy(self):
        base = triples()
        assert config_hash(base) != config_hash(base[:-1])
        changed = [({"arrival_rate": 5.0, "db_size": 100}, 1, "CCA")]
        assert config_hash(changed) != config_hash(base[:1])
        reseeded = [(base[0][0], 99, base[0][2])]
        assert config_hash(reseeded) != config_hash(base[:1])

    def test_empty_cells_hash_to_none(self):
        assert config_hash([]) is None


class TestBuildManifest:
    def test_document_shape(self):
        manifest = build_manifest(
            experiment="fig4a",
            scale="quick",
            cells=triples(),
            metrics_snapshot=registry_with_data().snapshot(),
            jobs=4,
            elapsed_s=1.5,
            cache_hits=3,
            cache_misses=1,
        )
        assert validate_manifest(manifest) == []
        assert manifest["schema"] == MANIFEST_SCHEMA_VERSION
        assert manifest["kind"] == MANIFEST_KIND
        assert manifest["n_cells"] == 4
        assert manifest["seeds"] == [1, 2]
        assert manifest["policies"] == ["CCA", "EDF-HP"]
        assert manifest["cache"] == {"hits": 3, "misses": 1}
        assert manifest["cell_wall_ms"]["count"] == 1

    def test_table_manifest_has_no_hash(self):
        manifest = build_manifest(
            experiment="table1",
            scale="quick",
            cells=[],
            metrics_snapshot=MetricsRegistry().snapshot(),
        )
        assert validate_manifest(manifest) == []
        assert manifest["config_hash"] is None
        assert manifest["cell_wall_ms"] is None


class TestValidation:
    def test_flags_missing_and_mistyped_fields(self):
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        broken = dict(manifest)
        del broken["config_hash"]
        broken["jobs"] = "four"
        problems = validate_manifest(broken)
        assert any("config_hash" in problem for problem in problems)
        assert any("jobs" in problem for problem in problems)

    def test_flags_wrong_kind_and_schema(self):
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        manifest["kind"] = "something-else"
        assert validate_manifest(manifest)
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        manifest["schema"] = MANIFEST_SCHEMA_VERSION + 1
        assert validate_manifest(manifest)

    def test_flags_broken_metrics_block(self):
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        manifest["metrics"] = {"counters": {}}
        problems = validate_manifest(manifest)
        assert any("gauges" in problem for problem in problems)


class TestFailuresSection:
    FAILURE = {
        "cell": {"x": 4.0, "policy": "CCA", "seed": 2},
        "attempts": 2,
        "exception": "InjectedCrash",
        "message": "injected crash",
        "recovered": True,
    }

    def test_failures_embedded_and_valid(self):
        manifest = build_manifest(
            "fig4a",
            "quick",
            triples(),
            registry_with_data().snapshot(),
            failures=[self.FAILURE],
        )
        assert validate_manifest(manifest) == []
        assert manifest["failures"] == [self.FAILURE]

    def test_failures_default_to_empty_list(self):
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        assert manifest["failures"] == []
        assert validate_manifest(manifest) == []

    def test_missing_failures_field_flagged(self):
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        del manifest["failures"]
        assert any(
            "failures" in problem for problem in validate_manifest(manifest)
        )

    def test_malformed_failure_entries_flagged(self):
        manifest = build_manifest(
            "fig4a",
            "quick",
            triples(),
            registry_with_data().snapshot(),
            failures=[{"cell": {"x": 1.0}, "attempts": 1}],  # no exception
        )
        problems = validate_manifest(manifest)
        assert any("exception" in problem for problem in problems)
        manifest["failures"] = ["not-a-dict"]
        assert any(
            "not an object" in problem
            for problem in validate_manifest(manifest)
        )


class TestCertificationSection:
    def test_schema_version_is_pinned_at_six(self):
        # v6 introduced the required analysis section; bumping the
        # constant without updating this pin is a schema change that
        # needs the validation rules revisited.
        assert MANIFEST_SCHEMA_VERSION == 6

    def test_defaults_to_disabled(self):
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        assert manifest["certification"] == {"enabled": False, "cells": []}
        assert validate_manifest(manifest) == []

    def test_embedded_section_validates(self):
        section = {
            "enabled": True,
            "cells": [
                {
                    "cell": {"x": 4.0, "seed": 1, "policy": "CCA"},
                    "certified": True,
                    "violations": [],
                    "rules_skipped": {"CERT004": "not static"},
                }
            ],
        }
        manifest = build_manifest(
            "fig4a",
            "quick",
            triples(),
            registry_with_data().snapshot(),
            certification=section,
        )
        assert validate_manifest(manifest) == []
        assert manifest["certification"] == section

    def test_missing_section_flagged(self):
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        del manifest["certification"]
        assert any(
            "certification" in problem
            for problem in validate_manifest(manifest)
        )

    def test_malformed_section_flagged(self):
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        manifest["certification"] = {"enabled": "yes", "cells": {}}
        problems = validate_manifest(manifest)
        assert any("certification.enabled" in p for p in problems)
        assert any("certification.cells" in p for p in problems)

    def test_malformed_cell_entries_flagged(self):
        manifest = build_manifest(
            "fig4a",
            "quick",
            triples(),
            registry_with_data().snapshot(),
            certification={
                "enabled": True,
                "cells": [
                    "not-a-dict",
                    {"cell": {"x": 1.0}},  # no certified / violations
                ],
            },
        )
        problems = validate_manifest(manifest)
        assert any("cells[0] is not an object" in p for p in problems)
        assert any("cells[1] missing 'certified'" in p for p in problems)


class TestTimingSection:
    @staticmethod
    def registry_with_stages() -> MetricsRegistry:
        registry = registry_with_data()
        observe_stage(registry, "workload_gen", 1.5)
        observe_stage(registry, "simulate", 20.0)
        observe_stage(registry, "simulate", 30.0)
        return registry

    def test_built_from_stage_histograms(self):
        manifest = build_manifest(
            "fig4a", "quick", triples(), self.registry_with_stages().snapshot()
        )
        timing = manifest["timing"]
        assert timing["enabled"] is True
        assert set(timing["stages"]) == {"workload_gen", "simulate"}
        assert timing["stages"]["simulate"]["count"] == 2
        assert timing["stages"]["simulate"]["total_ms"] == pytest.approx(50.0)
        assert timing["stages"]["simulate"]["mean_ms"] == pytest.approx(25.0)
        assert validate_manifest(manifest) == []

    def test_disabled_when_no_stage_timing(self):
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        assert manifest["timing"] == {"enabled": False, "stages": {}}
        assert validate_manifest(manifest) == []

    def test_missing_timing_flagged_for_v4(self):
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        del manifest["timing"]
        assert any("timing" in p for p in validate_manifest(manifest))

    def test_malformed_timing_flagged(self):
        manifest = build_manifest(
            "fig4a", "quick", triples(), self.registry_with_stages().snapshot()
        )
        manifest["timing"] = {"enabled": "yes", "stages": []}
        problems = validate_manifest(manifest)
        assert any("timing.enabled" in p for p in problems)
        assert any("timing.stages" in p for p in problems)
        manifest["timing"] = {
            "enabled": True,
            "stages": {"simulate": {"count": 2}},  # no total/mean/p95
        }
        problems = validate_manifest(manifest)
        assert any("total_ms" in p for p in problems)
        manifest["timing"] = {
            "enabled": False,
            "stages": {
                "simulate": {
                    "count": 1, "total_ms": 1.0, "mean_ms": 1.0, "p95_ms": 1.0
                }
            },
        }
        assert any(
            "enabled is false" in p for p in validate_manifest(manifest)
        )

    def test_v3_manifest_without_timing_still_validates(self):
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        del manifest["timing"]
        manifest["schema"] = 3
        assert validate_manifest(manifest) == []

    def test_accepted_versions_pinned(self):
        assert ACCEPTED_SCHEMA_VERSIONS == (3, 4, 5, 6)


class TestEngineFallbacksSection:
    FALLBACK = {
        "cell": {"x": 4.0, "policy": "CCA", "seed": 2},
        "exception": "InjectedKernelFault",
        "message": "injected kernel fault",
        "engine": "reference",
        "sanitized": True,
        "attempt": 1,
        "bundle": "results/quarantine/CCA-s2-abcdef123456",
        "reproduced": True,
    }

    def test_defaults_to_empty_list(self):
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        assert manifest["engine_fallbacks"] == []
        assert validate_manifest(manifest) == []

    def test_embedded_records_validate(self):
        manifest = build_manifest(
            "fig4a",
            "quick",
            triples(),
            registry_with_data().snapshot(),
            engine_fallbacks=[self.FALLBACK],
        )
        assert validate_manifest(manifest) == []
        assert manifest["engine_fallbacks"] == [self.FALLBACK]

    def test_missing_section_flagged_for_v5(self):
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        del manifest["engine_fallbacks"]
        assert any(
            "engine_fallbacks" in problem
            for problem in validate_manifest(manifest)
        )

    def test_malformed_records_flagged(self):
        manifest = build_manifest(
            "fig4a",
            "quick",
            triples(),
            registry_with_data().snapshot(),
            engine_fallbacks=[{"cell": {"x": 1.0}}],  # no exception/engine
        )
        problems = validate_manifest(manifest)
        assert any("exception" in p for p in problems)
        assert any("engine" in p for p in problems)
        manifest["engine_fallbacks"] = ["not-a-dict"]
        assert any(
            "not an object" in p for p in validate_manifest(manifest)
        )

    def test_v4_manifest_without_fallbacks_still_validates(self):
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        del manifest["engine_fallbacks"]
        manifest["schema"] = 4
        assert validate_manifest(manifest) == []


class TestAnalysisSection:
    SECTION = {
        "enabled": True,
        "clean": True,
        "sample": {"x": 5.0, "seed": 1},
        "verdicts": [
            {
                "code": "ANA001",
                "name": "conflict-mask-equivalence",
                "passed": True,
                "detail": "250 slot masks verified",
            }
        ],
        "graph": {"n": 250, "n_classes": 49, "conflict_fraction": 0.4},
        "cells": [
            {
                "cell": {"x": 5.0, "seed": 1},
                "predicted": {"regime": "light", "cpu_utilization": 0.3},
            }
        ],
    }

    def test_defaults_to_disabled(self):
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        assert manifest["analysis"] == {"enabled": False}
        assert validate_manifest(manifest) == []

    def test_embedded_section_validates(self):
        manifest = build_manifest(
            "fig4a",
            "quick",
            triples(),
            registry_with_data().snapshot(),
            analysis=self.SECTION,
        )
        assert validate_manifest(manifest) == []
        assert manifest["analysis"] == self.SECTION

    def test_missing_section_flagged_for_v6(self):
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        del manifest["analysis"]
        assert any(
            "analysis" in problem for problem in validate_manifest(manifest)
        )

    def test_malformed_section_flagged(self):
        manifest = build_manifest(
            "fig4a",
            "quick",
            triples(),
            registry_with_data().snapshot(),
            analysis={"enabled": True, "clean": "yes", "verdicts": [],
                      "graph": [], "cells": {}},
        )
        problems = validate_manifest(manifest)
        assert any("analysis.clean" in p for p in problems)
        assert any("analysis.verdicts" in p for p in problems)
        assert any("analysis.graph" in p for p in problems)
        assert any("analysis.cells" in p for p in problems)

    def test_malformed_verdict_and_cell_entries_flagged(self):
        section = {
            "enabled": True,
            "clean": True,
            "verdicts": ["not-a-dict", {"code": "ANA001"}],
            "graph": {},
            "cells": ["not-a-dict", {"cell": {"x": 1.0}}],
        }
        manifest = build_manifest(
            "fig4a",
            "quick",
            triples(),
            registry_with_data().snapshot(),
            analysis=section,
        )
        problems = validate_manifest(manifest)
        assert any("verdicts[0] is not an object" in p for p in problems)
        assert any("verdicts[1] missing 'passed'" in p for p in problems)
        assert any("cells[0] is not an object" in p for p in problems)
        assert any("cells[1] missing 'predicted'" in p for p in problems)

    def test_v5_manifest_without_analysis_still_validates(self):
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        del manifest["analysis"]
        manifest["schema"] = 5
        assert validate_manifest(manifest) == []


class TestGoldenFixtures:
    """Committed manifest documents: v6 (current) and older layouts.

    These pin the on-disk layout — regenerating them is a conscious
    schema change, not a side effect.
    """

    DATA = Path(__file__).parent / "data"

    def test_golden_v6_validates(self):
        doc = load_manifest(self.DATA / "manifest_v6.json")
        assert doc["schema"] == 6
        assert validate_manifest(doc) == []
        analysis = doc["analysis"]
        assert analysis["enabled"] is True
        assert analysis["clean"] is True
        codes = [verdict["code"] for verdict in analysis["verdicts"]]
        assert codes == [
            "ANA001", "ANA002", "ANA003", "ANA004", "ANA005", "ANA006",
        ]
        assert all(verdict["passed"] for verdict in analysis["verdicts"])
        assert analysis["cells"], "golden v6 must carry cell predictions"
        predicted = analysis["cells"][0]["predicted"]
        assert predicted["regime"] in {"light", "moderate", "saturated"}

    def test_golden_v5_still_loads_and_validates(self):
        doc = load_manifest(self.DATA / "manifest_v5.json")
        assert doc["schema"] == 5
        assert "analysis" not in doc
        assert validate_manifest(doc) == []
        assert len(doc["engine_fallbacks"]) == 1
        record = doc["engine_fallbacks"][0]
        assert record["engine"] == "reference"
        assert record["sanitized"] is True
        assert record["bundle"].startswith("results/quarantine/")

    def test_golden_v4_still_loads_and_validates(self):
        doc = load_manifest(self.DATA / "manifest_v4.json")
        assert doc["schema"] == 4
        assert "engine_fallbacks" not in doc
        assert validate_manifest(doc) == []
        assert doc["timing"]["enabled"] is True
        assert "simulate" in doc["timing"]["stages"]

    def test_golden_v3_still_loads_and_validates(self):
        doc = load_manifest(self.DATA / "manifest_v3.json")
        assert doc["schema"] == 3
        assert "timing" not in doc
        assert validate_manifest(doc) == []


class TestWriteAndLoad:
    def test_round_trip(self, tmp_path):
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        path = write_manifest(manifest, tmp_path / "runs")
        assert path.parent == tmp_path / "runs"
        loaded = load_manifest(path)
        assert validate_manifest(loaded) == []
        assert loaded["experiment"] == "fig4a"
        assert loaded["config_hash"] == manifest["config_hash"]

    def test_filename_carries_experiment_scale_stamp(self):
        name = manifest_filename("fig5b", "full", 0.0)
        assert name.startswith("fig5b-full-")
        assert name.endswith(".json")

    def test_same_second_runs_never_overwrite(self, tmp_path):
        """The filename stamp has 1 s resolution; a second write in the
        same second must pick a new name, not clobber the first."""
        manifest = build_manifest(
            "fig4a", "quick", triples(), registry_with_data().snapshot()
        )
        first = write_manifest(manifest, tmp_path)
        second = write_manifest(manifest, tmp_path)
        third = write_manifest(manifest, tmp_path)
        assert len({first, second, third}) == 3
        assert second.name == first.stem + "-1.json"
        assert third.name == first.stem + "-2.json"
        assert all(validate_manifest(load_manifest(p)) == []
                   for p in (first, second, third))
