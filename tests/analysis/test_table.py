"""Relation tables: memoization and consistency with direct computation."""

import pytest

from repro.analysis.relations import conflict_between, safety_of
from repro.analysis.table import RelationTable
from repro.analysis.tree import TransactionTree

from tests.analysis.test_tree import figure3_tree, paper_program_a, paper_program_b


@pytest.fixture
def table():
    return RelationTable(
        [
            TransactionTree(paper_program_a()),
            TransactionTree(paper_program_b()),
            figure3_tree(),
        ]
    )


class TestLookups:
    def test_conflict_matches_direct_computation(self, table):
        tree_a = table.tree("A")
        tree_b = table.tree("B")
        for label in ("A", "Aa", "Ab"):
            assert table.conflict("A", label, "B", "B") is conflict_between(
                tree_a, label, tree_b, "B"
            )

    def test_safety_matches_direct_computation(self, table):
        tree_a = table.tree("A")
        tree_b = table.tree("B")
        assert table.safety("B", "B", "A", "Aa") is safety_of(
            tree_b, "B", tree_a, "Aa"
        )

    def test_symmetric_cache(self, table):
        forward = table.conflict("A", "A", "T21", "T21")
        backward = table.conflict("T21", "T21", "A", "A")
        assert forward is backward

    def test_unknown_program_raises(self, table):
        with pytest.raises(KeyError):
            table.conflict("nope", "x", "A", "A")

    def test_duplicate_program_names_rejected(self):
        tree = TransactionTree(paper_program_b())
        tree_dup = TransactionTree(paper_program_b())
        with pytest.raises(ValueError):
            RelationTable([tree, tree_dup])

    def test_programs_listing(self, table):
        assert set(table.programs) == {"A", "B", "T21"}


class TestPrecompute:
    def test_precompute_fills_every_pair(self, table):
        table.precompute()
        states = [
            (name, node.label)
            for name in table.programs
            for node in table.tree(name).program.root.walk()
        ]
        # After precompute, lookups must all hit the cache; verify by
        # comparing against fresh direct computation for every pair.
        for name_a, label_a in states:
            for name_b, label_b in states:
                expected = conflict_between(
                    table.tree(name_a), label_a, table.tree(name_b), label_b
                )
                assert table.conflict(name_a, label_a, name_b, label_b) is expected

    def test_symmetric_precompute_equals_exhaustive(self, table):
        """The unordered-pair precompute produces exactly the tables the
        naive ordered double loop would have."""
        table.precompute()
        reference = RelationTable(
            [table.tree(name) for name in table.programs]
        )
        states = [
            (name, node.label)
            for name in table.programs
            for node in table.tree(name).program.root.walk()
        ]
        for name_a, label_a in states:
            for name_b, label_b in states:
                reference.conflict(name_a, label_a, name_b, label_b)
                reference.safety(name_a, label_a, name_b, label_b)
        assert table._conflict == reference._conflict
        assert table._safety == reference._safety
