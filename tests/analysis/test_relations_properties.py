"""Property tests for the pre-analysis relations.

Three invariants the certifier (and the scheduler) lean on:

* ``conflict_between`` is symmetric over arbitrary trees and nodes;
* a subject that is UNSAFE (or conditionally unsafe) wrt a runner must
  also *conflict* with it — safety violations imply conflict, which is
  why CERT006 findings are always a subset of CERT005's universe;
* for flat (decision-point-free) write-only programs the
  :class:`~repro.core.oracle.TreeOracle` backed by the full tree
  machinery agrees exactly with the :class:`~repro.core.oracle.SetOracle`
  the simulation uses — the paper's "the relations collapse to set
  algebra" claim.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.program import (
    ProgramNode,
    TransactionProgram,
    linear_program,
)
from repro.analysis.relations import conflict_between, safety_of
from repro.analysis.table import RelationTable
from repro.analysis.tree import TransactionTree
from repro.core.oracle import SetOracle, TreeOracle, replay_transaction

from tests.conftest import make_spec

access_sets = st.frozensets(
    st.integers(min_value=0, max_value=8), max_size=4
)


@st.composite
def analyzed_trees(draw, name: str):
    """A random analyzed tree (depth <= 3, fanout <= 2) and one of its
    node labels."""
    counter = [0]

    def build(depth: int) -> ProgramNode:
        label = f"{name}{counter[0]}"
        counter[0] += 1
        accesses = draw(access_sets)
        n_children = 0 if depth >= 2 else draw(
            st.integers(min_value=0, max_value=2)
        )
        children = [build(depth + 1) for _ in range(n_children)]
        return ProgramNode(label, accesses, children)

    tree = TransactionTree(TransactionProgram(name, build(0)))
    label = draw(st.sampled_from(sorted(tree.labels())))
    return tree, label


class TestRelationProperties:
    @settings(max_examples=120, deadline=None)
    @given(analyzed_trees("P"), analyzed_trees("Q"))
    def test_conflict_is_symmetric(self, state_a, state_b):
        tree_a, label_a = state_a
        tree_b, label_b = state_b
        assert conflict_between(
            tree_a, label_a, tree_b, label_b
        ) is conflict_between(tree_b, label_b, tree_a, label_a)

    @settings(max_examples=120, deadline=None)
    @given(analyzed_trees("P"), analyzed_trees("Q"))
    def test_unsafe_implies_conflict_possible(self, subject, runner):
        tree_s, label_s = subject
        tree_r, label_r = runner
        safety = safety_of(tree_s, label_s, tree_r, label_r)
        if safety.needs_rollback:
            assert conflict_between(
                tree_s, label_s, tree_r, label_r
            ).possible


item_sets = st.frozensets(
    st.integers(min_value=0, max_value=8), min_size=1, max_size=5
)


class TestFlatProgramsCollapseToSets:
    @settings(max_examples=120, deadline=None)
    @given(item_sets, item_sets)
    def test_tree_oracle_matches_set_oracle(self, items_a, items_b):
        spec_a = make_spec(1, sorted(items_a), type_id=0)
        spec_b = make_spec(2, sorted(items_b), type_id=1)
        table = RelationTable([
            TransactionTree(linear_program("type0", items_a)),
            TransactionTree(linear_program("type1", items_b)),
        ])
        tree_oracle = TreeOracle(table)
        set_oracle = SetOracle()
        # Fully accessed: for a flat write-only program, "has accessed"
        # equals the declared set only once every item has been locked.
        tx_a = replay_transaction(
            spec_a, accessed=spec_a.data_set, accessed_writes=spec_a.write_set
        )
        tx_b = replay_transaction(
            spec_b, accessed=spec_b.data_set, accessed_writes=spec_b.write_set
        )
        assert tree_oracle.conflict(tx_a, tx_b) is set_oracle.conflict(
            tx_a, tx_b
        )
        assert tree_oracle.safety(tx_a, tx_b) is set_oracle.safety(
            tx_a, tx_b
        )
        assert tree_oracle.safety(tx_b, tx_a) is set_oracle.safety(
            tx_b, tx_a
        )
