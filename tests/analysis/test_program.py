"""Transaction program representation."""

import pytest

from repro.analysis.program import ProgramNode, TransactionProgram, linear_program


class TestProgramNode:
    def test_leaf(self):
        node = ProgramNode("A", accesses=[1, 2])
        assert node.is_leaf
        assert node.accesses == frozenset({1, 2})

    def test_children_get_parent(self):
        child = ProgramNode("Aa", accesses=[3])
        root = ProgramNode("A", accesses=[1], children=[child])
        assert child.parent is root
        assert not root.is_leaf

    def test_node_cannot_have_two_parents(self):
        child = ProgramNode("X", accesses=[1])
        ProgramNode("A", children=[child])
        with pytest.raises(ValueError, match="already has a parent"):
            ProgramNode("B", children=[child])

    def test_walk_is_preorder(self):
        tree = ProgramNode(
            "A",
            children=[
                ProgramNode("Aa", children=[ProgramNode("Aaa")]),
                ProgramNode("Ab"),
            ],
        )
        assert [n.label for n in tree.walk()] == ["A", "Aa", "Aaa", "Ab"]


class TestTransactionProgram:
    def test_duplicate_labels_rejected(self):
        root = ProgramNode("A", children=[ProgramNode("B"), ProgramNode("B2")])
        TransactionProgram("A", root)  # unique labels fine
        bad = ProgramNode("A", children=[ProgramNode("A2"), ProgramNode("A2")])
        with pytest.raises(ValueError):
            # Constructing the duplicate-children node itself is fine; the
            # program constructor detects the duplicate label.
            TransactionProgram("A", bad)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            TransactionProgram("", ProgramNode("x"))

    def test_node_lookup(self):
        program = linear_program("P", [1, 2, 3])
        assert program.node("P").accesses == frozenset({1, 2, 3})
        with pytest.raises(KeyError):
            program.node("missing")

    def test_data_set_unions_all_segments(self):
        root = ProgramNode(
            "A",
            accesses=[0],
            children=[
                ProgramNode("Aa", accesses=[1, 2, 3]),
                ProgramNode("Ab", accesses=[4, 5, 6]),
            ],
        )
        program = TransactionProgram("A", root)
        assert program.data_set == frozenset(range(7))
        assert program.has_decision_points

    def test_linear_program_is_single_node(self):
        program = linear_program("B", [1, 2, 3])
        assert not program.has_decision_points
        assert program.data_set == frozenset({1, 2, 3})
        assert program.root.is_leaf
