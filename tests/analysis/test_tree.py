"""Analyzed transaction trees: hasaccessed / mightaccess / leaves.

Includes the paper's worked examples: the Figure 1/2 programs A and B
(item 0 standing for ``w``, items 1..6 for I1..I6) and the Figure 3
auxiliary tree (items 10..13 standing for A..D).
"""

import pytest

from repro.analysis.program import ProgramNode, TransactionProgram, linear_program
from repro.analysis.tree import TransactionTree

# Items for the Figure 3 tree.
A, B, C, D = 10, 11, 12, 13


def paper_program_a() -> TransactionProgram:
    """Figure 1/2 program A: access w, then branch on w > 100."""
    return TransactionProgram(
        "A",
        ProgramNode(
            "A",
            accesses=[0],  # w
            children=[
                ProgramNode("Aa", accesses=[1, 2, 3]),  # w > 100
                ProgramNode("Ab", accesses=[4, 5, 6]),  # w <= 100
            ],
        ),
    )


def paper_program_b() -> TransactionProgram:
    """Figure 1/2 program B: unconditionally access I1, I2, I3."""
    return linear_program("B", [1, 2, 3])


def figure3_tree() -> TransactionTree:
    """The Figure 3 auxiliary transaction tree.

    Root T21 branches to T22 (accesses A) and T23 (accesses B); each of
    those branches to leaves accessing C or D.
    """
    root = ProgramNode(
        "T21",
        accesses=[],
        children=[
            ProgramNode(
                "T22",
                accesses=[A],
                children=[
                    ProgramNode("T24", accesses=[C]),
                    ProgramNode("T25", accesses=[D]),
                ],
            ),
            ProgramNode(
                "T23",
                accesses=[B],
                children=[
                    ProgramNode("T26", accesses=[C]),
                    ProgramNode("T27", accesses=[D]),
                ],
            ),
        ],
    )
    return TransactionTree(TransactionProgram("T21", root))


class TestPaperProgramA:
    def test_hasaccessed_accumulates_root_to_node(self):
        tree = TransactionTree(paper_program_a())
        assert tree.hasaccessed("A") == frozenset({0})
        assert tree.hasaccessed("Aa") == frozenset({0, 1, 2, 3})
        assert tree.hasaccessed("Ab") == frozenset({0, 4, 5, 6})

    def test_mightaccess_at_root_is_full_data_set(self):
        tree = TransactionTree(paper_program_a())
        assert tree.mightaccess("A") == frozenset(range(7))

    def test_mightaccess_at_leaf_equals_hasaccessed(self):
        tree = TransactionTree(paper_program_a())
        assert tree.mightaccess("Aa") == tree.hasaccessed("Aa")
        assert tree.mightaccess("Ab") == tree.hasaccessed("Ab")

    def test_leaves(self):
        tree = TransactionTree(paper_program_a())
        assert {leaf.label for leaf in tree.leaves("A")} == {"Aa", "Ab"}
        assert {leaf.label for leaf in tree.leaves("Aa")} == {"Aa"}


class TestPaperProgramB:
    def test_flat_program_sets(self):
        tree = TransactionTree(paper_program_b())
        assert tree.hasaccessed("B") == frozenset({1, 2, 3})
        assert tree.mightaccess("B") == frozenset({1, 2, 3})
        assert [leaf.label for leaf in tree.leaves("B")] == ["B"]


class TestFigure3:
    def test_hasaccessed_matches_figure(self):
        tree = figure3_tree()
        assert tree.hasaccessed("T21") == frozenset()
        assert tree.hasaccessed("T22") == frozenset({A})
        assert tree.hasaccessed("T23") == frozenset({B})
        assert tree.hasaccessed("T24") == frozenset({A, C})
        assert tree.hasaccessed("T25") == frozenset({A, D})
        assert tree.hasaccessed("T26") == frozenset({B, C})
        assert tree.hasaccessed("T27") == frozenset({B, D})

    def test_mightaccess_matches_figure(self):
        tree = figure3_tree()
        assert tree.mightaccess("T21") == frozenset({A, B, C, D})
        assert tree.mightaccess("T22") == frozenset({A, C, D})
        assert tree.mightaccess("T23") == frozenset({B, C, D})
        assert tree.mightaccess("T24") == frozenset({A, C})

    def test_leaf_count(self):
        tree = figure3_tree()
        assert len(tree.leaves("T21")) == 4
        assert len(tree.leaves("T22")) == 2


class TestInvariants:
    def test_hasaccessed_subset_of_mightaccess_everywhere(self):
        tree = figure3_tree()
        for label in tree.labels():
            assert tree.hasaccessed(label) <= tree.mightaccess(label)

    def test_child_mightaccess_subset_of_parent(self):
        tree = figure3_tree()
        for label, child_labels in [
            ("T21", ["T22", "T23"]),
            ("T22", ["T24", "T25"]),
        ]:
            parent_might = tree.mightaccess(label)
            for child in child_labels:
                assert tree.mightaccess(child) <= parent_might

    def test_unknown_label_raises(self):
        tree = figure3_tree()
        with pytest.raises(KeyError):
            tree.hasaccessed("nope")
