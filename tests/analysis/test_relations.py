"""Conflict and safety relations, including the paper's worked claims.

Paper, Section 3.2.2 on programs A and B of Figures 1/2:
"TA1 [conditionally] conflicts with TB1, TAa conflicts with TB1, but
TAb doesn't conflict with TB1."
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.program import ProgramNode, TransactionProgram, linear_program
from repro.analysis.relations import (
    Conflict,
    Safety,
    conflict_between,
    safety_of,
)
from repro.analysis.tree import TransactionTree

from tests.analysis.test_tree import figure3_tree, paper_program_a, paper_program_b


def trees():
    return TransactionTree(paper_program_a()), TransactionTree(paper_program_b())


class TestPaperConflicts:
    def test_a_at_root_conditionally_conflicts_with_b(self):
        tree_a, tree_b = trees()
        assert conflict_between(tree_a, "A", tree_b, "B") is Conflict.CONDITIONAL

    def test_a_at_aa_conflicts_with_b(self):
        tree_a, tree_b = trees()
        assert conflict_between(tree_a, "Aa", tree_b, "B") is Conflict.CERTAIN

    def test_a_at_ab_does_not_conflict_with_b(self):
        tree_a, tree_b = trees()
        assert conflict_between(tree_a, "Ab", tree_b, "B") is Conflict.NONE

    def test_conflict_is_symmetric(self):
        tree_a, tree_b = trees()
        for label in ("A", "Aa", "Ab"):
            assert conflict_between(tree_a, label, tree_b, "B") is conflict_between(
                tree_b, "B", tree_a, label
            )

    def test_possible_flag(self):
        assert Conflict.CERTAIN.possible
        assert Conflict.CONDITIONAL.possible
        assert not Conflict.NONE.possible


class TestPaperSafety:
    def test_b_unsafe_wrt_a_at_aa(self):
        """B (flat, has accessed 1,2,3) must be rolled back if A runs
        after committing to the Aa branch."""
        tree_a, tree_b = trees()
        assert safety_of(tree_b, "B", tree_a, "Aa") is Safety.UNSAFE

    def test_b_conditionally_unsafe_wrt_a_at_root(self):
        """Before A's decision point, B's rollback depends on the branch."""
        tree_a, tree_b = trees()
        assert safety_of(tree_b, "B", tree_a, "A") is Safety.CONDITIONALLY_UNSAFE

    def test_b_safe_wrt_a_at_ab(self):
        tree_a, tree_b = trees()
        assert safety_of(tree_b, "B", tree_a, "Ab") is Safety.SAFE

    def test_a_at_root_safe_wrt_b_when_nothing_accessed(self):
        """A at its root has accessed only item 0 (w), which B never
        touches, so A is safe wrt B."""
        tree_a, tree_b = trees()
        assert safety_of(tree_a, "A", tree_b, "B") is Safety.SAFE

    def test_a_at_aa_unsafe_wrt_b(self):
        tree_a, tree_b = trees()
        assert safety_of(tree_a, "Aa", tree_b, "B") is Safety.UNSAFE

    def test_needs_rollback_flag(self):
        assert Safety.UNSAFE.needs_rollback
        assert Safety.CONDITIONALLY_UNSAFE.needs_rollback
        assert not Safety.SAFE.needs_rollback


class TestFigure3Safety:
    def test_conditionally_unsafe_across_branches(self):
        """A flat transaction that accessed C is conditionally unsafe wrt
        T2 at node T22: the T24 continuation touches C, T25 does not."""
        tree2 = figure3_tree()
        flat_c = TransactionTree(linear_program("FC", [12]))  # item C
        assert safety_of(flat_c, "FC", tree2, "T22") is Safety.CONDITIONALLY_UNSAFE

    def test_unsafe_when_every_leaf_touches(self):
        """A flat transaction that accessed A is unsafe wrt T2 at T22:
        both leaves' mightaccess include A (it is on the path)."""
        tree2 = figure3_tree()
        flat_a = TransactionTree(linear_program("FA", [10]))  # item A
        assert safety_of(flat_a, "FA", tree2, "T22") is Safety.UNSAFE

    def test_safe_when_disjoint(self):
        tree2 = figure3_tree()
        flat_z = TransactionTree(linear_program("FZ", [99]))
        assert safety_of(flat_z, "FZ", tree2, "T21") is Safety.SAFE


# ---------------------------------------------------------------------------
# Property-based invariants over random trees
# ---------------------------------------------------------------------------

@st.composite
def random_tree(draw, max_depth=3):
    """A random transaction tree over items 0..19."""
    prefix = draw(st.integers(0, 10**6))
    next_id = iter(range(10**6))

    def build(depth: int) -> ProgramNode:
        label = f"n{prefix}.{next(next_id)}"
        items = draw(st.lists(st.integers(0, 19), max_size=4))
        if depth >= max_depth or not draw(st.booleans()):
            return ProgramNode(label, accesses=items)
        n_children = draw(st.integers(2, 3))
        return ProgramNode(
            label,
            accesses=items,
            children=[build(depth + 1) for _ in range(n_children)],
        )

    root = build(0)
    return TransactionTree(TransactionProgram(root.label, root))


class TestRelationProperties:
    @given(random_tree(), random_tree())
    @settings(max_examples=60, deadline=None)
    def test_conflict_symmetric(self, tree_a, tree_b):
        for label_a in list(tree_a.labels()):
            for label_b in list(tree_b.labels()):
                forward = conflict_between(tree_a, label_a, tree_b, label_b)
                backward = conflict_between(tree_b, label_b, tree_a, label_a)
                assert forward is backward

    @given(random_tree(), random_tree())
    @settings(max_examples=60, deadline=None)
    def test_disjoint_data_sets_never_conflict(self, tree_a, tree_b):
        if tree_a.mightaccess(tree_a.root.label) & tree_b.mightaccess(
            tree_b.root.label
        ):
            return
        assert (
            conflict_between(tree_a, tree_a.root.label, tree_b, tree_b.root.label)
            is Conflict.NONE
        )

    @given(random_tree(), random_tree())
    @settings(max_examples=60, deadline=None)
    def test_certain_conflict_implies_root_overlap(self, tree_a, tree_b):
        relation = conflict_between(
            tree_a, tree_a.root.label, tree_b, tree_b.root.label
        )
        if relation is Conflict.CERTAIN:
            assert tree_a.mightaccess(tree_a.root.label) & tree_b.mightaccess(
                tree_b.root.label
            )

    @given(random_tree(), random_tree())
    @settings(max_examples=60, deadline=None)
    def test_safety_consistent_with_set_overlap(self, tree_a, tree_b):
        """SAFE iff hasaccessed(subject) disjoint from mightaccess(runner)."""
        for label_a in list(tree_a.labels()):
            for label_b in list(tree_b.labels()):
                relation = safety_of(tree_a, label_a, tree_b, label_b)
                overlap = tree_a.hasaccessed(label_a) & tree_b.mightaccess(label_b)
                assert (relation is Safety.SAFE) == (not overlap)

    @given(random_tree(), random_tree())
    @settings(max_examples=60, deadline=None)
    def test_leaf_runner_safety_is_binary(self, tree_a, tree_b):
        """Against a leaf runner there is no 'conditionally': every leaf
        has exactly one continuation."""
        for leaf in tree_b.leaves(tree_b.root.label):
            relation = safety_of(tree_a, tree_a.root.label, tree_b, leaf.label)
            assert relation is not Safety.CONDITIONALLY_UNSAFE
