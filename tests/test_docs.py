"""Documentation stays executable and consistent with the code."""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def python_blocks(markdown: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", markdown, flags=re.DOTALL)


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return (REPO_ROOT / "README.md").read_text()

    def test_quickstart_snippet_runs(self, readme):
        blocks = python_blocks(readme)
        assert blocks, "README must contain a python quickstart block"
        snippet = blocks[0]
        # Shrink the run so the test stays fast, then execute verbatim.
        snippet = snippet.replace("n_transactions=1000", "n_transactions=60")
        namespace: dict = {}
        exec(compile(snippet, "README.md", "exec"), namespace)  # noqa: S102

    def test_mentions_all_documents(self, readme):
        for name in ("DESIGN.md", "EXPERIMENTS.md", "docs/ALGORITHMS.md"):
            assert name in readme

    def test_cli_examples_use_real_experiment_ids(self, readme):
        from repro.cli import ALL_RUNNABLE

        for match in re.findall(r"python -m repro (\S+)(?: (\S+))?", readme):
            first, second = match
            if first in ("all", "validate", "lint", "replay"):
                continue  # subcommands/batch ids, not experiment ids
            if first == "mc":
                # `repro mc <bundled-workload|all|experiment>` or flags
                from repro.modelcheck.workloads import all_cases

                bundled = {case.name for case in all_cases()} | {"all"}
                assert (
                    second in bundled
                    or second in ALL_RUNNABLE
                    or second.startswith("-")
                ), f"README mcs unknown target {second}"
                continue
            if first in ("trace", "certify", "profile", "analyze"):
                # `repro trace|certify|profile|analyze <experiment> ...`
                # (certify/analyze also accept flag-only forms like
                # `--list-rules` or `--workload`)
                assert second in ALL_RUNNABLE or second.startswith("-"), (
                    f"README {first}s unknown id {second}"
                )
                continue
            assert first in ALL_RUNNABLE, f"README references unknown id {first}"


class TestPackageDocstrings:
    def test_every_module_has_a_docstring(self):
        import importlib
        import pkgutil

        import repro

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_init_quickstart_docstring_runs(self):
        import repro

        blocks = re.findall(
            r"::\n\n((?:    .*\n)+)", repro.__doc__ or "", flags=re.MULTILINE
        )
        assert blocks, "package docstring should contain a quickstart"
        snippet = "\n".join(line[4:] for line in blocks[0].splitlines())
        snippet = snippet.replace("n_transactions=500", "n_transactions=40")
        namespace: dict = {}
        exec(compile(snippet, "repro.__init__", "exec"), namespace)  # noqa: S102


class TestExperimentIndexConsistency:
    def test_design_lists_every_experiment(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        from repro.experiments.figures import ALL_EXPERIMENTS

        for figure_id in ALL_EXPERIMENTS:
            assert figure_id in design, f"DESIGN.md missing {figure_id}"

    def test_experiments_doc_lists_every_experiment(self):
        experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        from repro.experiments.figures import ALL_EXPERIMENTS

        for figure_id in ALL_EXPERIMENTS:
            assert figure_id in experiments, f"EXPERIMENTS.md missing {figure_id}"
