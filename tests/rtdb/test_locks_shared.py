"""Shared (read) lock mode of the lock manager."""

import pytest

from repro.rtdb.locks import LockManager
from repro.rtdb.transaction import Transaction

from tests.conftest import make_spec


@pytest.fixture
def mgr():
    return LockManager()


def tx(tid):
    return Transaction(make_spec(tid, [1, 2, 3]))


class TestSharedAcquisition:
    def test_readers_coexist(self, mgr):
        t1, t2, t3 = tx(1), tx(2), tx(3)
        assert mgr.acquire(t1, 5, exclusive=False)
        assert mgr.acquire(t2, 5, exclusive=False)
        assert mgr.acquire(t3, 5, exclusive=False)
        assert {holder.tid for holder in mgr.holders(5)} == {1, 2, 3}

    def test_writer_blocks_readers(self, mgr):
        t1, t2 = tx(1), tx(2)
        mgr.acquire(t1, 5, exclusive=True)
        assert not mgr.acquire(t2, 5, exclusive=False)
        assert mgr.conflicting_holders(t2, 5, exclusive=False) == (t1,)

    def test_readers_block_writer(self, mgr):
        t1, t2, t3 = tx(1), tx(2), tx(3)
        mgr.acquire(t1, 5, exclusive=False)
        mgr.acquire(t2, 5, exclusive=False)
        assert not mgr.acquire(t3, 5, exclusive=True)
        assert {h.tid for h in mgr.conflicting_holders(t3, 5, True)} == {1, 2}

    def test_sole_reader_upgrades(self, mgr):
        t1 = tx(1)
        mgr.acquire(t1, 5, exclusive=False)
        assert mgr.acquire(t1, 5, exclusive=True)
        assert mgr.holds_exclusive(t1, 5)

    def test_shared_reader_cannot_upgrade(self, mgr):
        t1, t2 = tx(1), tx(2)
        mgr.acquire(t1, 5, exclusive=False)
        mgr.acquire(t2, 5, exclusive=False)
        assert not mgr.acquire(t1, 5, exclusive=True)

    def test_writer_may_downshift_request(self, mgr):
        """An exclusive holder re-requesting in shared mode keeps its
        exclusive lock (no demotion)."""
        t1 = tx(1)
        mgr.acquire(t1, 5, exclusive=True)
        assert mgr.acquire(t1, 5, exclusive=False)
        assert mgr.holds_exclusive(t1, 5)

    def test_holder_returns_none_when_shared_by_many(self, mgr):
        t1, t2 = tx(1), tx(2)
        mgr.acquire(t1, 5, exclusive=False)
        assert mgr.holder(5) is t1
        mgr.acquire(t2, 5, exclusive=False)
        assert mgr.holder(5) is None


class TestSharedRelease:
    def test_release_one_reader_keeps_others(self, mgr):
        t1, t2 = tx(1), tx(2)
        mgr.acquire(t1, 5, exclusive=False)
        mgr.acquire(t2, 5, exclusive=False)
        mgr.release_all(t1)
        assert {h.tid for h in mgr.holders(5)} == {2}
        mgr.assert_consistent()

    def test_exclusive_flag_cleared_when_item_frees(self, mgr):
        t1, t2 = tx(1), tx(2)
        mgr.acquire(t1, 5, exclusive=True)
        mgr.release_all(t1)
        # A reader can now take the item in shared mode and a second
        # reader can join — the exclusivity did not leak.
        assert mgr.acquire(t2, 5, exclusive=False)
        assert mgr.acquire(tx(3), 5, exclusive=False)

    def test_consistency_invariant_with_mixed_modes(self, mgr):
        t1, t2, t3 = tx(1), tx(2), tx(3)
        mgr.acquire(t1, 5, exclusive=False)
        mgr.acquire(t2, 5, exclusive=False)
        mgr.acquire(t3, 7, exclusive=True)
        mgr.assert_consistent()
        mgr.release_all(t2)
        mgr.assert_consistent()
