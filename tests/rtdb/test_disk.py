"""FCFS disk: queueing, abort semantics, utilization accounting."""

import pytest

from repro.rtdb.disk import Disk
from repro.rtdb.transaction import Transaction
from repro.sim.engine import Simulator

from tests.conftest import make_spec


@pytest.fixture
def sim():
    return Simulator()


def make_disk(sim):
    completions = []
    disk = Disk(sim, lambda tx, epoch: completions.append((sim.now, tx.tid, epoch)))
    return disk, completions


def tx(tid):
    return Transaction(make_spec(tid, [1]))


class TestFcfs:
    def test_single_access(self, sim):
        disk, completions = make_disk(sim)
        disk.request(tx(1), 25.0)
        assert disk.busy
        sim.run()
        assert completions == [(25.0, 1, 0)]
        assert not disk.busy

    def test_requests_served_in_arrival_order(self, sim):
        disk, completions = make_disk(sim)
        disk.request(tx(1), 25.0)
        disk.request(tx(2), 25.0)
        disk.request(tx(3), 25.0)
        sim.run()
        assert [c[1] for c in completions] == [1, 2, 3]
        assert [c[0] for c in completions] == [25.0, 50.0, 75.0]

    def test_queue_length(self, sim):
        disk, _ = make_disk(sim)
        disk.request(tx(1), 25.0)
        disk.request(tx(2), 25.0)
        assert disk.queue_length == 1  # one active, one queued
        assert disk.active_transaction.tid == 1

    def test_nonpositive_duration_rejected(self, sim):
        disk, _ = make_disk(sim)
        with pytest.raises(ValueError):
            disk.request(tx(1), 0.0)

    def test_idle_disk_starts_new_request_immediately(self, sim):
        disk, completions = make_disk(sim)
        disk.request(tx(1), 10.0)
        sim.run()
        disk.request(tx(2), 10.0)
        sim.run()
        assert [c[1] for c in completions] == [1, 2]


class TestAbortSemantics:
    def test_queued_request_removed_on_abort(self, sim):
        disk, completions = make_disk(sim)
        disk.request(tx(1), 25.0)
        victim = tx(2)
        disk.request(victim, 25.0)
        assert disk.remove_queued(victim)
        sim.run()
        assert [c[1] for c in completions] == [1]

    def test_active_request_not_removed(self, sim):
        """Paper: a transaction aborted during its IO access holds the
        disk until the access completes."""
        disk, completions = make_disk(sim)
        victim = tx(1)
        disk.request(victim, 25.0)
        assert not disk.remove_queued(victim)
        sim.run()
        # The transfer still completed (the caller discards it by epoch).
        assert [c[1] for c in completions] == [1]

    def test_stale_epoch_visible_to_callback(self, sim):
        disk, completions = make_disk(sim)
        victim = tx(1)
        disk.request(victim, 25.0)
        victim.restart()  # epoch moves to 1 while the transfer runs
        sim.run()
        assert completions == [(25.0, 1, 0)]  # completion has epoch 0
        assert victim.epoch == 1


class TestAccounting:
    def test_busy_time_accumulates(self, sim):
        disk, _ = make_disk(sim)
        disk.request(tx(1), 25.0)
        disk.request(tx(2), 15.0)
        sim.run()
        assert disk.busy_time == pytest.approx(40.0)
        assert disk.accesses_served == 2

    def test_utilization(self, sim):
        disk, _ = make_disk(sim)
        disk.request(tx(1), 25.0)
        sim.run()
        assert disk.utilization(100.0) == pytest.approx(0.25)
        assert disk.utilization(0.0) == 0.0
