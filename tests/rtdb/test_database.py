"""Database item space."""

import pytest

from repro.rtdb.database import Database


class TestDatabase:
    def test_membership(self):
        db = Database(10)
        assert 0 in db
        assert 9 in db
        assert 10 not in db
        assert -1 not in db

    def test_len(self):
        assert len(Database(42)) == 42

    def test_validate_item(self):
        db = Database(5)
        assert db.validate_item(3) == 3
        with pytest.raises(KeyError):
            db.validate_item(5)

    def test_validate_items(self):
        db = Database(5)
        assert db.validate_items([0, 4]) == [0, 4]
        with pytest.raises(KeyError):
            db.validate_items([0, 5])

    def test_minimum_size(self):
        Database(1)
        with pytest.raises(ValueError):
            Database(0)
