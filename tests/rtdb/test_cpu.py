"""CPU busy-time accounting."""

import pytest

from repro.rtdb.cpu import Cpu


class TestCpu:
    def test_initially_idle(self):
        cpu = Cpu()
        assert not cpu.busy
        assert cpu.busy_time == 0.0

    def test_busy_interval_accumulates(self):
        cpu = Cpu()
        cpu.start(10.0)
        assert cpu.busy
        cpu.stop(25.0)
        assert cpu.busy_time == pytest.approx(15.0)
        cpu.start(30.0)
        cpu.stop(40.0)
        assert cpu.busy_time == pytest.approx(25.0)

    def test_double_start_rejected(self):
        cpu = Cpu()
        cpu.start(1.0)
        with pytest.raises(RuntimeError):
            cpu.start(2.0)

    def test_stop_when_idle_rejected(self):
        with pytest.raises(RuntimeError):
            Cpu().stop(1.0)

    def test_time_backwards_rejected(self):
        cpu = Cpu()
        cpu.start(10.0)
        with pytest.raises(ValueError):
            cpu.stop(5.0)

    def test_utilization(self):
        cpu = Cpu()
        cpu.start(0.0)
        cpu.stop(30.0)
        assert cpu.utilization(100.0) == pytest.approx(0.3)
        assert cpu.utilization(0.0) == 0.0

    def test_utilization_counts_open_interval(self):
        cpu = Cpu()
        cpu.start(50.0)
        assert cpu.utilization(100.0) == pytest.approx(0.5)
