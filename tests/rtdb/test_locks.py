"""Exclusive lock manager."""

import pytest

from repro.rtdb.locks import LockManager
from repro.rtdb.transaction import Transaction

from tests.conftest import make_spec


@pytest.fixture
def mgr():
    return LockManager()


def tx(tid):
    return Transaction(make_spec(tid, [1, 2, 3]))


class TestAcquire:
    def test_free_lock_granted(self, mgr):
        t1 = tx(1)
        assert mgr.acquire(t1, 5)
        assert mgr.holder(5) is t1
        assert mgr.holds(t1, 5)

    def test_reacquire_own_lock(self, mgr):
        t1 = tx(1)
        mgr.acquire(t1, 5)
        assert mgr.acquire(t1, 5)

    def test_conflicting_acquire_denied(self, mgr):
        t1, t2 = tx(1), tx(2)
        mgr.acquire(t1, 5)
        assert not mgr.acquire(t2, 5)
        assert mgr.holder(5) is t1

    def test_held_items(self, mgr):
        t1 = tx(1)
        mgr.acquire(t1, 5)
        mgr.acquire(t1, 7)
        assert mgr.held_items(t1) == frozenset({5, 7})
        assert mgr.held_items(tx(2)) == frozenset()


class TestRelease:
    def test_release_all_frees_locks(self, mgr):
        t1 = tx(1)
        mgr.acquire(t1, 5)
        mgr.acquire(t1, 7)
        mgr.release_all(t1)
        assert mgr.holder(5) is None
        assert mgr.holder(7) is None
        assert mgr.locked_items() == frozenset()

    def test_release_returns_waiters(self, mgr):
        t1, t2, t3 = tx(1), tx(2), tx(3)
        mgr.acquire(t1, 5)
        mgr.acquire(t1, 7)
        mgr.enqueue_waiter(t2, 5)
        mgr.enqueue_waiter(t3, 7)
        woken = mgr.release_all(t1)
        assert {w.tid for w in woken} == {2, 3}

    def test_waiter_woken_once_even_across_items(self, mgr):
        t1, t2 = tx(1), tx(2)
        mgr.acquire(t1, 5)
        mgr.acquire(t1, 7)
        mgr.enqueue_waiter(t2, 5)
        mgr.enqueue_waiter(t2, 7)
        woken = mgr.release_all(t1)
        assert [w.tid for w in woken] == [2]

    def test_release_without_locks_is_noop(self, mgr):
        assert mgr.release_all(tx(1)) == []

    def test_released_locks_are_free_not_transferred(self, mgr):
        t1, t2 = tx(1), tx(2)
        mgr.acquire(t1, 5)
        mgr.enqueue_waiter(t2, 5)
        mgr.release_all(t1)
        # Waiter must re-request; the lock is free until then.
        assert mgr.holder(5) is None


class TestWaiters:
    def test_fifo_order(self, mgr):
        t1, t2, t3 = tx(1), tx(2), tx(3)
        mgr.acquire(t1, 5)
        mgr.enqueue_waiter(t2, 5)
        mgr.enqueue_waiter(t3, 5)
        assert [w.tid for w in mgr.waiters(5)] == [2, 3]

    def test_remove_waiter(self, mgr):
        t1, t2, t3 = tx(1), tx(2), tx(3)
        mgr.acquire(t1, 5)
        mgr.enqueue_waiter(t2, 5)
        mgr.enqueue_waiter(t3, 5)
        mgr.remove_waiter(t2, 5)
        assert [w.tid for w in mgr.waiters(5)] == [3]

    def test_remove_absent_waiter_is_noop(self, mgr):
        mgr.remove_waiter(tx(1), 5)

    def test_shared_holder_may_wait_for_upgrade(self, mgr):
        """A reader blocked on upgrading to a write lock legitimately
        waits on an item it already holds in shared mode."""
        t1, t2 = tx(1), tx(2)
        assert mgr.acquire(t1, 5, exclusive=False)
        assert mgr.acquire(t2, 5, exclusive=False)
        assert not mgr.acquire(t1, 5, exclusive=True)
        mgr.enqueue_waiter(t1, 5)
        assert [w.tid for w in mgr.waiters(5)] == [1]

    def test_duplicate_waiter_rejected(self, mgr):
        t1, t2 = tx(1), tx(2)
        mgr.acquire(t1, 5)
        mgr.enqueue_waiter(t2, 5)
        with pytest.raises(ValueError):
            mgr.enqueue_waiter(t2, 5)


class TestConsistency:
    def test_assert_consistent_on_valid_state(self, mgr):
        t1 = tx(1)
        mgr.acquire(t1, 5)
        mgr.assert_consistent()

    def test_assert_consistent_detects_corruption(self, mgr):
        t1 = tx(1)
        mgr.acquire(t1, 5)
        mgr._held[t1.tid].add(99)  # corrupt on purpose
        with pytest.raises(AssertionError):
            mgr.assert_consistent()
