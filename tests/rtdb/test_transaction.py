"""Transaction specs and runtime state machine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtdb.transaction import Operation, Transaction, TransactionSpec, TxState

from tests.conftest import make_spec


class TestOperation:
    def test_valid(self):
        op = Operation(item=3, compute_time=4.0, io_time=25.0)
        assert op.needs_io
        assert Operation(item=3, compute_time=4.0).needs_io is False

    def test_nonpositive_compute_rejected(self):
        with pytest.raises(ValueError):
            Operation(item=0, compute_time=0.0)
        with pytest.raises(ValueError):
            Operation(item=0, compute_time=-1.0)

    def test_negative_io_rejected(self):
        with pytest.raises(ValueError):
            Operation(item=0, compute_time=1.0, io_time=-1.0)


class TestSpec:
    def test_resource_time_includes_io(self):
        spec = make_spec(1, [1, 2], compute=4.0, io_items=frozenset({2}), io_time=25.0)
        assert spec.resource_time == pytest.approx(4.0 + 4.0 + 25.0)
        assert spec.cpu_time == pytest.approx(8.0)

    def test_write_set(self):
        spec = make_spec(1, [5, 3, 5])
        assert spec.write_set == frozenset({3, 5})

    def test_empty_operations_rejected(self):
        with pytest.raises(ValueError):
            TransactionSpec(
                tid=1, type_id=0, arrival_time=0.0, deadline=10.0, operations=()
            )

    def test_deadline_before_arrival_rejected(self):
        with pytest.raises(ValueError):
            make_spec(1, [1], arrival=100.0, deadline=50.0)

    def test_default_program_name(self):
        spec = make_spec(1, [1], type_id=7)
        assert spec.program_name == "type7"


class TestTransactionLifecycle:
    def test_initial_state(self):
        tx = Transaction(make_spec(1, [1, 2, 3]))
        assert tx.state is TxState.READY
        assert not tx.partially_executed
        assert not tx.is_done
        assert tx.restarts == 0
        assert tx.epoch == 0

    def test_partially_executed_after_access(self):
        tx = Transaction(make_spec(1, [1, 2]))
        tx.record_access(1)
        assert tx.partially_executed
        assert tx.accessed == {1}

    def test_remaining_service_full_at_start(self):
        tx = Transaction(make_spec(1, [1, 2, 3], compute=4.0))
        assert tx.remaining_service == pytest.approx(12.0)

    def test_remaining_service_mid_operation(self):
        tx = Transaction(make_spec(1, [1, 2, 3], compute=4.0))
        tx.remaining_compute = 1.5  # current op started, 1.5 ms left
        assert tx.remaining_service == pytest.approx(1.5 + 8.0)

    def test_remaining_service_includes_rollback_debt(self):
        tx = Transaction(make_spec(1, [1], compute=4.0))
        tx.pending_rollback_work = 2.0
        assert tx.remaining_service == pytest.approx(6.0)

    def test_slack(self):
        tx = Transaction(make_spec(1, [1, 2], compute=4.0, deadline=100.0))
        assert tx.slack(now=50.0) == pytest.approx(100.0 - 50.0 - 8.0)

    def test_restart_resets_progress(self):
        tx = Transaction(make_spec(1, [1, 2]))
        tx.record_access(1)
        tx.op_index = 1
        tx.remaining_compute = 2.0
        tx.service_received = 6.0
        tx.restart()
        assert tx.state is TxState.READY
        assert tx.op_index == 0
        assert tx.remaining_compute == 0.0
        assert tx.service_received == 0.0
        assert tx.accessed == set()
        assert tx.restarts == 1
        assert tx.epoch == 1
        assert not tx.partially_executed

    def test_restart_preserves_identity_and_deadline(self):
        spec = make_spec(1, [1], deadline=500.0)
        tx = Transaction(spec)
        tx.restart()
        assert tx.tid == 1
        assert tx.deadline == 500.0

    def test_commit(self):
        tx = Transaction(make_spec(1, [1]))
        tx.op_index = 1
        tx.commit(now=120.0)
        assert tx.committed
        assert tx.commit_time == 120.0

    def test_commit_with_outstanding_operations_rejected(self):
        tx = Transaction(make_spec(1, [1, 2]))
        with pytest.raises(RuntimeError):
            tx.commit(now=1.0)

    def test_double_commit_rejected(self):
        tx = Transaction(make_spec(1, [1]))
        tx.op_index = 1
        tx.commit(now=1.0)
        with pytest.raises(RuntimeError):
            tx.commit(now=2.0)

    def test_restart_after_commit_rejected(self):
        tx = Transaction(make_spec(1, [1]))
        tx.op_index = 1
        tx.commit(now=1.0)
        with pytest.raises(RuntimeError):
            tx.restart()

    def test_lateness_and_tardiness(self):
        tx = Transaction(make_spec(1, [1], deadline=100.0))
        tx.op_index = 1
        tx.commit(now=130.0)
        assert tx.lateness() == pytest.approx(30.0)
        assert tx.tardiness() == pytest.approx(30.0)
        assert tx.missed_deadline

    def test_early_commit_has_zero_tardiness(self):
        tx = Transaction(make_spec(1, [1], deadline=100.0))
        tx.op_index = 1
        tx.commit(now=60.0)
        assert tx.lateness() == pytest.approx(-40.0)
        assert tx.tardiness() == 0.0
        assert not tx.missed_deadline

    def test_lateness_before_commit_rejected(self):
        tx = Transaction(make_spec(1, [1]))
        with pytest.raises(RuntimeError):
            tx.lateness()


class TestProperties:
    @given(
        n_ops=st.integers(1, 10),
        n_restarts=st.integers(0, 5),
        compute=st.floats(0.5, 50.0),
    )
    @settings(max_examples=60)
    def test_restart_always_returns_to_pristine_progress(
        self, n_ops, n_restarts, compute
    ):
        tx = Transaction(make_spec(1, list(range(n_ops)), compute=compute))
        pristine_remaining = tx.remaining_service
        for index in range(n_restarts):
            tx.record_access(index % n_ops)
            tx.service_received = 3.0
            tx.restart()
            assert tx.remaining_service == pytest.approx(pristine_remaining)
            assert tx.epoch == index + 1
