"""Rollback cost models."""

import pytest

from repro.rtdb.recovery import FixedRecovery, ProportionalRecovery
from repro.rtdb.transaction import Transaction

from tests.conftest import make_spec


def tx_with_service(service):
    tx = Transaction(make_spec(1, [1, 2, 3]))
    tx.service_received = service
    return tx


class TestFixedRecovery:
    def test_constant_regardless_of_progress(self):
        model = FixedRecovery(4.0)
        assert model.rollback_time(tx_with_service(0.0)) == 4.0
        assert model.rollback_time(tx_with_service(500.0)) == 4.0

    def test_zero_cost_allowed(self):
        assert FixedRecovery(0.0).rollback_time(tx_with_service(10.0)) == 0.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            FixedRecovery(-1.0)


class TestProportionalRecovery:
    def test_scales_with_service(self):
        model = ProportionalRecovery(factor=0.5, floor=2.0)
        assert model.rollback_time(tx_with_service(0.0)) == pytest.approx(2.0)
        assert model.rollback_time(tx_with_service(100.0)) == pytest.approx(52.0)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            ProportionalRecovery(factor=-0.1)
        with pytest.raises(ValueError):
            ProportionalRecovery(factor=0.1, floor=-1.0)

    def test_exceeds_fixed_for_long_transactions(self):
        """The paper's future-work argument: proportional recovery makes
        each abort costlier for transactions that have done more work."""
        fixed = FixedRecovery(4.0)
        proportional = ProportionalRecovery(factor=1.0, floor=0.0)
        long_tx = tx_with_service(200.0)
        assert proportional.rollback_time(long_tx) > fixed.rollback_time(long_tx)
