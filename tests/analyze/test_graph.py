"""Conflict-graph metrics: fractions, degrees, compatible sets."""

import itertools

import pytest

from repro.analysis.program import ProgramNode, TransactionProgram, linear_program
from repro.analysis.relations import Conflict
from repro.analysis.tree import TransactionTree
from repro.analyze.graph import ConflictGraph, GraphMetrics
from repro.rtdb.transaction import Operation, TransactionSpec


def tree(name, items):
    return TransactionTree(linear_program(name, items))


def spec(tid, items, name=None):
    return TransactionSpec(
        tid=tid,
        type_id=tid,
        arrival_time=0.0,
        deadline=100.0,
        operations=tuple(
            Operation(item=item, compute_time=1.0) for item in items
        ),
        program_name=name or f"type{tid}",
    )


def brute_force_max_compatible(graph):
    """Exhaustive maximum compatible set over all instance subsets."""
    n = len(graph.members)
    best = 0
    for size in range(n, 0, -1):
        for subset in itertools.combinations(range(n), size):
            if graph.is_pairwise_compatible(list(subset)):
                return size
        if best:
            break
    return best


class TestPairCounts:
    def test_disjoint_classes_have_no_conflicts(self):
        graph = ConflictGraph(
            [tree("A", [0, 1]), tree("B", [2, 3])], [0, 1]
        )
        metrics = graph.metrics()
        assert metrics.certain_pairs == 0
        assert metrics.compatible_pairs == 1
        assert metrics.conflict_fraction == 0.0
        assert metrics.unsafe_pairs == 0

    def test_overlapping_classes_certainly_conflict(self):
        graph = ConflictGraph(
            [tree("A", [0, 1]), tree("B", [1, 2])], [0, 1]
        )
        metrics = graph.metrics()
        assert metrics.certain_pairs == 1
        assert metrics.compatible_pairs == 0
        assert metrics.unsafe_pairs == 2  # both directions at the root

    def test_same_class_pairs_counted(self):
        graph = ConflictGraph([tree("A", [0, 1])], [0, 0, 0])
        metrics = graph.metrics()
        assert metrics.n == 3
        assert metrics.n_pairs == 3
        assert metrics.certain_pairs == 3  # C(3,2), all overlap fully

    def test_pair_partition_always_holds(self):
        graph = ConflictGraph(
            [tree("A", [0, 1]), tree("B", [1, 2]), tree("C", [4, 5])],
            [0, 0, 1, 2, 2],
        )
        metrics = graph.metrics()
        assert (
            metrics.certain_pairs
            + metrics.conditional_pairs
            + metrics.compatible_pairs
            == metrics.n_pairs
        )

    def test_branching_program_is_conditional(self):
        branching = TransactionProgram(
            "A",
            ProgramNode(
                "A",
                accesses=[0],
                children=[
                    ProgramNode("Aa", accesses=[1, 2]),
                    ProgramNode("Ab", accesses=[3, 4]),
                ],
            ),
        )
        graph = ConflictGraph(
            [TransactionTree(branching), tree("B", [1, 2])], [0, 1]
        )
        assert graph.conflict(0, 1) is Conflict.CONDITIONAL
        metrics = graph.metrics()
        assert metrics.conditional_pairs == 1
        assert metrics.theorem1_no_wait is False

    def test_theorem1_holds_without_conditionals(self):
        graph = ConflictGraph(
            [tree("A", [0, 1]), tree("B", [1, 2])], [0, 1]
        )
        assert graph.metrics().theorem1_no_wait is True


class TestDegrees:
    def test_degrees_count_certain_conflicting_instances(self):
        # A overlaps B; C is isolated.  Two A instances conflict with
        # each other and with the B instance.
        graph = ConflictGraph(
            [tree("A", [0, 1]), tree("B", [1, 2]), tree("C", [4])],
            [0, 0, 1, 2],
        )
        assert graph.degrees() == [2, 2, 2, 0]

    def test_degree_histogram_covers_instances(self):
        graph = ConflictGraph(
            [tree("A", [0, 1]), tree("B", [2, 3])], [0, 0, 1]
        )
        metrics = graph.metrics()
        assert sum(count for _, count in metrics.degree_histogram) == 3
        assert metrics.degree_mean == pytest.approx(2 / 3)


class TestCompatibleSets:
    def test_exact_matches_brute_force_on_small_graphs(self):
        graph = ConflictGraph(
            [
                tree("A", [0, 1]),
                tree("B", [1, 2]),
                tree("C", [3, 4]),
                tree("D", [4, 5]),
                tree("E", [7]),
            ],
            [0, 1, 2, 3, 4, 4],
        )
        chosen, exact = graph.compatible_set()
        assert exact
        assert graph.is_pairwise_compatible(chosen)
        assert len(chosen) == brute_force_max_compatible(graph)

    def test_greedy_is_a_lower_bound(self):
        graph = ConflictGraph(
            [tree("A", [0, 1]), tree("B", [1, 2]), tree("C", [3])],
            [0, 1, 2, 2, 2],
        )
        exact_set, exact = graph.compatible_set()
        greedy_set, greedy_exact = graph.compatible_set(exact_limit=0)
        assert exact and not greedy_exact
        assert graph.is_pairwise_compatible(greedy_set)
        assert len(greedy_set) <= len(exact_set)

    def test_large_workloads_fall_back_to_greedy(self):
        graph = ConflictGraph([tree("A", [0]), tree("B", [1])], [0, 1] * 20)
        chosen, exact = graph.compatible_set()
        assert not exact  # 40 instances > EXACT_SET_LIMIT
        assert graph.is_pairwise_compatible(chosen)

    def test_empty_graph(self):
        graph = ConflictGraph([], [])
        chosen, exact = graph.compatible_set()
        assert chosen == [] and exact
        metrics = graph.metrics()
        assert metrics.n == 0 and metrics.n_pairs == 0


class TestFromSpecs:
    def test_instances_sharing_signature_share_a_class(self):
        specs = [
            spec(0, [0, 1], name="T"),
            spec(1, [0, 1], name="T"),
            spec(2, [2, 3], name="U"),
        ]
        graph = ConflictGraph.from_specs(specs)
        assert len(graph.trees) == 2
        assert graph.members == (0, 0, 1)

    def test_metrics_serialize(self):
        metrics = ConflictGraph.from_specs([spec(0, [0]), spec(1, [0])]).metrics()
        assert isinstance(metrics, GraphMetrics)
        doc = metrics.to_dict()
        assert doc["n"] == 2
        assert doc["degree_histogram"] == [[1, 2]]

    def test_members_validated(self):
        with pytest.raises(ValueError, match="members"):
            ConflictGraph([tree("A", [0])], [0, 1])
