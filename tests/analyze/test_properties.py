"""Property tests: graph metrics vs brute force, prover vs mutations.

Two families:

* conflict-graph metrics computed through the class matrix must equal a
  brute-force enumeration over every instance pair on small random
  program trees;
* the equivalence prover must accept arbitrary well-formed workloads
  (the kernel tables are *derived* from the specs, so they are correct
  by construction) and reject any single-bit mutation of them.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.program import ProgramNode, TransactionProgram, linear_program
from repro.analysis.relations import Conflict, conflict_between
from repro.analysis.tree import TransactionTree
from repro.analyze.equivalence import (
    MUTATION_KINDS,
    MaskMutation,
    mutate_spec_masks,
    mutate_state_table,
    prove_spec_masks,
    prove_state_table,
)
from repro.analyze.graph import ConflictGraph
from repro.core.masks import SpecMasks, StateTable
from repro.rtdb.transaction import Operation, TransactionSpec

DB_SIZE = 8

# -- strategies -------------------------------------------------------------

items_lists = st.lists(
    st.integers(min_value=0, max_value=DB_SIZE - 1),
    min_size=1,
    max_size=4,
    unique=True,
)


@st.composite
def random_trees(draw):
    """A few random programs: linear chains, sometimes one branch."""
    n = draw(st.integers(min_value=1, max_value=4))
    trees = []
    for index in range(n):
        if draw(st.booleans()):
            trees.append(
                TransactionTree(
                    linear_program(f"P{index}", draw(items_lists))
                )
            )
        else:
            root_items = draw(items_lists)
            left = draw(items_lists)
            right = draw(items_lists)
            trees.append(
                TransactionTree(
                    TransactionProgram(
                        f"P{index}",
                        ProgramNode(
                            f"P{index}",
                            accesses=root_items,
                            children=[
                                ProgramNode(f"P{index}a", accesses=left),
                                ProgramNode(f"P{index}b", accesses=right),
                            ],
                        ),
                    )
                )
            )
    members = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=1,
            max_size=6,
        )
    )
    return trees, members


@st.composite
def random_workloads(draw):
    """Small random flat workloads with mixed read/write operations."""
    n = draw(st.integers(min_value=1, max_value=6))
    specs = []
    for tid in range(n):
        items = draw(items_lists)
        operations = tuple(
            Operation(
                item=item,
                compute_time=1.0,
                is_write=draw(st.booleans()),
            )
            for item in items
        )
        specs.append(
            TransactionSpec(
                tid=tid,
                type_id=draw(st.integers(min_value=0, max_value=2)),
                arrival_time=0.0,
                deadline=100.0,
                operations=operations,
                program_name=f"type{tid}",
            )
        )
    return specs


# -- graph metrics vs brute force ------------------------------------------

@settings(max_examples=60, deadline=None)
@given(random_trees())
def test_metrics_match_brute_force_enumeration(trees_members):
    trees, members = trees_members
    graph = ConflictGraph(trees, members)
    metrics = graph.metrics()
    roots = [tree.root.label for tree in trees]

    def pair_relation(a, b):
        return conflict_between(
            trees[members[a]], roots[members[a]],
            trees[members[b]], roots[members[b]],
        )

    n = len(members)
    certain = conditional = compatible = 0
    for a, b in itertools.combinations(range(n), 2):
        relation = pair_relation(a, b)
        if relation is Conflict.CERTAIN:
            certain += 1
        elif relation is Conflict.CONDITIONAL:
            conditional += 1
        else:
            compatible += 1
    assert metrics.certain_pairs == certain
    assert metrics.conditional_pairs == conditional
    assert metrics.compatible_pairs == compatible

    expected_degrees = [
        sum(
            1
            for other in range(n)
            if other != instance
            and pair_relation(instance, other) is Conflict.CERTAIN
        )
        for instance in range(n)
    ]
    assert graph.degrees() == expected_degrees

    best = 0
    for size in range(n, 0, -1):
        if any(
            graph.is_pairwise_compatible(list(subset))
            for subset in itertools.combinations(range(n), size)
        ):
            best = size
            break
    chosen, exact = graph.compatible_set()
    assert exact  # <= 6 instances, always within the exact limit
    assert len(chosen) == best


# -- prover accepts honest tables, rejects mutated ones ---------------------

@settings(max_examples=60, deadline=None)
@given(random_workloads())
def test_prover_accepts_derived_masks(specs):
    assert prove_spec_masks(specs, DB_SIZE) == []


@settings(max_examples=60, deadline=None)
@given(random_workloads(), st.data())
def test_prover_rejects_any_single_bit_mask_mutation(specs, data):
    masks = SpecMasks.from_specs(specs, DB_SIZE)
    kind = data.draw(st.sampled_from(("data", "write", "conflict")))
    row = data.draw(st.integers(min_value=0, max_value=len(specs) - 1))
    max_bit = len(specs) - 1 if kind == "conflict" else DB_SIZE - 1
    bit = data.draw(st.integers(min_value=0, max_value=max_bit))
    mutated = mutate_spec_masks(masks, MaskMutation(kind=kind, row=row, bit=bit))
    found = prove_spec_masks(specs, DB_SIZE, masks=mutated)
    assert found, f"undetected {kind}:{row}:{bit} over {len(specs)} specs"
    assert all(ce.rule in ("ANA001", "ANA002", "ANA004") for ce in found)


@settings(max_examples=40, deadline=None)
@given(random_trees(), st.data())
def test_prover_rejects_any_state_table_mutation(trees_members, data):
    trees, _ = trees_members
    from repro.analysis.table import RelationTable

    table = RelationTable(trees)
    state_table = StateTable(table)
    n = len(state_table.states)
    kind = data.draw(st.sampled_from(("state-safety", "state-conflict")))
    row = data.draw(st.integers(min_value=0, max_value=n - 1))
    col = data.draw(st.integers(min_value=0, max_value=n - 1))
    mutate_state_table(state_table, MaskMutation(kind=kind, row=row, bit=col))
    found = prove_state_table(table, state_table=state_table)
    assert found, f"undetected {kind} at ({row}, {col})"
    assert all(ce.rule in ("ANA003", "ANA004") for ce in found)


def test_mutation_kinds_are_covered():
    # The two property tests above draw from complementary kind sets;
    # together they must cover every advertised mutation kind.
    assert set(MUTATION_KINDS) == {
        "data", "write", "conflict", "state-safety", "state-conflict",
    }
