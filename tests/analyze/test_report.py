"""The analyze reporters: text layout and the prediction digest."""

import dataclasses

from repro.analyze.feasibility import CellPrediction
from repro.analyze.report import render_analysis_digest, render_text
from repro.analyze.runner import analyze_specs
from repro.rtdb.transaction import Operation, TransactionSpec


def spec(tid, items, deadline=100.0):
    return TransactionSpec(
        tid=tid,
        type_id=tid,
        arrival_time=0.0,
        deadline=deadline,
        operations=tuple(
            Operation(item=item, compute_time=1.0) for item in items
        ),
        program_name=f"type{tid}",
    )


def prediction(x, seed, miss_floor=0.0):
    return CellPrediction(
        x=x, seed=seed, n=10, infeasible=int(10 * miss_floor),
        min_slack_ms=1.0, mean_slack_ratio=2.0, cpu_utilization=0.5,
        io_utilization=0.0, conflict_density=0.2, regime="light",
        predicted_miss_floor=miss_floor,
    )


@dataclasses.dataclass
class FakeFigure:
    y_label: str
    series: dict


class TestRenderText:
    def test_failed_verdicts_always_show_detail(self):
        result = analyze_specs([spec(0, [0], deadline=0.5)])
        text = render_text(result)
        assert "ANA005" in text and "FAIL" in text
        assert "tid 0" in text  # detail line shown without --verbose
        assert "ANALYSIS FAILED: 1 verdict(s)" in text

    def test_clean_report_is_compact(self):
        result = analyze_specs([spec(0, [0, 1]), spec(1, [2])])
        text = render_text(result)
        assert "ANALYSIS CLEAN" in text
        assert "tid" not in text


class TestDigest:
    def test_observed_miss_rates_rendered_next_to_floor(self):
        result = analyze_specs([spec(0, [0, 1])])
        result.cells = [prediction(1.0, 1), prediction(2.0, 1)]
        figure = FakeFigure(
            y_label="Miss percent",
            series={"CCA": [(1.0, 3.5), (2.0, 8.0)]},
        )
        digest = render_analysis_digest(result, figure)
        assert "observed CCA 3.5%" in digest
        assert "BELOW STATIC FLOOR" not in digest

    def test_impossible_observation_is_flagged(self):
        result = analyze_specs([spec(0, [0, 1])])
        result.cells = [prediction(1.0, 1, miss_floor=0.5)]
        figure = FakeFigure(
            y_label="Miss percent", series={"CCA": [(1.0, 10.0)]}
        )
        # Observed 10% < static floor 50%: impossible, must be flagged.
        assert "BELOW STATIC FLOOR" in render_analysis_digest(result, figure)

    def test_non_miss_figures_skip_observed_columns(self):
        result = analyze_specs([spec(0, [0, 1])])
        result.cells = [prediction(1.0, 1)]
        figure = FakeFigure(
            y_label="Restarts per transaction", series={"CCA": [(1.0, 0.2)]}
        )
        assert "observed" not in render_analysis_digest(result, figure)
