"""Static feasibility bounds and regime prediction."""

import pytest

from repro.analyze.feasibility import (
    CellPrediction,
    classify_regime,
    predict_cell,
    predict_specs,
)
from repro.experiments.config import DISK_BASE, MAIN_MEMORY_BASE
from repro.rtdb.transaction import Operation, TransactionSpec
from repro.workload.generator import generate_workload


def spec(tid, arrival, deadline, compute=5.0, items=(0,)):
    return TransactionSpec(
        tid=tid,
        type_id=tid,
        arrival_time=arrival,
        deadline=deadline,
        operations=tuple(
            Operation(item=item, compute_time=compute) for item in items
        ),
        program_name=f"type{tid}",
    )


class TestRegimes:
    def test_thresholds(self):
        assert classify_regime(0.2, 0.1) == "light"
        assert classify_regime(0.7, 0.0) == "moderate"
        assert classify_regime(0.0, 0.85) == "moderate"
        assert classify_regime(1.0, 0.0) == "saturated"
        assert classify_regime(0.3, 1.2) == "saturated"


class TestPredictSpecs:
    def test_feasible_workload_has_no_floor(self):
        specs = [spec(0, 0.0, 100.0), spec(1, 50.0, 150.0)]
        predicted = predict_specs(specs, x=4.0, seed=2)
        assert predicted.x == 4.0 and predicted.seed == 2
        assert predicted.n == 2
        assert predicted.infeasible == 0
        assert predicted.predicted_miss_floor == 0.0
        assert predicted.min_slack_ms == pytest.approx(95.0)

    def test_infeasible_transactions_floor_the_miss_rate(self):
        specs = [
            spec(0, 0.0, 2.0),    # needs 5 ms, has 2 -> infeasible
            spec(1, 0.0, 100.0),
        ]
        predicted = predict_specs(specs, x=1.0, seed=1)
        assert predicted.infeasible == 1
        assert predicted.predicted_miss_floor == pytest.approx(0.5)
        assert predicted.min_slack_ms == pytest.approx(-3.0)

    def test_utilization_scales_with_arrival_density(self):
        sparse = predict_specs(
            [spec(i, 100.0 * i, 100.0 * i + 50.0) for i in range(4)], 0, 0
        )
        dense = predict_specs(
            [spec(i, 1.0 * i, 1.0 * i + 50.0) for i in range(4)], 0, 0
        )
        assert dense.cpu_utilization > sparse.cpu_utilization
        assert sparse.io_utilization == 0.0

    def test_empty_workload(self):
        predicted = predict_specs([], x=1.0, seed=1)
        assert predicted.n == 0
        assert predicted.regime == "light"
        assert predicted.predicted_miss_floor == 0.0

    def test_to_dict_shape(self):
        doc = predict_specs([spec(0, 0.0, 100.0)], x=3.0, seed=7).to_dict()
        assert doc["cell"] == {"x": 3.0, "seed": 7}
        assert "regime" in doc["predicted"]
        assert "x" not in doc["predicted"]


class TestPredictCell:
    def test_generated_workloads_are_feasible_by_construction(self):
        # deadline = arrival + resource_time * (1 + slack), slack >= 0.2
        config = MAIN_MEMORY_BASE.replace(n_transactions=100)
        predicted = predict_cell(config, x=config.arrival_rate, seed=1)
        assert isinstance(predicted, CellPrediction)
        assert predicted.n == 100
        assert predicted.infeasible == 0
        assert predicted.mean_slack_ratio >= config.min_slack

    def test_disk_workloads_show_io_demand(self):
        config = DISK_BASE.replace(n_transactions=100)
        predicted = predict_cell(config, x=config.arrival_rate, seed=1)
        assert predicted.io_utilization > 0.0

    def test_prediction_is_deterministic(self):
        config = MAIN_MEMORY_BASE.replace(n_transactions=80)
        assert predict_cell(config, 4.0, 3) == predict_cell(config, 4.0, 3)

    def test_conflict_density_tracks_db_size(self):
        small_db = predict_cell(
            MAIN_MEMORY_BASE.replace(n_transactions=80, db_size=30), 1.0, 1
        )
        big_db = predict_cell(
            MAIN_MEMORY_BASE.replace(n_transactions=80, db_size=1000), 1.0, 1
        )
        assert big_db.conflict_density < small_db.conflict_density


def test_generated_workload_matches_predict_specs():
    config = MAIN_MEMORY_BASE.replace(n_transactions=60)
    specs = generate_workload(config, seed=5)
    assert predict_specs(specs, 2.0, 5) == predict_cell(config, 2.0, 5)
