"""The equivalence prover: exhaustive checks, mutations, counterexamples."""

import pytest

from repro.analysis.program import ProgramNode, TransactionProgram, linear_program
from repro.analysis.table import RelationTable
from repro.analysis.tree import TransactionTree
from repro.analyze.equivalence import (
    MUTATION_KINDS,
    MaskMutation,
    mutate_spec_masks,
    mutate_state_table,
    parse_mutation,
    prove_spec_masks,
    prove_state_table,
    spec_classes,
)
from repro.core.masks import SpecMasks, StateTable
from repro.experiments.config import MAIN_MEMORY_BASE
from repro.rtdb.transaction import Operation, TransactionSpec
from repro.workload.generator import generate_workload

DB_SIZE = 8


def spec(tid, items, writes=None, name=None):
    writes = set(items) if writes is None else set(writes)
    return TransactionSpec(
        tid=tid,
        type_id=tid,
        arrival_time=0.0,
        deadline=100.0,
        operations=tuple(
            Operation(item=item, compute_time=1.0, is_write=item in writes)
            for item in items
        ),
        program_name=name or f"type{tid}",
    )


@pytest.fixture(scope="module")
def paper_workload():
    config = MAIN_MEMORY_BASE.replace(n_transactions=120)
    return generate_workload(config, seed=1), config.db_size


class TestCleanWorkloads:
    def test_disjoint_pair_proves_clean(self):
        specs = [spec(0, [0, 1]), spec(1, [2, 3])]
        assert prove_spec_masks(specs, DB_SIZE) == []

    def test_overlapping_pair_proves_clean(self):
        specs = [spec(0, [0, 1, 2]), spec(1, [2, 3])]
        assert prove_spec_masks(specs, DB_SIZE) == []

    def test_read_write_mix_proves_clean(self):
        specs = [
            spec(0, [0, 1, 2], writes={1}),
            spec(1, [1, 3], writes=set()),
            spec(2, [2, 4], writes={2, 4}),
        ]
        assert prove_spec_masks(specs, DB_SIZE) == []

    def test_paper_workload_proves_clean(self, paper_workload):
        specs, db_size = paper_workload
        assert prove_spec_masks(specs, db_size) == []

    def test_duplicate_instances_collapse_to_classes(self):
        specs = [spec(i, [0, 1], name="shared") for i in range(6)]
        assert len(spec_classes(specs)) == 1
        assert prove_spec_masks(specs, DB_SIZE) == []

    def test_classes_split_on_write_flag(self):
        read = spec(0, [0, 1], writes=set())
        write = spec(1, [0, 1])
        assert len(spec_classes([read, write])) == 2


class TestMaskMutations:
    def test_every_mask_kind_is_caught(self, paper_workload):
        specs, db_size = paper_workload
        masks = SpecMasks.from_specs(specs, db_size)
        for kind, expected_rule in (
            ("data", "ANA001"),
            ("write", "ANA001"),
            ("conflict", "ANA001"),
        ):
            mutated = mutate_spec_masks(
                masks, MaskMutation(kind=kind, row=0, bit=3)
            )
            found = prove_spec_masks(specs, db_size, masks=mutated)
            assert found, f"{kind} mutation went undetected"
            assert any(ce.rule == expected_rule for ce in found)

    def test_counterexample_is_minimal_and_descriptive(self):
        specs = [spec(0, [0, 1]), spec(1, [2, 3])]
        masks = mutate_spec_masks(
            SpecMasks.from_specs(specs, DB_SIZE),
            MaskMutation(kind="data", row=0, bit=2),
        )
        found = prove_spec_masks(specs, DB_SIZE, masks=masks)
        first = found[0]
        assert first.rule == "ANA001"
        assert first.relation == "data-mask"
        assert "slot 0" in first.pair[0]
        assert "expected" in first.describe()
        as_dict = first.to_dict()
        assert as_dict["rule"] == "ANA001"
        assert as_dict["pair"][0].startswith("slot 0")

    def test_write_mutation_surfaces_in_safety_states(self):
        # Flipping a write bit changes safety answers for prefix states
        # even when the data mask (and thus conflict) stays intact.
        specs = [spec(0, [0, 1], writes={0}), spec(1, [1, 2], writes={2})]
        masks = mutate_spec_masks(
            SpecMasks.from_specs(specs, DB_SIZE),
            MaskMutation(kind="write", row=1, bit=1),
        )
        found = prove_spec_masks(specs, DB_SIZE, masks=masks)
        assert any(ce.rule in ("ANA001", "ANA002") for ce in found)

    def test_limit_caps_counterexamples(self, paper_workload):
        specs, db_size = paper_workload
        mutated = mutate_spec_masks(
            SpecMasks.from_specs(specs, db_size),
            MaskMutation(kind="write", row=0, bit=1),
        )
        found = prove_spec_masks(specs, db_size, masks=mutated, limit=2)
        assert len(found) <= 2

    def test_originals_never_modified(self):
        specs = [spec(0, [0, 1]), spec(1, [2, 3])]
        masks = SpecMasks.from_specs(specs, DB_SIZE)
        before = (list(masks.data), list(masks.write), list(masks.conflict_slots))
        for kind in ("data", "write", "conflict"):
            mutate_spec_masks(masks, MaskMutation(kind=kind, row=0, bit=1))
        assert (
            list(masks.data),
            list(masks.write),
            list(masks.conflict_slots),
        ) == before

    def test_out_of_range_rows_rejected(self):
        specs = [spec(0, [0])]
        masks = SpecMasks.from_specs(specs, DB_SIZE)
        with pytest.raises(ValueError, match="out of range"):
            mutate_spec_masks(masks, MaskMutation(kind="data", row=9, bit=0))
        with pytest.raises(ValueError, match="out of range"):
            mutate_spec_masks(
                masks, MaskMutation(kind="conflict", row=0, bit=9)
            )
        with pytest.raises(ValueError, match="does not apply"):
            mutate_spec_masks(
                masks, MaskMutation(kind="state-safety", row=0, bit=0)
            )


BRANCHING = TransactionProgram(
    "A",
    ProgramNode(
        "A",
        accesses=[0],
        children=[
            ProgramNode("Aa", accesses=[1, 2]),
            ProgramNode("Ab", accesses=[3, 4]),
        ],
    ),
)


def relation_table():
    return RelationTable(
        [
            TransactionTree(BRANCHING),
            TransactionTree(linear_program("B", [1, 2])),
            TransactionTree(linear_program("C", [5, 6])),
        ]
    )


class TestStateTableProver:
    def test_clean_table_proves_clean(self):
        assert prove_state_table(relation_table()) == []

    def test_state_mutations_are_caught(self):
        for kind in ("state-safety", "state-conflict"):
            table = relation_table()
            state_table = mutate_state_table(
                StateTable(table), MaskMutation(kind=kind, row=1, bit=2)
            )
            found = prove_state_table(table, state_table=state_table)
            assert found, f"{kind} mutation went undetected"
            assert any(ce.rule in ("ANA003", "ANA004") for ce in found)

    def test_counterexample_names_the_state_pair(self):
        table = relation_table()
        state_table = mutate_state_table(
            StateTable(table), MaskMutation(kind="state-safety", row=0, bit=1)
        )
        found = prove_state_table(table, state_table=state_table)
        first = [ce for ce in found if ce.rule == "ANA003"][0]
        assert "@" in first.pair[0]  # program@label
        assert first.expected != first.actual

    def test_out_of_range_state_mutation_rejected(self):
        state_table = StateTable(relation_table())
        n = len(state_table.states)
        with pytest.raises(ValueError, match="out of range"):
            mutate_state_table(
                state_table, MaskMutation(kind="state-safety", row=n, bit=0)
            )
        with pytest.raises(ValueError, match="does not apply"):
            mutate_state_table(
                state_table, MaskMutation(kind="data", row=0, bit=0)
            )


class TestParseMutation:
    def test_round_trip(self):
        for kind in MUTATION_KINDS:
            mutation = parse_mutation(f"{kind}:3:7")
            assert mutation == MaskMutation(kind=kind, row=3, bit=7)

    def test_malformed_specs_rejected(self):
        for bad in ("data", "data:1", "data:1:2:3", "bogus:1:2",
                    "data:x:2", "data:1:y", "data:-1:2"):
            with pytest.raises(ValueError):
                parse_mutation(bad)
