"""The analysis runner: verdict assembly, sampling, manifest section."""

import pytest

from repro.analyze.equivalence import parse_mutation
from repro.analyze.rules import all_rules
from repro.analyze.runner import (
    AnalysisResult,
    analysis_section,
    analyze_experiment,
    analyze_specs,
    analyze_workload,
)
from repro.experiments.config import ExperimentScale
from repro.obs.manifest import build_manifest, validate_manifest
from repro.obs.registry import MetricsRegistry
from repro.rtdb.transaction import Operation, TransactionSpec

ALL_CODES = [rule.code for rule in all_rules()]


def spec(tid, items, arrival=0.0, deadline=100.0):
    return TransactionSpec(
        tid=tid,
        type_id=tid,
        arrival_time=arrival,
        deadline=deadline,
        operations=tuple(
            Operation(item=item, compute_time=1.0) for item in items
        ),
        program_name=f"type{tid}",
    )


class TestAnalyzeWorkload:
    def test_emits_one_verdict_per_rule_in_code_order(self):
        specs = [spec(0, [0, 1]), spec(1, [2, 3])]
        verdicts, _, _ = analyze_workload(specs, db_size=8)
        assert [v.code for v in verdicts] == ALL_CODES
        assert all(v.passed for v in verdicts)

    def test_mask_mutation_fails_the_matching_verdict(self):
        specs = [spec(0, [0, 1]), spec(1, [1, 2])]
        verdicts, _, _ = analyze_workload(
            specs, db_size=8, mutation=parse_mutation("data:0:3")
        )
        by_code = {v.code: v for v in verdicts}
        assert not by_code["ANA001"].passed
        assert by_code["ANA001"].counterexample is not None
        assert "counterexample" in by_code["ANA001"].detail

    def test_state_mutation_fails_state_verdict(self):
        specs = [spec(0, [0, 1]), spec(1, [1, 2])]
        verdicts, _, _ = analyze_workload(
            specs, db_size=8, mutation=parse_mutation("state-conflict:0:1")
        )
        by_code = {v.code: v for v in verdicts}
        assert not by_code["ANA003"].passed
        # The mask passes are untouched by a state-table corruption.
        assert by_code["ANA001"].passed and by_code["ANA002"].passed

    def test_infeasible_deadline_fails_ana005(self):
        specs = [spec(0, [0], arrival=0.0, deadline=0.5)]  # needs 1 ms
        verdicts, _, _ = analyze_workload(specs, db_size=4)
        by_code = {v.code: v for v in verdicts}
        assert not by_code["ANA005"].passed
        assert "tid 0" in by_code["ANA005"].detail


class TestAnalyzeSpecs:
    def test_infers_db_size(self):
        result = analyze_specs([spec(0, [0, 5]), spec(1, [2])])
        assert result.db_size == 6
        assert result.experiment is None
        assert result.clean
        assert len(result.cells) == 1

    def test_explicit_db_size_wins(self):
        assert analyze_specs([spec(0, [0])], db_size=32).db_size == 32

    def test_empty_workload(self):
        result = analyze_specs([])
        assert result.n_transactions == 0
        assert result.cells == []


class TestAnalyzeExperiment:
    def test_sweep_experiment_analyzes_clean(self):
        result = analyze_experiment("fig4a", ExperimentScale.quick())
        assert isinstance(result, AnalysisResult)
        assert result.clean
        assert result.experiment == "fig4a"
        assert result.scale == "quick"
        # quick scale: 10 x values x 3 seeds, policies deduplicated.
        assert len(result.cells) == 30
        assert result.sample_x is not None

    def test_table_experiment_uses_base_config(self):
        result = analyze_experiment("table1", ExperimentScale.quick())
        assert result.clean
        assert len(result.cells) == 3  # one per quick main-memory seed
        assert result.sample_x == pytest.approx(result.cells[0].x)

    def test_no_cells_mode_skips_predictions(self):
        result = analyze_experiment(
            "fig4a", ExperimentScale.quick(), predict_cells=False
        )
        assert result.cells == []
        assert result.clean

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            analyze_experiment("fig99", ExperimentScale.quick())

    def test_mutation_dirties_the_result(self):
        result = analyze_experiment(
            "fig4a",
            ExperimentScale.quick(),
            mutation=parse_mutation("write:0:1"),
            predict_cells=False,
        )
        assert not result.clean


class TestAnalysisSection:
    def test_section_embeds_in_a_valid_manifest(self):
        result = analyze_experiment(
            "table1", ExperimentScale.quick()
        )
        section = analysis_section(result)
        assert section["enabled"] is True
        assert section["clean"] is True
        manifest = build_manifest(
            experiment="table1",
            scale="quick",
            cells=[],
            metrics_snapshot=MetricsRegistry().snapshot(),
            analysis=section,
        )
        assert validate_manifest(manifest) == []

    def test_to_dict_round_trips_through_json(self):
        import json

        result = analyze_specs([spec(0, [0, 1]), spec(1, [1, 2])])
        doc = json.loads(json.dumps(result.to_dict()))
        assert doc["clean"] is True
        assert [v["code"] for v in doc["verdicts"]] == ALL_CODES
