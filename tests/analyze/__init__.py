"""Static workload analyzer tests."""
