"""``repro analyze`` CLI: exit codes, reporters, modes."""

import json

import pytest

from repro.analyze.cli import analyze_main, build_analyze_parser
from repro.analyze.report import JSON_SCHEMA_VERSION
from repro.analyze.rules import all_rules
from repro.cli import main
from repro.rtdb.transaction import Operation, TransactionSpec
from repro.workload.serialization import save_workload


@pytest.fixture
def workload_file(tmp_path):
    specs = [
        TransactionSpec(
            tid=tid,
            type_id=tid,
            arrival_time=0.0,
            deadline=100.0,
            operations=tuple(
                Operation(item=item, compute_time=1.0)
                for item in items
            ),
            program_name=f"type{tid}",
        )
        for tid, items in ((0, [0, 1]), (1, [2, 3]), (2, [1, 2]))
    ]
    return save_workload(specs, tmp_path / "load.jsonl")


class TestUsageErrors:
    def test_no_arguments(self, capsys):
        assert analyze_main([]) == 2
        assert "required" in capsys.readouterr().err

    def test_unknown_experiment(self, capsys):
        assert analyze_main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "fig4a" in err  # lists the known ids

    def test_malformed_mutation(self, capsys):
        assert analyze_main(["fig4a", "--mutate", "bogus"]) == 2
        assert "KIND:ROW:BIT" in capsys.readouterr().err

    def test_missing_workload_file(self, tmp_path, capsys):
        assert analyze_main(["--workload", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_bad_db_size(self, workload_file, capsys):
        assert analyze_main(
            ["--workload", str(workload_file), "--db-size", "0"]
        ) == 2
        assert "--db-size" in capsys.readouterr().err


class TestListRules:
    def test_catalog_covers_all_rules(self, capsys):
        assert analyze_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.code in out
            assert rule.name in out


class TestExperimentMode:
    def test_table1_analyzes_clean(self, capsys):
        assert analyze_main(["table1", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "ANALYSIS CLEAN" in out
        assert "ANA001" in out and "PASS" in out

    def test_sweep_with_cells_and_verbose(self, capsys):
        assert analyze_main(
            ["fig4a", "--scale", "quick", "--verbose"]
        ) == 0
        out = capsys.readouterr().out
        assert "cells: 30 predicted" in out
        assert "x=1 seed=1" in out

    def test_no_cells_skips_predictions(self, capsys):
        assert analyze_main(["fig4a", "--scale", "quick", "--no-cells"]) == 0
        assert "cells:" not in capsys.readouterr().out

    def test_json_report_schema(self, capsys):
        assert analyze_main(
            ["table1", "--scale", "quick", "--format", "json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "repro-analysis"
        assert doc["schema"] == JSON_SCHEMA_VERSION
        assert doc["clean"] is True
        assert [v["code"] for v in doc["verdicts"]] == [
            rule.code for rule in all_rules()
        ]

    def test_mutated_masks_exit_one_with_counterexample(self, capsys):
        assert analyze_main(
            ["table1", "--scale", "quick", "--mutate", "data:0:3",
             "--no-cells"]
        ) == 1
        out = capsys.readouterr().out
        assert "ANALYSIS FAILED" in out
        assert "FAIL" in out
        assert "expected" in out  # the minimal counterexample

    def test_every_mutation_kind_exits_one(self, capsys):
        for kind_spec in ("data:0:1", "write:0:1", "conflict:0:1",
                          "state-safety:0:1", "state-conflict:0:1"):
            assert analyze_main(
                ["table1", "--scale", "quick", "--mutate", kind_spec,
                 "--no-cells"]
            ) == 1, f"{kind_spec} did not fail the analysis"
            capsys.readouterr()


class TestWorkloadMode:
    def test_saved_workload_analyzes_clean(self, workload_file, capsys):
        assert analyze_main(["--workload", str(workload_file)]) == 0
        out = capsys.readouterr().out
        assert "analyze: workload" in out
        assert "ANALYSIS CLEAN" in out

    def test_explicit_db_size(self, workload_file, capsys):
        assert analyze_main(
            ["--workload", str(workload_file), "--db-size", "16"]
        ) == 0
        assert "db 16" in capsys.readouterr().out

    def test_workload_mutation_detected(self, workload_file, capsys):
        assert analyze_main(
            ["--workload", str(workload_file), "--mutate", "write:1:2"]
        ) == 1


class TestMainDispatch:
    def test_analyze_subcommand_routes(self, capsys):
        assert main(["analyze", "--list-rules"]) == 0
        assert "ANA001" in capsys.readouterr().out

    def test_parser_has_analyze_flag(self):
        args = build_analyze_parser().parse_args(["fig4a"])
        assert args.cells is True
        from repro.cli import build_parser

        args = build_parser().parse_args(["fig4a", "--analyze"])
        assert args.analyze is True
