"""Cross-validation: the deterministic engine lives inside the model.

The controlled engine claims to be the *real* scheduler plus recorded
choice points — option 0 everywhere must therefore reproduce the plain
deterministic simulator bit-for-bit, and the deterministic trace is by
construction a member of every exploration (the DFS's first run is the
empty choice vector).  Hypothesis drives random small workloads through
both engines and requires identical traces and identical certifier
verdicts; the bundled workloads pin the same property exactly.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.certify.certifier import certify_events
from repro.config import SimulationConfig
from repro.core.policy import make_policy
from repro.core.simulator import RTDBSimulator
from repro.modelcheck.bundle import trace_digest
from repro.modelcheck.explorer import run_schedule
from repro.modelcheck.workloads import ALL_MC_POLICIES, all_cases
from repro.tracing import EventLog
from repro.workload.generator import generate_workload

configs = st.builds(
    SimulationConfig,
    n_transaction_types=st.integers(min_value=2, max_value=6),
    updates_mean=st.floats(min_value=2.0, max_value=5.0),
    updates_std=st.floats(min_value=0.0, max_value=2.0),
    db_size=st.integers(min_value=4, max_value=30),
    arrival_rate=st.floats(min_value=1.0, max_value=15.0),
    n_transactions=st.integers(min_value=2, max_value=4),
    abort_cost=st.floats(min_value=0.0, max_value=6.0),
    disk_resident=st.booleans(),
)

policies = st.sampled_from(ALL_MC_POLICIES)

seeds = st.integers(min_value=0, max_value=5_000)


def plain_trace(config, specs, policy_name):
    """The deterministic simulator's trace (and error, if it raised)."""
    log = EventLog()
    sim = RTDBSimulator(
        config,
        specs,
        make_policy(policy_name),
        sanitize=True,
        trace=log,
        max_events=100_000,
    )
    error = None
    try:
        sim.run()
    except Exception as exc:  # noqa: BLE001 - compared against the model
        error = f"{type(exc).__name__}: {exc}"
    return log.events, error


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(config=configs, policy=policies, seed=seeds)
def test_default_schedule_matches_deterministic_simulator(
    config, policy, seed
):
    specs = generate_workload(config, seed)
    events, error = plain_trace(config, specs, policy)
    run = run_schedule(config, specs, policy)

    if run.violation is None:
        # The controlled engine's empty-prefix run IS the deterministic
        # schedule: same events, and both certify identically.
        assert error is None
        assert run.events == events
        assert certify_events(events, specs, policy).certified
    elif run.violation.source.startswith(("RTS", "CERT")):
        # A sanitizer/certifier finding fires identically in both paths
        # (same trace, same code) — it is a property of the schedule,
        # not of the exploration harness.
        if run.violation.source.startswith("RTS"):
            assert error is not None
            assert run.violation.source in error
        else:
            assert error is None
            cert = certify_events(events, specs, policy)
            assert not cert.certified
        assert run.events == events
    else:
        # A state-check/liveness finding stops the controlled run early;
        # its trace must still be a prefix of the deterministic one.
        assert run.events == events[: len(run.events)]


def test_bundled_default_schedules_match_bit_for_bit():
    for case in all_cases():
        for policy in ALL_MC_POLICIES:
            events, error = plain_trace(case.config, case.specs, policy)
            run = run_schedule(case.config, case.specs, policy)
            assert error is None and run.violation is None
            assert trace_digest(run.events) == trace_digest(events), (
                f"{case.name}/{policy}: controlled default schedule "
                f"diverged from the deterministic engine"
            )
