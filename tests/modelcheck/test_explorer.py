"""Exploration mechanics: exhaustiveness, POR, bounds, minimization.

The bundled workloads are the ground truth here: each was built to pin
one schedule-space shape (no ties, simultaneous arrivals, commuting
ties, conflicting ties), so the expected schedule counts below are not
incidental — a change to them means the branching model changed.
"""

from __future__ import annotations

import pytest

from repro.modelcheck.explorer import explore, run_schedule
from repro.modelcheck.workloads import ALL_MC_POLICIES, all_cases, get_case


def explore_case(name, policy, **kwargs):
    case = get_case(name)
    return explore(
        case.config, case.specs, policy, workload_name=name, **kwargs
    )


class TestCleanExploration:
    @pytest.mark.parametrize("case", [c.name for c in all_cases()])
    @pytest.mark.parametrize("policy", ALL_MC_POLICIES)
    def test_every_bundled_workload_is_clean_under_every_policy(
        self, case, policy
    ):
        result = explore_case(case, policy)
        assert result.clean, result.counterexample
        assert not result.truncated  # the verdict is total, not bounded
        assert result.schedules >= 1

    def test_conflicting_ties_branch(self):
        # Two equal-deadline transactions sharing an item: each tie
        # resolution is a genuinely different schedule.
        result = explore_case("tie-conflict", "EDF-HP")
        assert result.schedules == 4
        assert result.choice_points == 2

    def test_simultaneous_arrivals_branch(self):
        result = explore_case("handoff-disk", "FCFS")
        assert result.schedules == 3

    def test_no_ties_means_one_schedule(self):
        # Distinct deadlines and arrivals: the deterministic engine's
        # schedule is the whole reachable space.
        result = explore_case("contended-pair", "EDF-HP")
        assert result.schedules == 1
        assert result.choice_points == 0


class TestPartialOrderReduction:
    def test_commuting_ties_are_pruned(self):
        # tie-twins touches disjoint items, so every tie-break order
        # commutes and POR collapses the space to the default schedule.
        reduced = explore_case("tie-twins", "EDF-HP")
        naive = explore_case("tie-twins", "EDF-HP", por=False)
        assert reduced.schedules == 1
        assert reduced.por_skipped == 2
        assert naive.schedules == 4
        assert naive.por_skipped == 0
        assert naive.events_total / reduced.events_total >= 2.0

    def test_por_never_prunes_conflicting_ties(self):
        reduced = explore_case("tie-conflict", "EDF-HP")
        naive = explore_case("tie-conflict", "EDF-HP", por=False)
        assert reduced.schedules == naive.schedules == 4

    def test_por_preserves_verdicts_everywhere(self):
        for case in all_cases():
            for policy in ALL_MC_POLICIES:
                reduced = explore_case(case.name, policy)
                naive = explore_case(case.name, policy, por=False)
                assert reduced.clean == naive.clean
                assert reduced.schedules <= naive.schedules


class TestBounds:
    def test_max_schedules_truncates(self):
        result = explore_case("tie-conflict", "EDF-HP", max_schedules=2)
        assert result.truncated
        assert result.schedules == 2
        assert result.clean  # bounded verdict, still no violation

    def test_depth_zero_checks_only_the_default_schedule(self):
        result = explore_case("tie-conflict", "EDF-HP", depth=1)
        assert result.schedules < 4
        assert result.truncated


class TestRunSchedule:
    def test_empty_prefix_is_the_deterministic_schedule(self):
        case = get_case("tie-conflict")
        run = run_schedule(case.config, case.specs, "EDF-HP")
        assert run.violation is None
        assert run.choices == tuple(r.chosen for r in run.trail)
        assert all(c == 0 for c in run.choices)
        assert run.n_committed == len(case.specs)

    def test_alternative_prefix_changes_the_trace(self):
        case = get_case("tie-conflict")
        default = run_schedule(case.config, case.specs, "EDF-HP")
        flipped = run_schedule(case.config, case.specs, "EDF-HP", (1,))
        assert flipped.violation is None
        assert flipped.choices[0] == 1
        assert flipped.events != default.events

    def test_same_prefix_replays_bit_for_bit(self):
        case = get_case("handoff-disk")
        first = run_schedule(case.config, case.specs, "FCFS", (1,))
        second = run_schedule(case.config, case.specs, "FCFS", (1,))
        assert first.events == second.events
        assert first.choices == second.choices
