"""Seeded scheduler bugs: each must be caught with its expected rule.

This is the checker's own mutation gate, mirroring the sanitizer's
``tests/checks/test_mutations.py``: if an MC rule regresses into a
no-op, the mutant it exists to catch stops failing and this file goes
red.  Every counterexample must also survive the bundle round-trip —
written, reloaded, and replayed bit-for-bit.
"""

from __future__ import annotations

import pytest

from repro.modelcheck.bundle import (
    MC_BUNDLE_KIND,
    bundle_kind,
    load_mc_bundle,
    replay_mc_bundle,
    trace_digest,
    write_mc_bundle,
)
from repro.modelcheck.explorer import explore
from repro.modelcheck.mutants import all_mutants, get_mutant
from repro.modelcheck.rules import get_rule
from repro.modelcheck.workloads import get_case

MUTANTS = [m.name for m in all_mutants()]


def explore_mutant(name):
    mutant = get_mutant(name)
    case = get_case(mutant.demo_workload)
    return (
        explore(
            case.config,
            case.specs,
            mutant.demo_policy,
            workload_name=case.name,
            mutant=mutant,
        ),
        case,
    )


class TestMutantsAreCaught:
    @pytest.mark.parametrize("name", MUTANTS)
    def test_mutant_fires_its_expected_rule(self, name):
        mutant = get_mutant(name)
        result, _ = explore_mutant(name)
        assert not result.clean, f"{name} was not caught"
        assert result.counterexample.violation.rule == mutant.expect_rule

    @pytest.mark.parametrize("name", MUTANTS)
    def test_counterexample_is_minimal(self, name):
        # Greedy shrinking strips every choice that is not needed to
        # reproduce; these seeded bugs all fire on the default schedule.
        result, _ = explore_mutant(name)
        assert result.counterexample.choices == ()

    def test_mutant_registry_is_well_formed(self):
        for mutant in all_mutants():
            assert mutant.summary
            get_rule(mutant.expect_rule)  # raises if unknown
            get_case(mutant.demo_workload)

    def test_unknown_mutant_raises_with_known_names(self):
        with pytest.raises(KeyError, match="inverted-wound"):
            get_mutant("nope")


class TestBundleRoundTrip:
    @pytest.mark.parametrize("name", MUTANTS)
    def test_bundle_replays_bit_for_bit(self, name, tmp_path):
        result, case = explore_mutant(name)
        bundle = write_mc_bundle(tmp_path / name, result, case.config, case.specs)
        assert bundle_kind(bundle) == MC_BUNDLE_KIND
        report = replay_mc_bundle(bundle)
        assert report["matched"], report
        assert report["trace_matched"]
        assert report["actual_digest"] == report["expected_digest"]

    def test_bundle_document_shape(self, tmp_path):
        result, case = explore_mutant("wait-instead-of-wound")
        bundle = write_mc_bundle(tmp_path / "b", result, case.config, case.specs)
        doc = load_mc_bundle(bundle)
        assert doc["policy"] == "CCA"
        assert doc["mutant"] == "wait-instead-of-wound"
        assert doc["violation"]["rule"] == "MC001"
        assert (bundle / "workload.jsonl").exists()
        assert (bundle / "trace.jsonl").exists()
        assert doc["trace_digest"] == trace_digest(
            result.counterexample.events
        )

    def test_clean_exploration_refuses_to_bundle(self, tmp_path):
        case = get_case("tie-twins")
        result = explore(
            case.config, case.specs, "EDF-HP", workload_name=case.name
        )
        with pytest.raises(ValueError, match="clean"):
            write_mc_bundle(tmp_path / "clean", result, case.config, case.specs)

    def test_fixed_bug_is_reported_as_not_matched(self, tmp_path):
        # Replaying a mutant bundle *without* the mutant models "the
        # defect got fixed": the rule no longer fires and replay says so.
        result, case = explore_mutant("wait-instead-of-wound")
        bundle = write_mc_bundle(tmp_path / "b", result, case.config, case.specs)
        doc = load_mc_bundle(bundle)
        doc["mutant"] = None
        import json

        (bundle / "bundle.json").write_text(json.dumps(doc))
        report = replay_mc_bundle(bundle)
        assert not report["matched"]
        assert report["actual"] is None  # the run is clean now

    def test_load_rejects_foreign_documents(self, tmp_path):
        import json

        (tmp_path / "bundle.json").write_text(
            json.dumps({"kind": "something-else"})
        )
        assert bundle_kind(tmp_path) == "something-else"
        with pytest.raises(ValueError, match="not a model-check bundle"):
            load_mc_bundle(tmp_path)
