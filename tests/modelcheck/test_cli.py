"""``repro mc`` / ``repro replay`` CLI contract: exits, formats, dispatch."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as repro_main
from repro.modelcheck.cli import mc_main


def run_mc(args, capsys):
    code = mc_main(args)
    out = capsys.readouterr().out
    return code, out


class TestExitContract:
    def test_clean_workload_exits_zero(self, capsys):
        code, out = run_mc(["tie-twins", "--policy", "EDF-HP"], capsys)
        assert code == 0
        assert "clean" in out

    def test_mutant_exits_one_and_writes_bundle(self, tmp_path, capsys):
        code, out = run_mc(
            [
                "--mutate",
                "wait-instead-of-wound",
                "--bundle-dir",
                str(tmp_path),
            ],
            capsys,
        )
        assert code == 1
        assert "MC001" in out
        bundles = list(tmp_path.glob("*/bundle.json"))
        assert len(bundles) == 1

    def test_missing_target_exits_two(self, capsys):
        assert mc_main([]) == 2

    def test_unknown_target_exits_two(self, capsys):
        assert mc_main(["no-such-workload"]) == 2

    def test_unknown_mutant_exits_two(self, capsys):
        assert mc_main(["--mutate", "no-such-mutant"]) == 2

    def test_bad_depth_exits_two(self, capsys):
        assert mc_main(["tie-twins", "--depth", "0"]) == 2


class TestCatalogs:
    def test_list_rules(self, capsys):
        code, out = run_mc(["--list-rules"], capsys)
        assert code == 0
        for rule in ("MC001", "MC002", "MC003", "MC004", "MC005", "MC006"):
            assert rule in out

    def test_list_workloads(self, capsys):
        code, out = run_mc(["--list-workloads"], capsys)
        assert code == 0
        assert "tie-twins" in out and "io-cross" in out


class TestFormats:
    def test_json_report_shape(self, capsys):
        code, out = run_mc(
            ["tie-twins", "--policy", "EDF-HP", "--format", "json"], capsys
        )
        assert code == 0
        doc = json.loads(out)
        assert doc["kind"] == "repro-mc-report"
        assert doc["clean"] is True
        assert doc["explorations"][0]["workload"] == "tie-twins"

    def test_measure_por_reports_factor(self, capsys):
        code, out = run_mc(
            ["tie-twins", "--policy", "EDF-HP", "--measure-por"], capsys
        )
        assert code == 0
        assert "reduction" in out


class TestReplayDispatch:
    @pytest.fixture
    def bundle(self, tmp_path, capsys):
        code = mc_main(
            ["--mutate", "drop-wake", "--bundle-dir", str(tmp_path)]
        )
        capsys.readouterr()
        assert code == 1
        (path,) = [p.parent for p in tmp_path.glob("*/bundle.json")]
        return path

    def test_replay_reproduces_mc_bundle(self, bundle, capsys):
        code = repro_main(["replay", str(bundle)])
        out = capsys.readouterr().out
        assert code == 0
        assert "REPRODUCED" in out
        assert "MC003" in out

    def test_replay_json_format(self, bundle, capsys):
        code = repro_main(["replay", str(bundle), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["matched"] is True
        assert doc["mutant"] == "drop-wake"

    def test_replay_rejects_garbage_bundle(self, tmp_path, capsys):
        (tmp_path / "bundle.json").write_text("{}")
        code = repro_main(["replay", str(tmp_path)])
        assert code == 2

    def test_mc_subcommand_is_wired_into_main(self, capsys):
        assert repro_main(["mc", "--list-rules"]) == 0
        assert "MC001" in capsys.readouterr().out

    def test_bundle_trace_certifies_with_recorded_violation(self, bundle):
        # The bundle's trace.jsonl + workload.jsonl are directly
        # consumable by the offline certifier (the ISSUE's contract);
        # a violating schedule must come back not-certified.
        from repro.certify.certifier import certify_events
        from repro.tracing import EventLog
        from repro.workload.serialization import load_workload

        events = EventLog.from_jsonl(bundle / "trace.jsonl").events
        specs = load_workload(bundle / "workload.jsonl")
        result = certify_events(events, specs, "EDF-HP")
        assert not result.certified
