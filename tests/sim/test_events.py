"""Event record semantics."""

import pytest

from repro.sim.events import Event


def noop(event):
    pass


class TestEvent:
    def test_fields(self):
        event = Event(5.0, noop, kind="arrival", payload={"tid": 1})
        assert event.time == 5.0
        assert event.kind == "arrival"
        assert event.payload == {"tid": 1}
        assert not event.cancelled

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event(-0.1, noop)

    def test_ordering_by_time(self):
        early, late = Event(1.0, noop), Event(2.0, noop)
        assert early < late
        assert not late < early

    def test_repr_shows_state(self):
        event = Event(1.5, noop, kind="test")
        assert "live" in repr(event)
        event.cancelled = True
        assert "cancelled" in repr(event)

    def test_zero_time_allowed(self):
        assert Event(0.0, noop).time == 0.0
