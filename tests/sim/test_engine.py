"""Simulation engine: clock semantics, scheduling, run bounds."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_callbacks_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda ev: fired.append(("b", sim.now)))
        sim.schedule(1.0, lambda ev: fired.append(("a", sim.now)))
        sim.run()
        assert fired == [("a", 1.0), ("b", 3.0)]

    def test_callback_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(event):
            fired.append(sim.now)
            if sim.now < 3.0:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(7.5, lambda ev: fired.append(sim.now))
        sim.run()
        assert fired == [7.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda ev: None)

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda ev: sim.schedule_at(1.0, lambda e: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_cancel_prevents_callback(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda ev: fired.append("no"))
        sim.cancel(event)
        sim.run()
        assert fired == []


class TestRun:
    def test_run_returns_final_time(self):
        sim = Simulator()
        sim.schedule(4.0, lambda ev: None)
        assert sim.run() == 4.0

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda ev: fired.append(1))
        sim.schedule(10.0, lambda ev: fired.append(10))
        assert sim.run(until=5.0) == 5.0
        assert fired == [1]
        # The later event is still pending and fires on the next run.
        sim.run()
        assert fired == [1, 10]

    def test_max_events_guards_runaway_loops(self):
        sim = Simulator()

        def forever(event):
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=50)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda ev: None)
        sim.run()
        assert sim.events_processed == 5

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter(event):
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(errors) == 1

    def test_step_on_empty_calendar(self):
        assert Simulator().step() is False

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda ev: fired.append("first"))
        sim.schedule(1.0, lambda ev: fired.append("second"))
        sim.run()
        assert fired == ["first", "second"]


class TestRunGuards:
    """The two run bounds that make cells self-terminating: the event
    budget and the wall-clock guard (fault-tolerant sweeps rely on the
    latter so a livelocked serial cell kills itself)."""

    @staticmethod
    def _runaway(sim):
        def forever(event):
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)

    def test_event_budget_raises_specific_subclass(self):
        from repro.sim.engine import EventBudgetExceeded

        sim = Simulator()
        self._runaway(sim)
        with pytest.raises(EventBudgetExceeded) as excinfo:
            sim.run(max_events=50)
        assert isinstance(excinfo.value, SimulationError)

    def test_wall_clock_guard_stops_livelock(self):
        from repro.sim.engine import WallClockExceeded

        sim = Simulator()
        self._runaway(sim)
        with pytest.raises(WallClockExceeded, match="max_wall_s"):
            sim.run(max_wall_s=0.05)
        assert isinstance(WallClockExceeded("x"), SimulationError)

    def test_generous_wall_budget_does_not_interfere(self):
        sim = Simulator()
        fired = []
        for _ in range(5):
            sim.schedule(1.0, lambda ev: fired.append(sim.now))
        assert sim.run(max_wall_s=60.0) == 1.0
        assert len(fired) == 5
