"""Event calendar: ordering, stability, cancellation."""

import pytest

from repro.sim.calendar import EventCalendar
from repro.sim.events import Event


def noop(event):
    pass


def make(time, kind="test"):
    return Event(time, noop, kind=kind)


class TestOrdering:
    def test_pops_in_time_order(self):
        calendar = EventCalendar()
        for t in (5.0, 1.0, 3.0, 2.0, 4.0):
            calendar.push(make(t))
        times = []
        while calendar:
            times.append(calendar.pop().time)
        assert times == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_same_time_events_pop_in_insertion_order(self):
        calendar = EventCalendar()
        first = make(1.0, kind="first")
        second = make(1.0, kind="second")
        third = make(1.0, kind="third")
        for event in (first, second, third):
            calendar.push(event)
        assert [calendar.pop().kind for _ in range(3)] == [
            "first",
            "second",
            "third",
        ]

    def test_interleaved_push_pop(self):
        calendar = EventCalendar()
        calendar.push(make(2.0))
        calendar.push(make(1.0))
        assert calendar.pop().time == 1.0
        calendar.push(make(0.5))
        # 0.5 was pushed after 2.0 but fires earlier.
        assert calendar.pop().time == 0.5
        assert calendar.pop().time == 2.0


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        calendar = EventCalendar()
        doomed = calendar.push(make(1.0))
        calendar.push(make(2.0))
        calendar.cancel(doomed)
        assert calendar.pop().time == 2.0

    def test_cancel_updates_length(self):
        calendar = EventCalendar()
        doomed = calendar.push(make(1.0))
        assert len(calendar) == 1
        calendar.cancel(doomed)
        assert len(calendar) == 0
        assert not calendar

    def test_double_cancel_is_idempotent(self):
        calendar = EventCalendar()
        doomed = calendar.push(make(1.0))
        calendar.cancel(doomed)
        calendar.cancel(doomed)
        assert len(calendar) == 0

    def test_cannot_push_cancelled_event(self):
        calendar = EventCalendar()
        event = make(1.0)
        event.cancelled = True
        with pytest.raises(ValueError):
            calendar.push(event)

    def test_peek_time_skips_cancelled(self):
        calendar = EventCalendar()
        doomed = calendar.push(make(1.0))
        calendar.push(make(3.0))
        calendar.cancel(doomed)
        assert calendar.peek_time() == 3.0


class TestBasics:
    def test_empty_calendar(self):
        calendar = EventCalendar()
        assert calendar.pop() is None
        assert calendar.peek_time() is None
        assert len(calendar) == 0

    def test_clear(self):
        calendar = EventCalendar()
        calendar.push(make(1.0))
        calendar.push(make(2.0))
        calendar.clear()
        assert calendar.pop() is None

    def test_iter_excludes_cancelled(self):
        calendar = EventCalendar()
        live = calendar.push(make(1.0))
        doomed = calendar.push(make(2.0))
        calendar.cancel(doomed)
        assert list(calendar) == [live]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            make(-1.0)
