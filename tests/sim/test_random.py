"""Random streams: reproducibility, independence, distribution sanity."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.random import RandomStream, StreamFactory


class TestReproducibility:
    def test_same_seed_same_sequence(self):
        a = RandomStream(42)
        b = RandomStream(42)
        assert [a.exponential(10.0) for _ in range(20)] == [
            b.exponential(10.0) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = RandomStream(1)
        b = RandomStream(2)
        assert [a.uniform(0, 1) for _ in range(5)] != [
            b.uniform(0, 1) for _ in range(5)
        ]

    def test_factory_streams_are_named_and_stable(self):
        factory = StreamFactory(99)
        first = factory.stream("arrivals").uniform(0, 1)
        second = StreamFactory(99).stream("arrivals").uniform(0, 1)
        assert first == second

    def test_factory_streams_are_independent_by_name(self):
        factory = StreamFactory(99)
        a = factory.stream("arrivals")
        b = factory.stream("slack")
        assert a.seed != b.seed

    def test_adding_consumer_does_not_perturb_existing(self):
        """Key paired-comparison property: drawing from one stream never
        changes another stream's variates."""
        factory = StreamFactory(5)
        reference = [factory.stream("a").uniform(0, 1) for _ in range(3)]
        factory2 = StreamFactory(5)
        factory2.stream("b").uniform(0, 1)  # extra consumer
        assert [factory2.stream("a").uniform(0, 1) for _ in range(3)] == reference


class TestDistributions:
    def test_exponential_mean(self):
        stream = RandomStream(7)
        samples = [stream.exponential(100.0) for _ in range(20000)]
        assert 97.0 < sum(samples) / len(samples) < 103.0

    def test_exponential_positive(self):
        stream = RandomStream(7)
        assert all(stream.exponential(5.0) > 0 for _ in range(1000))

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            RandomStream(1).exponential(0.0)

    def test_positive_int_normal_truncates(self):
        stream = RandomStream(3)
        values = [stream.positive_int_normal(2.0, 10.0) for _ in range(500)]
        assert min(values) >= 1
        assert all(isinstance(v, int) for v in values)

    def test_positive_int_normal_mean(self):
        stream = RandomStream(3)
        values = [stream.positive_int_normal(20.0, 10.0) for _ in range(20000)]
        mean = sum(values) / len(values)
        # Truncation at 1 lifts the mean slightly above 20.
        assert 19.5 < mean < 21.5

    def test_uniform_bounds(self):
        stream = RandomStream(11)
        assert all(2.0 <= stream.uniform(2.0, 8.0) <= 8.0 for _ in range(1000))

    def test_uniform_rejects_empty_range(self):
        with pytest.raises(ValueError):
            RandomStream(1).uniform(5.0, 1.0)

    def test_randint_inclusive(self):
        stream = RandomStream(13)
        values = {stream.randint(0, 2) for _ in range(200)}
        assert values == {0, 1, 2}

    def test_choice_uniform_coverage(self):
        stream = RandomStream(17)
        items = ["a", "b", "c"]
        chosen = {stream.choice(items) for _ in range(100)}
        assert chosen == set(items)

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            RandomStream(1).choice([])

    def test_sample_without_replacement_distinct(self):
        stream = RandomStream(19)
        sample = stream.sample_without_replacement(100, 30)
        assert len(sample) == len(set(sample)) == 30
        assert all(0 <= item < 100 for item in sample)

    def test_sample_oversized_rejected(self):
        with pytest.raises(ValueError):
            RandomStream(1).sample_without_replacement(5, 6)

    def test_coin_probability(self):
        stream = RandomStream(23)
        heads = sum(stream.coin(0.1) for _ in range(20000))
        assert 0.08 < heads / 20000 < 0.12

    def test_coin_extremes(self):
        stream = RandomStream(1)
        assert not any(stream.coin(0.0) for _ in range(100))
        assert all(stream.coin(1.0) for _ in range(100))

    def test_coin_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            RandomStream(1).coin(1.5)


class TestProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31), mean=st.floats(0.1, 1e6))
    @settings(max_examples=50)
    def test_exponential_always_positive_and_finite(self, seed, mean):
        value = RandomStream(seed).exponential(mean)
        assert value > 0
        assert math.isfinite(value)

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        name=st.text(min_size=1, max_size=20),
    )
    @settings(max_examples=50)
    def test_factory_stream_deterministic(self, seed, name):
        a = StreamFactory(seed).stream(name).uniform(0, 1)
        b = StreamFactory(seed).stream(name).uniform(0, 1)
        assert a == b

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        population=st.integers(1, 200),
        data=st.data(),
    )
    @settings(max_examples=50)
    def test_sample_is_subset_of_population(self, seed, population, data):
        k = data.draw(st.integers(0, population))
        sample = RandomStream(seed).sample_without_replacement(population, k)
        assert len(sample) == k
        assert len(set(sample)) == k
        assert all(0 <= item < population for item in sample)
