"""Streaming trace sinks: flattening, bounds, spill round trips.

The guarantee under test: a spilled stream is *byte-identical* to the
in-memory event log — same flattened records, same order — so anything
downstream (the certifier, offline tooling) sees exactly one trace
format no matter which sink produced it.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.stream import (
    JsonlSink,
    RingSink,
    TraceSink,
    flatten_event,
    iter_jsonl,
)
from repro.tracing import EventLog


class FakeTxn:
    def __init__(self, tid: int) -> None:
        self.tid = tid


class TestFlattenEvent:
    def test_scalars_pass_through(self):
        record = flatten_event("commit", {"time": 1.5, "policy": "CCA"})
        assert record == {"event": "commit", "time": 1.5, "policy": "CCA"}

    def test_transaction_like_values_flatten_to_tid(self):
        record = flatten_event("wound", {"winner": FakeTxn(3), "loser": FakeTxn(7)})
        assert record == {"event": "wound", "winner": 3, "loser": 7}

    def test_sequences_flatten_elementwise(self):
        record = flatten_event(
            "plist", {"members": [FakeTxn(1), 2, FakeTxn(3)]}
        )
        assert record == {"event": "plist", "members": [1, 2, 3]}

    def test_matches_event_log_flattening(self):
        log = EventLog()
        log("wound", time=0.5, winner=FakeTxn(3), losers=(FakeTxn(7), 9))
        assert log.events == [
            flatten_event(
                "wound",
                {"time": 0.5, "winner": FakeTxn(3), "losers": (FakeTxn(7), 9)},
            )
        ]


class TestTraceSinkProtocol:
    def test_all_sinks_conform(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        try:
            assert isinstance(sink, TraceSink)
        finally:
            sink.close()
        assert isinstance(RingSink(4), TraceSink)
        assert isinstance(EventLog(), TraceSink)


class TestRingSink:
    def test_keeps_only_the_tail(self):
        ring = RingSink(capacity=3)
        for index in range(10):
            ring("tick", n=index)
        assert len(ring) == 3
        assert ring.total_seen == 10
        assert [record["n"] for record in ring.tail()] == [7, 8, 9]
        assert list(ring) == ring.tail()

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            RingSink(0)

    def test_under_capacity_keeps_everything(self):
        ring = RingSink(capacity=16)
        ring("a", x=1)
        ring("b", x=2)
        assert [record["event"] for record in ring] == ["a", "b"]


class TestJsonlSink:
    def test_spill_and_read_back(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink("arrive", time=0.0, txn=FakeTxn(1))
            sink("commit", time=2.5, txn=FakeTxn(1))
            assert sink.events_written == 2
        records = list(iter_jsonl(path))
        assert records == [
            {"event": "arrive", "time": 0.0, "txn": 1},
            {"event": "commit", "time": 2.5, "txn": 1},
        ]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink("tick", n=1)
        assert path.exists()

    def test_iteration_flushes_mid_run(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        try:
            sink("tick", n=1)
            # No close yet: __iter__ must flush so the reader sees it.
            assert [record["n"] for record in sink] == [1]
        finally:
            sink.close()

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink("tick", n=1)

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink("tick", n=1)
        sink.close()
        sink.close()  # must not raise

    def test_byte_identical_to_event_log_jsonl(self, tmp_path):
        """The spilled file equals EventLog.to_jsonl of the same events."""
        events = [
            ("arrive", {"time": 0.25, "txn": FakeTxn(4)}),
            ("wound", {"time": 1.0, "winner": FakeTxn(4), "loser": FakeTxn(2)}),
            ("commit", {"time": 3.5, "txn": FakeTxn(4)}),
        ]
        log = EventLog()
        with JsonlSink(tmp_path / "stream.jsonl") as sink:
            for name, fields in events:
                log(name, **fields)
                sink(name, **fields)
        log_path = log.to_jsonl(tmp_path / "log.jsonl")
        assert (
            (tmp_path / "stream.jsonl").read_bytes()
            == log_path.read_bytes()
        )


class TestIterJsonl:
    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "a"}\n\n   \n{"event": "b"}\n')
        assert [r["event"] for r in iter_jsonl(path)] == ["a", "b"]

    def test_non_event_record_rejected_with_location(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "a"}\n{"no_event": 1}\n')
        with pytest.raises(ValueError, match=r"t\.jsonl:2"):
            list(iter_jsonl(path))

    def test_is_lazy(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "a"}\nnot json\n')
        iterator = iter_jsonl(path)
        assert next(iterator)["event"] == "a"  # bad line not reached yet
        with pytest.raises(json.JSONDecodeError):
            next(iterator)


# -- property: write -> read is the identity over JSON-safe records ----------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)
_field_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
).filter(lambda name: name != "event")
_events = st.lists(
    st.tuples(
        st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12),
        st.dictionaries(_field_names, _scalars, max_size=4),
    ),
    max_size=32,
)


class TestRoundTripProperty:
    @settings(
        max_examples=60,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
        deadline=None,
    )
    @given(events=_events)
    def test_jsonl_round_trip_is_identity(self, tmp_path, events):
        """Any JSON-safe event stream written through a JsonlSink reads
        back as the exact flattened records an EventLog would hold
        (floats included: Python's JSON round trip is exact)."""
        log = EventLog()
        path = tmp_path / "prop.jsonl"
        with JsonlSink(path) as sink:
            for name, fields in events:
                log(name, **fields)
                sink(name, **fields)
        assert list(iter_jsonl(path)) == log.events
