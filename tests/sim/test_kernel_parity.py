"""Differential battery: the array kernel is bit-identical to the reference.

Every test here runs the same workload through the reference
object-graph engine (:class:`~repro.core.simulator.RTDBSimulator`) and
the array-oriented kernel (:class:`~repro.core.kernel.KernelSimulator`)
and requires *exact* equality of

* the full :class:`SimulationResult` (every float bit-identical),
* the flattened trace event stream (every event, field and ordering),
* the metrics-registry snapshot (every counter and histogram), and
* the offline certifier's verdict on the traced schedule.

Hypothesis drives both hand-rolled adversarial workloads (contention,
ties, shared locks, firm deadlines, disk) and the paper's own workload
generator across its configuration space, for well over 200 differential
cases per policy per run.  Any divergence prints the first differing
trace event, which localizes the bug to a single scheduling decision.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig
from repro.core.factory import make_simulator
from repro.core.kernel import KernelSimulator, UnsupportedKernelFeature
from repro.core.oracle import OptimisticConflictOracle, SetOracle, TreeOracle
from repro.core.policy import (
    CCAPolicy,
    CriticalnessCCAPolicy,
    EDFPolicy,
    EDFWaitPolicy,
    EDFWPPolicy,
    FCFSPolicy,
    LSFPolicy,
    StaticEvaluationPolicy,
    make_policy,
)
from repro.core.simulator import RTDBSimulator
from repro.obs.registry import MetricsRegistry
from repro.rtdb.transaction import Operation, TransactionSpec
from repro.tracing import EventLog
from repro.workload.generator import generate_workload
from repro.workload.programs import TreeWorkloadGenerator

#: Policy factories — fresh objects per engine run, because
#: StaticEvaluationPolicy caches priorities per (tid, epoch) on the
#: policy object and sharing one instance across runs would leak state.
POLICIES = {
    "EDF-HP": lambda: EDFPolicy(),
    "EDF-WP": lambda: EDFWPPolicy(),
    "LSF-HP": lambda: LSFPolicy(),
    "FCFS": lambda: FCFSPolicy(),
    "CCA": lambda: CCAPolicy(1.0),
    "CCA-w0": lambda: CCAPolicy(0.0),
    "EDF-Wait": lambda: EDFWaitPolicy(),
    "CCA-static": lambda: StaticEvaluationPolicy(CCAPolicy(1.0)),
    "Crit-CCA": lambda: CriticalnessCCAPolicy(1.0),
}

POLICY_IDS = sorted(POLICIES)

COMMON_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_both(config, workload, policy_factory, oracle_factory=None, **kwargs):
    """Run reference and kernel engines; assert bit-identical outcomes.

    Returns ``(result, events)`` of the (equal) runs so callers can
    assert further properties.  Either both engines complete, or both
    raise the same exception type and message after identical traces.
    """
    outcomes = []
    for engine_cls in (RTDBSimulator, KernelSimulator):
        log = EventLog()
        registry = MetricsRegistry()
        oracle = oracle_factory() if oracle_factory is not None else None
        try:
            result = engine_cls(
                config,
                workload,
                policy_factory(),
                oracle=oracle,
                trace=log,
                metrics=registry,
                **kwargs,
            ).run()
            error = None
        except Exception as exc:  # noqa: BLE001 - compared, not hidden
            result, error = None, (type(exc).__name__, str(exc))
        outcomes.append((result, log, registry, error))

    (ref, ref_log, ref_reg, ref_err), (ker, ker_log, ker_reg, ker_err) = outcomes
    assert ref_err == ker_err, (
        f"engines disagree on failure: reference={ref_err}, kernel={ker_err}"
    )
    _assert_same_events(ref_log.events, ker_log.events)
    assert ref == ker, _result_diff(ref, ker)
    assert ref_reg.snapshot() == ker_reg.snapshot()
    return ref, ref_log.events


def _assert_same_events(ref_events, ker_events):
    for index, (a, b) in enumerate(zip(ref_events, ker_events)):
        assert a == b, (
            f"trace diverges at event {index}:\n"
            f"  reference: {a}\n  kernel:    {b}"
        )
    assert len(ref_events) == len(ker_events), (
        f"trace lengths differ: reference={len(ref_events)} "
        f"kernel={len(ker_events)}; first extra event: "
        f"{(ref_events if len(ref_events) > len(ker_events) else ker_events)[min(len(ref_events), len(ker_events))]}"
    )


def _result_diff(ref, ker):
    if ref is None or ker is None:
        return f"one engine returned no result: {ref!r} vs {ker!r}"
    lines = ["results differ:"]
    for field in dataclasses.fields(ref):
        a, b = getattr(ref, field.name), getattr(ker, field.name)
        if a != b:
            lines.append(f"  {field.name}: reference={a!r} kernel={b!r}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Hand-rolled adversarial workloads
# ---------------------------------------------------------------------------

@st.composite
def handrolled(draw, disk=False, shared=False, criticalness=False):
    """1..10 transactions on 8 items: ties, contention, tight slack."""
    n = draw(st.integers(1, 10))
    specs = []
    for tid in range(n):
        # Arrival ties (several transactions at t=0 or equal instants)
        # exercise the event calendar's seq tiebreaker in both engines.
        arrival = draw(
            st.one_of(st.just(0.0), st.floats(0.0, 60.0).map(lambda x: round(x, 1)))
        )
        n_ops = draw(st.integers(1, 5))
        items = draw(
            st.lists(st.integers(0, 7), min_size=n_ops, max_size=n_ops, unique=True)
        )
        compute = draw(st.floats(0.5, 12.0).map(lambda x: round(x, 2)))
        operations = tuple(
            Operation(
                item=item,
                compute_time=compute,
                io_time=20.0 if disk and draw(st.booleans()) else 0.0,
                is_write=not shared or draw(st.booleans()),
            )
            for item in items
        )
        resource = sum(op.compute_time + op.io_time for op in operations)
        slack = draw(st.floats(0.0, 6.0))
        specs.append(
            TransactionSpec(
                tid=tid,
                type_id=tid % 5,
                arrival_time=arrival,
                deadline=arrival + resource * (1.0 + slack),
                operations=operations,
                criticalness=draw(st.integers(0, 2)) if criticalness else 0,
            )
        )
    return specs


BASE = SimulationConfig(
    n_transaction_types=5,
    updates_mean=3.0,
    updates_std=1.0,
    db_size=8,
    n_transactions=10,
    arrival_rate=10.0,
)
DISK = BASE.replace(disk_resident=True, disk_access_time=20.0, disk_access_prob=0.3)


class TestHandRolledParity:
    @pytest.mark.parametrize("policy", POLICY_IDS)
    @given(data=st.data())
    @COMMON_SETTINGS
    def test_main_memory(self, policy, data):
        workload = data.draw(handrolled(criticalness=policy == "Crit-CCA"))
        run_both(BASE, workload, POLICIES[policy])

    @pytest.mark.parametrize("policy", POLICY_IDS)
    @given(data=st.data())
    @COMMON_SETTINGS
    def test_disk(self, policy, data):
        workload = data.draw(handrolled(disk=True))
        scheduling = data.draw(st.sampled_from(["fcfs", "priority"]))
        config = DISK.replace(disk_scheduling=scheduling)
        run_both(config, workload, POLICIES[policy])

    @pytest.mark.parametrize("policy", POLICY_IDS)
    @given(data=st.data())
    @COMMON_SETTINGS
    def test_firm_deadlines(self, policy, data):
        workload = data.draw(handrolled())
        run_both(BASE.replace(firm_deadlines=True), workload, POLICIES[policy])

    @pytest.mark.parametrize("policy", POLICY_IDS)
    @given(data=st.data())
    @COMMON_SETTINGS
    def test_shared_locks(self, policy, data):
        workload = data.draw(handrolled(shared=True))
        run_both(BASE, workload, POLICIES[policy])

    @pytest.mark.parametrize("policy", POLICY_IDS)
    @given(data=st.data())
    @COMMON_SETTINGS
    def test_optimistic_oracle(self, policy, data):
        workload = data.draw(handrolled(shared=True))
        run_both(
            BASE,
            workload,
            POLICIES[policy],
            oracle_factory=lambda: OptimisticConflictOracle(SetOracle()),
        )

    @pytest.mark.parametrize("policy", POLICY_IDS)
    @given(data=st.data())
    @COMMON_SETTINGS
    def test_lazy_wounds(self, policy, data):
        workload = data.draw(handrolled())
        run_both(BASE, workload, POLICIES[policy], eager_wounds=False)

    @pytest.mark.parametrize("policy", POLICY_IDS)
    @given(data=st.data())
    @COMMON_SETTINGS
    def test_rollback_free_penalty(self, policy, data):
        workload = data.draw(handrolled())
        run_both(
            BASE, workload, POLICIES[policy], include_rollback_in_penalty=False
        )


# ---------------------------------------------------------------------------
# Paper workload generator across its configuration space
# ---------------------------------------------------------------------------

@st.composite
def generated_cells(draw):
    """A (config, seed) cell from the paper generator's space."""
    config = SimulationConfig(
        n_transaction_types=draw(st.integers(2, 12)),
        updates_mean=draw(st.floats(2.0, 6.0)),
        updates_std=draw(st.floats(0.5, 3.0)),
        db_size=draw(st.integers(8, 40)),
        n_transactions=draw(st.integers(5, 25)),
        arrival_rate=draw(st.floats(2.0, 12.0)),
        disk_resident=draw(st.booleans()),
        disk_access_prob=draw(st.floats(0.0, 0.4)),
        firm_deadlines=draw(st.booleans()),
        read_fraction=draw(st.sampled_from([0.0, 0.0, 0.3])),
        penalty_weight=draw(st.sampled_from([0.0, 0.5, 1.0, 4.0])),
        criticalness_levels=draw(st.integers(1, 3)),
        arrival_model=draw(st.sampled_from(["poisson", "bursty"])),
    )
    seed = draw(st.integers(0, 2**20))
    return config, seed


class TestGeneratedParity:
    @pytest.mark.parametrize("policy", POLICY_IDS)
    @given(cell=generated_cells())
    @COMMON_SETTINGS
    def test_generator_workloads(self, policy, cell):
        config, seed = cell
        workload = generate_workload(config, seed)
        run_both(config, workload, POLICIES[policy])


# ---------------------------------------------------------------------------
# Tree programs (conditional conflict/safety through the TreeOracle)
# ---------------------------------------------------------------------------

class TestTreeProgramParity:
    @pytest.mark.parametrize("policy", ["EDF-HP", "CCA", "EDF-Wait", "LSF-HP"])
    @given(seed=st.integers(0, 2**20), branches=st.integers(2, 3))
    @COMMON_SETTINGS
    def test_tree_workloads(self, policy, seed, branches):
        config = BASE.replace(n_transaction_types=4, n_transactions=8)
        table, workload = TreeWorkloadGenerator(
            config, seed, n_branches=branches
        ).generate()
        run_both(
            config,
            workload,
            POLICIES[policy],
            oracle_factory=lambda: TreeOracle(table),
        )


# ---------------------------------------------------------------------------
# Certifier verdicts agree on both engines' traces
# ---------------------------------------------------------------------------

class TestCertifyParity:
    @pytest.mark.parametrize("policy", ["EDF-HP", "CCA", "EDF-Wait"])
    @given(data=st.data())
    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_certified_identically(self, policy, data):
        from repro.certify.certifier import certify_events

        workload = data.draw(handrolled())
        _, events = run_both(BASE, workload, POLICIES[policy])
        # The traces are equal, so one certification covers both; it must
        # also *pass* — the kernel cannot hide behind a broken schedule.
        verdict = certify_events(
            events, workload, policy, penalty_weight=BASE.penalty_weight
        )
        assert verdict.certified, verdict


# ---------------------------------------------------------------------------
# Fused execution (no trace attached)
# ---------------------------------------------------------------------------
#
# Attaching a trace hook forces the kernel onto strict per-boundary
# execution, so everything above exercises the kernel's *unfused* path.
# Production sweeps run without a trace, where the kernel fuses
# conflict-free operation runs into single phase events — including
# arrival-crossing spans under static-key policies and deferred lock
# acquisition on conflict-free spans.  These tests pin that fast path:
# no trace on either engine, exact equality of the SimulationResult and
# the metrics snapshot (events_fired, penalty_evals, preempts, ... all
# equal even though the kernel fires far fewer physical events).


def run_both_untraced(config, workload, policy_factory, **kwargs):
    """Run both engines without a trace; assert identical outcomes.

    On :class:`EventBudgetExceeded` runs, parity is the exception type
    and message: the kernel's span cap guarantees both engines give up
    at the same logical event count even though their internal states
    mid-span differ.
    """
    outcomes = []
    for engine_cls in (RTDBSimulator, KernelSimulator):
        registry = MetricsRegistry()
        try:
            result = engine_cls(
                config, workload, policy_factory(), metrics=registry, **kwargs
            ).run()
            error = None
        except Exception as exc:  # noqa: BLE001 - compared, not hidden
            result, error = None, (type(exc).__name__, str(exc))
        outcomes.append((result, registry, error))
    (ref, ref_reg, ref_err), (ker, ker_reg, ker_err) = outcomes
    assert ref_err == ker_err, (
        f"engines disagree on failure: reference={ref_err}, kernel={ker_err}"
    )
    assert ref == ker, _result_diff(ref, ker)
    if ref_err is None:
        assert ref_reg.snapshot() == ker_reg.snapshot()
    return ref


class TestFusedParity:
    @pytest.mark.parametrize("policy", POLICY_IDS)
    @given(data=st.data())
    @COMMON_SETTINGS
    def test_main_memory(self, policy, data):
        workload = data.draw(handrolled(criticalness=policy == "Crit-CCA"))
        run_both_untraced(BASE, workload, POLICIES[policy])

    @pytest.mark.parametrize("policy", POLICY_IDS)
    @given(data=st.data())
    @COMMON_SETTINGS
    def test_disk(self, policy, data):
        workload = data.draw(handrolled(disk=True))
        run_both_untraced(DISK, workload, POLICIES[policy])

    @pytest.mark.parametrize("policy", POLICY_IDS)
    @given(data=st.data())
    @COMMON_SETTINGS
    def test_firm_deadlines(self, policy, data):
        workload = data.draw(handrolled())
        run_both_untraced(
            BASE.replace(firm_deadlines=True), workload, POLICIES[policy]
        )

    @pytest.mark.parametrize("policy", POLICY_IDS)
    @given(data=st.data())
    @COMMON_SETTINGS
    def test_shared_locks(self, policy, data):
        workload = data.draw(handrolled(shared=True))
        run_both_untraced(BASE, workload, POLICIES[policy])

    @pytest.mark.parametrize("policy", POLICY_IDS)
    @given(cell=generated_cells())
    @COMMON_SETTINGS
    def test_generator_workloads(self, policy, cell):
        config, seed = cell
        workload = generate_workload(config, seed)
        run_both_untraced(config, workload, POLICIES[policy])

    def test_event_budget_exhaustion_parity(self):
        # The span budget cap: the kernel must raise the same
        # EventBudgetExceeded (type and message) as the reference even
        # though the budget boundary falls inside a fusable span.
        config = BASE.replace(n_transactions=20)
        workload = generate_workload(config, 7)
        run_both_untraced(config, workload, POLICIES["EDF-HP"], max_events=50)


# ---------------------------------------------------------------------------
# Deterministic regression cases the battery once surfaced, and engine
# selection semantics
# ---------------------------------------------------------------------------

class TestRegressions:
    def test_empty_workload(self):
        for policy in POLICY_IDS:
            run_both(BASE, [], POLICIES[policy])

    def test_simultaneous_arrivals_tiebreak_by_seq(self):
        ops = (Operation(item=0, compute_time=2.0),)
        workload = [
            TransactionSpec(
                tid=tid, type_id=0, arrival_time=0.0, deadline=10.0,
                operations=ops,
            )
            for tid in range(4)
        ]
        run_both(BASE, workload, POLICIES["EDF-HP"])

    def test_deadline_equal_to_arrival_firm(self):
        workload = [
            TransactionSpec(
                tid=0, type_id=0, arrival_time=1.0, deadline=1.0,
                operations=(Operation(item=0, compute_time=2.0),),
            )
        ]
        run_both(
            BASE.replace(firm_deadlines=True), workload, POLICIES["EDF-HP"]
        )

    def test_event_budget_exhaustion_is_identical(self):
        # Both engines must stop at the same event with the same error.
        workload = generate_workload(BASE.replace(n_transactions=20), 7)
        run_both(
            BASE.replace(n_transactions=20),
            workload,
            POLICIES["EDF-HP"],
            max_events=50,
        )


class TestEngineSelection:
    def test_kernel_engine_rejects_sanitize(self):
        config = BASE.replace(engine="kernel", sanitize=True)
        workload = generate_workload(config, 1)
        with pytest.raises(UnsupportedKernelFeature):
            make_simulator(config, workload, make_policy("CCA"))

    def test_auto_falls_back_for_sanitize(self):
        config = BASE.replace(sanitize=True)
        workload = generate_workload(config, 1)
        sim = make_simulator(config, workload, make_policy("CCA"))
        assert isinstance(sim, RTDBSimulator)

    def test_auto_picks_kernel_when_supported(self):
        workload = generate_workload(BASE, 1)
        sim = make_simulator(BASE, workload, make_policy("CCA"))
        assert isinstance(sim, KernelSimulator)

    def test_reference_engine_forced(self):
        config = BASE.replace(engine="reference")
        workload = generate_workload(config, 1)
        sim = make_simulator(config, workload, make_policy("CCA"))
        assert isinstance(sim, RTDBSimulator)

    def test_unknown_policy_falls_back(self):
        class WeirdPolicy(EDFPolicy):
            name = "weird"

            def priority(self, tx, now, system):
                return (-tx.deadline,)

        workload = generate_workload(BASE, 1)
        sim = make_simulator(BASE, workload, WeirdPolicy())
        assert isinstance(sim, RTDBSimulator)
        config = BASE.replace(engine="kernel")
        with pytest.raises(UnsupportedKernelFeature):
            make_simulator(config, workload, WeirdPolicy())
