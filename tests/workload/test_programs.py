"""Tree-program workloads (the conditional-conflict extension)."""

import pytest

from repro.analysis.relations import Conflict, Safety
from repro.config import SimulationConfig
from repro.core.oracle import TreeOracle
from repro.core.policy import CCAPolicy, EDFPolicy
from repro.core.simulator import RTDBSimulator
from repro.workload.programs import TreeWorkloadGenerator


def config(**overrides):
    defaults = dict(
        n_transaction_types=8,
        updates_mean=6.0,
        updates_std=2.0,
        db_size=80,
        n_transactions=40,
        arrival_rate=8.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


@pytest.fixture
def generator():
    return TreeWorkloadGenerator(config(), seed=11)


class TestProgramGeneration:
    def test_one_program_per_type(self, generator):
        programs = generator.make_programs()
        assert len(programs) == 8
        assert {p.name for p in programs} == {f"tree{i}" for i in range(8)}

    def test_some_programs_have_decision_points(self, generator):
        programs = generator.make_programs()
        assert any(p.has_decision_points for p in programs)

    def test_no_repeated_items_on_any_path(self, generator):
        for program in generator.make_programs():
            def check(node, seen):
                assert not (node.accesses & seen), (
                    f"{program.name}:{node.label} repeats an item"
                )
                for child in node.children:
                    check(child, seen | node.accesses)

            check(program.root, frozenset())

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TreeWorkloadGenerator(config(), 1, branch_probability=1.5)
        with pytest.raises(ValueError):
            TreeWorkloadGenerator(config(), 1, n_branches=1)
        with pytest.raises(ValueError):
            TreeWorkloadGenerator(config(), 1, max_depth=0)


class TestInstanceGeneration:
    def test_specs_follow_a_root_to_leaf_path(self, generator):
        table, specs = generator.generate()
        assert len(specs) == 40
        for spec in specs:
            tree = table.tree(spec.program_name)
            # Walk the schedule: the labels must form a root-to-leaf path.
            node = tree.root
            expected_ops = sorted(node.accesses)
            for op_index, label in spec.node_schedule:
                children = {c.label: c for c in node.children}
                assert label in children, f"{label} not a child of {node.label}"
                assert op_index == len(expected_ops)
                node = children[label]
                expected_ops.extend(sorted(node.accesses))
            assert node.is_leaf
            assert [op.item for op in spec.operations] == expected_ops

    def test_relation_table_covers_all_programs(self, generator):
        table, specs = generator.generate()
        for spec in specs:
            tree = table.tree(spec.program_name)  # raises if missing
            assert tree.name == spec.program_name

    def test_conditional_relations_actually_occur(self, generator):
        """The extension's point: some type pairs are conditionally
        conflicting / unsafe at their roots."""
        table, _ = generator.generate()
        names = table.programs
        # Program roots are labelled with the program name.
        relations = {
            table.conflict(a, a, b, b) for a in names for b in names if a != b
        }
        assert Conflict.CONDITIONAL in relations or Conflict.CERTAIN in relations
        # Safety at the roots reflects the paper's convention that a
        # transaction accesses its first segment when it begins, so both
        # SAFE and not-SAFE flavours should be representable.
        safeties = {
            table.safety(a, a, b, b) for a in names for b in names if a != b
        }
        assert Safety.SAFE in safeties


class TestSimulationWithTreeOracle:
    def test_full_run_under_cca(self, generator):
        table, specs = generator.generate()
        cfg = config()
        result = RTDBSimulator(
            cfg, specs, CCAPolicy(1.0), oracle=TreeOracle(table)
        ).run()
        assert result.n_committed == len(specs)

    def test_full_run_under_edf(self, generator):
        table, specs = generator.generate()
        result = RTDBSimulator(
            config(), specs, EDFPolicy(), oracle=TreeOracle(table)
        ).run()
        assert result.n_committed == len(specs)

    def test_node_labels_advance_at_decision_points(self, generator):
        table, specs = generator.generate()
        decisions = []
        RTDBSimulator(
            config(),
            specs,
            CCAPolicy(1.0),
            oracle=TreeOracle(table),
            trace=lambda name, **kw: decisions.append(kw)
            if name == "decision"
            else None,
        ).run()
        branching = [s for s in specs if s.node_schedule]
        if branching:
            assert decisions, "expected decision-point traces"
            for kw in decisions:
                assert "." in kw["node"]
