"""Slack-based deadline assignment."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.random import RandomStream
from repro.workload.deadlines import assign_deadline


class TestAssignDeadline:
    def test_deadline_within_slack_bounds(self):
        stream = RandomStream(1)
        for _ in range(200):
            deadline = assign_deadline(
                100.0, 80.0, stream, min_slack=0.2, max_slack=8.0
            )
            assert 100.0 + 80.0 * 1.2 <= deadline <= 100.0 + 80.0 * 9.0

    def test_zero_slack_range(self):
        deadline = assign_deadline(0.0, 50.0, RandomStream(2), 0.5, 0.5)
        assert deadline == pytest.approx(75.0)

    def test_invalid_resource_time_rejected(self):
        with pytest.raises(ValueError):
            assign_deadline(0.0, 0.0, RandomStream(1), 0.2, 8.0)

    def test_invalid_slack_range_rejected(self):
        with pytest.raises(ValueError):
            assign_deadline(0.0, 50.0, RandomStream(1), 2.0, 1.0)
        with pytest.raises(ValueError):
            assign_deadline(0.0, 50.0, RandomStream(1), -0.1, 1.0)

    @given(
        seed=st.integers(0, 2**31),
        arrival=st.floats(0.0, 1e6),
        resource=st.floats(0.1, 1e4),
        min_slack=st.floats(0.0, 4.0),
        extra=st.floats(0.0, 4.0),
    )
    @settings(max_examples=60)
    def test_deadline_always_after_arrival_plus_resource(
        self, seed, arrival, resource, min_slack, extra
    ):
        deadline = assign_deadline(
            arrival, resource, RandomStream(seed), min_slack, min_slack + extra
        )
        assert deadline >= arrival + resource * (1.0 + min_slack) - 1e-6
