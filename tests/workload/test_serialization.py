"""Workload save/load round-trips."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.generator import generate_workload
from repro.workload.programs import TreeWorkloadGenerator
from repro.workload.serialization import (
    load_workload,
    save_workload,
    spec_from_dict,
    spec_to_dict,
)

from tests.conftest import make_spec
from tests.core.test_simulator_properties import workloads


class TestRoundTrip:
    def test_generated_workload(self, tmp_path, mm_config):
        workload = generate_workload(mm_config, seed=3)
        path = save_workload(workload, tmp_path / "workload.jsonl")
        assert load_workload(path) == workload

    def test_disk_workload_preserves_io(self, tmp_path, disk_config):
        workload = generate_workload(disk_config, seed=3)
        loaded = load_workload(save_workload(workload, tmp_path / "w.jsonl"))
        assert loaded == workload
        assert any(op.needs_io for spec in loaded for op in spec.operations)

    def test_tree_workload_preserves_node_schedule(self, tmp_path, mm_config):
        _, workload = TreeWorkloadGenerator(mm_config, seed=4).generate()
        loaded = load_workload(save_workload(workload, tmp_path / "t.jsonl"))
        assert loaded == workload
        assert any(spec.node_schedule for spec in loaded)

    def test_read_write_mix_preserved(self, tmp_path, mm_config):
        config = mm_config.replace(read_fraction=0.5)
        workload = generate_workload(config, seed=5)
        loaded = load_workload(save_workload(workload, tmp_path / "rw.jsonl"))
        assert loaded == workload

    def test_single_spec_dict_roundtrip(self):
        spec = make_spec(7, [1, 2], deadline=50.0, criticalness=2)
        assert spec_from_dict(spec_to_dict(spec)) == spec

    @given(workload=workloads(disk=True))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_specs_roundtrip(self, tmp_path_factory, workload):
        path = tmp_path_factory.mktemp("wl") / "w.jsonl"
        assert load_workload(save_workload(workload, path)) == workload


class TestValidation:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_workload(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps({"repro_workload_version": 99}) + "\n")
        with pytest.raises(ValueError, match="version"):
            load_workload(path)

    def test_corrupt_spec_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"repro_workload_version": 1})
            + "\n"
            + json.dumps({"tid": 1})  # missing required fields
            + "\n"
        )
        with pytest.raises(KeyError):
            load_workload(path)

    def test_loaded_specs_are_simulatable(self, tmp_path, mm_config):
        from repro.core.policy import CCAPolicy
        from repro.core.simulator import RTDBSimulator

        workload = generate_workload(mm_config, seed=6)
        loaded = load_workload(save_workload(workload, tmp_path / "w.jsonl"))
        original = RTDBSimulator(mm_config, workload, CCAPolicy(1.0)).run()
        replayed = RTDBSimulator(mm_config, loaded, CCAPolicy(1.0)).run()
        assert original.records == replayed.records
