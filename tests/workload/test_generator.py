"""Full workload assembly."""

import pytest

from repro.config import SimulationConfig
from repro.workload.generator import WorkloadGenerator, generate_workload


def config(**overrides):
    defaults = dict(
        n_transaction_types=10,
        updates_mean=5.0,
        updates_std=2.0,
        db_size=100,
        n_transactions=200,
        arrival_rate=5.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestGenerateWorkload:
    def test_size_and_ordering(self):
        workload = generate_workload(config(), seed=1)
        assert len(workload) == 200
        arrivals = [spec.arrival_time for spec in workload]
        assert sorted(arrivals) == arrivals
        assert [spec.tid for spec in workload] == list(range(200))

    def test_deterministic_per_seed(self):
        assert generate_workload(config(), 5) == generate_workload(config(), 5)

    def test_different_seeds_differ(self):
        assert generate_workload(config(), 1) != generate_workload(config(), 2)

    def test_instances_share_type_items(self):
        workload = generate_workload(config(), seed=3)
        by_type: dict[int, set] = {}
        for spec in workload:
            items = frozenset(op.item for op in spec.operations)
            by_type.setdefault(spec.type_id, set()).add(items)
        for type_id, item_sets in by_type.items():
            assert len(item_sets) == 1, f"type {type_id} instances disagree"

    def test_deadline_satisfies_formula_bounds(self):
        cfg = config(min_slack=0.2, max_slack=8.0)
        for spec in generate_workload(cfg, seed=4):
            resource = spec.resource_time
            lower = spec.arrival_time + resource * 1.2
            upper = spec.arrival_time + resource * 9.0
            assert lower - 1e-9 <= spec.deadline <= upper + 1e-9

    def test_no_io_on_main_memory_workloads(self):
        workload = generate_workload(config(), seed=5)
        assert all(not op.needs_io for spec in workload for op in spec.operations)

    def test_disk_io_probability(self):
        cfg = config(
            disk_resident=True,
            disk_access_time=25.0,
            disk_access_prob=0.1,
            n_transactions=500,
        )
        workload = generate_workload(cfg, seed=6)
        ops = [op for spec in workload for op in spec.operations]
        io_fraction = sum(1 for op in ops if op.needs_io) / len(ops)
        assert 0.07 < io_fraction < 0.13
        assert all(
            op.io_time == pytest.approx(25.0) for op in ops if op.needs_io
        )

    def test_types_table_exposed(self):
        generator = WorkloadGenerator(config(), seed=7)
        types = generator.make_types()
        assert len(types) == 10

    def test_program_names_match_types(self):
        workload = generate_workload(config(), seed=8)
        for spec in workload:
            assert spec.program_name == f"type{spec.type_id}"

    def test_arrival_rate_changes_do_not_perturb_types(self):
        """Stream separation: the same seed draws the same type table at
        every arrival rate."""
        slow = WorkloadGenerator(config(arrival_rate=1.0), seed=9).make_types()
        fast = WorkloadGenerator(config(arrival_rate=10.0), seed=9).make_types()
        assert slow == fast
