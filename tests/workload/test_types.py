"""Transaction type tables."""

import pytest

from repro.config import SimulationConfig
from repro.sim.random import RandomStream
from repro.workload.types import TransactionType, make_type_table


def config(**overrides):
    defaults = dict(n_transaction_types=50, db_size=300)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestTransactionType:
    def test_valid(self):
        t = TransactionType(type_id=0, items=(1, 2, 3), compute_per_update=4.0)
        assert t.n_updates == 3
        assert t.cpu_time == pytest.approx(12.0)
        assert t.program_name == "type0"

    def test_empty_items_rejected(self):
        with pytest.raises(ValueError):
            TransactionType(type_id=0, items=(), compute_per_update=4.0)

    def test_duplicate_items_rejected(self):
        with pytest.raises(ValueError):
            TransactionType(type_id=0, items=(1, 1), compute_per_update=4.0)

    def test_nonpositive_compute_rejected(self):
        with pytest.raises(ValueError):
            TransactionType(type_id=0, items=(1,), compute_per_update=0.0)


class TestMakeTypeTable:
    def test_table_size(self):
        table = make_type_table(config(), RandomStream(1))
        assert len(table) == 50
        assert [t.type_id for t in table] == list(range(50))

    def test_items_within_database(self):
        table = make_type_table(config(db_size=40), RandomStream(2))
        for t in table:
            assert all(0 <= item < 40 for item in t.items)

    def test_update_counts_near_mean(self):
        table = make_type_table(config(), RandomStream(3))
        counts = [t.n_updates for t in table]
        assert all(count >= 1 for count in counts)
        assert 15 < sum(counts) / len(counts) < 25

    def test_update_count_capped_at_db_size(self):
        tiny = config(db_size=5, updates_mean=20.0, updates_std=0.0)
        table = make_type_table(tiny, RandomStream(4))
        assert all(t.n_updates <= 5 for t in table)

    def test_regenerated_per_seed(self):
        """The paper regenerates items and counts at each run."""
        a = make_type_table(config(), RandomStream(1))
        b = make_type_table(config(), RandomStream(2))
        assert [t.items for t in a] != [t.items for t in b]

    def test_deterministic_per_seed(self):
        a = make_type_table(config(), RandomStream(9))
        b = make_type_table(config(), RandomStream(9))
        assert a == b

    def test_high_variance_classes(self):
        cfg = config(update_time_classes=(0.4, 4.0, 40.0))
        table = make_type_table(cfg, RandomStream(5))
        times = {t.compute_per_update for t in table}
        assert times == {0.4, 4.0, 40.0}
        # Contiguous near-equal classes of the 50 types.
        assert table[0].compute_per_update == 0.4
        assert table[49].compute_per_update == 40.0


class TestHighVarianceIntegration:
    def test_generated_workload_uses_class_times(self):
        from repro.workload.generator import generate_workload

        cfg = config(
            n_transaction_types=50,
            update_time_classes=(0.4, 4.0, 40.0),
            n_transactions=300,
            db_size=300,
        )
        workload = generate_workload(cfg, seed=1)
        by_type = {}
        for spec in workload:
            times = {op.compute_time for op in spec.operations}
            assert len(times) == 1, "one compute time per type"
            by_type[spec.type_id] = times.pop()
        assert set(by_type.values()) <= {0.4, 4.0, 40.0}
        # The classes are contiguous over type ids.
        for type_id, time in by_type.items():
            expected = (0.4, 4.0, 40.0)[type_id * 3 // 50]
            assert time == expected
