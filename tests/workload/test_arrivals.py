"""Poisson arrival process."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.random import RandomStream
from repro.workload.arrivals import poisson_arrivals


class TestPoissonArrivals:
    def test_count(self):
        times = poisson_arrivals(RandomStream(1), 5.0, 100)
        assert len(times) == 100

    def test_strictly_increasing(self):
        times = poisson_arrivals(RandomStream(2), 5.0, 200)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_interarrival_matches_rate(self):
        rate = 8.0  # trs/sec -> mean gap 125 ms
        times = poisson_arrivals(RandomStream(3), rate, 20000)
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert 1000.0 / rate == pytest.approx(mean_gap, rel=0.05)

    def test_start_offset(self):
        times = poisson_arrivals(RandomStream(4), 5.0, 10, start=1000.0)
        assert times[0] > 1000.0

    def test_zero_count(self):
        assert poisson_arrivals(RandomStream(5), 5.0, 0) == []

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            poisson_arrivals(RandomStream(1), 0.0, 10)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            poisson_arrivals(RandomStream(1), 5.0, -1)

    @given(
        seed=st.integers(0, 2**31),
        rate=st.floats(0.1, 100.0),
        count=st.integers(1, 50),
    )
    @settings(max_examples=50)
    def test_all_positive_and_ordered(self, seed, rate, count):
        times = poisson_arrivals(RandomStream(seed), rate, count)
        assert len(times) == count
        assert times[0] > 0
        assert sorted(times) == times


class TestBurstyArrivals:
    def test_count_and_order(self):
        from repro.workload.arrivals import bursty_arrivals

        times = bursty_arrivals(RandomStream(1), 5.0, 500)
        assert len(times) == 500
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_long_run_rate_preserved(self):
        from repro.workload.arrivals import bursty_arrivals

        times = bursty_arrivals(RandomStream(2), 8.0, 30000)
        measured = len(times) / (times[-1] / 1000.0)
        assert measured == pytest.approx(8.0, rel=0.1)

    def test_burstier_than_poisson(self):
        """Squared coefficient of variation of the gaps well above 1."""
        from repro.workload.arrivals import bursty_arrivals
        import statistics

        times = bursty_arrivals(RandomStream(3), 5.0, 20000)
        gaps = [b - a for a, b in zip(times, times[1:])]
        cv2 = statistics.pvariance(gaps) / statistics.mean(gaps) ** 2
        assert cv2 > 2.0

    def test_factor_one_behaves_like_poisson(self):
        from repro.workload.arrivals import bursty_arrivals
        import statistics

        times = bursty_arrivals(
            RandomStream(4), 5.0, 20000, burst_factor=1.0
        )
        gaps = [b - a for a, b in zip(times, times[1:])]
        cv2 = statistics.pvariance(gaps) / statistics.mean(gaps) ** 2
        assert cv2 == pytest.approx(1.0, abs=0.15)

    def test_validation(self):
        from repro.workload.arrivals import bursty_arrivals

        stream = RandomStream(1)
        with pytest.raises(ValueError):
            bursty_arrivals(stream, 0.0, 10)
        with pytest.raises(ValueError):
            bursty_arrivals(stream, 5.0, 10, burst_fraction=0.0)
        with pytest.raises(ValueError):
            bursty_arrivals(stream, 5.0, 10, burst_factor=0.5)
        with pytest.raises(ValueError):
            # 6x rate during 20% of the time needs a negative off rate.
            bursty_arrivals(stream, 5.0, 10, burst_factor=6.0, burst_fraction=0.2)
        with pytest.raises(ValueError):
            bursty_arrivals(stream, 5.0, 10, mean_burst_ms=0.0)

    def test_generator_integration(self):
        from repro.config import SimulationConfig
        from repro.workload.generator import generate_workload

        config = SimulationConfig(
            n_transaction_types=5,
            db_size=40,
            updates_mean=4.0,
            n_transactions=100,
            arrival_rate=10.0,
            arrival_model="bursty",
        )
        workload = generate_workload(config, seed=1)
        assert len(workload) == 100
        arrivals = [s.arrival_time for s in workload]
        assert sorted(arrivals) == arrivals

    def test_unknown_model_rejected(self):
        from repro.config import SimulationConfig

        with pytest.raises(ValueError, match="arrival model"):
            SimulationConfig(arrival_model="self-similar")
