"""Mutation tests: every certifier rule demonstrably fires.

Each test copies the clean serial baseline (which certifies under all
six rules) and injects exactly one defect — a non-serializable history,
a 2PL breach, a phantom lock holder, a priority-inverted wound, an
unpredicted conflict, an unnecessary rollback — then asserts the
matching CERT rule reports it.
"""

from repro.certify.certifier import certify_events
from repro.rtdb.transaction import Operation, TransactionSpec

from tests.certify.conftest import ev, serial_events, serial_specs


def certify(events, specs=None, policy="EDF-HP"):
    return certify_events(events, specs or serial_specs(), policy)


class TestBaseline:
    def test_serial_history_certifies_clean(self):
        result = certify(serial_events())
        assert result.certified
        assert result.checked == (
            "CERT001", "CERT002", "CERT003", "CERT004", "CERT005", "CERT006",
        )
        assert result.serialization_order == (1, 2)
        assert result.cycle is None
        # One deduplicated t1 -> t2 edge (witnessed by items 1 and 2).
        assert result.n_graph_edges == 1


class TestCert001Serializability:
    def test_crossed_write_order_is_a_cycle(self):
        events = [
            ev("arrival", 0.0, tx=1),
            ev("lock_acquire", 1.0, tx=1, item=1, exclusive=True),
            ev("arrival", 0.5, tx=2),
            ev("lock_acquire", 2.0, tx=2, item=2, exclusive=True),
            ev("lock_acquire", 8.0, tx=1, item=2, exclusive=True),
            ev("lock_release", 10.0, tx=1, items=[1, 2], reason="commit"),
            ev("commit", 10.0, tx=1),
            ev("lock_acquire", 11.0, tx=2, item=1, exclusive=True),
            ev("lock_release", 12.0, tx=2, items=[1, 2], reason="commit"),
            ev("commit", 12.0, tx=2),
        ]
        result = certify(events)
        assert not result.certified
        assert "CERT001" in result.violations_by_rule()
        assert result.serialization_order is None
        assert set(result.cycle) == {1, 2}
        assert result.cycle[0] == result.cycle[-1]
        (violation,) = [
            v for v in result.violations if v.code == "CERT001"
        ]
        assert "precedence cycle" in violation.message

    def test_shared_readers_do_not_conflict(self):
        # r1 r2 in parallel then a later writer: serializable, and the
        # two readers must not get an edge between them.
        specs = [
            TransactionSpec(
                tid=tid,
                type_id=0,
                arrival_time=0.0,
                deadline=100.0,
                operations=(
                    Operation(item=1, compute_time=4.0, is_write=False),
                ),
            )
            for tid in (1, 2)
        ] + [TransactionSpec(
            tid=3,
            type_id=0,
            arrival_time=0.0,
            deadline=100.0,
            operations=(Operation(item=1, compute_time=4.0),),
        )]
        events = [
            ev("arrival", 0.0, tx=1),
            ev("arrival", 0.0, tx=2),
            ev("lock_acquire", 1.0, tx=1, item=1, exclusive=False),
            ev("lock_acquire", 1.5, tx=2, item=1, exclusive=False),
            ev("lock_release", 3.0, tx=1, items=[1], reason="commit"),
            ev("commit", 3.0, tx=1),
            ev("lock_release", 4.0, tx=2, items=[1], reason="commit"),
            ev("commit", 4.0, tx=2),
            ev("arrival", 5.0, tx=3),
            ev("lock_acquire", 6.0, tx=3, item=1, exclusive=True),
            ev("lock_release", 8.0, tx=3, items=[1], reason="commit"),
            ev("commit", 8.0, tx=3),
        ]
        result = certify(events, specs)
        assert result.certified
        # Both readers precede the writer, no reader-reader edge.
        assert result.n_graph_edges == 2
        assert result.serialization_order == (1, 2, 3)


class TestCert002Strict2PL:
    def messages(self, events, specs=None):
        result = certify(events, specs)
        return [v.message for v in result.violations if v.code == "CERT002"]

    def test_acquire_after_release_fires(self):
        events = serial_events()
        events.insert(5, ev("lock_acquire", 5.0, tx=1, item=2, exclusive=True))
        assert any("after releasing" in m for m in self.messages(events))

    def test_missing_release_fires(self):
        events = [e for e in serial_events()
                  if not (e["event"] == "lock_release" and e["tx"] == 1)]
        assert any("no release event" in m for m in self.messages(events))

    def test_double_release_fires(self):
        events = serial_events()
        events.insert(5, ev("lock_release", 5.0, tx=1, items=[], reason="commit"))
        assert any("released locks 2 times" in m for m in self.messages(events))

    def test_release_reason_must_match_terminal(self):
        events = serial_events()
        events[4] = ev("lock_release", 5.0, tx=1, items=[1, 2], reason="abort")
        assert any(
            "does not match its terminal event" in m
            for m in self.messages(events)
        )

    def test_release_of_unacquired_item_fires(self):
        events = serial_events()
        events[4] = ev("lock_release", 5.0, tx=1, items=[1, 2, 3],
                       reason="commit")
        assert any("never acquired" in m for m in self.messages(events))

    def test_unreleased_item_fires(self):
        events = serial_events()
        events[4] = ev("lock_release", 5.0, tx=1, items=[1], reason="commit")
        assert any("never released item 2" in m for m in self.messages(events))

    def test_overlapping_exclusive_holds_fire(self):
        events = serial_events()
        # T2 grabs item 1 while T1 still holds it exclusively.
        events.insert(4, ev("lock_acquire", 3.0, tx=2, item=1, exclusive=True))
        del events[9]  # drop T2's original acquire of item 1
        assert any("conflicting modes" in m for m in self.messages(events))

    def test_truncated_trace_fires(self):
        events = serial_events()[:4]  # T1 acquired both items, then EOF
        assert any("end of the trace" in m for m in self.messages(events))


class TestCert003ConflictResolution:
    def test_phantom_holder_fires(self):
        events = serial_events()
        events.insert(4, ev("lock_wait", 3.0, tx=2, item=1, holders=[9]))
        events.insert(7, ev("lock_wake", 5.0, tx=2))
        result = certify(events)
        assert any(
            v.code == "CERT003" and "did not hold it" in v.message
            for v in result.violations
        )

    def test_unresolved_wait_fires(self):
        events = serial_events()
        events.insert(4, ev("lock_wait", 3.0, tx=2, item=1, holders=[1]))
        result = certify(events)
        assert any(
            v.code == "CERT003" and "never" in v.message
            for v in result.violations
        )

    def test_wait_resolved_by_wake_passes(self):
        events = serial_events()
        events.insert(4, ev("lock_wait", 3.0, tx=2, item=1, holders=[1]))
        events.insert(7, ev("lock_wake", 5.0, tx=2))
        assert certify(events).certified

    def test_pre_analysis_policy_must_not_wait(self):
        # Theorem 1: under CCA scheduling no transaction ever waits on a
        # lock; the same (otherwise valid) waiting history fails.
        events = serial_events()
        events.insert(4, ev("lock_wait", 3.0, tx=2, item=1, holders=[1]))
        events.insert(7, ev("lock_wake", 5.0, tx=2))
        result = certify(events, policy="CCA")
        assert any(
            v.code == "CERT003" and "Theorem 1" in v.message
            for v in result.violations
        )


def wound_events(break_first=False):
    """T2 wounds T1 at dispatch before T1 finishes; T2 then commits."""
    events = [
        ev("arrival", 0.0, tx=1),
        ev("lock_acquire", 1.0, tx=1, item=1, exclusive=True),
        ev("arrival", 2.0, tx=2),
    ]
    if break_first:
        events.append(ev("deadlock_break", 3.0, tx=1, by=2))
    events += [
        ev("lock_release", 3.0, tx=1, items=[1], reason="abort"),
        ev("abort", 3.0, tx=1, by=2, cause="dispatch"),
        ev("lock_acquire", 4.0, tx=2, item=1, exclusive=True),
        ev("lock_acquire", 5.0, tx=2, item=2, exclusive=True),
        ev("lock_release", 7.0, tx=2, items=[1, 2], reason="commit"),
        ev("commit", 7.0, tx=2),
    ]
    return events


def wound_specs(victim_deadline, by_deadline):
    from tests.conftest import make_spec

    return [
        make_spec(1, [1, 2], arrival=0.0, deadline=victim_deadline),
        make_spec(2, [1, 2], arrival=2.0, deadline=by_deadline),
    ]


class TestCert004WoundOrder:
    def test_priority_inverted_wound_fires(self):
        # The victim's deadline is earlier: under EDF-HP it outranks the
        # wounder, so the wound runs uphill.
        result = certify(wound_events(), wound_specs(100.0, 900.0))
        assert [v.code for v in result.violations] == ["CERT004"]
        assert "High Priority resolution inverted" in result.violations[0].message

    def test_downhill_wound_passes(self):
        result = certify(wound_events(), wound_specs(900.0, 100.0))
        assert result.certified

    def test_deadlock_break_excuses_the_inversion(self):
        # Breaking a wait-for cycle legitimately wounds regardless of
        # priority order.
        result = certify(
            wound_events(break_first=True), wound_specs(100.0, 900.0)
        )
        assert result.certified

    def test_skipped_for_non_static_policies(self):
        result = certify(wound_events(), wound_specs(100.0, 900.0),
                         policy="EDF-Wait")
        assert "CERT004" in result.skipped
        assert "CERT004" not in result.checked
        assert "not statically recomputable" in result.skipped["CERT004"]


class TestCert005ConflictPrediction:
    def test_access_outside_declared_data_set_fires(self):
        events = serial_events()
        events.insert(4, ev("lock_acquire", 3.0, tx=1, item=9, exclusive=True))
        events[5] = ev("lock_release", 5.0, tx=1, items=[1, 2, 9],
                       reason="commit")
        result = certify(events)
        assert any(
            v.code == "CERT005" and "outside its declared data set" in v.message
            for v in result.violations
        )

    def test_write_lock_outside_write_set_fires(self):
        specs = serial_specs()
        specs[0] = TransactionSpec(
            tid=1,
            type_id=0,
            arrival_time=0.0,
            deadline=100.0,
            operations=(
                Operation(item=1, compute_time=4.0),
                Operation(item=2, compute_time=4.0, is_write=False),
            ),
        )
        result = certify(serial_events(), specs)
        assert any(
            v.code == "CERT005" and "outside its declared write set" in v.message
            for v in result.violations
        )

    def test_unknown_transaction_fires(self):
        events = serial_events() + [
            ev("arrival", 11.0, tx=7),
            ev("commit", 12.0, tx=7),
        ]
        result = certify(events)
        assert any(
            v.code == "CERT005" and "not in the workload" in v.message
            for v in result.violations
        )

    def test_unpredicted_runtime_conflict_fires(self):
        # T2's declared sets are disjoint from T1's, so the oracle says
        # "don't conflict" — yet the trace shows T2 waiting behind T1.
        from tests.conftest import make_spec

        specs = [
            make_spec(1, [1, 2], arrival=0.0, deadline=100.0),
            make_spec(2, [3, 4], arrival=1.0, deadline=200.0),
        ]
        events = [
            ev("arrival", 0.0, tx=1),
            ev("lock_acquire", 1.0, tx=1, item=1, exclusive=True),
            ev("lock_acquire", 1.5, tx=1, item=2, exclusive=True),
            ev("arrival", 1.0, tx=2),
            ev("lock_wait", 2.0, tx=2, item=1, holders=[1]),
            ev("lock_release", 5.0, tx=1, items=[1, 2], reason="commit"),
            ev("commit", 5.0, tx=1),
            ev("lock_wake", 5.0, tx=2),
            ev("lock_acquire", 5.5, tx=2, item=3, exclusive=True),
            ev("lock_acquire", 6.0, tx=2, item=4, exclusive=True),
            ev("lock_release", 8.0, tx=2, items=[3, 4], reason="commit"),
            ev("commit", 8.0, tx=2),
        ]
        result = certify(events, specs)
        (violation,) = [
            v for v in result.violations if v.code == "CERT005"
        ]
        assert "conflicted at runtime (lock wait)" in violation.message
        assert violation.tids == (1, 2)


class TestCert006SafetyPrediction:
    def test_unnecessary_rollback_fires(self):
        # T1 is wounded before acquiring anything: safety says SAFE
        # (blocking suffices), so the rollback was unjustified.
        events = [
            ev("arrival", 0.0, tx=1),
            ev("abort", 0.5, tx=1, by=2, cause="dispatch"),
            ev("arrival", 0.2, tx=2),
            ev("lock_acquire", 1.0, tx=2, item=1, exclusive=True),
            ev("lock_acquire", 2.0, tx=2, item=2, exclusive=True),
            ev("lock_release", 4.0, tx=2, items=[1, 2], reason="commit"),
            ev("commit", 4.0, tx=2),
        ]
        result = certify(events, wound_specs(200.0, 100.0))
        assert [v.code for v in result.violations] == ["CERT006"]
        assert "blocking would have sufficed" in result.violations[0].message

    def test_justified_rollback_passes(self):
        # In wound_events the victim had write-locked item 1, which the
        # wounder accesses: UNSAFE, rollback required.
        result = certify(wound_events(), wound_specs(900.0, 100.0))
        assert result.certified

    def test_deadlock_break_is_not_a_safety_wound(self):
        events = [
            ev("arrival", 0.0, tx=1),
            ev("deadlock_break", 0.5, tx=1, by=2),
            ev("abort", 0.5, tx=1, by=2, cause="dispatch"),
            ev("arrival", 0.2, tx=2),
            ev("lock_acquire", 1.0, tx=2, item=1, exclusive=True),
            ev("lock_acquire", 2.0, tx=2, item=2, exclusive=True),
            ev("lock_release", 4.0, tx=2, items=[1, 2], reason="commit"),
            ev("commit", 4.0, tx=2),
        ]
        result = certify(events, wound_specs(200.0, 100.0))
        assert result.certified
