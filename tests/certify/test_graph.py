"""Precedence graph: deterministic topological orders and minimal cycles."""

import pytest

from repro.certify.graph import EdgeWitness, PrecedenceGraph


def w(item=1, first=0.0, second=1.0):
    return EdgeWitness(item, first, second)


class TestTopologicalOrder:
    def test_isolated_nodes_sort_by_tid(self):
        graph = PrecedenceGraph()
        for node in (3, 1, 2):
            graph.add_node(node)
        assert graph.topological_order() == [1, 2, 3]

    def test_edges_constrain_the_order(self):
        graph = PrecedenceGraph()
        graph.add_node(3)
        graph.add_edge(2, 1, w())
        assert graph.topological_order() == [2, 1, 3]

    def test_cycle_yields_no_order(self):
        graph = PrecedenceGraph()
        graph.add_edge(1, 2, w())
        graph.add_edge(2, 1, w())
        assert graph.topological_order() is None


class TestEdges:
    def test_self_edge_rejected(self):
        graph = PrecedenceGraph()
        with pytest.raises(ValueError, match="self-edge"):
            graph.add_edge(1, 1, w())

    def test_earliest_witness_wins(self):
        graph = PrecedenceGraph()
        graph.add_edge(1, 2, w(item=5, second=9.0))
        graph.add_edge(1, 2, w(item=7, second=3.0))
        assert graph.n_edges == 1
        assert graph.witness[(1, 2)].item == 7

    def test_n_edges_counts_distinct_pairs(self):
        graph = PrecedenceGraph()
        graph.add_edge(1, 2, w())
        graph.add_edge(1, 2, w())
        graph.add_edge(2, 3, w())
        assert graph.n_edges == 2


class TestFindCycle:
    def test_acyclic_graph_has_no_cycle(self):
        graph = PrecedenceGraph()
        graph.add_edge(1, 2, w())
        graph.add_edge(2, 3, w())
        assert graph.find_cycle() is None

    def test_cycle_closed_and_stripped_of_tails(self):
        graph = PrecedenceGraph()
        graph.add_edge(5, 1, w())  # tail feeding the cycle
        graph.add_edge(1, 2, w())
        graph.add_edge(2, 1, w())
        graph.add_edge(2, 6, w())  # tail leaving the cycle
        cycle = graph.find_cycle()
        assert cycle == [1, 2, 1]

    def test_shortest_cycle_is_preferred(self):
        graph = PrecedenceGraph()
        graph.add_edge(1, 2, w())
        graph.add_edge(2, 3, w())
        graph.add_edge(3, 1, w())
        graph.add_edge(4, 5, w())
        graph.add_edge(5, 4, w())
        assert graph.find_cycle() == [4, 5, 4]
