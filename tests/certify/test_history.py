"""History reconstruction: incarnations, wounds, and event bookkeeping."""

import pytest

from repro.certify.history import parse_history

from tests.certify.conftest import ev, serial_events


def restart_events():
    """T1 is wounded once, restarts, and commits on its second life."""
    return [
        ev("arrival", 0.0, tx=1),
        ev("lock_acquire", 1.0, tx=1, item=1, exclusive=True),
        ev("lock_release", 2.0, tx=1, items=[1], reason="abort"),
        ev("abort", 2.0, tx=1, by=2, cause="dispatch"),
        ev("dispatch", 3.0, tx=1),
        ev("lock_acquire", 4.0, tx=1, item=1, exclusive=True),
        ev("lock_release", 6.0, tx=1, items=[1], reason="commit"),
        ev("commit", 6.0, tx=1),
    ]


class TestIncarnations:
    def test_serial_history_has_one_incarnation_per_tid(self):
        history = parse_history(serial_events())
        assert [inc.key for inc in history.incarnations] == [(1, 0), (2, 0)]
        assert sorted(history.committed()) == [1, 2]
        assert history.n_events == 12
        assert history.last_time == 10.0

    def test_restart_splits_incarnations(self):
        history = parse_history(restart_events())
        assert [inc.key for inc in history.incarnations] == [(1, 0), (1, 1)]
        by_tid = history.by_tid()
        assert len(by_tid[1]) == 2
        assert history.committed()[1].index == 1

    def test_wound_joined_to_the_incarnation_it_ended(self):
        history = parse_history(restart_events())
        (wound,) = history.wounds
        assert wound.victim == 1 and wound.by == 2
        assert wound.cause == "dispatch"
        assert wound.incarnation.index == 0
        assert not wound.deadlock_break

    def test_double_commit_rejected(self):
        events = serial_events() + [
            ev("dispatch", 11.0, tx=1),
            ev("commit", 12.0, tx=1),
        ]
        history = parse_history(events)
        with pytest.raises(ValueError, match="committed more than once"):
            history.committed()

    def test_untracked_kinds_do_not_open_ghost_incarnations(self):
        # io_stale arrives after the abort that killed its epoch; it must
        # not resurrect the tid as a new incarnation.
        events = restart_events()
        events.insert(4, ev("io_stale", 2.5, tx=1, item=1))
        history = parse_history(events)
        assert [inc.key for inc in history.incarnations] == [(1, 0), (1, 1)]
        assert history.n_events == len(events)

    def test_non_event_record_rejected(self):
        with pytest.raises(ValueError, match="not a trace event"):
            parse_history([{"foo": 1}])


class TestDeadlockBreaks:
    def test_break_marks_the_matching_wound(self):
        events = restart_events()
        events.insert(2, ev("deadlock_break", 2.0, tx=1, by=2))
        (wound,) = parse_history(events).wounds
        assert wound.deadlock_break

    def test_break_for_another_pair_does_not_match(self):
        events = restart_events()
        events.insert(2, ev("deadlock_break", 2.0, tx=1, by=7))
        (wound,) = parse_history(events).wounds
        assert not wound.deadlock_break


class TestIncarnationState:
    def test_seq_breaks_same_timestamp_ties(self):
        history = parse_history(serial_events())
        (inc1, inc2) = history.incarnations
        seqs = [acq.seq for acq in inc1.acquires + inc2.acquires]
        assert seqs == sorted(seqs)
        assert inc1.releases[0].seq > inc1.acquires[-1].seq

    def test_held_items_upgrades_shared_to_exclusive(self):
        events = [
            ev("arrival", 0.0, tx=1),
            ev("lock_acquire", 1.0, tx=1, item=1, exclusive=False),
            ev("lock_acquire", 2.0, tx=1, item=1, exclusive=True),
            ev("lock_release", 3.0, tx=1, items=[1], reason="commit"),
            ev("commit", 3.0, tx=1),
        ]
        (inc,) = parse_history(events).incarnations
        held = inc.held_items()
        assert held[1].exclusive
        assert held[1].time == 1.0  # the first grant's time survives

    def test_acquires_until_is_inclusive(self):
        (inc,) = parse_history(restart_events()).incarnations[:1]
        assert [a.item for a in inc.acquires_until(1.0)] == [1]
        assert inc.acquires_until(0.5) == []
