"""End-to-end certification of real simulated experiment cells.

The acceptance matrix from the issue: the paper's experiments certify
under every policy family — the locking baselines (EDF-HP, EDF-Wait)
and the CCA variants — at quick scale.  Also covers the runner's cell
selection, the metrics counters, and the manifest v3 integration.
"""

import pytest

from repro.certify.runner import (
    DEFAULT_POLICIES,
    certification_section,
    certify_cell,
    certify_sample,
    default_cells,
    find_cell,
)
from repro.experiments.config import ExperimentScale
from repro.obs.manifest import build_manifest, validate_manifest
from repro.obs.registry import MetricsRegistry


@pytest.fixture(scope="module")
def quick():
    return ExperimentScale.quick()


def certify_one(experiment, quick, policy):
    (cell,) = default_cells(experiment, quick, [policy])
    return certify_cell(experiment, cell)


class TestAcceptanceMatrix:
    @pytest.mark.parametrize("policy", DEFAULT_POLICIES)
    def test_fig4a_certifies_per_policy(self, quick, policy):
        certified = certify_one("fig4a", quick, policy)
        assert certified.result.certified, certified.result.violations
        assert certified.result.n_committed > 0
        assert certified.result.serialization_order is not None

    @pytest.mark.parametrize("policy", ["EDF-HP", "CCA"])
    def test_table1_certifies(self, quick, policy):
        certified = certify_one("table1", quick, policy)
        assert certified.result.certified, certified.result.violations

    @pytest.mark.parametrize("policy", ["cca-static", "Criticalness-CCA"])
    def test_fig5a_certifies_cca_variants(self, quick, policy):
        certified = certify_one("fig5a", quick, policy)
        assert certified.result.certified, certified.result.violations

    def test_static_policy_gets_cert004_checked(self, quick):
        certified = certify_one("fig4a", quick, "EDF-HP")
        assert "CERT004" in certified.result.checked

    def test_cca_gets_cert004_skipped_with_reason(self, quick):
        certified = certify_one("fig4a", quick, "CCA")
        assert "CERT004" in certified.result.skipped
        assert "not statically recomputable" in (
            certified.result.skipped["CERT004"]
        )


class TestCellSelection:
    def test_default_cells_one_per_policy_at_middle_x(self, quick):
        cells = default_cells("fig4a", quick)
        assert [cell.policy for cell in cells] == list(DEFAULT_POLICIES)
        assert len({(cell.x, cell.seed) for cell in cells}) == 1

    def test_default_cells_canonicalize_policy_names(self, quick):
        (cell,) = default_cells("fig4a", quick, ["edf"])
        assert cell.policy == "EDF-HP"

    def test_table_experiments_synthesize_base_cell(self, quick):
        (cell,) = default_cells("table1", quick, ["EDF-HP"])
        assert cell.x == cell.config.arrival_rate
        assert not cell.config.disk_resident
        (disk_cell,) = default_cells("table2", quick, ["EDF-HP"])
        assert disk_cell.config.disk_resident

    def test_find_cell_replaces_policy(self, quick):
        cells = default_cells("fig4a", quick, ["EDF-HP"])
        found = find_cell(
            "fig4a", quick, cells[0].x, cells[0].seed, "fcfs"
        )
        assert found is not None
        assert found.policy == "FCFS"
        assert found.config == cells[0].config

    def test_find_cell_rejects_unknown_point(self, quick):
        assert find_cell("fig4a", quick, 999.0, 1, "EDF-HP") is None


class TestSampleAndManifest:
    @pytest.fixture(scope="class")
    def sampled(self, quick):
        registry = MetricsRegistry()
        samples = certify_sample(
            "table1", quick, ["EDF-HP"], registry=registry
        )
        return registry, samples

    def test_counters_track_certified_cells(self, sampled):
        registry, samples = sampled
        assert len(samples) == 1
        counters = registry.snapshot()["counters"]
        (key,) = [k for k in counters if k.startswith("certify.cells")]
        assert "EDF-HP" in key
        assert counters[key] == 1
        assert not any(
            k.startswith("certify.uncertified_cells") for k in counters
        )

    def test_certification_section_shape(self, sampled):
        _, samples = sampled
        section = certification_section(samples)
        assert section["enabled"] is True
        (cell,) = section["cells"]
        assert cell["certified"] is True
        assert cell["violations"] == []
        assert set(cell["cell"]) == {"x", "seed", "policy"}

    def test_manifest_v3_accepts_the_section(self, sampled):
        registry, samples = sampled
        manifest = build_manifest(
            experiment="table1",
            scale="quick",
            cells=[],
            metrics_snapshot=registry.snapshot(),
            certification=certification_section(samples),
        )
        assert validate_manifest(manifest) == []

    def test_manifest_defaults_to_certification_off(self):
        manifest = build_manifest(
            experiment="table1",
            scale="quick",
            cells=[],
            metrics_snapshot=MetricsRegistry().snapshot(),
        )
        assert manifest["certification"] == {"enabled": False, "cells": []}
        assert validate_manifest(manifest) == []
