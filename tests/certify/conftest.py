"""Shared builders for certifier tests: hand-built event streams.

Events here are the flattened dictionaries an
:class:`~repro.tracing.EventLog` records.  The baseline is a perfectly
serial two-transaction schedule that certifies clean under every rule;
mutation tests copy it and perturb exactly one aspect, so each CERT
rule's firing is pinned to a known defect.
"""

from __future__ import annotations

from tests.conftest import make_spec


def ev(kind: str, time: float, **fields) -> dict:
    """One flattened trace event."""
    return {"event": kind, "time": float(time), **fields}


def serial_specs():
    """T1 then T2, both write items 1 and 2; T1's deadline is earlier
    (so T1 outranks T2 under EDF)."""
    return [
        make_spec(1, [1, 2], arrival=0.0, deadline=100.0),
        make_spec(2, [1, 2], arrival=6.0, deadline=200.0),
    ]


def serial_events():
    """The clean strict-2PL serial schedule for :func:`serial_specs`."""
    return [
        ev("arrival", 0.0, tx=1),
        ev("dispatch", 0.0, tx=1),
        ev("lock_acquire", 1.0, tx=1, item=1, exclusive=True),
        ev("lock_acquire", 2.0, tx=1, item=2, exclusive=True),
        ev("lock_release", 5.0, tx=1, items=[1, 2], reason="commit"),
        ev("commit", 5.0, tx=1),
        ev("arrival", 6.0, tx=2),
        ev("dispatch", 6.0, tx=2),
        ev("lock_acquire", 7.0, tx=2, item=1, exclusive=True),
        ev("lock_acquire", 8.0, tx=2, item=2, exclusive=True),
        ev("lock_release", 10.0, tx=2, items=[1, 2], reason="commit"),
        ev("commit", 10.0, tx=2),
    ]
