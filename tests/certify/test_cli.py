"""``repro certify`` CLI: exit codes, report formats, offline mode.

Exit contract (shared with ``repro lint``): 0 = certified,
1 = violations found, 2 = usage error.  The known-bad fixture pair under
``fixtures/`` is the same one the CI smoke step feeds through
``--events``; it must always fail certification.
"""

import json
from pathlib import Path

import pytest

from repro.certify.cli import certify_main
from repro.certify.report import JSON_SCHEMA_VERSION
from repro.workload.serialization import save_workload

from tests.certify.conftest import serial_events, serial_specs

FIXTURES = Path(__file__).parent / "fixtures"
BAD_TRACE = FIXTURES / "bad_trace.jsonl"
BAD_WORKLOAD = FIXTURES / "bad_workload.jsonl"


def write_events(path, events):
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")
    return path


class TestUsageErrors:
    def test_no_arguments(self, capsys):
        assert certify_main([]) == 2
        assert "experiment id" in capsys.readouterr().err

    def test_unknown_experiment(self, capsys):
        assert certify_main(["fig9z"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_malformed_cell(self, capsys):
        assert certify_main(["fig4a", "--cell", "nope"]) == 2
        assert certify_main(["fig4a", "--cell", "x,y,EDF-HP"]) == 2

    def test_cell_not_in_sweep(self, capsys):
        assert certify_main(
            ["fig4a", "--scale", "quick", "--cell", "999,1,EDF-HP"]
        ) == 2
        err = capsys.readouterr().err
        assert "no cell at" in err
        # The error spells out the valid axes, not just the failure.
        assert "x values:" in err
        assert "seeds:" in err
        assert "1, 2, 3" in err  # quick scale runs seeds 1-3
        assert "policies:" in err
        assert "any policy name is accepted" in err

    def test_events_requires_workload_and_policy(self, capsys):
        assert certify_main(["--events", str(BAD_TRACE)]) == 2
        assert "--workload" in capsys.readouterr().err

    def test_missing_files(self, tmp_path):
        assert certify_main([
            "--events", str(tmp_path / "no.jsonl"),
            "--workload", str(BAD_WORKLOAD),
            "--policy", "EDF-HP",
        ]) == 2


class TestListRules:
    def test_catalog_covers_all_rules(self, capsys):
        assert certify_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("CERT001", "CERT002", "CERT003",
                     "CERT004", "CERT005", "CERT006"):
            assert code in out


class TestOfflineMode:
    def test_clean_trace_certifies(self, tmp_path, capsys):
        events = write_events(tmp_path / "trace.jsonl", serial_events())
        workload = save_workload(serial_specs(), tmp_path / "load.jsonl")
        code = certify_main([
            "--events", str(events),
            "--workload", str(workload),
            "--policy", "EDF-HP",
        ])
        assert code == 0
        assert "CERTIFIED" in capsys.readouterr().out

    def test_known_bad_fixture_fails(self, capsys):
        code = certify_main([
            "--events", str(BAD_TRACE),
            "--workload", str(BAD_WORKLOAD),
            "--policy", "EDF-HP",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "NOT CERTIFIED" in out
        assert "CERT001" in out

    def test_json_report_schema(self, capsys):
        code = certify_main([
            "--events", str(BAD_TRACE),
            "--workload", str(BAD_WORKLOAD),
            "--policy", "EDF-HP",
            "--format", "json",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "repro-certification"
        assert payload["schema"] == JSON_SCHEMA_VERSION == 1
        assert payload["certified"] is False
        assert payload["cycle"] is not None
        assert any(
            v["code"] == "CERT001" for v in payload["violations"]
        )

    def test_corrupt_trace_is_a_usage_error(self, tmp_path, capsys):
        events = tmp_path / "trace.jsonl"
        events.write_text('{"no_event_key": 1}\n')
        workload = save_workload(serial_specs(), tmp_path / "load.jsonl")
        assert certify_main([
            "--events", str(events),
            "--workload", str(workload),
            "--policy", "EDF-HP",
        ]) == 2
        assert "error:" in capsys.readouterr().err


class TestExperimentMode:
    @pytest.mark.parametrize("fmt", ["text", "json"])
    def test_table1_certifies(self, capsys, fmt):
        code = certify_main([
            "table1", "--scale", "quick", "--policy", "EDF-HP",
            "--format", fmt,
        ])
        assert code == 0
        out = capsys.readouterr().out
        if fmt == "text":
            assert "CERTIFIED" in out
            assert "serialization order" in out
        else:
            payload = json.loads(out)
            assert payload["certified"] is True
            assert payload["schema"] == JSON_SCHEMA_VERSION
            (cell,) = payload["cells"]
            assert cell["cell"]["policy"] == "EDF-HP"

    def test_specific_cell(self, capsys):
        from repro.certify.runner import default_cells
        from repro.experiments.config import ExperimentScale

        (cell,) = default_cells("fig4a", ExperimentScale.quick(), ["EDF-HP"])
        code = certify_main([
            "fig4a", "--scale", "quick",
            "--cell", f"{cell.x:g},{cell.seed},EDF-HP",
        ])
        assert code == 0
        assert f"x={cell.x:g}" in capsys.readouterr().out
