"""Streaming certification: spilled traces certify identically.

The bounded-memory path (``certify_cell(stream_dir=...)`` spilling a
JSONL stream, then certifying lazily from the file) must produce the
*exact* verdicts of the in-memory path — same rules checked, same
violations, same serialization order — because the stream carries the
same flattened records in the same order.
"""

from __future__ import annotations

import pytest

from repro.certify.certifier import certify_events
from repro.certify.runner import certify_cell, default_cells, stream_path_for
from repro.experiments.config import ExperimentScale
from repro.experiments.parallel import simulate_cell_traced
from repro.sim.stream import JsonlSink, iter_jsonl


@pytest.fixture(scope="module")
def quick_scale():
    return ExperimentScale.quick()


@pytest.fixture(scope="module")
def sample_cell(quick_scale):
    return default_cells("fig4a", quick_scale, ("CCA",))[0]


def certifications_equal(left, right):
    assert left.certified == right.certified
    assert left.checked == right.checked
    assert left.skipped == right.skipped
    assert left.n_committed == right.n_committed
    assert left.n_wounds == right.n_wounds
    assert left.n_graph_edges == right.n_graph_edges
    assert left.serialization_order == right.serialization_order
    assert [v.to_dict() for v in left.violations] == [
        v.to_dict() for v in right.violations
    ]


class TestStreamedCertifyParity:
    def test_spilled_stream_matches_in_memory_verdicts(
        self, sample_cell, tmp_path
    ):
        in_memory = certify_cell("fig4a", sample_cell)
        streamed = certify_cell(
            "fig4a", sample_cell, stream_dir=tmp_path / "streams"
        )
        certifications_equal(in_memory.result, streamed.result)
        assert in_memory.simulation == streamed.simulation
        spill = stream_path_for(tmp_path / "streams", "fig4a", sample_cell)
        assert spill.exists()
        # The spill file itself re-certifies to the same verdict.
        workload_events = list(iter_jsonl(spill))
        assert workload_events  # really spilled, not an empty file

    def test_sink_stream_equals_event_log(self, sample_cell, tmp_path):
        """Byte-level: the sink's records ARE the EventLog's records."""
        _, log, _ = simulate_cell_traced(
            sample_cell.config, sample_cell.seed, sample_cell.policy
        )
        path = tmp_path / "cell.jsonl"
        with JsonlSink(path) as sink:
            _, returned, _ = simulate_cell_traced(
                sample_cell.config,
                sample_cell.seed,
                sample_cell.policy,
                sink=sink,
            )
            assert returned is sink
        assert list(iter_jsonl(path)) == log.events

    def test_write_read_certify_round_trip(self, sample_cell, tmp_path):
        """write -> read -> certify: the satellite's full loop."""
        result, log, workload = simulate_cell_traced(
            sample_cell.config, sample_cell.seed, sample_cell.policy
        )
        path = tmp_path / "cell.jsonl"
        with JsonlSink(path) as sink:
            simulate_cell_traced(
                sample_cell.config,
                sample_cell.seed,
                sample_cell.policy,
                sink=sink,
            )
        direct = certify_events(
            log.events,
            workload,
            sample_cell.policy,
            penalty_weight=sample_cell.config.penalty_weight,
        )
        replayed = certify_events(
            iter_jsonl(path),
            workload,
            sample_cell.policy,
            penalty_weight=sample_cell.config.penalty_weight,
        )
        certifications_equal(direct, replayed)
