"""Property-based tests of the multiprocessor simulator."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.policy import CCAPolicy, EDFPolicy, EDFWaitPolicy
from repro.mp.simulator import MultiprocessorSimulator
from repro.tracing import EventLog

from tests.core.test_simulator_properties import BASE_CONFIG, workloads

POLICIES = [
    lambda: EDFPolicy(),
    lambda: CCAPolicy(1.0),
    lambda: EDFWaitPolicy(),
]

COMMON_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestMpProperties:
    @pytest.mark.parametrize("n_cpus", [1, 2, 3])
    @pytest.mark.parametrize("policy_factory", POLICIES)
    @given(workload=workloads())
    @COMMON_SETTINGS
    def test_terminates_and_commits_all(self, n_cpus, policy_factory, workload):
        result = MultiprocessorSimulator(
            BASE_CONFIG, workload, policy_factory(), n_cpus=n_cpus
        ).run()
        assert result.n_committed == len(workload)
        assert 0.0 <= result.cpu_utilization <= 1.0
        assert sum(r.restarts for r in result.records) == result.total_restarts

    @given(workload=workloads())
    @COMMON_SETTINGS
    def test_never_more_running_than_cpus(self, workload):
        """At every instant the set of dispatched-but-not-suspended
        transactions fits on the CPUs."""
        n_cpus = 2
        log = EventLog()
        MultiprocessorSimulator(
            BASE_CONFIG, workload, EDFPolicy(), n_cpus=n_cpus, trace=log
        ).run()
        running: set[int] = set()
        for event in log:
            kind, tid = event["event"], event.get("tx")
            if kind == "dispatch":
                running.add(tid)
                assert len(running) <= n_cpus, "more co-runners than CPUs"
            elif kind in ("preempt", "commit", "lock_wait", "abort"):
                running.discard(tid)

    @given(workload=workloads())
    @COMMON_SETTINGS
    def test_cca_mp_no_lock_waits(self, workload):
        events = []
        MultiprocessorSimulator(
            BASE_CONFIG,
            workload,
            CCAPolicy(1.0),
            n_cpus=3,
            trace=lambda name, **kw: events.append(name),
        ).run()
        assert "lock_wait" not in events

    @given(workload=workloads())
    @COMMON_SETTINGS
    def test_busy_time_at_least_total_work(self, workload):
        result = MultiprocessorSimulator(
            BASE_CONFIG, workload, EDFWaitPolicy(), n_cpus=2
        ).run()
        busy = result.cpu_utilization * result.makespan * 2
        total_work = sum(spec.cpu_time for spec in workload)
        assert busy >= total_work - 1e-6

    @given(workload=workloads())
    @COMMON_SETTINGS
    def test_determinism(self, workload):
        first = MultiprocessorSimulator(
            BASE_CONFIG, workload, CCAPolicy(1.0), n_cpus=2
        ).run()
        second = MultiprocessorSimulator(
            BASE_CONFIG, workload, CCAPolicy(1.0), n_cpus=2
        ).run()
        assert first.records == second.records
