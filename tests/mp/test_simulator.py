"""Multiprocessor simulator: exact schedules and structural invariants."""

import pytest

from repro.config import SimulationConfig
from repro.core.policy import CCAPolicy, EDFPolicy
from repro.mp.simulator import MultiprocessorSimulator
from repro.workload.generator import generate_workload

from tests.conftest import make_spec


def config(**overrides) -> SimulationConfig:
    defaults = dict(
        n_transaction_types=5,
        updates_mean=3.0,
        updates_std=1.0,
        db_size=50,
        abort_cost=4.0,
        n_transactions=5,
        arrival_rate=1.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def run(workload, policy, n_cpus=2, trace=None, **overrides):
    return MultiprocessorSimulator(
        config(**overrides), workload, policy, n_cpus=n_cpus, trace=trace
    ).run()


class TestParallelExecution:
    def test_two_disjoint_transactions_run_concurrently(self):
        a = make_spec(1, [1, 2], arrival=0.0, deadline=100.0, compute=10.0)
        b = make_spec(2, [8, 9], arrival=0.0, deadline=100.0, compute=10.0)
        result = run([a, b], EDFPolicy(), n_cpus=2)
        commits = {r.tid: r.commit_time for r in result.records}
        # Both finish at 20 — true parallelism, not serialization.
        assert commits[1] == pytest.approx(20.0)
        assert commits[2] == pytest.approx(20.0)
        assert result.makespan == pytest.approx(20.0)

    def test_single_cpu_matches_serial_behaviour(self):
        a = make_spec(1, [1], arrival=0.0, deadline=50.0, compute=10.0)
        b = make_spec(2, [9], arrival=0.0, deadline=100.0, compute=10.0)
        result = run([a, b], EDFPolicy(), n_cpus=1)
        commits = {r.tid: r.commit_time for r in result.records}
        assert commits[1] == pytest.approx(10.0)
        assert commits[2] == pytest.approx(20.0)

    def test_three_transactions_two_cpus(self):
        specs = [
            make_spec(1, [1], arrival=0.0, deadline=50.0, compute=10.0),
            make_spec(2, [2], arrival=0.0, deadline=60.0, compute=10.0),
            make_spec(3, [3], arrival=0.0, deadline=70.0, compute=10.0),
        ]
        result = run(specs, EDFPolicy(), n_cpus=2)
        commits = {r.tid: r.commit_time for r in result.records}
        assert commits[1] == pytest.approx(10.0)
        assert commits[2] == pytest.approx(10.0)
        assert commits[3] == pytest.approx(20.0)

    def test_policy_name_carries_cpu_count(self):
        a = make_spec(1, [1], arrival=0.0, deadline=50.0, compute=10.0)
        result = run([a], EDFPolicy(), n_cpus=4)
        assert result.policy_name == "EDF-HPx4"


class TestConflictsAcrossCpus:
    def test_edf_hp_co_runners_wound_on_collision(self):
        """Two conflicting transactions run in parallel under EDF-HP-MP;
        the higher-priority one wounds the other when their accesses
        collide."""
        urgent = make_spec(1, [5, 1, 2], arrival=0.0, deadline=100.0, compute=10.0)
        victim = make_spec(2, [1, 8, 9], arrival=0.0, deadline=500.0, compute=10.0)
        result = run([urgent, victim], EDFPolicy(), n_cpus=2)
        restarts = {r.tid: r.restarts for r in result.records}
        # The victim locked item 1 at t=0; the urgent one reaches item 1
        # at t=10 and wounds it.
        assert restarts[2] >= 1
        assert restarts[1] == 0

    def test_cca_mp_keeps_conflicting_transactions_apart(self):
        """CCA-MP refuses to co-schedule conflicting transactions, so no
        wound ever happens."""
        urgent = make_spec(1, [5, 1, 2], arrival=0.0, deadline=100.0, compute=10.0)
        conflicting = make_spec(2, [1, 8, 9], arrival=0.0, deadline=500.0, compute=10.0)
        compatible = make_spec(3, [6, 7], arrival=0.0, deadline=800.0, compute=10.0)
        result = run([urgent, conflicting, compatible], CCAPolicy(1.0), n_cpus=2)
        assert result.total_restarts == 0
        commits = {r.tid: r.commit_time for r in result.records}
        # urgent (primary) and the compatible one run in parallel from
        # t=0; the conflicting one waits for the primary's commit.
        assert commits[1] == pytest.approx(30.0)
        assert commits[3] == pytest.approx(20.0)
        assert commits[2] == pytest.approx(60.0)

    def test_cca_mp_idles_spare_cpu_rather_than_noncontribute(self):
        urgent = make_spec(1, [1, 2], arrival=0.0, deadline=100.0, compute=10.0)
        conflicting = make_spec(2, [2, 9], arrival=0.0, deadline=500.0, compute=10.0)
        result = run([urgent, conflicting], CCAPolicy(1.0), n_cpus=2)
        assert result.total_restarts == 0
        commits = {r.tid: r.commit_time for r in result.records}
        assert commits[1] == pytest.approx(20.0)
        assert commits[2] == pytest.approx(40.0)
        # Utilization reflects the idle second CPU: 40 ms of work over
        # 2 CPUs x 40 ms.
        assert result.cpu_utilization == pytest.approx(0.5)


class TestValidation:
    def test_disk_config_rejected(self):
        spec = make_spec(1, [1])
        with pytest.raises(ValueError, match="main-memory"):
            MultiprocessorSimulator(
                config(disk_resident=True), [spec], EDFPolicy(), n_cpus=2
            )

    def test_zero_cpus_rejected(self):
        with pytest.raises(ValueError):
            MultiprocessorSimulator(config(), [make_spec(1, [1])], EDFPolicy(), n_cpus=0)


class TestGeneratedWorkloads:
    @pytest.mark.parametrize("n_cpus", [1, 2, 4])
    @pytest.mark.parametrize(
        "policy_factory", [lambda: EDFPolicy(), lambda: CCAPolicy(1.0)]
    )
    def test_full_workload_drains(self, n_cpus, policy_factory):
        cfg = config(
            n_transaction_types=10,
            updates_mean=6.0,
            db_size=40,
            n_transactions=80,
            arrival_rate=15.0,
        )
        workload = generate_workload(cfg, seed=3)
        result = MultiprocessorSimulator(
            cfg, workload, policy_factory(), n_cpus=n_cpus
        ).run()
        assert result.n_committed == cfg.n_transactions
        assert 0.0 <= result.cpu_utilization <= 1.0
        assert sum(r.restarts for r in result.records) == result.total_restarts

    def test_more_cpus_cannot_hurt_makespan_much(self):
        """With parallel capacity the schedule drains no later (modulo
        wound noise, bounded here)."""
        cfg = config(
            n_transaction_types=10,
            updates_mean=6.0,
            db_size=60,
            n_transactions=60,
            arrival_rate=25.0,
        )
        workload = generate_workload(cfg, seed=4)
        serial = MultiprocessorSimulator(cfg, workload, CCAPolicy(1.0), n_cpus=1).run()
        parallel = MultiprocessorSimulator(cfg, workload, CCAPolicy(1.0), n_cpus=4).run()
        assert parallel.makespan <= serial.makespan * 1.05
        assert parallel.miss_percent <= serial.miss_percent + 5.0

    def test_cca_mp_never_lock_waits(self):
        """Theorem 1 generalizes: compatible co-scheduling means no CCA
        transaction ever waits for a lock."""
        cfg = config(
            n_transaction_types=8,
            updates_mean=5.0,
            db_size=25,
            n_transactions=60,
            arrival_rate=20.0,
        )
        events = []
        workload = generate_workload(cfg, seed=5)
        MultiprocessorSimulator(
            cfg,
            workload,
            CCAPolicy(1.0),
            n_cpus=3,
            trace=lambda name, **kw: events.append(name),
        ).run()
        assert "lock_wait" not in events


class TestUnsupportedPolicies:
    def test_wait_promote_rejected(self):
        from repro.core.policy import EDFWPPolicy

        with pytest.raises(ValueError, match="wait-promote"):
            MultiprocessorSimulator(
                config(), [make_spec(1, [1])], EDFWPPolicy(), n_cpus=2
            )
