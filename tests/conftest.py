"""Shared fixtures: small configurations and workloads.

The test suite runs hundreds of simulations, so fixtures default to small
transaction counts; correctness does not depend on scale (the experiment
shape tests use moderately larger runs and live under tests/experiments).
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.rtdb.transaction import Operation, TransactionSpec
from repro.workload.generator import generate_workload


@pytest.fixture
def mm_config() -> SimulationConfig:
    """A small main-memory configuration derived from Table 1."""
    return SimulationConfig(
        n_transaction_types=10,
        updates_mean=6.0,
        updates_std=3.0,
        db_size=60,
        compute_per_update=4.0,
        abort_cost=4.0,
        n_transactions=60,
        arrival_rate=8.0,
    )


@pytest.fixture
def disk_config(mm_config: SimulationConfig) -> SimulationConfig:
    """A small disk-resident configuration derived from Table 2."""
    return mm_config.replace(
        disk_resident=True,
        abort_cost=5.0,
        disk_access_time=25.0,
        disk_access_prob=0.2,
        n_transactions=40,
        arrival_rate=5.0,
    )


@pytest.fixture
def mm_workload(mm_config: SimulationConfig):
    return generate_workload(mm_config, seed=7)


@pytest.fixture
def disk_workload(disk_config: SimulationConfig):
    return generate_workload(disk_config, seed=7)


def make_spec(
    tid: int,
    items: list[int],
    arrival: float = 0.0,
    deadline: float = 1000.0,
    compute: float = 4.0,
    io_items: frozenset[int] = frozenset(),
    io_time: float = 25.0,
    type_id: int = 0,
    criticalness: int = 0,
) -> TransactionSpec:
    """Hand-built transaction spec for targeted scheduler tests."""
    return TransactionSpec(
        tid=tid,
        type_id=type_id,
        arrival_time=arrival,
        deadline=deadline,
        criticalness=criticalness,
        operations=tuple(
            Operation(
                item=item,
                compute_time=compute,
                io_time=io_time if item in io_items else 0.0,
            )
            for item in items
        ),
    )
