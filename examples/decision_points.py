"""Transaction pre-analysis walkthrough (paper Figures 1-3) and a
simulation that exercises conditional conflicts at run time.

Part 1 rebuilds the paper's worked example: programs A (one decision
point) and B (flat), prints the analysis sets and every conflict/safety
relation the paper derives in Section 3.2.2.

Part 2 generates a workload of randomly shaped *tree programs* whose
decision points resolve during execution, and runs it under CCA with the
full pre-analysis machinery (TreeOracle over a precomputed relation
table) — the configuration the paper leaves as future work.
"""

from repro import CCAPolicy, EDFPolicy, RTDBSimulator, SimulationConfig, TreeOracle
from repro.analysis import (
    RelationTable,
    TransactionProgram,
    TransactionTree,
    conflict_between,
    linear_program,
    safety_of,
)
from repro.analysis.program import ProgramNode
from repro.workload.programs import TreeWorkloadGenerator


def paper_figure_example() -> None:
    # Program A (Figure 1): access w (item 0); if w > 100 access items
    # 1,2,3 else items 4,5,6.  Program B: access items 1,2,3.
    program_a = TransactionProgram(
        "A",
        ProgramNode(
            "A",
            accesses=[0],
            children=[
                ProgramNode("Aa", accesses=[1, 2, 3]),
                ProgramNode("Ab", accesses=[4, 5, 6]),
            ],
        ),
    )
    program_b = linear_program("B", [1, 2, 3])
    tree_a = TransactionTree(program_a)
    tree_b = TransactionTree(program_b)

    print("== transaction tree of program A (Figure 2) ==")
    for label in ("A", "Aa", "Ab"):
        print(
            f"  node {label}: hasaccessed={sorted(tree_a.hasaccessed(label))} "
            f"mightaccess={sorted(tree_a.mightaccess(label))}"
        )

    print("\n== conflict relations vs program B ==")
    for label in ("A", "Aa", "Ab"):
        relation = conflict_between(tree_a, label, tree_b, "B")
        print(f"  T_A at {label}: {relation.value}")

    print("\n== safety of B (fully accessed) wrt A ==")
    for label in ("A", "Aa", "Ab"):
        relation = safety_of(tree_b, "B", tree_a, label)
        print(f"  running A from {label}: B is {relation.value}")


def simulate_with_decision_points() -> None:
    config = SimulationConfig(
        n_transaction_types=20,
        updates_mean=12.0,
        updates_std=5.0,
        db_size=200,
        arrival_rate=8.0,
        n_transactions=500,
    )
    generator = TreeWorkloadGenerator(config, seed=7)
    table, workload = generator.generate()
    table.precompute()  # all analysis before the system starts
    oracle = TreeOracle(table)

    branching = sum(1 for spec in workload if spec.node_schedule)
    print(
        f"\n== simulating {len(workload)} transactions "
        f"({branching} with runtime decision points) =="
    )
    for policy in (EDFPolicy(), CCAPolicy(1.0)):
        result = RTDBSimulator(config, workload, policy, oracle=oracle).run()
        print(
            f"  {result.policy_name:8s} miss%={result.miss_percent:6.2f} "
            f"lateness={result.mean_lateness:8.2f} "
            f"restarts/tr={result.restarts_per_transaction:6.3f}"
        )


def main() -> None:
    paper_figure_example()
    simulate_with_decision_points()


if __name__ == "__main__":
    main()
