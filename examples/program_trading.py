"""Program trading: a hand-modelled real-time transaction workload.

The paper motivates RTDBS with embedded real-time systems; program
trading is the classic example (Stankovic & Zhao 1988): market-data
updates must be folded into the database within tight deadlines while
portfolio-rebalancing transactions read and write overlapping positions.

This example builds the workload *by hand* from
:class:`~repro.rtdb.transaction.TransactionSpec` — no generator — to show
the public API at the level a downstream user would script their own
system model:

* ``tick`` transactions: short (2 updates), tight deadlines, frequent;
* ``rebalance`` transactions: long (25 updates across many positions),
  generous deadlines, infrequent;
* a shared "hot book" of positions both touch.

Under EDF-HP, ticks keep wounding half-done rebalances (each wound
throws away tens of milliseconds of work); CCA's penalty of conflict
defers a tick by a few milliseconds when the rebalance is nearly done —
or wounds it early, when little is lost.
"""

import random

from repro import CCAPolicy, EDFPolicy, EDFWaitPolicy, RTDBSimulator, SimulationConfig
from repro.rtdb.transaction import Operation, TransactionSpec

HOT_BOOK = list(range(0, 25))        # positions every tick may touch
COLD_BOOK = list(range(25, 400))     # the long tail of positions

TICK_COMPUTE = 3.0        # ms per update
REBALANCE_COMPUTE = 5.0   # ms per update
TICK_SLACK = 1.5          # deadlines: 150 % slack on resource time
REBALANCE_SLACK = 4.0


def build_workload(seed: int, duration_ms: float = 60_000.0):
    """One minute of market activity: ~50 ticks/s, ~2 rebalances/s."""
    rng = random.Random(seed)
    specs = []
    tid = 0

    def poisson_times(rate_per_sec):
        times, now = [], 0.0
        while True:
            now += rng.expovariate(rate_per_sec / 1000.0)
            if now >= duration_ms:
                return times
            times.append(now)

    for arrival in poisson_times(50.0):
        items = rng.sample(HOT_BOOK, 2)
        ops = tuple(Operation(item=i, compute_time=TICK_COMPUTE) for i in items)
        resource = sum(op.compute_time for op in ops)
        specs.append(
            TransactionSpec(
                tid=tid,
                type_id=0,
                arrival_time=arrival,
                deadline=arrival + resource * (1.0 + TICK_SLACK),
                operations=ops,
                program_name="tick",
            )
        )
        tid += 1

    for arrival in poisson_times(2.0):
        items = rng.sample(HOT_BOOK, 8) + rng.sample(COLD_BOOK, 17)
        ops = tuple(
            Operation(item=i, compute_time=REBALANCE_COMPUTE) for i in items
        )
        resource = sum(op.compute_time for op in ops)
        specs.append(
            TransactionSpec(
                tid=tid,
                type_id=1,
                arrival_time=arrival,
                deadline=arrival + resource * (1.0 + REBALANCE_SLACK),
                operations=ops,
                program_name="rebalance",
            )
        )
        tid += 1

    return sorted(specs, key=lambda s: s.arrival_time)


def per_class(result, workload):
    kind = {s.tid: s.program_name for s in workload}
    out = {}
    for name in ("tick", "rebalance"):
        records = [r for r in result.records if kind[r.tid] == name]
        missed = sum(1 for r in records if r.missed)
        out[name] = (
            100.0 * missed / len(records) if records else 0.0,
            sum(r.tardiness for r in records) / len(records) if records else 0.0,
            sum(r.restarts for r in records),
        )
    return out


def main() -> None:
    config = SimulationConfig(
        db_size=400,
        abort_cost=4.0,
        n_transactions=1,    # workload is hand-built; field unused here
        arrival_rate=20.0,
    )
    workload = build_workload(seed=2)
    print(f"workload: {len(workload)} transactions over 60 simulated seconds\n")

    header = (
        f"{'policy':10s} {'class':10s} {'miss %':>7s} "
        f"{'lateness':>9s} {'restarts':>9s}"
    )
    print(header)
    print("-" * len(header))
    for policy in (EDFPolicy(), CCAPolicy(1.0), EDFWaitPolicy()):
        result = RTDBSimulator(config, workload, policy).run()
        for name, (miss, lateness, restarts) in per_class(result, workload).items():
            print(
                f"{result.policy_name:10s} {name:10s} {miss:7.2f} "
                f"{lateness:9.2f} {restarts:9d}"
            )
        print()


if __name__ == "__main__":
    main()
