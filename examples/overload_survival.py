"""Surviving overload: firm deadlines, bursty load and three schedulers.

A control-room scenario: the system is sized for ~7 transactions/second,
but traffic arrives in bursts (3x the rate for a fifth of the time) and
every transaction is *firm* — a result delivered after its deadline is
worthless, so the system kills late transactions instead of finishing
them ([Har91] semantics, ``config.firm_deadlines``).

Three concurrency-control schemes ride the same workloads:

* EDF-HP locking (the paper's baseline),
* CCA locking (the paper's contribution),
* broadcast-commit OCC (the related-work comparator).

The metric that matters under firm semantics is the *drop* rate: the
fraction of transactions the system had to kill.
"""

from repro import (
    CCAPolicy,
    EDFPolicy,
    OCCSimulator,
    RTDBSimulator,
    SimulationConfig,
    generate_workload,
    mean_confidence_interval,
)

SEEDS = range(1, 9)


def main() -> None:
    config = SimulationConfig(
        db_size=30,
        abort_cost=4.0,
        firm_deadlines=True,
        arrival_model="bursty",
        burst_factor=3.0,
        burst_fraction=0.2,
        arrival_rate=7.0,
        n_transactions=500,
    )

    schemes = {
        "EDF-HP": lambda wl: RTDBSimulator(config, wl, EDFPolicy()).run(),
        "CCA": lambda wl: RTDBSimulator(config, wl, CCAPolicy(1.0)).run(),
        "OCC": lambda wl: OCCSimulator(config, wl, EDFPolicy()).run(),
    }

    drops: dict[str, list[float]] = {name: [] for name in schemes}
    restarts: dict[str, list[float]] = {name: [] for name in schemes}
    for seed in SEEDS:
        workload = generate_workload(config, seed)
        for name, run in schemes.items():
            result = run(workload)
            drops[name].append(result.drop_percent)
            restarts[name].append(result.restarts_per_transaction)

    print(f"{'scheme':8s} {'drop % (95% CI)':>28s} {'restarts/tr':>12s}")
    for name in schemes:
        interval = mean_confidence_interval(drops[name])
        mean_restarts = sum(restarts[name]) / len(restarts[name])
        print(
            f"{name:8s} {interval.mean:8.2f} "
            f"[{interval.lower:6.2f}, {interval.upper:6.2f}]      "
            f"{mean_restarts:12.3f}"
        )
    print(
        "\nFirm semantics reward cost-consciousness the same way soft ones\n"
        "do: CCA kills the fewest transactions because it wastes the least\n"
        "work on executions that were doomed to be thrown away."
    )


if __name__ == "__main__":
    main()
