"""Tuning the penalty weight for a custom workload (Figure 5a/5f style).

The paper's priority formula ``Pr(T) = -(deadline + w * penalty)`` has a
single knob, w, and one of its selling points is that performance is
*insensitive* to w over a wide range: w = 0 degenerates to EDF-HP and a
huge w to EDF-Wait, but everything in between behaves similarly.

This example sweeps w on a disk-resident workload and prints miss
percent and restarts per transaction for each value, averaged over
seeds — what an operator would run before deploying CCA on their own
transaction mix.
"""

from repro import CCAPolicy, RTDBSimulator, SimulationConfig, generate_workload
from repro.metrics.summary import summarize

WEIGHTS = (0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0)
SEEDS = range(1, 7)


def main() -> None:
    config = SimulationConfig(
        disk_resident=True,
        disk_access_time=25.0,
        disk_access_prob=0.1,
        abort_cost=5.0,
        db_size=30,
        arrival_rate=5.0,
        n_transactions=300,
    )

    workloads = {seed: generate_workload(config, seed) for seed in SEEDS}

    print(f"{'weight':>7s} {'miss %':>8s} {'lateness':>10s} {'restarts/tr':>12s}")
    for weight in WEIGHTS:
        runs = [
            RTDBSimulator(config, workloads[seed], CCAPolicy(weight)).run()
            for seed in SEEDS
        ]
        summary = summarize(runs)
        print(
            f"{weight:7.1f} {summary.miss_percent.mean:8.2f} "
            f"{summary.mean_lateness.mean:10.2f} "
            f"{summary.restarts_per_transaction.mean:12.3f}"
        )
    print(
        "\nw = 0 reproduces EDF-HP's restart behaviour; any w >= 1 sits on"
        "\nthe stable plateau the paper reports (Figures 5a and 5f)."
    )


if __name__ == "__main__":
    main()
