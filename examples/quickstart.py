"""Quickstart: compare CCA against EDF-HP on the paper's base workload.

Run with::

    python examples/quickstart.py

Generates one Table-1-style workload, replays it under both schedulers
(the paired-comparison methodology of the paper), and prints the three
metrics the paper reports: miss percent, mean lateness, and restarts per
transaction.
"""

from repro import (
    CCAPolicy,
    EDFPolicy,
    RTDBSimulator,
    SimulationConfig,
    generate_workload,
    improvement_percent,
)


def main() -> None:
    # Table 1 parameters, at 8 transactions/second (near the restart
    # peak, where CCA's cost-consciousness matters most).
    config = SimulationConfig(
        arrival_rate=8.0,
        n_transactions=1000,
        db_size=30,
        compute_per_update=4.0,
        abort_cost=4.0,
        penalty_weight=1.0,
    )
    workload = generate_workload(config, seed=1)

    edf = RTDBSimulator(config, workload, EDFPolicy()).run()
    cca = RTDBSimulator(config, workload, CCAPolicy(config.penalty_weight)).run()

    print(f"{'':12s} {'miss %':>8s} {'lateness':>10s} {'restarts/tr':>12s}")
    for result in (edf, cca):
        print(
            f"{result.policy_name:12s} {result.miss_percent:8.2f} "
            f"{result.mean_lateness:10.2f} "
            f"{result.restarts_per_transaction:12.3f}"
        )
    print()
    print(
        "CCA improvement: "
        f"miss {improvement_percent(edf.miss_percent, cca.miss_percent):.1f} %, "
        "lateness "
        f"{improvement_percent(edf.mean_lateness, cca.mean_lateness):.1f} %"
    )


if __name__ == "__main__":
    main()
