"""Visualizing schedules: why CCA wins, one Gantt chart at a time.

Recreates the paper's motivating scenario (Section 3.2): a long
transaction is nearly finished when a short, conflicting, earlier-
deadline transaction arrives.  EDF-HP wounds the long one and throws
away its work; CCA's penalty of conflict sees the cost and lets it
finish first.  The :class:`repro.tracing.EventLog` renders both
schedules as ASCII Gantt charts and dumps the raw event streams to
JSONL for external tooling.
"""

from repro import EDFPolicy, CCAPolicy, RTDBSimulator, SimulationConfig
from repro.rtdb.transaction import Operation, TransactionSpec
from repro.tracing import EventLog


def scenario():
    """The paper's motivating example, concretely."""
    long_tx = TransactionSpec(
        tid=1,
        type_id=0,
        arrival_time=0.0,
        deadline=2500.0,
        operations=tuple(
            Operation(item=item, compute_time=500.0) for item in (1, 2, 3, 4)
        ),
        program_name="long-report",
    )
    urgent = TransactionSpec(
        tid=2,
        type_id=1,
        arrival_time=1800.0,  # the long one has 1800 of 2000 ms done
        deadline=2200.0,
        operations=(
            Operation(item=1, compute_time=10.0),
            Operation(item=9, compute_time=10.0),
        ),
        program_name="urgent-update",
    )
    return [long_tx, urgent]


def show(policy) -> None:
    config = SimulationConfig(db_size=30, abort_cost=4.0, n_transactions=2,
                              arrival_rate=1.0)
    log = EventLog()
    result = RTDBSimulator(config, scenario(), policy, trace=log).run()
    print(f"--- {result.policy_name} ---")
    print(log.gantt(width=64))
    for record in sorted(result.records, key=lambda r: r.tid):
        status = "MISSED" if record.missed else "met"
        print(
            f"  tx{record.tid}: committed at {record.commit_time:7.1f} ms, "
            f"deadline {record.deadline:7.1f} ms ({status}), "
            f"{record.restarts} restart(s)"
        )
    path = log.to_jsonl(f"schedule_{result.policy_name.lower()}.jsonl")
    print(f"  raw events -> {path}")
    print()


def main() -> None:
    print(__doc__)
    show(EDFPolicy())
    show(CCAPolicy(1.0))
    print(
        "EDF-HP wounds the long transaction at t=1800 and re-runs all\n"
        "2000 ms of it, missing its deadline; CCA prices that loss into\n"
        "the urgent transaction's priority and runs it 200 ms later —\n"
        "both deadlines met, zero restarts."
    )


if __name__ == "__main__":
    main()
