"""Offline schedule certification (``repro certify``).

Whole-history static analysis over completed runs' trace streams:
serializability, strict-2PL lock discipline, High Priority wound
order, and pre-analysis (conflict/safety) soundness.  See
``docs/CERTIFY.md`` for the rule catalog and report formats.
"""

from repro.certify.certifier import (
    CertificationResult,
    Violation,
    certify_events,
)
from repro.certify.history import History, Incarnation, parse_history
from repro.certify.rules import CertRule, all_rules

__all__ = [
    "CertRule",
    "CertificationResult",
    "History",
    "Incarnation",
    "Violation",
    "all_rules",
    "certify_events",
    "parse_history",
]
