"""The offline schedule certifier.

:func:`certify_events` replays a completed run's trace event stream
against three families of whole-history properties the paper asserts
but the simulator only spot-checks at runtime:

* **CERT001** — the history is conflict-serializable: the precedence
  graph over committed transactions is acyclic, and a topological
  serialization order exists;
* **CERT002/003/004** — locking follows strict 2PL, every observed
  conflict is resolved by lock order or a wound, and (for statically
  recomputable policies) wounds respect High Priority order;
* **CERT005/006** — the pre-analysis relations (Section 3.2.2) soundly
  over-approximate the run: every runtime conflict was predicted
  possible by ``conflict``, and every rollback corresponds to an
  unsafe/conditionally-unsafe ``safety`` pair.

The certifier never touches the simulator: its only inputs are the
flattened event dictionaries (:class:`~repro.tracing.EventLog`), the
workload specs, and the policy name.  By default relations are judged
by the same :class:`~repro.core.oracle.SetOracle` the simulator used —
which makes CERT005/006 a true differential check of ``analysis/`` +
``core/oracle.py`` against ground truth.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.core.oracle import ConflictOracle, SetOracle, replay_transaction
from repro.core.policy import make_policy
from repro.certify.graph import EdgeWitness, PrecedenceGraph
from repro.certify.history import (
    History,
    Incarnation,
    parse_history,
)
from repro.certify.rules import all_rules
from repro.rtdb.transaction import TransactionSpec

_EPS = 1e-9

#: Terminal event kind -> the release reason it must carry.
_RELEASE_REASON = {"commit": "commit", "abort": "abort", "drop": "drop"}


@dataclasses.dataclass(frozen=True)
class Violation:
    """One certified-property breach, anchored to a time and tids."""

    code: str
    message: str
    time: Optional[float] = None
    tids: tuple[int, ...] = ()

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "time": self.time,
            "tids": list(self.tids),
        }


@dataclasses.dataclass
class CertificationResult:
    """The full verdict for one run."""

    policy_name: str
    n_events: int
    n_incarnations: int
    n_committed: int
    n_wounds: int
    checked: tuple[str, ...]
    skipped: dict[str, str]
    violations: list[Violation]
    serialization_order: Optional[tuple[int, ...]]
    cycle: Optional[tuple[int, ...]]
    n_graph_edges: int

    @property
    def certified(self) -> bool:
        return not self.violations

    def violations_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "policy": self.policy_name,
            "certified": self.certified,
            "events": self.n_events,
            "incarnations": self.n_incarnations,
            "committed": self.n_committed,
            "wounds": self.n_wounds,
            "graph_edges": self.n_graph_edges,
            "rules_checked": list(self.checked),
            "rules_skipped": dict(self.skipped),
            "violations": [v.to_dict() for v in self.violations],
            "serialization_order": (
                list(self.serialization_order)
                if self.serialization_order is not None
                else None
            ),
            "cycle": list(self.cycle) if self.cycle is not None else None,
        }


@dataclasses.dataclass(frozen=True)
class _Hold:
    """One reconstructed lock-holding interval on one item."""

    item: int
    start: float
    end: float
    exclusive: bool
    incarnation: Incarnation

    @property
    def tid(self) -> int:
        return self.incarnation.tid


class _StaticSystem:
    """A minimal SystemView for recomputing static policy priorities
    offline (EDF-HP, FCFS read neither field)."""

    def __init__(self, now: float) -> None:
        self.now = now

    def penalty_of_conflict(self, tx) -> float:  # pragma: no cover - unused
        return 0.0


def certify_events(
    events: Iterable[dict],
    workload: Union[Sequence[TransactionSpec], Mapping[int, TransactionSpec]],
    policy_name: str,
    *,
    oracle: Optional[ConflictOracle] = None,
    penalty_weight: float = 1.0,
) -> CertificationResult:
    """Certify one completed run from its trace stream.

    ``events`` are flattened trace records (an :class:`EventLog`, its
    ``events`` list, or dictionaries read back from JSONL); ``workload``
    the specs the run executed.  Violations never raise — they are
    collected into the result so a report can show all of them.
    """
    history = parse_history(events)
    specs = _spec_index(workload)
    oracle = oracle if oracle is not None else SetOracle()
    policy = make_policy(policy_name, penalty_weight=penalty_weight)

    violations: list[Violation] = []
    skipped: dict[str, str] = {}

    holds = _reconstruct_holds(history)

    order, cycle, n_edges = _check_serializability(history, violations)
    _check_strict_2pl(history, holds, violations)
    _check_conflict_resolution(history, holds, policy, violations)
    if policy.continuous or policy.wait_promote or policy.uses_pre_analysis:
        skipped["CERT004"] = (
            f"policy {policy.name} priorities are not statically "
            "recomputable offline"
        )
    else:
        _check_wound_order(history, specs, policy, violations)
    _check_conflict_soundness(history, specs, oracle, violations)
    _check_safety_soundness(history, specs, oracle, violations)

    checked = tuple(
        rule.code for rule in all_rules() if rule.code not in skipped
    )
    violations.sort(key=lambda v: (v.time if v.time is not None else -1.0, v.code, v.tids))
    return CertificationResult(
        policy_name=policy.name,
        n_events=history.n_events,
        n_incarnations=len(history.incarnations),
        n_committed=len(history.committed()),
        n_wounds=len(history.wounds),
        checked=checked,
        skipped=skipped,
        violations=violations,
        serialization_order=order,
        cycle=cycle,
        n_graph_edges=n_edges,
    )


def _spec_index(
    workload: Union[Sequence[TransactionSpec], Mapping[int, TransactionSpec]],
) -> dict[int, TransactionSpec]:
    if isinstance(workload, Mapping):
        return dict(workload)
    return {spec.tid: spec for spec in workload}


def _reconstruct_holds(history: History) -> dict[int, list[_Hold]]:
    """Item -> holding intervals, each spanning first acquire to the
    incarnation's release (or the end of the trace when never released;
    CERT002 reports the missing release separately)."""
    holds: dict[int, list[_Hold]] = {}
    for inc in history.incarnations:
        if inc.releases:
            end = inc.releases[-1].time
        elif inc.end_time is not None:
            end = inc.end_time
        else:
            end = history.last_time
        for item, acq in sorted(inc.held_items().items()):
            holds.setdefault(item, []).append(
                _Hold(item, acq.time, end, acq.exclusive, inc)
            )
    return holds


# ----------------------------------------------------------------------
# CERT001 — serializability
# ----------------------------------------------------------------------


def _check_serializability(
    history: History, violations: list[Violation]
) -> tuple[Optional[tuple[int, ...]], Optional[tuple[int, ...]], int]:
    committed = history.committed()
    graph = PrecedenceGraph()
    for tid in committed:
        graph.add_node(tid)
    for item, accesses in _committed_accesses(committed).items():
        # Every ordered conflicting pair precedes — not just adjacent
        # ones: with shared locks r1 r2 w3 needs both r1->w3 and r2->w3.
        for i, first in enumerate(accesses):
            for second in accesses[i + 1 :]:
                if not (first.exclusive or second.exclusive):
                    continue
                if second.start <= first.start + _EPS:
                    continue  # simultaneous: no order to certify
                graph.add_edge(
                    first.tid,
                    second.tid,
                    EdgeWitness(item, first.start, second.start),
                )
    order = graph.topological_order()
    cycle = None
    if order is None:
        found = graph.find_cycle()
        cycle = tuple(found) if found is not None else None
        shown = (
            " -> ".join(f"tx{tid}" for tid in cycle)
            if cycle
            else "unknown"
        )
        violations.append(
            Violation(
                code="CERT001",
                message=(
                    "history is not conflict-serializable: "
                    f"precedence cycle {shown}"
                ),
                tids=tuple(sorted(set(cycle or ()))),
            )
        )
        return None, cycle, graph.n_edges
    return tuple(order), None, graph.n_edges


def _committed_accesses(
    committed: Mapping[int, Incarnation],
) -> dict[int, list[_Hold]]:
    accesses: dict[int, list[_Hold]] = {}
    for tid in sorted(committed):
        inc = committed[tid]
        end = inc.releases[-1].time if inc.releases else (inc.end_time or 0.0)
        for item, acq in sorted(inc.held_items().items()):
            accesses.setdefault(item, []).append(
                _Hold(item, acq.time, end, acq.exclusive, inc)
            )
    for item in accesses:
        accesses[item].sort(key=lambda hold: (hold.start, hold.tid))
    return accesses


# ----------------------------------------------------------------------
# CERT002 — strict two-phase locking
# ----------------------------------------------------------------------


def _check_strict_2pl(
    history: History,
    holds: Mapping[int, list[_Hold]],
    violations: list[Violation],
) -> None:
    for inc in history.incarnations:
        label = f"tx{inc.tid}" + (f"#{inc.index}" if inc.index else "")
        if len(inc.releases) > 1:
            violations.append(
                Violation(
                    "CERT002",
                    f"{label} released locks {len(inc.releases)} times; "
                    "strict 2PL releases exactly once, at the end",
                    time=inc.releases[1].time,
                    tids=(inc.tid,),
                )
            )
        if inc.releases:
            release = inc.releases[0]
            late = [a for a in inc.acquires if a.seq > release.seq]
            if late:
                violations.append(
                    Violation(
                        "CERT002",
                        f"{label} acquired item {late[0].item} after "
                        "releasing locks (two-phase rule broken)",
                        time=late[0].time,
                        tids=(inc.tid,),
                    )
                )
            acquired = set(inc.held_items())
            released = set(release.items)
            for item in sorted(released - acquired):
                violations.append(
                    Violation(
                        "CERT002",
                        f"{label} released item {item} it never acquired",
                        time=release.time,
                        tids=(inc.tid,),
                    )
                )
            for item in sorted(acquired - released):
                violations.append(
                    Violation(
                        "CERT002",
                        f"{label} never released item {item} at its "
                        f"{inc.end_kind or 'end'}",
                        time=release.time,
                        tids=(inc.tid,),
                    )
                )
            expected = _RELEASE_REASON.get(inc.end_kind or "")
            if expected is not None and release.reason != expected:
                violations.append(
                    Violation(
                        "CERT002",
                        f"{label} release reason {release.reason!r} does "
                        f"not match its terminal event {inc.end_kind!r}",
                        time=release.time,
                        tids=(inc.tid,),
                    )
                )
        elif inc.acquires:
            if inc.end_kind is not None:
                violations.append(
                    Violation(
                        "CERT002",
                        f"{label} reached {inc.end_kind} still holding "
                        f"{len(inc.held_items())} locks with no release "
                        "event",
                        time=inc.end_time,
                        tids=(inc.tid,),
                    )
                )
            else:
                violations.append(
                    Violation(
                        "CERT002",
                        f"{label} holds locks at the end of the trace "
                        "(truncated or non-strict history)",
                        time=history.last_time,
                        tids=(inc.tid,),
                    )
                )
    _check_exclusion(holds, violations)


def _check_exclusion(
    holds: Mapping[int, list[_Hold]], violations: list[Violation]
) -> None:
    """No two conflicting holds of one item may overlap in time."""
    for item in sorted(holds):
        intervals = sorted(holds[item], key=lambda h: (h.start, h.tid))
        for i, a in enumerate(intervals):
            for b in intervals[i + 1 :]:
                if b.start >= a.end - _EPS:
                    break  # sorted by start: nothing later overlaps a
                if a.tid == b.tid:
                    continue
                if a.exclusive or b.exclusive:
                    violations.append(
                        Violation(
                            "CERT002",
                            f"item {item} held in conflicting modes by "
                            f"tx{a.tid} and tx{b.tid} at the same time",
                            time=b.start,
                            tids=tuple(sorted((a.tid, b.tid))),
                        )
                    )


# ----------------------------------------------------------------------
# CERT003 — every conflict resolved by lock order or a wound
# ----------------------------------------------------------------------


def _check_conflict_resolution(
    history: History,
    holds: Mapping[int, list[_Hold]],
    policy,
    violations: list[Violation],
) -> None:
    any_wait = False
    for inc in history.incarnations:
        for wait in inc.waits:
            any_wait = True
            for holder in wait.holders:
                if not _held_by_at(holds, wait.item, holder, wait.time):
                    violations.append(
                        Violation(
                            "CERT003",
                            f"tx{inc.tid} waited on item {wait.item} "
                            f"behind tx{holder}, which did not hold it",
                            time=wait.time,
                            tids=tuple(sorted((inc.tid, holder))),
                        )
                    )
        # Every wait must resolve: a wake for each, except the last one
        # when the waiter died waiting (wound or firm drop).
        unresolved = len(inc.waits) - len(inc.wakes)
        if unresolved > 0 and not (
            unresolved == 1 and inc.end_kind in ("abort", "drop")
        ):
            violations.append(
                Violation(
                    "CERT003",
                    f"tx{inc.tid} has {unresolved} lock wait(s) never "
                    f"resolved by a wake or death "
                    f"(end: {inc.end_kind or 'none'})",
                    time=inc.waits[-1].time,
                    tids=(inc.tid,),
                )
            )
    if any_wait and policy.uses_pre_analysis:
        first = min(
            (w.time for inc in history.incarnations for w in inc.waits),
            default=None,
        )
        violations.append(
            Violation(
                "CERT003",
                f"policy {policy.name} uses pre-analysis but the run "
                "contains lock waits (Theorem 1: no lock wait in CCA)",
                time=first,
            )
        )


def _held_by_at(
    holds: Mapping[int, list[_Hold]], item: int, tid: int, time: float
) -> bool:
    for hold in holds.get(item, ()):
        if (
            hold.tid == tid
            and hold.start <= time + _EPS
            and hold.end >= time - _EPS
        ):
            return True
    return False


# ----------------------------------------------------------------------
# CERT004 — wounds respect High Priority order
# ----------------------------------------------------------------------


def _check_wound_order(
    history: History,
    specs: Mapping[int, TransactionSpec],
    policy,
    violations: list[Violation],
) -> None:
    """Recompute static priorities offline and check every wound flows
    downhill.  Only reached for policies whose priority is a pure
    function of the spec (EDF-HP, FCFS): continuous, wait-promote and
    pre-analysis policies read runtime state the trace cannot replay."""
    for wound in history.wounds:
        if wound.deadlock_break:
            continue  # sanctioned inversion: breaking a wait-for cycle
        if wound.by not in specs or wound.victim not in specs:
            continue  # reported by CERT005's spec check
        system = _StaticSystem(wound.time)
        key_by = (
            policy.priority(replay_transaction(specs[wound.by]), system),
            -wound.by,
        )
        key_victim = (
            policy.priority(replay_transaction(specs[wound.victim]), system),
            -wound.victim,
        )
        if key_by <= key_victim:
            violations.append(
                Violation(
                    "CERT004",
                    f"tx{wound.by} wounded higher-priority "
                    f"tx{wound.victim} (cause: {wound.cause}) — High "
                    "Priority resolution inverted",
                    time=wound.time,
                    tids=tuple(sorted((wound.by, wound.victim))),
                )
            )


# ----------------------------------------------------------------------
# CERT005 — conflict-prediction soundness
# ----------------------------------------------------------------------


def _check_conflict_soundness(
    history: History,
    specs: Mapping[int, TransactionSpec],
    oracle: ConflictOracle,
    violations: list[Violation],
) -> None:
    # Accesses must stay inside the declared sets the analysis was
    # built from — otherwise its predictions are vacuous.
    known: set[int] = set()
    for inc in history.incarnations:
        if inc.tid not in specs:
            if inc.tid not in known:
                violations.append(
                    Violation(
                        "CERT005",
                        f"tx{inc.tid} appears in the trace but not in "
                        "the workload",
                        tids=(inc.tid,),
                    )
                )
            known.add(inc.tid)
            continue
        spec = specs[inc.tid]
        for acq in inc.acquires:
            if acq.item not in spec.data_set:
                violations.append(
                    Violation(
                        "CERT005",
                        f"tx{inc.tid} accessed item {acq.item} outside "
                        "its declared data set",
                        time=acq.time,
                        tids=(inc.tid,),
                    )
                )
            elif acq.exclusive and acq.item not in spec.write_set:
                violations.append(
                    Violation(
                        "CERT005",
                        f"tx{inc.tid} write-locked item {acq.item} "
                        "outside its declared write set",
                        time=acq.time,
                        tids=(inc.tid,),
                    )
                )
    # Every conflict the run actually exhibited must have been
    # predicted possible by the static conflict relation.
    for pair, (time, via) in sorted(_runtime_conflicts(history).items()):
        a, b = pair
        if a not in specs or b not in specs:
            continue
        relation = oracle.conflict(
            replay_transaction(specs[a]), replay_transaction(specs[b])
        )
        if not relation.possible:
            violations.append(
                Violation(
                    "CERT005",
                    f"tx{a} and tx{b} conflicted at runtime ({via}) but "
                    "the conflict relation predicted "
                    f"{relation.value!r}",
                    time=time,
                    tids=pair,
                )
            )


def _runtime_conflicts(
    history: History,
) -> dict[tuple[int, int], tuple[float, str]]:
    """Unordered tid pairs that demonstrably conflicted at runtime,
    with the earliest witness time and how the conflict manifested."""
    conflicts: dict[tuple[int, int], tuple[float, str]] = {}

    def note(a: int, b: int, time: float, via: str) -> None:
        if a == b:
            return
        pair = (min(a, b), max(a, b))
        prior = conflicts.get(pair)
        if prior is None or time < prior[0]:
            conflicts[pair] = (time, via)

    for inc in history.incarnations:
        for wait in inc.waits:
            for holder in wait.holders:
                note(inc.tid, holder, wait.time, "lock wait")
    for wound in history.wounds:
        note(wound.victim, wound.by, wound.time, "wound")
    for item, intervals in history_item_accesses(history).items():
        for i, a in enumerate(intervals):
            for b in intervals[i + 1 :]:
                if a.tid != b.tid and (a.exclusive or b.exclusive):
                    note(
                        a.tid,
                        b.tid,
                        max(a.start, b.start),
                        f"co-access of item {item}",
                    )
    return conflicts


def history_item_accesses(history: History) -> dict[int, list[_Hold]]:
    """Item -> every access by every incarnation (committed or not)."""
    accesses: dict[int, list[_Hold]] = {}
    for inc in history.incarnations:
        for item, acq in sorted(inc.held_items().items()):
            accesses.setdefault(item, []).append(
                _Hold(item, acq.time, acq.time, acq.exclusive, inc)
            )
    return accesses


# ----------------------------------------------------------------------
# CERT006 — safety-prediction soundness
# ----------------------------------------------------------------------


def _check_safety_soundness(
    history: History,
    specs: Mapping[int, TransactionSpec],
    oracle: ConflictOracle,
    violations: list[Violation],
) -> None:
    """Every rollback must land on a pair the safety relation flagged:
    replay the victim's access state at the wound and ask the oracle
    the exact question the scheduler faced."""
    for wound in history.wounds:
        if wound.deadlock_break:
            continue  # not a safety wound: sanctioned cycle break
        if wound.by not in specs or wound.victim not in specs:
            continue  # reported by CERT005's spec check
        acquired = wound.incarnation.acquires_until(wound.time)
        victim = replay_transaction(
            specs[wound.victim],
            accessed=[a.item for a in acquired],
            accessed_writes=[a.item for a in acquired if a.exclusive],
        )
        runner = replay_transaction(specs[wound.by])
        verdict = oracle.safety(victim, runner)
        if not verdict.needs_rollback:
            violations.append(
                Violation(
                    "CERT006",
                    f"tx{wound.victim} was rolled back by tx{wound.by} "
                    f"(cause: {wound.cause}) but the safety relation "
                    f"says {verdict.value!r} — blocking would have "
                    "sufficed",
                    time=wound.time,
                    tids=tuple(sorted((wound.victim, wound.by))),
                )
            )
