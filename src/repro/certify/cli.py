"""``repro certify`` — the offline schedule certifier's entry point.

Examples::

    repro certify fig4a                    # default sample: one cell per
                                           # policy (EDF-HP, EDF-Wait, CCA)
    repro certify fig4a --policy CCA,cca-static
    repro certify fig5b --cell 4,2,EDF-HP  # one specific cell
    repro certify table1 --format json
    repro certify --events run.jsonl --workload load.jsonl --policy EDF-HP
    repro certify --list-rules

Exit status: 0 when every certified property holds, 1 when any
violation is found, 2 on usage errors — the same contract as
``repro lint``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.certify.report import (
    render_cells_json,
    render_json,
    render_text,
)
from repro.certify.rules import all_rules
from repro.checks.report import (
    EXIT_USAGE,
    add_list_rules_flag,
    handle_list_rules,
    print_report,
    verdict_exit_code,
)


def build_certify_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro certify",
        description=(
            "Offline schedule certifier: replays a completed run's trace "
            "event stream and certifies serializability (CERT001), strict "
            "2PL lock discipline (CERT002-004), and pre-analysis "
            "soundness (CERT005-006).  See docs/CERTIFY.md."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help=(
            "paper experiment to certify a cell sample of (e.g. fig4a, "
            "table1); omit when certifying a saved trace via --events"
        ),
    )
    parser.add_argument(
        "--cell",
        default=None,
        metavar="X,SEED,POLICY",
        help=(
            "certify one specific sweep cell instead of the default "
            "per-policy sample (e.g. '4,2,EDF-HP'; the policy may be "
            "any policy name, not just the sweep's own)"
        ),
    )
    parser.add_argument(
        "--policy",
        default=None,
        metavar="NAMES",
        help=(
            "comma-separated policies for the default sample "
            "(default: EDF-HP,EDF-Wait,CCA), or the policy of a saved "
            "trace under --events"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "default", "full"],
        default=None,
        help="run scale (default: $REPRO_SCALE or 'default')",
    )
    parser.add_argument(
        "--events",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "certify a saved JSONL event log (repro trace --jsonl) "
            "instead of re-simulating; requires --workload and --policy"
        ),
    )
    parser.add_argument(
        "--workload",
        type=Path,
        default=None,
        metavar="FILE",
        help="the saved workload the --events trace executed",
    )
    parser.add_argument(
        "--penalty-weight",
        type=float,
        default=1.0,
        metavar="W",
        help="penalty weight for --events mode policies (default: 1.0)",
    )
    parser.add_argument(
        "--stream",
        type=Path,
        nargs="?",
        const=Path("results") / "certify-stream",
        default=None,
        metavar="DIR",
        help=(
            "spill each cell's trace to a JSONL file under DIR while "
            "simulating and certify from the stream — bounded memory, "
            "identical verdicts (default DIR: results/certify-stream)"
        ),
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget for the re-simulation",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    add_list_rules_flag(parser, what="certifier rule")
    return parser


def certify_main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_certify_parser().parse_args(
        list(argv) if argv is not None else None
    )
    catalog_exit = handle_list_rules(args, all_rules())
    if catalog_exit is not None:
        return catalog_exit
    if args.events is not None:
        return _certify_offline(args)
    if args.experiment is None:
        print(
            "error: an experiment id (or --events FILE) is required",
            file=sys.stderr,
        )
        return EXIT_USAGE
    return _certify_experiment(args)


def _certify_offline(args) -> int:
    """Certify a saved (events, workload) pair without simulating.

    The event file is consumed as a lazy stream (one record in memory
    at a time), so arbitrarily large spilled traces certify in bounded
    memory.
    """
    from repro.sim.stream import iter_jsonl
    from repro.workload.serialization import load_workload
    from repro.certify.certifier import certify_events

    if args.workload is None or args.policy is None:
        print(
            "error: --events requires --workload FILE and --policy NAME",
            file=sys.stderr,
        )
        return EXIT_USAGE
    for path in (args.events, args.workload):
        if not path.exists():
            print(f"error: no such file: {path}", file=sys.stderr)
            return EXIT_USAGE
    try:
        workload = load_workload(args.workload)
        result = certify_events(
            iter_jsonl(args.events),
            workload,
            args.policy,
            penalty_weight=args.penalty_weight,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    report = (
        render_json(result)
        if args.format == "json"
        else render_text(result)
    )
    print_report(report)
    return verdict_exit_code(result.certified)


def _certify_experiment(args) -> int:
    """Re-simulate and certify experiment cells."""
    from repro.cli import _resolve_scale
    from repro.certify.runner import (
        DEFAULT_POLICIES,
        certify_cell,
        default_cells,
        find_cell,
    )
    from repro.experiments.figures import FIGURE_SWEEPS

    if args.experiment not in FIGURE_SWEEPS:
        print(
            f"error: unknown experiment {args.experiment!r}; "
            f"known: {', '.join(sorted(FIGURE_SWEEPS))}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    scale = _resolve_scale(args.scale)
    try:
        if args.cell is not None:
            parts = args.cell.split(",")
            if len(parts) != 3:
                print(
                    f"error: --cell must be X,SEED,POLICY, got {args.cell!r}",
                    file=sys.stderr,
                )
                return EXIT_USAGE
            try:
                want_x, want_seed = float(parts[0]), int(parts[1])
            except ValueError:
                print(
                    "error: --cell X must be a number and SEED an "
                    f"integer, got {args.cell!r}",
                    file=sys.stderr,
                )
                return EXIT_USAGE
            cell = find_cell(
                args.experiment, scale, want_x, want_seed, parts[2].strip()
            )
            if cell is None:
                _print_cell_choices(
                    args.experiment, scale, want_x, want_seed
                )
                return EXIT_USAGE
            cells = [cell]
        else:
            policies = (
                [p.strip() for p in args.policy.split(",") if p.strip()]
                if args.policy is not None
                else DEFAULT_POLICIES
            )
            cells = default_cells(args.experiment, scale, policies)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    samples = [
        certify_cell(
            args.experiment,
            cell,
            max_wall_s=args.timeout,
            stream_dir=args.stream,
        )
        for cell in cells
    ]
    if args.stream is not None:
        # stderr so `--format json` output stays machine-parseable.
        print(
            f"[certify: trace streams spilled under {args.stream}]",
            file=sys.stderr,
        )
    if args.format == "json":
        print_report(render_cells_json(args.experiment, scale.name, samples))
    else:
        blocks = []
        for sample in samples:
            header = (
                f"== {args.experiment} cell x={sample.cell.x:g} "
                f"seed={sample.cell.seed} policy={sample.cell.policy} "
                f"(scale={scale.name}) =="
            )
            blocks.append(header + "\n" + render_text(sample.result))
        print_report("\n\n".join(blocks))
    return verdict_exit_code(
        all(sample.result.certified for sample in samples)
    )


def _print_cell_choices(experiment, scale, want_x, want_seed) -> None:
    """Spell out the valid (x, seed) grid instead of a bare failure.

    The policy axis is open (any policy certifies at any cell), so only
    the sweep's own policies are listed, as a hint.
    """
    from repro.experiments.figures import experiment_cells

    print(
        f"error: no cell at x={want_x:g} seed={want_seed} in "
        f"{experiment} at scale={scale.name}",
        file=sys.stderr,
    )
    cells = experiment_cells(experiment, scale)
    xs = sorted({cell.x for cell in cells})
    seeds = sorted({cell.seed for cell in cells})
    policies = sorted({cell.policy for cell in cells})
    print(
        "  x values: " + ", ".join(f"{x:g}" for x in xs), file=sys.stderr
    )
    print(
        "  seeds:    " + ", ".join(str(seed) for seed in seeds),
        file=sys.stderr,
    )
    print(
        "  policies: " + ", ".join(policies)
        + "  (any policy name is accepted)",
        file=sys.stderr,
    )


if __name__ == "__main__":
    sys.exit(certify_main())
