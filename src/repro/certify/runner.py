"""Certifying experiment cells: selection, execution, sampling.

``repro certify <exp>`` re-simulates sweep cells with an event log
attached and runs the certifier over each.  Cell selection mirrors
``repro trace`` (middle x, first seed by default) but fans out over
*policies*: the acceptance question is "does every policy's schedule
certify", so the default sample takes one cell per policy.

Experiments without sweeps (table1/table2) certify a synthesized cell
at the base configuration — the tables describe exactly one parameter
point, which is as deterministic as a sweep cell.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Optional, Sequence

from repro.core.policy import make_policy
from repro.certify.certifier import CertificationResult, certify_events
from repro.core.simulator import SimulationResult
from repro.experiments.config import DISK_BASE, MAIN_MEMORY_BASE, ExperimentScale
from repro.experiments.figures import FIGURE_SWEEPS, experiment_cells
from repro.experiments.parallel import SweepCell, simulate_cell_traced
from repro.obs.registry import MetricsRegistry

#: Base configuration behind each sweep-less experiment.
_TABLE_BASES = {"table1": MAIN_MEMORY_BASE, "table2": DISK_BASE}

#: The acceptance matrix: one cell per policy in the default sample.
DEFAULT_POLICIES = ("EDF-HP", "EDF-Wait", "CCA")


@dataclasses.dataclass(frozen=True)
class CellCertification:
    """One certified cell: where it came from plus the verdict."""

    experiment: str
    cell: SweepCell
    result: CertificationResult
    simulation: SimulationResult

    def to_dict(self) -> dict:
        return {
            "cell": {
                "x": self.cell.x,
                "seed": self.cell.seed,
                "policy": self.cell.policy,
            },
            "certified": self.result.certified,
            "violations": [v.to_dict() for v in self.result.violations],
            "rules_skipped": dict(self.result.skipped),
        }


def default_cells(
    experiment: str,
    scale: ExperimentScale,
    policies: Sequence[str] = DEFAULT_POLICIES,
) -> list[SweepCell]:
    """The deterministic certification sample: one cell per policy.

    Sweep experiments use the middle x-value with the first seed;
    policies outside the sweep's own matrix reuse that x's config (a
    certifier question is well-posed for any policy at any cell).
    ``table1``/``table2`` synthesize the base-parameter cell.
    """
    canonical = [
        make_policy(name, penalty_weight=1.0).name for name in policies
    ]
    base = _TABLE_BASES.get(experiment)
    if base is not None and not FIGURE_SWEEPS.get(experiment):
        config = scale.scale_config(base)
        seed = scale.seeds_for(base)[0]
        return [
            SweepCell(
                x=config.arrival_rate, policy=name, seed=seed, config=config
            )
            for name in canonical
        ]
    cells = experiment_cells(experiment, scale)
    xs = sorted({cell.x for cell in cells})
    mid_x = xs[len(xs) // 2]
    template = next(cell for cell in cells if cell.x == mid_x)
    return [
        dataclasses.replace(template, policy=name) for name in canonical
    ]


def find_cell(
    experiment: str,
    scale: ExperimentScale,
    x: float,
    seed: int,
    policy: str,
) -> Optional[SweepCell]:
    """The sweep cell at ``(x, seed)`` under ``policy``.

    The policy need not be in the sweep's own matrix — any policy can
    be certified at any (x, seed) point; the axis point and seed must
    exist though, so the workload is one the experiment actually runs.
    """
    cells = experiment_cells(experiment, scale)
    canonical = make_policy(policy, penalty_weight=1.0).name
    for cell in cells:
        if cell.x == x and cell.seed == seed:
            return dataclasses.replace(cell, policy=canonical)
    return None


def stream_path_for(
    stream_dir: Path | str, experiment: str, cell: SweepCell
) -> Path:
    """Where one cell's spilled trace stream lives under ``stream_dir``."""
    return Path(stream_dir) / (
        f"{experiment}-x{cell.x:g}-s{cell.seed}-{cell.policy}.jsonl"
    )


def certify_cell(
    experiment: str,
    cell: SweepCell,
    *,
    max_wall_s: Optional[float] = None,
    stream_dir: Optional[Path | str] = None,
) -> CellCertification:
    """Re-simulate one cell with tracing on and certify its schedule.

    With ``stream_dir`` set, the trace is spilled to a JSONL file as it
    is produced and the certifier reads it back lazily — peak memory is
    bounded by one event, not the whole log, and verdicts are identical
    to the in-memory path (the stream carries the same flattened
    records).  The spill file is left behind for inspection and
    offline re-certification (``repro certify --events``).
    """
    if stream_dir is None:
        simulation, log, workload = simulate_cell_traced(
            cell.config, cell.seed, cell.policy, max_wall_s=max_wall_s
        )
        events = log.events
    else:
        from repro.sim.stream import JsonlSink, iter_jsonl

        path = stream_path_for(stream_dir, experiment, cell)
        with JsonlSink(path) as sink:
            simulation, _, workload = simulate_cell_traced(
                cell.config,
                cell.seed,
                cell.policy,
                max_wall_s=max_wall_s,
                sink=sink,
            )
        events = iter_jsonl(path)
    result = certify_events(
        events,
        workload,
        cell.policy,
        penalty_weight=cell.config.penalty_weight,
    )
    return CellCertification(
        experiment=experiment, cell=cell, result=result, simulation=simulation
    )


def certify_sample(
    experiment: str,
    scale: ExperimentScale,
    policies: Sequence[str] = DEFAULT_POLICIES,
    *,
    registry: Optional[MetricsRegistry] = None,
    max_wall_s: Optional[float] = None,
    stream_dir: Optional[Path | str] = None,
) -> list[CellCertification]:
    """Certify the default cell sample; feeds per-policy ``certify.*``
    counters into ``registry`` when given (plus the ``certify`` stage's
    wall time, for manifest timing sections).  ``stream_dir`` spills
    each cell's trace to JSONL and certifies from the stream (see
    :func:`certify_cell`)."""
    import time as _time

    from repro.obs.prof import observe_stage

    out: list[CellCertification] = []
    for cell in default_cells(experiment, scale, policies):
        started = _time.perf_counter()
        certified = certify_cell(
            experiment, cell, max_wall_s=max_wall_s, stream_dir=stream_dir
        )
        out.append(certified)
        if registry is not None:
            observe_stage(
                registry, "certify", (_time.perf_counter() - started) * 1000.0
            )
            registry.counter("certify.cells", policy=cell.policy).inc()
            if not certified.result.certified:
                registry.counter(
                    "certify.uncertified_cells", policy=cell.policy
                ).inc()
            for code, count in certified.result.violations_by_rule().items():
                registry.counter(
                    "certify.violations", policy=cell.policy, rule=code
                ).inc(count)
    return out


def certification_section(
    samples: Sequence[CellCertification],
) -> dict:
    """The run manifest's ``certification`` section (schema v3)."""
    return {
        "enabled": True,
        "cells": [sample.to_dict() for sample in samples],
    }
