"""The conflict/precedence graph over committed transactions.

Nodes are committed tids; an edge ``a -> b`` witnesses that ``a``
touched some item before ``b`` did, in incompatible modes, so any
equivalent serial order must run ``a`` before ``b``.  A history is
(conflict-)serializable iff this graph is acyclic; the topological
order is then a valid serialization, and a cycle is the counterexample.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Optional


@dataclasses.dataclass(frozen=True)
class EdgeWitness:
    """Why an edge exists: the item and the two access times."""

    item: int
    first_time: float
    second_time: float


class PrecedenceGraph:
    """A directed graph with per-edge witnesses and deterministic walks."""

    def __init__(self) -> None:
        self.nodes: set[int] = set()
        self._succ: dict[int, set[int]] = {}
        self.witness: dict[tuple[int, int], EdgeWitness] = {}

    def add_node(self, node: int) -> None:
        self.nodes.add(node)

    def add_edge(self, a: int, b: int, witness: EdgeWitness) -> None:
        """Add ``a -> b``; the earliest witness per edge is kept."""
        if a == b:
            raise ValueError(f"self-edge on transaction {a}")
        self.nodes.add(a)
        self.nodes.add(b)
        self._succ.setdefault(a, set()).add(b)
        key = (a, b)
        prior = self.witness.get(key)
        if prior is None or witness.second_time < prior.second_time:
            self.witness[key] = witness

    def successors(self, node: int) -> list[int]:
        return sorted(self._succ.get(node, ()))

    @property
    def n_edges(self) -> int:
        return sum(len(succ) for succ in self._succ.values())

    def topological_order(self) -> Optional[list[int]]:
        """Kahn's algorithm with a min-heap: the smallest-tid valid
        serialization order, or ``None`` when a cycle exists."""
        indegree = {node: 0 for node in self.nodes}
        for a, succ in self._succ.items():
            for b in succ:
                indegree[b] += 1
        ready = [node for node, deg in sorted(indegree.items()) if deg == 0]
        heapq.heapify(ready)
        order: list[int] = []
        while ready:
            node = heapq.heappop(ready)
            order.append(node)
            for nxt in self.successors(node):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    heapq.heappush(ready, nxt)
        if len(order) != len(self.nodes):
            return None
        return order

    def find_cycle(self) -> Optional[list[int]]:
        """A minimal counterexample cycle, as ``[t1, t2, ..., t1]``.

        First Kahn-strips every node not on (or feeding) a cycle, then
        BFSes from each surviving node for the shortest path back to
        itself; ties break toward the smaller starting tid.  Returns
        ``None`` on acyclic graphs.
        """
        indegree = {node: 0 for node in self.nodes}
        for a, succ in self._succ.items():
            for b in succ:
                indegree[b] += 1
        ready = [node for node, deg in indegree.items() if deg == 0]
        remaining = set(self.nodes)
        while ready:
            node = ready.pop()
            remaining.discard(node)
            for nxt in self.successors(node):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if not remaining:
            return None
        best: Optional[list[int]] = None
        for start in sorted(remaining):
            parent: dict[int, int] = {}
            frontier = [start]
            found = False
            while frontier and not found:
                nxt_frontier: list[int] = []
                for node in frontier:
                    for succ in self.successors(node):
                        if succ == start:
                            parent[start] = node
                            found = True
                            break
                        if succ in remaining and succ not in parent:
                            parent[succ] = node
                            nxt_frontier.append(succ)
                    if found:
                        break
                frontier = nxt_frontier
            if not found:
                continue
            cycle = [start]
            node = parent[start]
            while node != start:
                cycle.append(node)
                node = parent[node]
            cycle.append(start)
            cycle.reverse()
            if best is None or len(cycle) < len(best):
                best = cycle
        return best
