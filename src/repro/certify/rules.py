"""The certifier rule catalog (CERT001-CERT006).

Each rule certifies one whole-history property a correct run of the
simulator must satisfy.  ``repro certify --list-rules`` prints this
catalog; ``docs/CERTIFY.md`` documents each rule with its
counterexample format.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class CertRule:
    """One certifier rule: a code, a name, and what it certifies."""

    code: str
    name: str
    summary: str


_RULES = (
    CertRule(
        "CERT001",
        "serializable",
        "The conflict graph over committed transactions is acyclic; "
        "the history has an equivalent serial order.",
    ),
    CertRule(
        "CERT002",
        "strict-2pl",
        "Every incarnation acquires all locks before its single "
        "all-at-end release, holds them to commit/abort/drop, and "
        "conflicting holds never overlap.",
    ),
    CertRule(
        "CERT003",
        "conflicts-resolved",
        "Every lock wait names actual holders and is resolved (wake or "
        "victim death); pre-analysis policies never wait (Theorem 1).",
    ),
    CertRule(
        "CERT004",
        "wound-priority-order",
        "Under statically recomputable policies every wound flows from "
        "a higher-priority transaction to a lower one (High Priority), "
        "except explicit deadlock breaks.",
    ),
    CertRule(
        "CERT005",
        "conflict-prediction-sound",
        "Accesses stay inside declared read/write sets, and every "
        "runtime conflict (wait, wound, conflicting co-access) was "
        "predicted possible by the conflict relation.",
    ),
    CertRule(
        "CERT006",
        "safety-prediction-sound",
        "Every rollback (except deadlock breaks) lands on a victim the "
        "safety relation called unsafe/conditionally unsafe wrt its "
        "wounder — rollbacks never surprise the pre-analysis.",
    ),
)

_BY_CODE = {rule.code: rule for rule in _RULES}


def all_rules() -> tuple[CertRule, ...]:
    """The full catalog, in code order."""
    return _RULES


def rule(code: str) -> CertRule:
    try:
        return _BY_CODE[code]
    except KeyError:
        raise ValueError(f"unknown certifier rule {code!r}") from None
