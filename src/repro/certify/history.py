"""Reconstructing transaction histories from a trace event stream.

The certifier works on *incarnations*: one life of a transaction id
between (re)start and commit/abort/drop.  A wounded transaction's id
appears in several incarnations, but commits at most once, so the
committed incarnation of a tid is unique — which is what lets the
serializability graph use tids as nodes.

:func:`parse_history` is a single forward pass over the (flattened)
event dictionaries an :class:`~repro.tracing.EventLog` records; nothing
here touches the simulator.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional

#: Event kinds that end the current incarnation of their transaction.
TERMINAL_KINDS = ("commit", "abort", "drop")

#: Event kinds recorded into the incarnation's own stream.  IO and CPU
#: events (io_start, preempt, ...) are irrelevant to lock discipline and
#: are skipped; ``io_stale`` in particular arrives *after* the abort
#: that killed its epoch and must not open a ghost incarnation.
_TRACKED_KINDS = (
    "arrival",
    "dispatch",
    "lock_acquire",
    "lock_release",
    "lock_wait",
    "lock_wake",
    "decision",
    "deadlock_break",
) + TERMINAL_KINDS


@dataclasses.dataclass(frozen=True)
class Acquire:
    """One granted lock: item + mode at a point in time.

    ``seq`` is the event's position in the stream — the tiebreaker for
    ordering checks when several events share a timestamp.
    """

    time: float
    item: int
    exclusive: bool
    seq: int = 0


@dataclasses.dataclass(frozen=True)
class Release:
    """One all-at-end lock release (strict 2PL releases exactly once)."""

    time: float
    items: tuple[int, ...]
    reason: str
    seq: int = 0


@dataclasses.dataclass(frozen=True)
class Wait:
    """One lock wait: who blocked on what, behind whom."""

    time: float
    item: int
    holders: tuple[int, ...]
    seq: int = 0


@dataclasses.dataclass
class Incarnation:
    """One life of a transaction id."""

    tid: int
    index: int
    start_time: float
    acquires: list[Acquire] = dataclasses.field(default_factory=list)
    releases: list[Release] = dataclasses.field(default_factory=list)
    waits: list[Wait] = dataclasses.field(default_factory=list)
    wakes: list[float] = dataclasses.field(default_factory=list)
    node_label: Optional[str] = None
    end_kind: Optional[str] = None
    end_time: Optional[float] = None
    end_by: Optional[int] = None
    end_cause: Optional[str] = None

    @property
    def committed(self) -> bool:
        return self.end_kind == "commit"

    @property
    def key(self) -> tuple[int, int]:
        return (self.tid, self.index)

    def held_items(self) -> dict[int, Acquire]:
        """Item -> first acquire, exclusive-if-ever-exclusive."""
        held: dict[int, Acquire] = {}
        for acq in self.acquires:
            prior = held.get(acq.item)
            if prior is None:
                held[acq.item] = acq
            elif acq.exclusive and not prior.exclusive:
                held[acq.item] = Acquire(prior.time, prior.item, True)
        return held

    def acquires_until(self, time: float) -> list[Acquire]:
        """Acquires up to and including ``time`` (the state a wound saw:
        the victim holds everything it locked before being wounded, and
        a zero-length operation can share the wound's timestamp)."""
        return [acq for acq in self.acquires if acq.time <= time]


@dataclasses.dataclass(frozen=True)
class Wound:
    """One abort event, joined to the victim incarnation it ended."""

    time: float
    victim: int
    by: int
    cause: str
    incarnation: Incarnation
    deadlock_break: bool


@dataclasses.dataclass
class History:
    """Everything the certifier needs, reconstructed from one stream."""

    incarnations: list[Incarnation]
    wounds: list[Wound]
    n_events: int
    last_time: float = 0.0

    def by_tid(self) -> dict[int, list[Incarnation]]:
        out: dict[int, list[Incarnation]] = {}
        for inc in self.incarnations:
            out.setdefault(inc.tid, []).append(inc)
        return out

    def committed(self) -> dict[int, Incarnation]:
        """The committed incarnation per tid (unique: a tid commits once)."""
        out: dict[int, Incarnation] = {}
        for inc in self.incarnations:
            if inc.committed:
                if inc.tid in out:
                    raise ValueError(
                        f"transaction {inc.tid} committed more than once"
                    )
                out[inc.tid] = inc
        return out


def parse_history(events: Iterable[dict]) -> History:
    """One forward pass: events -> incarnations + wounds.

    ``events`` are the flattened dictionaries an
    :class:`~repro.tracing.EventLog` holds (``tx`` already a tid).
    Raises :class:`ValueError` on records that are not trace events.
    """
    open_inc: dict[int, Incarnation] = {}
    next_index: dict[int, int] = {}
    incarnations: list[Incarnation] = []
    wounds: list[Wound] = []
    # deadlock_break precedes the abort it causes (same requester,
    # same victim); remember pending breaks to label those wounds.
    pending_breaks: set[tuple[int, int]] = set()
    n_events = 0

    def current(tid: int, time: float) -> Incarnation:
        inc = open_inc.get(tid)
        if inc is None:
            index = next_index.get(tid, 0)
            next_index[tid] = index + 1
            inc = Incarnation(tid=tid, index=index, start_time=time)
            open_inc[tid] = inc
            incarnations.append(inc)
        return inc

    last_time = 0.0
    for event in events:
        kind = event.get("event")
        if kind is None:
            raise ValueError(f"not a trace event record: {event!r}")
        seq = n_events
        n_events += 1
        last_time = max(last_time, float(event.get("time", 0.0)))
        if kind not in _TRACKED_KINDS:
            continue
        tid = event["tx"]
        time = float(event.get("time", 0.0))
        inc = current(tid, time)
        if kind == "lock_acquire":
            inc.acquires.append(
                Acquire(time, event["item"], bool(event["exclusive"]), seq)
            )
        elif kind == "lock_release":
            inc.releases.append(
                Release(time, tuple(event["items"]), event["reason"], seq)
            )
        elif kind == "lock_wait":
            inc.waits.append(
                Wait(time, event["item"], tuple(event["holders"]), seq)
            )
        elif kind == "lock_wake":
            inc.wakes.append(time)
        elif kind == "decision":
            inc.node_label = event["node"]
        elif kind == "deadlock_break":
            # tx = the holder about to be wounded, by = the requester;
            # the matching abort follows with the same (by, victim).
            pending_breaks.add((event["by"], tid))
        elif kind in TERMINAL_KINDS:
            inc.end_kind = kind
            inc.end_time = time
            if kind == "abort":
                by = event["by"]
                cause = event["cause"]
                inc.end_by = by
                inc.end_cause = cause
                wounds.append(
                    Wound(
                        time=time,
                        victim=tid,
                        by=by,
                        cause=cause,
                        incarnation=inc,
                        deadlock_break=(by, tid) in pending_breaks,
                    )
                )
                pending_breaks.discard((by, tid))
            del open_inc[tid]
        if kind == "arrival":
            inc.start_time = time

    return History(
        incarnations=incarnations,
        wounds=wounds,
        n_events=n_events,
        last_time=last_time,
    )
