"""Text and JSON reporters for certification results.

Mirrors ``repro lint``'s reporter contract: the text form is for
humans, the JSON form is versioned machine output (consumed by the CI
smoke step and the sweep manifest).
"""

from __future__ import annotations

from repro.certify.certifier import CertificationResult
from repro.certify.rules import all_rules
from repro.checks.report import json_envelope

#: Version of the JSON report layout.  Bump on breaking changes.
JSON_SCHEMA_VERSION = 1


def render_text(result: CertificationResult, verbose: bool = False) -> str:
    """Human-readable certification report."""
    lines = [
        f"certify: policy {result.policy_name} — "
        f"{result.n_events} events, {result.n_incarnations} incarnations, "
        f"{result.n_committed} committed, {result.n_wounds} wounds"
    ]
    by_rule = result.violations_by_rule()
    for rule in all_rules():
        if rule.code in result.skipped:
            status = f"SKIP ({result.skipped[rule.code]})"
        elif rule.code in by_rule:
            status = f"FAIL ({by_rule[rule.code]} violation(s))"
        else:
            status = "PASS"
        lines.append(f"  {rule.code}  {rule.name:<26} {status}")
    if result.violations:
        lines.append("")
        for violation in result.violations:
            stamp = (
                f"t={violation.time:.6g}"
                if violation.time is not None
                else "t=?"
            )
            lines.append(f"{violation.code} [{stamp}] {violation.message}")
        lines.append("")
        lines.append(
            f"NOT CERTIFIED: {len(result.violations)} violation(s)"
        )
    else:
        if result.serialization_order is not None:
            order = ", ".join(
                f"tx{tid}" for tid in result.serialization_order
            )
            shown = order if len(order) <= 120 or verbose else (
                order[:117] + "..."
            )
            lines.append(
                f"  serialization order ({len(result.serialization_order)} "
                f"committed, {result.n_graph_edges} edges): {shown}"
            )
        lines.append("CERTIFIED")
    return "\n".join(lines)


def render_json(result: CertificationResult) -> str:
    """Machine-readable report with a pinned schema version."""
    return json_envelope(
        "repro-certification", JSON_SCHEMA_VERSION, result.to_dict()
    )


def render_cells_json(experiment: str, scale_name: str, samples) -> str:
    """One JSON document covering every certified cell of a sample.

    ``samples`` is a sequence of
    :class:`~repro.certify.runner.CellCertification`.
    """
    payload = {
        "experiment": experiment,
        "scale": scale_name,
        "certified": all(s.result.certified for s in samples),
        "cells": [
            {
                "cell": {
                    "x": sample.cell.x,
                    "seed": sample.cell.seed,
                    "policy": sample.cell.policy,
                },
                **sample.result.to_dict(),
            }
            for sample in samples
        ],
    }
    return json_envelope("repro-certification", JSON_SCHEMA_VERSION, payload)
