"""repro — reproduction of "Real-Time Transaction Scheduling: A Cost
Conscious Approach" (Hong, Johnson, Chakravarthy; SIGMOD 1993).

Quickstart::

    from repro import (
        CCAPolicy, EDFPolicy, RTDBSimulator, SimulationConfig,
        generate_workload,
    )

    config = SimulationConfig(arrival_rate=8.0, n_transactions=500)
    workload = generate_workload(config, seed=1)
    cca = RTDBSimulator(config, workload, CCAPolicy(1.0)).run()
    edf = RTDBSimulator(config, workload, EDFPolicy()).run()
    print(cca.miss_percent, edf.miss_percent)

Package map:

* :mod:`repro.sim` — discrete-event simulation kernel (SIMPACK stand-in);
* :mod:`repro.analysis` — transaction pre-analysis (trees, conflict and
  safety relations);
* :mod:`repro.rtdb` — database substrate (locks, disk, transactions);
* :mod:`repro.core` — priority policies, penalty of conflict, the
  scheduling procedures and the simulator;
* :mod:`repro.workload` — workload generation per the paper's tables;
* :mod:`repro.metrics` — seed averaging and improvement metrics;
* :mod:`repro.experiments` — one experiment per paper table/figure.
"""

from repro.config import SimulationConfig
from repro.core.oracle import SetOracle, TreeOracle
from repro.core.policy import (
    CCAPolicy,
    CriticalnessCCAPolicy,
    EDFPolicy,
    EDFWaitPolicy,
    EDFWPPolicy,
    FCFSPolicy,
    LSFPolicy,
    PriorityPolicy,
    make_policy,
)
from repro.core.simulator import RTDBSimulator, SimulationResult, TransactionRecord
from repro.metrics.comparison import PolicyComparison, improvement_percent
from repro.metrics.summary import RunSummary, summarize
from repro.metrics.stats import (
    ConfidenceInterval,
    PairedTestResult,
    mean_confidence_interval,
    paired_t_test,
)
from repro.mp.simulator import MultiprocessorSimulator
from repro.occ.simulator import OCCSimulator
from repro.tracing import EventLog
from repro.workload.generator import WorkloadGenerator, generate_workload
from repro.workload.programs import TreeWorkloadGenerator
from repro.workload.serialization import load_workload, save_workload

__version__ = "1.0.0"

__all__ = [
    "CCAPolicy",
    "ConfidenceInterval",
    "CriticalnessCCAPolicy",
    "EDFPolicy",
    "EDFWPPolicy",
    "EDFWaitPolicy",
    "EventLog",
    "FCFSPolicy",
    "LSFPolicy",
    "MultiprocessorSimulator",
    "OCCSimulator",
    "PairedTestResult",
    "PolicyComparison",
    "PriorityPolicy",
    "RTDBSimulator",
    "RunSummary",
    "SetOracle",
    "SimulationConfig",
    "SimulationResult",
    "TransactionRecord",
    "TreeOracle",
    "TreeWorkloadGenerator",
    "WorkloadGenerator",
    "generate_workload",
    "improvement_percent",
    "load_workload",
    "make_policy",
    "mean_confidence_interval",
    "paired_t_test",
    "save_workload",
    "summarize",
    "__version__",
]
