"""Deterministic fault injection for sweep execution.

The chaos test suite (and the CI chaos smoke step) needs workers that
crash, hang, die, or return corrupt payloads *on a seeded schedule*:
the same cells fault in the same way on every run, at any ``jobs``
count, so fault-tolerant execution can be tested for the same
determinism invariants as fault-free execution (parallel == serial,
retry converges to the fault-free result).

A :class:`FaultPlan` decides, per ``(cell, attempt)``, whether to
inject and which :data:`fault kind <FAULT_KINDS>`:

``crash``
    Raise :class:`InjectedCrash` — a clean worker exception that
    pickles back to the parent.
``hang``
    Sleep ``hang_s`` real seconds, then raise :class:`InjectedHang`.
    The sleep is finite so an un-timed-out sweep still terminates; with
    a per-cell ``timeout`` the parent gives up on the cell first.
``corrupt``
    Return :data:`CORRUPT_PAYLOAD` instead of a result; the executor's
    payload validation turns it into a retryable failure.
``die``
    Hard-kill the worker process with ``os._exit`` — the parent sees
    ``BrokenProcessPool`` and must rebuild the pool.  Downgraded to
    ``crash`` when not running in a child process, so in-process
    (serial) execution never kills the test runner.
``interrupt``
    Raise ``KeyboardInterrupt``, simulating Ctrl-C landing mid-sweep.
``kernel``
    Raise :class:`InjectedKernelFault`, simulating an unexpected defect
    inside the kernel engine.  With engine fallback active the guarded
    cell runner fires it *inside* its healing scope, so the cell
    recovers on the reference engine; otherwise it is an ordinary
    retryable worker exception.

The decision hashes ``(plan seed, cell key material)`` — nothing about
process identity or wall time — and faults only fire while
``attempt <= max_failures``, so bounded retries deterministically
outlast transient faults.

Plans propagate to worker processes through the :data:`FAULTS_ENV`
environment variable (``install`` exports it; workers re-parse it on
first use), so the same schedule is active in every process of a sweep.
Example::

    REPRO_FAULTS="crash=0.3,hang=0.1,seed=42,max_failures=1,hang_s=0.2"

Production sweeps simply leave :data:`FAULTS_ENV` unset; the executor's
single ``active_plan()`` check is the only overhead.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import time
from typing import Optional

#: Environment variable carrying the serialized fault plan into workers.
FAULTS_ENV = "REPRO_FAULTS"

#: Injectable fault kinds, in spec-string order.  ``kernel`` is last so
#: adding it never reshuffled which cells the earlier kinds hit.
FAULT_KINDS = ("crash", "hang", "corrupt", "die", "interrupt", "kernel")

#: What a ``corrupt`` fault returns in place of a simulation result.
CORRUPT_PAYLOAD = "__repro_corrupt_payload__"


class InjectedFault(RuntimeError):
    """Base class for exceptions raised by injected faults."""


class InjectedCrash(InjectedFault):
    """A clean (picklable) worker crash."""


class InjectedHang(InjectedFault):
    """Raised after a ``hang`` fault finishes sleeping."""


class InjectedKernelFault(InjectedFault):
    """A simulated kernel-engine defect (unexpected cell exception).

    Raised from *inside* the guarded cell runner when engine fallback is
    active — exercising the kernel→reference self-healing path — and
    like any other worker exception otherwise.
    """


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of worker faults.

    ``crash``/``hang``/``corrupt``/``die``/``interrupt`` are rates in
    ``[0, 1]``; their sum must not exceed 1.  Each cell draws one
    deterministic uniform from ``(seed, key material)`` and the rates
    partition ``[0, 1)`` in :data:`FAULT_KINDS` order, so raising one
    rate never reshuffles which cells another kind hits.
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    die: float = 0.0
    interrupt: float = 0.0
    kernel: float = 0.0
    max_failures: int = 1
    """Faults fire only while ``attempt <= max_failures`` — the fault is
    *transient* and bounded retries outlast it.  Use a huge value for
    permanent faults."""
    hang_s: float = 0.5
    """How long a ``hang`` fault sleeps (real seconds)."""

    def __post_init__(self) -> None:
        rates = self.rates()
        if any(rate < 0.0 for rate in rates.values()):
            raise ValueError(f"fault rates must be >= 0: {rates}")
        if sum(rates.values()) > 1.0 + 1e-9:
            raise ValueError(f"fault rates sum to more than 1: {rates}")
        if self.max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        if self.hang_s < 0:
            raise ValueError("hang_s must be >= 0")

    def rates(self) -> dict[str, float]:
        return {kind: getattr(self, kind) for kind in FAULT_KINDS}

    # -- the schedule ------------------------------------------------------

    def decide(self, key_material: str, attempt: int) -> Optional[str]:
        """The fault kind for this ``(cell, attempt)``, or ``None``.

        Deterministic in ``(self.seed, key_material)``; independent of
        process, wall clock, and jobs count.
        """
        if attempt > self.max_failures:
            return None
        digest = hashlib.sha256(
            f"{self.seed}:{key_material}".encode("utf-8")
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        edge = 0.0
        for kind, rate in self.rates().items():
            edge += rate
            if draw < edge:
                return kind
        return None

    # -- env round trip ----------------------------------------------------

    def to_spec(self) -> str:
        """The ``k=v,...`` spec string :func:`parse_spec` reads back."""
        parts = [f"{kind}={rate:g}" for kind, rate in self.rates().items() if rate]
        parts.append(f"seed={self.seed}")
        parts.append(f"max_failures={self.max_failures}")
        parts.append(f"hang_s={self.hang_s:g}")
        return ",".join(parts)


def parse_spec(spec: str) -> FaultPlan:
    """Parse a ``crash=0.3,seed=42``-style spec into a :class:`FaultPlan`."""
    fields: dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"bad fault spec item {part!r} (want key=value)")
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        if key in FAULT_KINDS or key == "hang_s":
            fields[key] = float(value)
        elif key in ("seed", "max_failures"):
            fields[key] = int(value)
        else:
            raise ValueError(
                f"unknown fault spec key {key!r}; known: "
                f"{', '.join(FAULT_KINDS)}, seed, max_failures, hang_s"
            )
    return FaultPlan(**fields)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Process-wide active plan
# ---------------------------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None
_PARSED_ENV: Optional[str] = None


def install(plan: Optional[FaultPlan]) -> None:
    """Activate ``plan`` in this process *and* future worker processes.

    Exports the plan via :data:`FAULTS_ENV` so ``ProcessPoolExecutor``
    children (which inherit the environment) replay the same schedule.
    ``install(None)`` clears both.
    """
    global _ACTIVE, _PARSED_ENV
    _ACTIVE = plan
    if plan is None:
        os.environ.pop(FAULTS_ENV, None)
        _PARSED_ENV = None
    else:
        spec = plan.to_spec()
        os.environ[FAULTS_ENV] = spec
        _PARSED_ENV = spec


def active_plan() -> Optional[FaultPlan]:
    """The plan in effect here: installed directly, or via the env."""
    global _ACTIVE, _PARSED_ENV
    spec = os.environ.get(FAULTS_ENV)
    if not spec:
        if _PARSED_ENV is not None:
            # Env cleared out from under us (e.g. by a parent install(None)
            # before fork); drop the stale parse.
            _ACTIVE, _PARSED_ENV = None, None
        return _ACTIVE
    if spec != _PARSED_ENV:
        _ACTIVE = parse_spec(spec)
        _PARSED_ENV = spec
    return _ACTIVE


def _in_child_process() -> bool:
    return multiprocessing.parent_process() is not None


def inject_kernel_fault(key_material: str, attempt: int) -> None:
    """Raise the canonical kernel fault for this cell attempt.

    Shared by every site that fires a ``kernel`` fault — the plain
    worker path, the guarded runner, and quarantine replay — so the
    exception type *and message* are identical everywhere and a replay
    can match the original failure exactly.
    """
    raise InjectedKernelFault(
        f"injected kernel fault for {key_material} attempt {attempt}"
    )


def maybe_inject(key_material: str, attempt: int) -> Optional[str]:
    """Fire the scheduled fault for this cell attempt, if any.

    Raises for ``crash``/``hang``/``interrupt``, never returns for
    ``die`` (in a child process), and returns :data:`CORRUPT_PAYLOAD`
    for ``corrupt`` — the caller must pass that straight through as the
    worker's payload.  Returns ``None`` when no fault is scheduled.
    """
    plan = active_plan()
    if plan is None:
        return None
    kind = plan.decide(key_material, attempt)
    if kind is None:
        return None
    if kind == "die" and not _in_child_process():
        kind = "crash"  # never hard-kill the main (test/CLI) process
    if kind == "crash":
        raise InjectedCrash(f"injected crash for {key_material} attempt {attempt}")
    if kind == "hang":
        time.sleep(plan.hang_s)
        raise InjectedHang(
            f"injected hang ({plan.hang_s:g}s) for {key_material} "
            f"attempt {attempt}"
        )
    if kind == "interrupt":
        raise KeyboardInterrupt(
            f"injected interrupt for {key_material} attempt {attempt}"
        )
    if kind == "kernel":
        inject_kernel_fault(key_material, attempt)
    if kind == "die":
        os._exit(13)
    return CORRUPT_PAYLOAD
