"""Parallel, fault-tolerant execution of sweep cells with deterministic
merging.

A *cell* is the atomic unit of every paper experiment: simulate one
configuration for one seed under one policy.  Cells are independent —
workloads are regenerated deterministically from ``(config, seed)`` in
each worker, so replaying the same seed under several policies in
different processes still compares *paired* workloads, exactly as the
serial runner does.

:func:`execute_cells` fans cells out over a ``ProcessPoolExecutor``
(``jobs`` workers), consults an optional
:class:`~repro.experiments.cache.ResultCache` first, and merges results
**ordered by cell key, never by completion order** — so for the same
seeds, ``jobs=N`` output is identical to serial output, and the trace
event stream is deterministic too.  The parity tests in
``tests/experiments/test_parallel.py`` hold this as an invariant.

Failure isolation (see docs/ROBUSTNESS.md): a worker exception becomes
a structured :class:`CellFailure` instead of aborting the sweep.  The
:class:`RetryPolicy` chooses what happens next — ``fail`` (abort with a
:class:`SweepError`, completed cells already flushed to the cache),
``retry`` (bounded re-attempts with exponential backoff), or ``skip``
(drop the cell after its attempts are exhausted, identically at any
``jobs``).  Per-cell timeouts, worker payload validation, automatic
pool rebuilds on ``BrokenProcessPool`` (degrading to serial execution
when the pool keeps breaking), and incremental checkpointing — each
completed cell is flushed to the cache the moment it finishes, even if
the sweep is later interrupted — make long sweeps restartable: re-run
the same command and only missing cells are recomputed.

Module-level *execution defaults* (:func:`configure` / the
:func:`execution` context manager) let entry points like the CLI choose
``jobs``/``cache``/``trace``/``retry`` once without threading
parameters through every figure function.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterator, Mapping, Optional, Sequence

from repro.config import SimulationConfig
from repro.core.factory import make_simulator
from repro.core.kernel import KernelSimulator
from repro.core.policy import make_policy
from repro.core.simulator import SimulationResult
from repro.experiments import faults
from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.quarantine import CellEnvelope, FallbackPolicy, run_cell_guarded
from repro.obs.prof import SpanProfiler, observe_stage
from repro.obs.registry import MetricsRegistry
from repro.workload.generator import generate_workload

TraceHook = Callable[..., None]
"""``callable(event_name, **fields)`` — same shape as simulator trace
hooks; :class:`repro.tracing.EventLog` and
:class:`repro.tracing.TraceCounters` both qualify."""

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"

CellKey = tuple[float, str, int]
"""(x value, policy name, seed) — the deterministic merge order."""


@dataclasses.dataclass(frozen=True)
class SweepCell:
    """One simulation to run: a config at axis point ``x`` for one
    ``(policy, seed)`` pair."""

    x: float
    policy: str
    seed: int
    config: SimulationConfig

    @property
    def key(self) -> CellKey:
        return (self.x, self.policy, self.seed)


# ---------------------------------------------------------------------------
# Failure handling vocabulary
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class CellFailure:
    """One cell's failure record: worst case across all its attempts."""

    key: CellKey
    attempts: int
    """How many attempts had been made when the last failure occurred."""
    exception: str
    """Exception class name of the most recent failure."""
    message: str
    recovered: bool = False
    """``True`` if a later attempt of the same cell succeeded."""
    progress: Optional[dict] = None
    """Partial-progress snapshot for budget aborts (events fired,
    committed/live counts, sim time) — how far the cell got before the
    wall-clock/event/memory budget tripped."""

    def to_dict(self) -> dict:
        """JSON-ready form, as embedded in run manifests."""
        x, policy, seed = self.key
        record = {
            "cell": {"x": x, "policy": policy, "seed": seed},
            "attempts": self.attempts,
            "exception": self.exception,
            "message": self.message,
            "recovered": self.recovered,
        }
        if self.progress:
            record["progress"] = dict(self.progress)
        return record


class SweepError(RuntimeError):
    """A sweep aborted on unrecoverable cell failures.

    ``failures`` holds the :class:`CellFailure` records that caused the
    abort; completed cells were already flushed to the result cache, so
    re-running the sweep resumes from the checkpoint.
    """

    def __init__(self, failures: Sequence[CellFailure]) -> None:
        self.failures = list(failures)
        first = self.failures[0] if self.failures else None
        detail = (
            f"; first: cell {first.key} after {first.attempts} attempt(s): "
            f"{first.exception}: {first.message}"
            if first is not None
            else ""
        )
        super().__init__(
            f"{len(self.failures)} sweep cell(s) failed{detail}"
        )


class CellTimeoutError(RuntimeError):
    """A cell exceeded the per-cell wall-clock timeout."""


class CorruptResultError(RuntimeError):
    """A worker returned a payload that is not a valid cell result."""


#: What each ``on_error`` mode does once a cell exhausts its attempts.
ON_ERROR_MODES = ("fail", "retry", "skip")


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How :func:`execute_cells` reacts to cell failures.

    ``fail``
        No retries; the first failure aborts the sweep with a
        :class:`SweepError` (the default — bit-compatible with the old
        behaviour, minus losing completed work).
    ``retry``
        Re-attempt failed cells up to ``max_attempts`` times with
        exponential backoff; abort with :class:`SweepError` only when a
        cell exhausts its attempts.
    ``skip``
        Like ``retry``, but exhausted cells are dropped from the result
        mapping instead of aborting.  Dropped cells are excluded
        identically at any ``jobs`` count (the failure schedule is
        process-independent), preserving the parallel == serial parity
        invariant over the surviving cells.

    ``timeout`` bounds each cell's wall clock twice over: the parent
    waits at most ``timeout`` seconds per pool future, and workers run
    their simulation engine with ``max_wall_s=timeout`` so a livelocked
    cell kills itself even in serial mode.  ``memory_mb`` bounds each
    worker's resident memory via the engine's in-process guard
    (:class:`~repro.sim.engine.MemoryBudgetExceeded`) — a cell that
    would OOM fails with a partial-progress record instead of taking
    its process down.
    """

    on_error: str = "fail"
    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    timeout: Optional[float] = None
    memory_mb: Optional[float] = None
    max_pool_rebuilds: int = 2
    """Pool breakages tolerated before degrading to serial execution."""

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, got {self.on_error!r}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.memory_mb is not None and self.memory_mb <= 0:
            raise ValueError(f"memory_mb must be > 0, got {self.memory_mb}")

    @property
    def attempts_per_cell(self) -> int:
        """Effective attempt budget (``fail`` never retries)."""
        return 1 if self.on_error == "fail" else self.max_attempts

    def backoff(self, round_index: int) -> float:
        """Sleep before retry round ``round_index`` (1-based)."""
        return min(
            self.backoff_max_s,
            self.backoff_s * self.backoff_factor ** (round_index - 1),
        )


@dataclasses.dataclass
class SweepStats:
    """Counters for one :func:`execute_cells` call."""

    cells_total: int = 0
    cells_run: int = 0
    """Cells actually simulated (cache misses)."""
    cache_hits: int = 0
    elapsed: float = 0.0
    jobs: int = 1
    failed_attempts: int = 0
    """Worker attempts that ended in an exception/timeout/corruption."""
    retries: int = 0
    """Re-submissions after a failed attempt."""
    timeouts: int = 0
    pool_rebuilds: int = 0
    """Times the process pool was torn down after a timeout/breakage."""
    cells_skipped: int = 0
    """Cells dropped after exhausting attempts (``on_error=skip``)."""
    cache_put_errors: int = 0
    failures: list[CellFailure] = dataclasses.field(default_factory=list)
    """Per-cell failure records (recovered and terminal), in key order."""
    engine_fallbacks: list[dict] = dataclasses.field(default_factory=list)
    """Kernel→reference fallback records (manifest ``engine_fallbacks``
    section, schema v5), in cell-key order."""

    @property
    def sims_per_sec(self) -> float:
        """Simulator throughput (computed cells only; 0 if none ran)."""
        if self.cells_run == 0 or self.elapsed <= 0:
            return 0.0
        return self.cells_run / self.elapsed


def simulate_cell(
    config: SimulationConfig,
    seed: int,
    policy_name: str,
    *,
    max_wall_s: Optional[float] = None,
    max_memory_mb: Optional[float] = None,
) -> SimulationResult:
    """Run one cell from scratch — the worker-process entry point.

    Deterministic in its arguments: the workload is generated from
    ``(config, seed)`` and the simulator draws no further randomness,
    so the same cell yields the same result in any process.
    ``max_wall_s`` (when set) bounds the simulation's real run time via
    the engine's wall-clock guard; ``max_memory_mb`` bounds resident
    memory the same way.
    """
    workload = generate_workload(config, seed)
    policy = make_policy(policy_name, penalty_weight=config.penalty_weight)
    return make_simulator(
        config,
        workload,
        policy,
        max_wall_s=max_wall_s,
        max_memory_mb=max_memory_mb,
    ).run()


def simulate_cell_traced(
    config: SimulationConfig,
    seed: int,
    policy_name: str,
    *,
    max_wall_s: Optional[float] = None,
    max_memory_mb: Optional[float] = None,
    sink: Optional[TraceHook] = None,
):
    """Run one cell with a full :class:`~repro.tracing.EventLog` attached.

    Returns ``(result, log, workload)`` — everything offline analyses
    (``repro trace``, ``repro certify``) need: the aggregate outcome,
    the complete event stream, and the exact specs it was generated
    from.  Same determinism contract as :func:`simulate_cell`.

    ``sink`` substitutes a streaming trace sink (a
    :class:`~repro.sim.stream.JsonlSink` spilling to disk, a bounded
    :class:`~repro.sim.stream.RingSink`) for the in-memory log; the
    returned middle element is then that sink.  Whatever was attached
    is closed before returning, so a spilled stream is complete and
    flushed when the caller iterates it.
    """
    from repro.tracing import EventLog

    workload = generate_workload(config, seed)
    policy = make_policy(policy_name, penalty_weight=config.penalty_weight)
    log = sink if sink is not None else EventLog()
    try:
        result = make_simulator(
            config,
            workload,
            policy,
            trace=log,
            max_wall_s=max_wall_s,
            max_memory_mb=max_memory_mb,
        ).run()
    finally:
        close = getattr(log, "close", None)
        if close is not None:
            close()
    return result, log, workload


def simulate_cell_observed(
    config: SimulationConfig,
    seed: int,
    policy_name: str,
    *,
    max_wall_s: Optional[float] = None,
    max_memory_mb: Optional[float] = None,
    profile: Optional[SpanProfiler] = None,
) -> tuple[SimulationResult, float, dict]:
    """Run one cell with a private metrics registry attached.

    Returns ``(result, wall_ms, counter_deltas)`` where
    ``counter_deltas`` is the cell's registry snapshot — the per-cell
    delta a worker process ships back for the parent to merge.  Apart
    from wall time (the ``prof.stage_ms`` stage histograms and the
    cell's own wall clock) the deltas are deterministic in the cell
    (simulated time only), which is what makes parallel manifest
    counters equal serial ones.

    Observed cells run with kernel introspection on (``kernel.*``
    counters — fusion spans, penalty-scan modes, CCA prunes; see
    docs/OBSERVABILITY.md) and tally which engine actually ran under
    ``sweep.engine{engine=...}``.  Both are deterministic.

    ``profile`` optionally attaches a :class:`SpanProfiler`: the stage
    intervals become spans and the engine records its internal phases
    into the same recording (:func:`simulate_cell_profiled` is the
    worker-facing wrapper that ships the recording back).
    """
    registry = MetricsRegistry()
    started = time.perf_counter()
    workload = generate_workload(config, seed)
    policy = make_policy(policy_name, penalty_weight=config.penalty_weight)
    generated = time.perf_counter()
    observe_stage(registry, "workload_gen", (generated - started) * 1000.0)
    simulator = make_simulator(
        config,
        workload,
        policy,
        metrics=registry,
        max_wall_s=max_wall_s,
        max_memory_mb=max_memory_mb,
        profile=profile,
        introspect=True,
    )
    engine = "kernel" if isinstance(simulator, KernelSimulator) else "reference"
    registry.counter("sweep.engine", engine=engine).inc()
    result = simulator.run()
    finished = time.perf_counter()
    observe_stage(registry, "simulate", (finished - generated) * 1000.0)
    if profile is not None:
        cell_args = {"policy": policy_name, "seed": seed, "engine": engine}
        profile.add_span(
            "cell.workload_gen", "stage", started, generated, {"n": len(workload)}
        )
        profile.add_span("cell.simulate", "stage", generated, finished, cell_args)
    return result, (finished - started) * 1000.0, registry.snapshot()


def simulate_cell_profiled(
    config: SimulationConfig,
    seed: int,
    policy_name: str,
    *,
    max_wall_s: Optional[float] = None,
    max_memory_mb: Optional[float] = None,
) -> tuple[SimulationResult, float, dict, dict]:
    """Run one cell observed *and* span-profiled.

    Returns ``(result, wall_ms, counter_deltas, prof_state)`` — the
    observed payload plus this worker's profiler recording
    (:meth:`SpanProfiler.export_state`), which the parent folds into
    its own profiler in cell-key order.
    """
    prof = SpanProfiler()
    result, wall_ms, deltas = simulate_cell_observed(
        config,
        seed,
        policy_name,
        max_wall_s=max_wall_s,
        max_memory_mb=max_memory_mb,
        profile=prof,
    )
    return result, wall_ms, deltas, prof.export_state()


def _worker_entry(
    config: SimulationConfig,
    seed: int,
    policy_name: str,
    attempt: int,
    observed: bool,
    profiled: bool,
    max_wall_s: Optional[float],
    max_memory_mb: Optional[float] = None,
    fallback: Optional[FallbackPolicy] = None,
):
    """Pool/serial worker entry: fault injection, then the simulation.

    With ``fallback`` set the cell runs through the guarded runner
    (kernel failures heal onto the reference engine, wrapped in a
    :class:`CellEnvelope`); the default path is untouched — one
    ``is not None`` check.
    """
    if fallback is not None:
        return run_cell_guarded(
            config,
            seed,
            policy_name,
            attempt,
            observed=observed,
            profiled=profiled,
            max_wall_s=max_wall_s,
            max_memory_mb=max_memory_mb,
            fallback=fallback,
        )
    if faults.active_plan() is not None:
        injected = faults.maybe_inject(cache_key(config, seed, policy_name), attempt)
        if injected is not None:
            return injected  # CORRUPT_PAYLOAD passes through as-is
    if profiled:
        return simulate_cell_profiled(
            config, seed, policy_name,
            max_wall_s=max_wall_s, max_memory_mb=max_memory_mb,
        )
    if observed:
        return simulate_cell_observed(
            config, seed, policy_name,
            max_wall_s=max_wall_s, max_memory_mb=max_memory_mb,
        )
    return simulate_cell(
        config, seed, policy_name,
        max_wall_s=max_wall_s, max_memory_mb=max_memory_mb,
    )


def _unwrap(raw) -> tuple[object, Optional[dict]]:
    """Split a worker payload into (outcome, fallback record).

    Guarded workers ship :class:`CellEnvelope`; plain workers ship the
    bare outcome.  Anything else — including a corrupt payload inside
    an envelope — flows on to ``_validate_outcome`` unchanged.
    """
    if isinstance(raw, CellEnvelope):
        return raw.outcome, raw.fallback
    return raw, None


def _validate_outcome(cell: SweepCell, outcome, observed: bool, profiled: bool):
    """Reject corrupt worker payloads (wrong shape, wrong cell).

    Raises :class:`CorruptResultError`, which the retry machinery treats
    like any other per-cell failure.
    """
    if observed or profiled:
        width = 4 if profiled else 3
        if (
            not isinstance(outcome, tuple)
            or len(outcome) != width
            or not isinstance(outcome[0], SimulationResult)
            or not isinstance(outcome[1], (int, float))
            or not isinstance(outcome[2], dict)
            or (profiled and not isinstance(outcome[3], dict))
        ):
            raise CorruptResultError(
                f"cell {cell.key}: malformed "
                f"{'profiled' if profiled else 'observed'} payload "
                f"({type(outcome).__name__})"
            )
        result = outcome[0]
    else:
        if not isinstance(outcome, SimulationResult):
            raise CorruptResultError(
                f"cell {cell.key}: payload is {type(outcome).__name__}, "
                f"not a SimulationResult"
            )
        result = outcome
    if result.policy_name != cell.policy:
        raise CorruptResultError(
            f"cell {cell.key}: result claims policy "
            f"{result.policy_name!r}, expected {cell.policy!r}"
        )
    return outcome


# ---------------------------------------------------------------------------
# Execution defaults (entry points set once; sweeps inherit)
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class ExecutionDefaults:
    """What ``jobs=None`` / ``cache=None`` / ``trace=None`` /
    ``metrics=None`` / ``retry=None`` resolve to."""

    jobs: Optional[int] = None
    cache: Optional[ResultCache] = None
    trace: Optional[TraceHook] = None
    metrics: Optional[MetricsRegistry] = None
    retry: Optional[RetryPolicy] = None
    sanitize: bool = False
    """Run every cell with the RTSan invariant sanitizer attached
    (``config.sanitize=True``); results are identical, but cells are
    addressed separately in the cache so a sanitized pass really
    re-validates every simulation."""
    profile: Optional[SpanProfiler] = None
    """Span profiler the sweep records into: workers run profiled and
    ship their recordings back; the parent folds them in (cell-key
    order) together with its own sweep-stage spans.  Results are
    bit-identical with or without it."""
    fallback: Optional[FallbackPolicy] = None
    """Engine self-healing policy: kernel-cell failures quarantine and
    re-run on the sanitized reference engine (see
    :mod:`repro.experiments.quarantine`).  ``None`` (the default) binds
    no fallback hooks on the worker path."""


_DEFAULTS = ExecutionDefaults()

UNSET = object()
"""Sentinel distinguishing 'not passed' from an explicit ``None`` (which
means *disable* for ``cache``/``trace``/``metrics``)."""


def configure(
    jobs: object = UNSET,
    cache: object = UNSET,
    trace: object = UNSET,
    metrics: object = UNSET,
    retry: object = UNSET,
    sanitize: object = UNSET,
    profile: object = UNSET,
    fallback: object = UNSET,
) -> None:
    """Set process-wide execution defaults (omitted fields keep theirs)."""
    if jobs is not UNSET:
        _DEFAULTS.jobs = jobs  # type: ignore[assignment]
    if cache is not UNSET:
        _DEFAULTS.cache = cache  # type: ignore[assignment]
    if trace is not UNSET:
        _DEFAULTS.trace = trace  # type: ignore[assignment]
    if metrics is not UNSET:
        _DEFAULTS.metrics = metrics  # type: ignore[assignment]
    if retry is not UNSET:
        _DEFAULTS.retry = retry  # type: ignore[assignment]
    if sanitize is not UNSET:
        _DEFAULTS.sanitize = sanitize  # type: ignore[assignment]
    if profile is not UNSET:
        _DEFAULTS.profile = profile  # type: ignore[assignment]
    if fallback is not UNSET:
        _DEFAULTS.fallback = fallback  # type: ignore[assignment]


@contextlib.contextmanager
def execution(
    jobs: object = UNSET,
    cache: object = UNSET,
    trace: object = UNSET,
    metrics: object = UNSET,
    retry: object = UNSET,
    sanitize: object = UNSET,
    profile: object = UNSET,
    fallback: object = UNSET,
) -> Iterator[None]:
    """Temporarily override execution defaults (nestable).

    Fields not passed inherit the surrounding defaults, so e.g. the CLI
    can set ``jobs``/``cache``/``retry`` once and swap only
    ``trace``/``metrics`` per figure.
    """
    saved = dataclasses.replace(_DEFAULTS)
    try:
        configure(
            jobs=jobs,
            cache=cache,
            trace=trace,
            metrics=metrics,
            retry=retry,
            sanitize=sanitize,
            profile=profile,
            fallback=fallback,
        )
        yield
    finally:
        configure(
            jobs=saved.jobs,
            cache=saved.cache,
            trace=saved.trace,
            metrics=saved.metrics,
            retry=saved.retry,
            sanitize=saved.sanitize,
            profile=saved.profile,
            fallback=saved.fallback,
        )


def resolve_jobs(jobs: Optional[int]) -> int:
    """Effective worker count: explicit arg > configured default >
    ``$REPRO_JOBS`` > 1."""
    if jobs is None:
        jobs = _DEFAULTS.jobs
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        jobs = int(env) if env else 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def resolve_cache(cache: Optional[ResultCache]) -> Optional[ResultCache]:
    return cache if cache is not None else _DEFAULTS.cache


def resolve_trace(trace: Optional[TraceHook]) -> Optional[TraceHook]:
    return trace if trace is not None else _DEFAULTS.trace


def resolve_metrics(metrics: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    return metrics if metrics is not None else _DEFAULTS.metrics


def resolve_retry(retry: Optional[RetryPolicy]) -> RetryPolicy:
    if retry is not None:
        return retry
    if _DEFAULTS.retry is not None:
        return _DEFAULTS.retry
    return RetryPolicy()


def resolve_sanitize() -> bool:
    return _DEFAULTS.sanitize


def resolve_profile(profile: Optional[SpanProfiler]) -> Optional[SpanProfiler]:
    return profile if profile is not None else _DEFAULTS.profile


def resolve_fallback(
    fallback: Optional[FallbackPolicy],
) -> Optional[FallbackPolicy]:
    return fallback if fallback is not None else _DEFAULTS.fallback


_LAST_STATS = SweepStats()

_SESSION_FAILURES: list[CellFailure] = []

_SESSION_FALLBACKS: list[dict] = []


def last_stats() -> SweepStats:
    """Counters of the most recent :func:`execute_cells` call."""
    return _LAST_STATS


def take_failures() -> list[CellFailure]:
    """Drain the failure records accumulated since the last call.

    Entry points (the CLI's ``--report``) call this once per experiment
    to collect failures across all the sweeps the experiment ran.
    """
    global _SESSION_FAILURES
    drained, _SESSION_FAILURES = _SESSION_FAILURES, []
    return drained


def take_fallbacks() -> list[dict]:
    """Drain the engine-fallback records accumulated since the last
    call — same per-experiment collection contract as
    :func:`take_failures`."""
    global _SESSION_FALLBACKS
    drained, _SESSION_FALLBACKS = _SESSION_FALLBACKS, []
    return drained


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------

class _SweepRunner:
    """Round-based execution of one sweep's pending (uncached) cells.

    Each round runs every unresolved cell once — in a process pool or
    serially — merging successes *in cell-key order within the round*
    and recording failures.  Cells with attempts left go to the next
    round (after backoff); the round structure is identical at any
    ``jobs`` count, so metric merge order, the surviving-cell set, and
    the retry schedule are all process-count-independent.
    """

    def __init__(
        self,
        pending: Sequence[SweepCell],
        jobs: int,
        cache: Optional[ResultCache],
        trace: Optional[TraceHook],
        metrics: Optional[MetricsRegistry],
        retry: RetryPolicy,
        stats: SweepStats,
        profile: Optional[SpanProfiler] = None,
        fallback: Optional[FallbackPolicy] = None,
    ) -> None:
        self.pending = list(pending)
        self.jobs = jobs
        self.cache = cache
        self.trace = trace
        self.metrics = metrics
        self.retry = retry
        self.stats = stats
        self.profile = profile
        self.fallback = fallback
        self.profiled = profile is not None
        self.observed = metrics is not None
        self.results: dict[CellKey, SimulationResult] = {}
        self.attempts: dict[CellKey, int] = {cell.key: 0 for cell in pending}
        self.failures: dict[CellKey, CellFailure] = {}
        self.terminal: dict[CellKey, CellFailure] = {}
        self.use_pool = jobs > 1
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_tainted = False

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> None:
        unresolved = self.pending
        round_index = 0
        try:
            while unresolved:
                if round_index > 0:
                    delay = self.retry.backoff(round_index)
                    if delay > 0:
                        time.sleep(delay)
                if self.use_pool and len(unresolved) > 1:
                    unresolved = self._pool_round(unresolved)
                else:
                    unresolved = self._serial_round(unresolved)
                round_index += 1
        finally:
            self._teardown_pool(cancel=True)
        if self.terminal:
            self.stats.cells_skipped = len(self.terminal)
            if self.retry.on_error != "skip":
                raise SweepError(sorted(self.terminal.values(), key=lambda f: f.key))

    # -- rounds ------------------------------------------------------------

    def _serial_round(self, cells: Sequence[SweepCell]) -> list[SweepCell]:
        retry_next: list[SweepCell] = []
        for cell in cells:
            self.attempts[cell.key] += 1
            try:
                raw = _worker_entry(
                    cell.config,
                    cell.seed,
                    cell.policy,
                    self.attempts[cell.key],
                    self.observed,
                    self.profiled,
                    self.retry.timeout,
                    self.retry.memory_mb,
                    self.fallback,
                )
                outcome, fb_record = _unwrap(raw)
                outcome = _validate_outcome(
                    cell, outcome, self.observed, self.profiled
                )
            except Exception as exc:
                self._attempt_failed(cell, exc, retry_next)
            else:
                self._complete(cell, outcome, fb_record)
        return retry_next

    def _pool_round(self, cells: Sequence[SweepCell]) -> list[SweepCell]:
        pool = self._ensure_pool(len(cells))
        retry_next: list[SweepCell] = []
        futures: dict[CellKey, object] = {}
        submit_errors: dict[CellKey, BaseException] = {}
        for cell in cells:
            self.attempts[cell.key] += 1
            try:
                futures[cell.key] = pool.submit(
                    _worker_entry,
                    cell.config,
                    cell.seed,
                    cell.policy,
                    self.attempts[cell.key],
                    self.observed,
                    self.profiled,
                    self.retry.timeout,
                    self.retry.memory_mb,
                    self.fallback,
                )
            except BrokenProcessPool as exc:
                self._pool_tainted = True
                submit_errors[cell.key] = exc
        processed: set[CellKey] = set()
        try:
            # Wait in cell-key order: earlier waits overlap later cells'
            # execution, and merge order stays deterministic.
            for cell in cells:
                if cell.key in submit_errors:
                    self._attempt_failed(cell, submit_errors[cell.key], retry_next)
                    continue
                future = futures[cell.key]
                try:
                    outcome, fb_record = _unwrap(
                        future.result(timeout=self.retry.timeout)
                    )
                    outcome = _validate_outcome(
                        cell, outcome, self.observed, self.profiled
                    )
                except (_FuturesTimeout, TimeoutError) as exc:
                    # The hung worker keeps its slot until it finishes;
                    # taint the pool so the next round starts fresh.
                    self._pool_tainted = True
                    self.stats.timeouts += 1
                    timeout_exc: Exception = CellTimeoutError(
                        f"cell {cell.key} exceeded timeout="
                        f"{self.retry.timeout:g}s ({type(exc).__name__})"
                    )
                    self._attempt_failed(cell, timeout_exc, retry_next)
                except (BrokenProcessPool, CancelledError) as exc:
                    self._pool_tainted = True
                    self._attempt_failed(cell, exc, retry_next)
                except Exception as exc:
                    self._attempt_failed(cell, exc, retry_next)
                else:
                    processed.add(cell.key)
                    self._complete(cell, outcome, fb_record)
        except BaseException:
            # Abort (KeyboardInterrupt, SweepError under on_error=fail):
            # checkpoint whatever already finished, then cancel the rest.
            self._flush_done(cells, futures, processed)
            self._teardown_pool(cancel=True)
            raise
        if self._pool_tainted:
            self._teardown_pool(cancel=True)
            self._pool_tainted = False
            self.stats.pool_rebuilds += 1
            if self.trace is not None:
                self.trace("sweep_pool_rebuild", rebuilds=self.stats.pool_rebuilds)
            if self.stats.pool_rebuilds > self.retry.max_pool_rebuilds:
                # The pool keeps dying: degrade to serial execution.
                self.use_pool = False
        return retry_next

    # -- per-cell outcomes -------------------------------------------------

    def _complete(
        self, cell: SweepCell, outcome, fb_record: Optional[dict] = None
    ) -> None:
        if fb_record is not None:
            record = {
                "cell": {"x": cell.x, "policy": cell.policy, "seed": cell.seed},
                **fb_record,
            }
            self.stats.engine_fallbacks.append(record)
            if self.trace is not None:
                self.trace(
                    "sweep_engine_fallback",
                    x=cell.x,
                    policy=cell.policy,
                    seed=cell.seed,
                    error=fb_record.get("exception"),
                )
        prof = self.profile
        prof_state: Optional[dict] = None
        if self.profiled:
            result, wall_ms, deltas, prof_state = outcome
        elif self.observed:
            result, wall_ms, deltas = outcome
        else:
            result, wall_ms, deltas = outcome, 0.0, None
        if deltas is not None and self.metrics is not None:
            t0 = time.perf_counter()
            self.metrics.merge_snapshot(deltas)
            self.metrics.histogram("sweep.cell_wall_ms").observe(wall_ms)
            merge_s = time.perf_counter() - t0
            observe_stage(self.metrics, "merge", merge_s * 1000.0)
            if prof is not None:
                prof.timer("sweep.merge", "stage").add(merge_s)
        if prof is not None and prof_state is not None:
            # Called in cell-key order within each round, so the merged
            # recording's structure is worker-count-independent.
            prof.extend(prof_state)
        self.results[cell.key] = result
        self.stats.cells_run += 1
        if cell.key in self.failures:
            self.failures[cell.key] = dataclasses.replace(
                self.failures[cell.key], recovered=True
            )
        if self.cache is not None:
            # Incremental checkpoint: flush the cell *now*, so a killed
            # sweep resumes from here.  Cache write errors degrade to a
            # counter (the cache disables itself after the first one).
            before = self.cache.counters.put_errors
            if self.metrics is None and prof is None:
                self.cache.safe_put(cell.config, cell.seed, cell.policy, result)
            else:
                t0 = time.perf_counter()
                self.cache.safe_put(cell.config, cell.seed, cell.policy, result)
                put_s = time.perf_counter() - t0
                if self.metrics is not None:
                    observe_stage(self.metrics, "cache_put", put_s * 1000.0)
                if prof is not None:
                    prof.timer("sweep.cache_put", "stage").add(put_s)
            self.stats.cache_put_errors += self.cache.counters.put_errors - before

    def _attempt_failed(
        self, cell: SweepCell, exc: BaseException, retry_next: list[SweepCell]
    ) -> None:
        attempt = self.attempts[cell.key]
        self.stats.failed_attempts += 1
        progress = getattr(exc, "progress", None)
        failure = CellFailure(
            key=cell.key,
            attempts=attempt,
            exception=type(exc).__name__,
            message=str(exc)[:300],
            progress=dict(progress) if progress else None,
        )
        self.failures[cell.key] = failure
        if self.trace is not None:
            self.trace(
                "sweep_cell_failed",
                x=cell.x,
                policy=cell.policy,
                seed=cell.seed,
                attempt=attempt,
                error=type(exc).__name__,
            )
        if self.retry.on_error == "fail":
            raise SweepError([failure]) from exc
        if attempt < self.retry.attempts_per_cell:
            retry_next.append(cell)
            self.stats.retries += 1
        else:
            self.terminal[cell.key] = failure

    def _flush_done(
        self,
        cells: Sequence[SweepCell],
        futures: Mapping[CellKey, object],
        processed: set[CellKey],
    ) -> None:
        """Merge finished-but-unprocessed futures (checkpoint on abort)."""
        for cell in cells:
            future = futures.get(cell.key)
            if (
                future is None
                or cell.key in processed
                or not future.done()
                or future.cancelled()
                or future.exception() is not None
            ):
                continue
            try:
                outcome, fb_record = _unwrap(future.result())
                outcome = _validate_outcome(
                    cell, outcome, self.observed, self.profiled
                )
            except Exception:
                continue
            processed.add(cell.key)
            self._complete(cell, outcome, fb_record)

    # -- pool management ---------------------------------------------------

    def _ensure_pool(self, width: int) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=min(self.jobs, width))
        return self._pool

    def _teardown_pool(self, cancel: bool = False) -> None:
        if self._pool is not None:
            # wait=False: never block on a hung worker; its process exits
            # on its own once the task finishes or the engine's wall-clock
            # guard fires.
            self._pool.shutdown(wait=False, cancel_futures=cancel)
            self._pool = None


def execute_cells(
    cells: Sequence[SweepCell],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    trace: Optional[TraceHook] = None,
    metrics: Optional[MetricsRegistry] = None,
    retry: Optional[RetryPolicy] = None,
    profile: Optional[SpanProfiler] = None,
    fallback: Optional[FallbackPolicy] = None,
) -> dict[CellKey, SimulationResult]:
    """Run every cell, in parallel where possible; results keyed and
    ordered by :data:`CellKey`.

    Cached cells are served from ``cache`` without simulating; computed
    cells are stored back the moment they complete (the sweep's
    checkpoint).  With ``jobs > 1`` the pending cells go to a process
    pool, but the returned mapping (and the trace stream) is sorted by
    cell key, so output never depends on completion order.

    ``retry`` (or the configured default) chooses the failure policy:
    see :class:`RetryPolicy`.  Under ``on_error="skip"`` the returned
    mapping simply omits dropped cells — identically at any ``jobs``.
    On abort (``on_error="fail"``, exhausted retries, or
    ``KeyboardInterrupt``) completed cells are already in the cache and
    :func:`last_stats` / :func:`take_failures` still report the partial
    sweep.

    With ``metrics`` set (directly or via :func:`configure`), each
    computed cell runs with a private registry and ships its counter
    deltas back; the parent merges them **in cell-key order** (within
    each retry round), so the merged counters are identical for serial
    and parallel runs of the same cells (wall-time histograms aside).
    Cached cells contribute no simulator counters — they were never
    simulated — but are tallied in ``sweep.cache_hits``.

    With ``profile`` set (directly or via :func:`configure`), workers
    additionally record span profiles (engine phases, kernel aggregate
    timers, stage spans) and ship them back for the parent to fold in —
    again in cell-key order — alongside the parent's own sweep-stage
    spans.  Export with :meth:`SpanProfiler.chrome_trace` (the ``repro
    profile`` command wires this up).  Results are bit-identical with
    profiling on or off.
    """
    global _LAST_STATS
    jobs = resolve_jobs(jobs)
    cache = resolve_cache(cache)
    trace = resolve_trace(trace)
    metrics = resolve_metrics(metrics)
    retry = resolve_retry(retry)
    profile = resolve_profile(profile)
    fallback = resolve_fallback(fallback)

    if resolve_sanitize():
        # Sanitized cells carry config.sanitize=True, which flows to the
        # workers (the simulator attaches RTSan) *and* into the cache
        # key — so a sanitized pass re-validates every simulation
        # instead of replaying unsanitized cache entries, while its
        # (identical) results never shadow the normal namespace.
        cells = [
            dataclasses.replace(cell, config=cell.config.replace(sanitize=True))
            for cell in cells
        ]

    ordered = sorted(cells, key=lambda cell: cell.key)
    if len({cell.key for cell in ordered}) != len(ordered):
        raise ValueError("duplicate sweep cells (same x, policy, seed)")

    stats = SweepStats(cells_total=len(ordered), jobs=jobs)
    started = time.perf_counter()
    if trace is not None:
        trace("sweep_begin", cells=len(ordered), jobs=jobs, on_error=retry.on_error)

    results: dict[CellKey, SimulationResult] = {}
    pending: list[SweepCell] = []
    lookup_t0 = time.perf_counter()
    for cell in ordered:
        hit = (
            cache.get(cell.config, cell.seed, cell.policy)
            if cache is not None
            else None
        )
        if hit is not None:
            results[cell.key] = hit
            stats.cache_hits += 1
        else:
            pending.append(cell)
    if cache is not None:
        lookup_t1 = time.perf_counter()
        if metrics is not None:
            observe_stage(metrics, "cache_lookup", (lookup_t1 - lookup_t0) * 1000.0)
        if profile is not None:
            profile.add_span(
                "sweep.cache_lookup",
                "stage",
                lookup_t0,
                lookup_t1,
                {"cells": len(ordered), "hits": stats.cache_hits},
            )

    runner: Optional[_SweepRunner] = None
    try:
        if pending:
            runner = _SweepRunner(
                pending,
                jobs=jobs,
                cache=cache,
                trace=trace,
                metrics=metrics,
                retry=retry,
                stats=stats,
                profile=profile,
                fallback=fallback,
            )
            runner.run()
            results.update(runner.results)
    finally:
        # Even on abort, record what happened: the partial stats and the
        # failure records survive for `last_stats` / `take_failures`.
        stats.elapsed = time.perf_counter() - started
        if runner is not None:
            results.update(runner.results)
            stats.failures = sorted(
                runner.failures.values(), key=lambda failure: failure.key
            )
            _SESSION_FAILURES.extend(stats.failures)
            _SESSION_FALLBACKS.extend(stats.engine_fallbacks)
        _LAST_STATS = stats

    if metrics is not None:
        metrics.counter("sweep.cells").inc(stats.cells_total)
        metrics.counter("sweep.cells_run").inc(stats.cells_run)
        metrics.counter("sweep.cache_hits").inc(stats.cache_hits)
        metrics.gauge("sweep.jobs").set(jobs)
        for name, value in (
            ("sweep.failures", stats.failed_attempts),
            ("sweep.retries", stats.retries),
            ("sweep.timeouts", stats.timeouts),
            ("sweep.pool_rebuilds", stats.pool_rebuilds),
            ("sweep.cells_skipped", stats.cells_skipped),
            ("sweep.cache_put_errors", stats.cache_put_errors),
            ("sweep.engine_fallbacks", len(stats.engine_fallbacks)),
        ):
            if value:
                metrics.counter(name).inc(value)
    merged = {
        cell.key: results[cell.key] for cell in ordered if cell.key in results
    }
    if profile is not None:
        profile.add_span(
            "sweep.execute_cells",
            "stage",
            started,
            time.perf_counter(),
            {
                "cells": stats.cells_total,
                "run": stats.cells_run,
                "cache_hits": stats.cache_hits,
                "jobs": jobs,
            },
        )
    if trace is not None:
        pending_keys = {cell.key for cell in pending}
        for cell in ordered:
            trace(
                "sweep_cell",
                x=cell.x,
                policy=cell.policy,
                seed=cell.seed,
                cached=cell.key not in pending_keys,
                skipped=cell.key not in merged,
            )
        trace(
            "sweep_end",
            cells=stats.cells_total,
            cells_run=stats.cells_run,
            cache_hits=stats.cache_hits,
            elapsed=stats.elapsed,
            sims_per_sec=stats.sims_per_sec,
            failures=stats.failed_attempts,
            retries=stats.retries,
            skipped=stats.cells_skipped,
            pool_rebuilds=stats.pool_rebuilds,
        )
    return merged


def cells_for_sweep(
    configs: Mapping[float, SimulationConfig],
    seeds: Sequence[int],
    policies: Sequence[str],
) -> list[SweepCell]:
    """The cross product (x, policy, seed) as cells, in caller order."""
    return [
        SweepCell(x=x, policy=policy, seed=seed, config=config)
        for x, config in configs.items()
        for policy in policies
        for seed in seeds
    ]
