"""Parallel execution of sweep cells with deterministic merging.

A *cell* is the atomic unit of every paper experiment: simulate one
configuration for one seed under one policy.  Cells are independent —
workloads are regenerated deterministically from ``(config, seed)`` in
each worker, so replaying the same seed under several policies in
different processes still compares *paired* workloads, exactly as the
serial runner does.

:func:`execute_cells` fans cells out over a ``ProcessPoolExecutor``
(``jobs`` workers), consults an optional
:class:`~repro.experiments.cache.ResultCache` first, and merges results
**ordered by cell key, never by completion order** — so for the same
seeds, ``jobs=N`` output is identical to serial output, and the trace
event stream is deterministic too.  The parity tests in
``tests/experiments/test_parallel.py`` hold this as an invariant.

Module-level *execution defaults* (:func:`configure` / the
:func:`execution` context manager) let entry points like the CLI choose
``jobs``/``cache``/``trace`` once without threading parameters through
every figure function.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterator, Mapping, Optional, Sequence

from repro.config import SimulationConfig
from repro.core.policy import make_policy
from repro.core.simulator import RTDBSimulator, SimulationResult
from repro.experiments.cache import ResultCache
from repro.obs.registry import MetricsRegistry
from repro.workload.generator import generate_workload

TraceHook = Callable[..., None]
"""``callable(event_name, **fields)`` — same shape as simulator trace
hooks; :class:`repro.tracing.EventLog` and
:class:`repro.tracing.TraceCounters` both qualify."""

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"

CellKey = tuple[float, str, int]
"""(x value, policy name, seed) — the deterministic merge order."""


@dataclasses.dataclass(frozen=True)
class SweepCell:
    """One simulation to run: a config at axis point ``x`` for one
    ``(policy, seed)`` pair."""

    x: float
    policy: str
    seed: int
    config: SimulationConfig

    @property
    def key(self) -> CellKey:
        return (self.x, self.policy, self.seed)


@dataclasses.dataclass
class SweepStats:
    """Counters for one :func:`execute_cells` call."""

    cells_total: int = 0
    cells_run: int = 0
    """Cells actually simulated (cache misses)."""
    cache_hits: int = 0
    elapsed: float = 0.0
    jobs: int = 1

    @property
    def sims_per_sec(self) -> float:
        """Simulator throughput (computed cells only; 0 if none ran)."""
        if self.cells_run == 0 or self.elapsed <= 0:
            return 0.0
        return self.cells_run / self.elapsed


def simulate_cell(
    config: SimulationConfig, seed: int, policy_name: str
) -> SimulationResult:
    """Run one cell from scratch — the worker-process entry point.

    Deterministic in its arguments: the workload is generated from
    ``(config, seed)`` and the simulator draws no further randomness,
    so the same cell yields the same result in any process.
    """
    workload = generate_workload(config, seed)
    policy = make_policy(policy_name, penalty_weight=config.penalty_weight)
    return RTDBSimulator(config, workload, policy).run()


def simulate_cell_observed(
    config: SimulationConfig, seed: int, policy_name: str
) -> tuple[SimulationResult, float, dict]:
    """Run one cell with a private metrics registry attached.

    Returns ``(result, wall_ms, counter_deltas)`` where
    ``counter_deltas`` is the cell's registry snapshot — the per-cell
    delta a worker process ships back for the parent to merge.  Apart
    from wall time the deltas are deterministic in the cell (simulated
    time only), which is what makes parallel manifest counters equal
    serial ones.
    """
    workload = generate_workload(config, seed)
    policy = make_policy(policy_name, penalty_weight=config.penalty_weight)
    registry = MetricsRegistry()
    started = time.perf_counter()
    result = RTDBSimulator(config, workload, policy, metrics=registry).run()
    wall_ms = (time.perf_counter() - started) * 1000.0
    return result, wall_ms, registry.snapshot()


# ---------------------------------------------------------------------------
# Execution defaults (entry points set once; sweeps inherit)
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class ExecutionDefaults:
    """What ``jobs=None`` / ``cache=None`` / ``trace=None`` /
    ``metrics=None`` resolve to."""

    jobs: Optional[int] = None
    cache: Optional[ResultCache] = None
    trace: Optional[TraceHook] = None
    metrics: Optional[MetricsRegistry] = None


_DEFAULTS = ExecutionDefaults()

UNSET = object()
"""Sentinel distinguishing 'not passed' from an explicit ``None`` (which
means *disable* for ``cache``/``trace``/``metrics``)."""


def configure(
    jobs: object = UNSET,
    cache: object = UNSET,
    trace: object = UNSET,
    metrics: object = UNSET,
) -> None:
    """Set process-wide execution defaults (omitted fields keep theirs)."""
    if jobs is not UNSET:
        _DEFAULTS.jobs = jobs  # type: ignore[assignment]
    if cache is not UNSET:
        _DEFAULTS.cache = cache  # type: ignore[assignment]
    if trace is not UNSET:
        _DEFAULTS.trace = trace  # type: ignore[assignment]
    if metrics is not UNSET:
        _DEFAULTS.metrics = metrics  # type: ignore[assignment]


@contextlib.contextmanager
def execution(
    jobs: object = UNSET,
    cache: object = UNSET,
    trace: object = UNSET,
    metrics: object = UNSET,
) -> Iterator[None]:
    """Temporarily override execution defaults (nestable).

    Fields not passed inherit the surrounding defaults, so e.g. the CLI
    can set ``jobs``/``cache`` once and swap only ``trace``/``metrics``
    per figure.
    """
    saved = dataclasses.replace(_DEFAULTS)
    try:
        configure(jobs=jobs, cache=cache, trace=trace, metrics=metrics)
        yield
    finally:
        configure(
            jobs=saved.jobs,
            cache=saved.cache,
            trace=saved.trace,
            metrics=saved.metrics,
        )


def resolve_jobs(jobs: Optional[int]) -> int:
    """Effective worker count: explicit arg > configured default >
    ``$REPRO_JOBS`` > 1."""
    if jobs is None:
        jobs = _DEFAULTS.jobs
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        jobs = int(env) if env else 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def resolve_cache(cache: Optional[ResultCache]) -> Optional[ResultCache]:
    return cache if cache is not None else _DEFAULTS.cache


def resolve_trace(trace: Optional[TraceHook]) -> Optional[TraceHook]:
    return trace if trace is not None else _DEFAULTS.trace


def resolve_metrics(metrics: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    return metrics if metrics is not None else _DEFAULTS.metrics


_LAST_STATS = SweepStats()


def last_stats() -> SweepStats:
    """Counters of the most recent :func:`execute_cells` call."""
    return _LAST_STATS


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------

def execute_cells(
    cells: Sequence[SweepCell],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    trace: Optional[TraceHook] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> dict[CellKey, SimulationResult]:
    """Run every cell, in parallel where possible; results keyed and
    ordered by :data:`CellKey`.

    Cached cells are served from ``cache`` without simulating; computed
    cells are stored back.  With ``jobs > 1`` the pending cells go to a
    process pool, but the returned mapping (and the trace stream) is
    sorted by cell key, so output never depends on completion order.

    With ``metrics`` set (directly or via :func:`configure`), each
    computed cell runs with a private registry and ships its counter
    deltas back; the parent merges them **in cell-key order**, so the
    merged counters are identical for serial and parallel runs of the
    same cells (wall-time histograms aside).  Cached cells contribute no
    simulator counters — they were never simulated — but are tallied in
    ``sweep.cache_hits``.
    """
    global _LAST_STATS
    jobs = resolve_jobs(jobs)
    cache = resolve_cache(cache)
    trace = resolve_trace(trace)
    metrics = resolve_metrics(metrics)

    ordered = sorted(cells, key=lambda cell: cell.key)
    if len({cell.key for cell in ordered}) != len(ordered):
        raise ValueError("duplicate sweep cells (same x, policy, seed)")

    stats = SweepStats(cells_total=len(ordered), jobs=jobs)
    started = time.perf_counter()
    if trace is not None:
        trace("sweep_begin", cells=len(ordered), jobs=jobs)

    results: dict[CellKey, SimulationResult] = {}
    pending: list[SweepCell] = []
    for cell in ordered:
        hit = (
            cache.get(cell.config, cell.seed, cell.policy)
            if cache is not None
            else None
        )
        if hit is not None:
            results[cell.key] = hit
            stats.cache_hits += 1
        else:
            pending.append(cell)

    if pending:
        worker = simulate_cell_observed if metrics is not None else simulate_cell
        if jobs > 1 and len(pending) > 1:
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                futures = [
                    pool.submit(worker, cell.config, cell.seed, cell.policy)
                    for cell in pending
                ]
                computed = [future.result() for future in futures]
        else:
            computed = [
                worker(cell.config, cell.seed, cell.policy) for cell in pending
            ]
        # `pending` is in cell-key order (built from `ordered`), so the
        # metric merges below happen in a deterministic order too.
        for cell, outcome in zip(pending, computed):
            if metrics is not None:
                result, wall_ms, deltas = outcome
                metrics.merge_snapshot(deltas)
                metrics.histogram("sweep.cell_wall_ms").observe(wall_ms)
            else:
                result = outcome
            results[cell.key] = result
            stats.cells_run += 1
            if cache is not None:
                cache.put(cell.config, cell.seed, cell.policy, result)

    stats.elapsed = time.perf_counter() - started
    if metrics is not None:
        metrics.counter("sweep.cells").inc(stats.cells_total)
        metrics.counter("sweep.cells_run").inc(stats.cells_run)
        metrics.counter("sweep.cache_hits").inc(stats.cache_hits)
        metrics.gauge("sweep.jobs").set(jobs)
    merged = {cell.key: results[cell.key] for cell in ordered}
    if trace is not None:
        pending_keys = {cell.key for cell in pending}
        for cell in ordered:
            trace(
                "sweep_cell",
                x=cell.x,
                policy=cell.policy,
                seed=cell.seed,
                cached=cell.key not in pending_keys,
            )
        trace(
            "sweep_end",
            cells=stats.cells_total,
            cells_run=stats.cells_run,
            cache_hits=stats.cache_hits,
            elapsed=stats.elapsed,
            sims_per_sec=stats.sims_per_sec,
        )
    _LAST_STATS = stats
    return merged


def cells_for_sweep(
    configs: Mapping[float, SimulationConfig],
    seeds: Sequence[int],
    policies: Sequence[str],
) -> list[SweepCell]:
    """The cross product (x, policy, seed) as cells, in caller order."""
    return [
        SweepCell(x=x, policy=policy, seed=seed, config=config)
        for x, config in configs.items()
        for policy in policies
        for seed in seeds
    ]
