"""Kernel→reference self-healing fallback and quarantine bundles.

The array kernel (``core/kernel.py``) is the sweep's fast path — and
its single point of failure: a numpy edge case or encoding bug kills
the cell with nothing but a traceback.  This module makes the fast
path safe to *trust*: with a :class:`FallbackPolicy` active, a kernel
cell that dies on an unexpected exception is

1. **quarantined** — a deterministic bundle (config + seed + scenario
   hash + traceback + the tail of a traced capture re-run) is written
   under the results directory, enough to reproduce the failure
   offline with ``repro replay <bundle>``;
2. **healed** — the cell re-runs on the reference engine with
   ``sanitize=True`` (RTSan validates the paper invariants over the
   recovery run), and the sweep records an ``engine_fallback`` entry
   (manifest schema v5) instead of a failure.

Both engines are bit-identical, so a healed cell's result is *the*
result — figures from a sweep with fallbacks match an all-reference
run exactly.

Budget exceptions (:class:`~repro.sim.engine.BudgetExceeded`) never
trigger fallback: blowing a wall-clock/event/memory budget on the
kernel means blowing it worse on the (slower) reference engine, so
those stay ordinary per-cell failures with partial-progress records.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import traceback as _traceback
from pathlib import Path
from typing import Any, Optional

from repro.config import SimulationConfig
from repro.experiments import faults
from repro.experiments.cache import cache_key
from repro.sim.engine import BudgetExceeded
from repro.sim.stream import RingSink

#: Identifies a quarantine bundle document.
BUNDLE_KIND = "repro-quarantine-bundle"

#: Bundle document schema version.
BUNDLE_SCHEMA = 1


@dataclasses.dataclass(frozen=True)
class FallbackPolicy:
    """How sweeps self-heal kernel-cell failures.

    Picklable (it travels to worker processes with each cell).
    ``quarantine_dir`` is where bundles land; ``capture_tail`` bounds
    the partial trace a bundle retains (a :class:`RingSink`, so capture
    memory is O(capture_tail) no matter how long the cell ran).
    """

    quarantine_dir: str = "results/quarantine"
    capture_tail: int = 256

    def __post_init__(self) -> None:
        if self.capture_tail < 1:
            raise ValueError(
                f"capture_tail must be >= 1, got {self.capture_tail}"
            )


@dataclasses.dataclass
class CellEnvelope:
    """A guarded worker's payload: the outcome plus fallback metadata.

    ``fallback`` is ``None`` for cells that ran clean; otherwise the
    ``engine_fallback`` record destined for sweep stats and the run
    manifest (minus the ``cell`` coordinates, which the parent adds).
    """

    outcome: Any
    fallback: Optional[dict] = None


def kernel_eligible(config: SimulationConfig) -> bool:
    """Whether this cell *could* have run on the kernel engine.

    Cheap pre-filter for the healing path: reference-engine and
    sanitized cells already run the engine fallback would retry on, so
    re-running them buys nothing — their exceptions propagate as
    ordinary cell failures.
    """
    return config.engine != "reference" and not config.sanitize


def replay_kernel(
    config: SimulationConfig,
    seed: int,
    policy_name: str,
    attempt: int,
    *,
    trace: Any = None,
    max_wall_s: Optional[float] = None,
    max_memory_mb: Optional[float] = None,
):
    """Re-run one cell exactly as the failing worker attempt did.

    Fires the cell's scheduled ``kernel`` fault (and only that kind —
    crash/hang/die belong to the worker process layer, not the engine
    defect being reproduced), then simulates.  Deterministic in
    ``(config, seed, policy, attempt, active fault plan)``, which is
    what makes quarantine capture and ``repro replay`` agree
    bit-for-bit.
    """
    from repro.core.factory import make_simulator
    from repro.core.policy import make_policy
    from repro.workload.generator import generate_workload

    plan = faults.active_plan()
    if plan is not None:
        key = cache_key(config, seed, policy_name)
        if plan.decide(key, attempt) == "kernel":
            faults.inject_kernel_fault(key, attempt)
    workload = generate_workload(config, seed)
    policy = make_policy(policy_name, penalty_weight=config.penalty_weight)
    return make_simulator(
        config,
        workload,
        policy,
        trace=trace,
        max_wall_s=max_wall_s,
        max_memory_mb=max_memory_mb,
    ).run()


def run_cell_guarded(
    config: SimulationConfig,
    seed: int,
    policy_name: str,
    attempt: int,
    *,
    observed: bool,
    profiled: bool,
    max_wall_s: Optional[float],
    max_memory_mb: Optional[float],
    fallback: FallbackPolicy,
) -> CellEnvelope:
    """The guarded worker entry: simulate, healing kernel failures.

    Non-``kernel`` injected faults fire exactly as on the unguarded
    path (they model *worker* failures — the healing scope must not
    swallow them); the ``kernel`` kind fires inside the scope, standing
    in for a real engine defect.  Returns a :class:`CellEnvelope`; a
    corrupt payload passes through bare for the executor's validation
    to reject, exactly as before.
    """
    key = cache_key(config, seed, policy_name)
    plan = faults.active_plan()
    scheduled = plan.decide(key, attempt) if plan is not None else None
    if scheduled is not None and scheduled != "kernel":
        injected = faults.maybe_inject(key, attempt)
        if injected is not None:
            return CellEnvelope(injected)  # CORRUPT_PAYLOAD, wrapped
    try:
        if scheduled == "kernel":
            faults.inject_kernel_fault(key, attempt)
        return CellEnvelope(
            _simulate(
                config,
                seed,
                policy_name,
                observed=observed,
                profiled=profiled,
                max_wall_s=max_wall_s,
                max_memory_mb=max_memory_mb,
            )
        )
    except BudgetExceeded:
        # A budget blown on the fast engine is blown worse on the slow
        # one; keep the partial-progress failure record instead.
        raise
    except (KeyboardInterrupt, SystemExit, MemoryError):
        raise
    except Exception as exc:
        if not kernel_eligible(config):
            raise
        return _heal(
            config,
            seed,
            policy_name,
            attempt,
            exc,
            observed=observed,
            profiled=profiled,
            max_wall_s=max_wall_s,
            max_memory_mb=max_memory_mb,
            fallback=fallback,
        )


def _simulate(
    config: SimulationConfig,
    seed: int,
    policy_name: str,
    *,
    observed: bool,
    profiled: bool,
    max_wall_s: Optional[float],
    max_memory_mb: Optional[float],
):
    """Dispatch to the right ``simulate_cell*`` flavour (late import —
    :mod:`repro.experiments.parallel` imports this module)."""
    from repro.experiments import parallel

    if profiled:
        return parallel.simulate_cell_profiled(
            config,
            seed,
            policy_name,
            max_wall_s=max_wall_s,
            max_memory_mb=max_memory_mb,
        )
    if observed:
        return parallel.simulate_cell_observed(
            config,
            seed,
            policy_name,
            max_wall_s=max_wall_s,
            max_memory_mb=max_memory_mb,
        )
    return parallel.simulate_cell(
        config, seed, policy_name, max_wall_s=max_wall_s,
        max_memory_mb=max_memory_mb,
    )


def _heal(
    config: SimulationConfig,
    seed: int,
    policy_name: str,
    attempt: int,
    exc: Exception,
    *,
    observed: bool,
    profiled: bool,
    max_wall_s: Optional[float],
    max_memory_mb: Optional[float],
    fallback: FallbackPolicy,
) -> CellEnvelope:
    """Quarantine the failure, then re-run on the sanitized reference
    engine.  If the reference re-run *also* fails, its exception
    propagates — the defect was never kernel-specific."""
    bundle_path: Optional[str] = None
    reproduced = False
    try:
        bundle_path, reproduced = write_bundle(
            config,
            seed,
            policy_name,
            attempt,
            exc,
            max_wall_s=max_wall_s,
            max_memory_mb=max_memory_mb,
            fallback=fallback,
        )
    except Exception:
        # Quarantine is best-effort diagnostics: an unwritable results
        # dir must never turn a healable cell into a failed one.
        bundle_path = None
    healed = config.replace(engine="reference", sanitize=True)
    outcome = _simulate(
        healed,
        seed,
        policy_name,
        observed=observed,
        profiled=profiled,
        max_wall_s=max_wall_s,
        max_memory_mb=max_memory_mb,
    )
    record = {
        "exception": type(exc).__name__,
        "message": str(exc)[:300],
        "engine": "reference",
        "sanitized": True,
        "attempt": attempt,
        "bundle": bundle_path,
        "reproduced": reproduced,
    }
    return CellEnvelope(outcome, record)


# ---------------------------------------------------------------------------
# Bundles: write, load, replay
# ---------------------------------------------------------------------------

def bundle_dir_for(
    config: SimulationConfig,
    seed: int,
    policy_name: str,
    fallback: FallbackPolicy,
) -> Path:
    """Deterministic bundle location for one cell."""
    key = cache_key(config, seed, policy_name)
    return Path(fallback.quarantine_dir) / f"{policy_name}-s{seed}-{key[:12]}"


def write_bundle(
    config: SimulationConfig,
    seed: int,
    policy_name: str,
    attempt: int,
    exc: Exception,
    *,
    max_wall_s: Optional[float],
    max_memory_mb: Optional[float],
    fallback: FallbackPolicy,
) -> tuple[str, bool]:
    """Capture the failure into a quarantine bundle on disk.

    Re-runs the cell once with a bounded :class:`RingSink` attached to
    capture the trace tail leading up to the failure; ``reproduced``
    reports whether that capture re-raised the same exception (a traced
    run takes a different fused path through the kernel, so a genuine
    heisenbug may not reproduce — the flag is honest about it).
    Returns ``(bundle_dir, reproduced)``.
    """
    ring = RingSink(fallback.capture_tail)
    captured: Optional[BaseException] = None
    try:
        replay_kernel(
            config,
            seed,
            policy_name,
            attempt,
            trace=ring,
            max_wall_s=max_wall_s,
            max_memory_mb=max_memory_mb,
        )
    except Exception as capture_exc:
        captured = capture_exc
    reproduced = (
        captured is not None
        and type(captured).__name__ == type(exc).__name__
        and str(captured) == str(exc)
    )
    plan = faults.active_plan()
    doc = {
        "kind": BUNDLE_KIND,
        "schema": BUNDLE_SCHEMA,
        "cell": {"seed": seed, "policy": policy_name},
        "config": config.canonical_dict(),
        "scenario_hash": cache_key(config, seed, policy_name),
        "attempt": attempt,
        "exception": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
        "fault_spec": plan.to_spec() if plan is not None else None,
        "budgets": {
            "max_wall_s": max_wall_s,
            "max_memory_mb": max_memory_mb,
        },
        "reproduced": reproduced,
        # The capture run's own outcome is the replay reference point:
        # replay repeats the *traced capture*, which is deterministic,
        # even when the original (untraced) failure was not.
        "capture_exception": (
            type(captured).__name__ if captured is not None else None
        ),
        "capture_message": str(captured) if captured is not None else None,
        "tail_capacity": fallback.capture_tail,
        "events_seen": ring.total_seen,
        "tail_events": ring.tail(),
    }
    bundle_dir = bundle_dir_for(config, seed, policy_name, fallback)
    bundle_dir.mkdir(parents=True, exist_ok=True)
    _atomic_write_json(bundle_dir / "bundle.json", doc)
    with open(bundle_dir / "trace.jsonl", "w") as handle:
        for event in ring.tail():
            handle.write(json.dumps(event) + "\n")
    return str(bundle_dir), reproduced


def _atomic_write_json(path: Path, doc: dict) -> None:
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_bundle(path: str | Path) -> dict:
    """Read and validate a bundle (directory or ``bundle.json`` path)."""
    path = Path(path)
    if path.is_dir():
        path = path / "bundle.json"
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or doc.get("kind") != BUNDLE_KIND:
        raise ValueError(f"{path}: not a quarantine bundle")
    if doc.get("schema") != BUNDLE_SCHEMA:
        raise ValueError(
            f"{path}: bundle schema {doc.get('schema')!r}, "
            f"expected {BUNDLE_SCHEMA}"
        )
    return doc


def config_from_dict(fields: dict) -> SimulationConfig:
    """Rebuild a config from its ``canonical_dict`` form (JSON lists
    become the tuples the frozen dataclass carries)."""
    restored = {
        name: tuple(value) if isinstance(value, list) else value
        for name, value in fields.items()
    }
    return SimulationConfig(**restored)


def replay_bundle(path: str | Path) -> dict:
    """Reproduce a quarantined failure bit-for-bit from its bundle.

    Rebuilds the config, verifies the scenario hash, installs the
    bundle's recorded fault plan (restoring the caller's afterwards),
    re-runs the traced capture, and compares exception type, message,
    and the trace tail against what the bundle recorded.  Returns a
    report dict; ``report["matched"]`` is the verdict ``repro replay``
    exit-codes on.
    """
    doc = load_bundle(path)
    config = config_from_dict(doc["config"])
    seed = doc["cell"]["seed"]
    policy_name = doc["cell"]["policy"]
    scenario_hash = cache_key(config, seed, policy_name)
    if scenario_hash != doc["scenario_hash"]:
        raise ValueError(
            f"bundle scenario hash mismatch: config rebuilds to "
            f"{scenario_hash[:12]}, bundle recorded "
            f"{doc['scenario_hash'][:12]} — bundle or config code drifted"
        )
    budgets = doc.get("budgets", {})
    spec = doc.get("fault_spec")
    saved = faults.active_plan()
    ring = RingSink(doc.get("tail_capacity", 256))
    replayed: Optional[BaseException] = None
    try:
        faults.install(faults.parse_spec(spec) if spec else None)
        try:
            replay_kernel(
                config,
                seed,
                policy_name,
                doc["attempt"],
                trace=ring,
                max_wall_s=budgets.get("max_wall_s"),
                max_memory_mb=budgets.get("max_memory_mb"),
            )
        except Exception as exc:
            replayed = exc
    finally:
        faults.install(saved)
    exception = type(replayed).__name__ if replayed is not None else None
    message = str(replayed) if replayed is not None else None
    expected_exception = doc["capture_exception"]
    expected_message = doc["capture_message"]
    tail_matched = ring.tail() == doc["tail_events"]
    matched = (
        exception == expected_exception
        and message == expected_message
        and tail_matched
    )
    return {
        "bundle": str(path),
        "matched": matched,
        "tail_matched": tail_matched,
        "reproduced_at_capture": doc["reproduced"],
        "expected": {
            "exception": expected_exception,
            "message": expected_message,
            "tail_events": len(doc["tail_events"]),
        },
        "actual": {
            "exception": exception,
            "message": message,
            "tail_events": len(ring.tail()),
        },
    }
