"""Extension experiments: future-work studies as first-class artifacts.

Beyond the paper's own tables and figures, the repository reproduces the
studies its Section 6 proposes (and two from its related work).  Each
function here returns a :class:`~repro.experiments.figures.FigureResult`
so the CLI can print and export them exactly like the paper figures:

    python -m repro ext-shared-locks --csv results/
    python -m repro ext-occ --scale full

The corresponding benchmarks (``benchmarks/test_extension_*.py``) carry
the assertions; these experiments carry the data.
"""

from __future__ import annotations

from typing import Callable

from repro.config import SimulationConfig
from repro.core.policy import CCAPolicy, EDFPolicy, EDFWaitPolicy, EDFWPPolicy
from repro.core.simulator import RTDBSimulator
from repro.experiments.config import DISK_BASE, MAIN_MEMORY_BASE, ExperimentScale
from repro.experiments.figures import FigureResult, Series
from repro.experiments.runner import compare_policies
from repro.metrics.summary import summarize
from repro.mp.simulator import MultiprocessorSimulator
from repro.occ.simulator import OCCSimulator
from repro.workload.generator import generate_workload


def ext_shared_locks(scale: ExperimentScale) -> FigureResult:
    """Restarts per transaction vs read fraction (shared-lock extension)."""
    base = scale.scale_config(
        MAIN_MEMORY_BASE.replace(arrival_rate=8.0, db_size=100)
    )
    seeds = scale.seeds_for(base)
    series: dict[str, Series] = {"EDF-HP": [], "CCA": []}
    for fraction in (0.0, 0.25, 0.5, 0.75, 0.9):
        summaries = compare_policies(base.replace(read_fraction=fraction), seeds)
        for name in series:
            series[name].append(
                (fraction * 100, summaries[name].restarts_per_transaction.mean)
            )
    return FigureResult(
        figure_id="ext-shared-locks",
        title="Shared locks: restarts per transaction vs read fraction "
        "(8 tr/s, DB 100)",
        x_label="Read fraction (%)",
        y_label="Restarts per transaction",
        series=series,
        paper_expectation=(
            "Paper future work #1. Read sharing thins conflicts: restarts "
            "fall with the read fraction; CCA stays at or below EDF-HP."
        ),
    )


def ext_multiprocessor(scale: ExperimentScale) -> FigureResult:
    """Miss percent vs CPU count at 8 tr/s per CPU (CCA-MP vs EDF-HP-MP)."""
    series: dict[str, Series] = {"EDF-HP-MP": [], "CCA-MP": []}
    for n_cpus in (1, 2, 4):
        config = scale.scale_config(
            MAIN_MEMORY_BASE.replace(arrival_rate=8.0 * n_cpus, db_size=1000)
        )
        seeds = scale.seeds_for(config)[:5]
        per_policy: dict[str, list] = {"EDF-HP-MP": [], "CCA-MP": []}
        for seed in seeds:
            workload = generate_workload(config, seed)
            per_policy["EDF-HP-MP"].append(
                MultiprocessorSimulator(
                    config, workload, EDFPolicy(), n_cpus=n_cpus
                ).run()
            )
            per_policy["CCA-MP"].append(
                MultiprocessorSimulator(
                    config, workload, CCAPolicy(1.0), n_cpus=n_cpus
                ).run()
            )
        for name, results in per_policy.items():
            series[name].append((float(n_cpus), summarize(results).miss_percent.mean))
    return FigureResult(
        figure_id="ext-multiprocessor",
        title="Multiprocessor scaling: miss percent at 8 tr/s per CPU "
        "(DB 1000)",
        x_label="CPUs",
        y_label="Miss percent",
        series=series,
        paper_expectation=(
            "Paper future work: EDF-HP 'looks almost impossible to get "
            "better performance on multiprocessors'; CCA-MP's compatible "
            "co-scheduling avoids the wide-machine thrash."
        ),
    )


def ext_occ(scale: ExperimentScale) -> FigureResult:
    """Failure rate of EDF-HP / CCA / OCC under soft and firm deadlines."""
    base = scale.scale_config(MAIN_MEMORY_BASE.replace(arrival_rate=9.0))
    seeds = scale.seeds_for(base)
    series: dict[str, Series] = {"EDF-HP": [], "CCA": [], "OCC": []}
    for x, config in ((0.0, base), (1.0, base.replace(firm_deadlines=True))):
        runs: dict[str, list] = {name: [] for name in series}
        for seed in seeds:
            workload = generate_workload(config, seed)
            runs["EDF-HP"].append(RTDBSimulator(config, workload, EDFPolicy()).run())
            runs["CCA"].append(RTDBSimulator(config, workload, CCAPolicy(1.0)).run())
            runs["OCC"].append(OCCSimulator(config, workload, EDFPolicy()).run())
        for name, results in runs.items():
            failure = sum(r.miss_or_drop_percent for r in results) / len(results)
            series[name].append((x, failure))
    return FigureResult(
        figure_id="ext-occ",
        title="OCC vs locking: failure percent, soft (x=0) vs firm (x=1) "
        "deadlines (9 tr/s)",
        x_label="Deadline semantics (0=soft, 1=firm)",
        y_label="Miss-or-drop percent",
        series=series,
        paper_expectation=(
            "Related work re-test: the 1991 claim was 'OCC wins only for "
            "firm deadlines'; against an eager-wound locking baseline the "
            "two schemes track within a couple of points under both "
            "semantics, and CCA beats both."
        ),
    )


def ext_bursty(scale: ExperimentScale) -> FigureResult:
    """Miss percent under Poisson vs bursty arrivals at the same mean rate."""
    base = scale.scale_config(MAIN_MEMORY_BASE.replace(arrival_rate=7.0))
    seeds = scale.seeds_for(base)
    series: dict[str, Series] = {"EDF-HP": [], "CCA": []}
    for x, config in (
        (0.0, base),
        (1.0, base.replace(arrival_model="bursty", burst_factor=3.0)),
    ):
        summaries = compare_policies(config, seeds)
        for name in series:
            series[name].append((x, summaries[name].miss_percent.mean))
    return FigureResult(
        figure_id="ext-bursty",
        title="Bursty arrivals: miss percent, Poisson (x=0) vs 3x bursts "
        "(x=1), 7 tr/s mean",
        x_label="Arrival model (0=Poisson, 1=bursty)",
        y_label="Miss percent",
        series=series,
        paper_expectation=(
            "Load transients stress both schedulers; CCA keeps an edge "
            "through the bursts (its continuous evaluation is the paper's "
            "fourth claimed property)."
        ),
    )


def ext_disk_scheduling(scale: ExperimentScale) -> FigureResult:
    """Mean lateness under FCFS vs priority disk queues (congested disk)."""
    base = scale.scale_config(
        DISK_BASE.replace(arrival_rate=5.0, disk_access_prob=0.3)
    )
    seeds = scale.seeds_for(base)
    series: dict[str, Series] = {"EDF-HP": [], "CCA": []}
    for x, config in (
        (0.0, base),
        (1.0, base.replace(disk_scheduling="priority")),
    ):
        summaries = compare_policies(config, seeds)
        for name in series:
            series[name].append((x, summaries[name].mean_lateness.mean))
    return FigureResult(
        figure_id="ext-disk-sched",
        title="Disk queue discipline: mean lateness, FCFS (x=0) vs "
        "priority (x=1), 5 tr/s with 30% IO",
        x_label="Disk discipline (0=FCFS, 1=priority)",
        y_label="Mean lateness (ms)",
        series=series,
        paper_expectation=(
            "Real-time IO scheduling (cited in §3.3.2) complements CPU "
            "scheduling; urgency-ordered IO should not hurt either policy."
        ),
    )


def ext_slack(scale: ExperimentScale) -> FigureResult:
    """Sensitivity to deadline tightness (the Min/Max-slack parameters).

    The paper fixes slack at U[20 %, 800 %]; this sweep scales that
    window down to a quarter (much tighter deadlines) and up to double,
    at fixed load.  Tight deadlines leave EDF-HP no room to recover from
    a wasted wound, which is where cost-consciousness pays most.
    """
    base = scale.scale_config(MAIN_MEMORY_BASE.replace(arrival_rate=8.0))
    seeds = scale.seeds_for(base)
    series: dict[str, Series] = {"EDF-HP": [], "CCA": []}
    for factor in (0.25, 0.5, 1.0, 1.5, 2.0):
        config = base.replace(
            min_slack=base.min_slack * factor,
            max_slack=base.max_slack * factor,
        )
        summaries = compare_policies(config, seeds)
        for name in series:
            series[name].append((factor, summaries[name].miss_percent.mean))
    return FigureResult(
        figure_id="ext-slack",
        title="Deadline tightness: miss percent vs slack-window scale "
        "(8 tr/s; 1.0 = the paper's U[20%, 800%])",
        x_label="Slack window scale",
        y_label="Miss percent",
        series=series,
        paper_expectation=(
            "Misses fall as deadlines loosen; CCA's edge is largest when "
            "deadlines are tight and a wasted wound cannot be absorbed."
        ),
    )


def ext_abort_wait_spectrum(scale: ExperimentScale) -> FigureResult:
    """Miss percent across the abort/wait spectrum vs arrival rate.

    The paper frames EDF-HP and the wait-based protocols as the two
    extremes CCA interpolates between (Sections 3.2, 6).  This sweep
    runs all four — EDF-HP (abort), EDF-WP (wait + priority
    inheritance), EDF-Wait (CCA's w→∞ limit) and CCA — over the loaded
    half of the arrival-rate axis.
    """
    base = scale.scale_config(MAIN_MEMORY_BASE)
    seeds = scale.seeds_for(base)
    factories = {
        "EDF-HP": EDFPolicy,
        "EDF-WP": EDFWPPolicy,
        "EDF-Wait": EDFWaitPolicy,
        "CCA": lambda: CCAPolicy(1.0),
    }
    series: dict[str, Series] = {name: [] for name in factories}
    for rate in (6.0, 8.0, 10.0):
        config = base.replace(arrival_rate=rate)
        runs: dict[str, list] = {name: [] for name in factories}
        for seed in seeds:
            workload = generate_workload(config, seed)
            for name, factory in factories.items():
                runs[name].append(
                    RTDBSimulator(config, workload, factory()).run()
                )
        for name, results in runs.items():
            series[name].append((rate, summarize(results).miss_percent.mean))
    return FigureResult(
        figure_id="ext-wp",
        title="The abort/wait spectrum: miss percent vs arrival rate",
        x_label="Arrival Rate (trs/sec)",
        y_label="Miss percent",
        series=series,
        paper_expectation=(
            "EDF-HP aborts the most; EDF-WP waits instead and suffers "
            "broken deadlocks; CCA interpolates and wins on misses under "
            "load."
        ),
    )


#: Registry merged into the CLI next to the paper figures.
EXTENSION_EXPERIMENTS: dict[
    str, Callable[[ExperimentScale], FigureResult]
] = {
    "ext-shared-locks": ext_shared_locks,
    "ext-multiprocessor": ext_multiprocessor,
    "ext-occ": ext_occ,
    "ext-bursty": ext_bursty,
    "ext-disk-sched": ext_disk_scheduling,
    "ext-slack": ext_slack,
    "ext-wp": ext_abort_wait_spectrum,
}
