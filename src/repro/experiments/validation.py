"""Reproduction self-check: verify every figure's paper shape.

``python -m repro validate`` runs all sweeps at the chosen scale and
checks, per figure, the qualitative claims the paper makes (who wins,
where the curve peaks, what stays flat).  The same predicates guard the
test suite; this module packages them as a user-facing report so a
fresh install can confirm the reproduction in one command.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping, Sequence

from repro.experiments.config import ExperimentScale
from repro.experiments.figures import (
    FigureResult,
    fig4a,
    fig4b,
    fig4c,
    fig4d,
    fig4e,
    fig4f,
    fig5a,
    fig5b,
    fig5c,
    fig5d,
    fig5e,
    fig5f,
)


@dataclasses.dataclass(frozen=True)
class CheckResult:
    """One verified (or refuted) paper claim."""

    figure_id: str
    claim: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"[{mark}] {self.figure_id}: {self.claim}{suffix}"


def _series(result: FigureResult, name: str) -> dict[float, float]:
    return dict(result.series[name])


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values)


def _check(
    figure_id: str, claim: str, predicate: Callable[[], tuple[bool, str]]
) -> CheckResult:
    passed, detail = predicate()
    return CheckResult(figure_id=figure_id, claim=claim, passed=passed, detail=detail)


def _dominance(
    result: FigureResult, upper: str = "EDF-HP", lower: str = "CCA"
) -> tuple[bool, str]:
    upper_series = _series(result, upper)
    lower_series = _series(result, lower)
    upper_mean = _mean(upper_series.values())
    lower_mean = _mean(lower_series.values())
    return (
        lower_mean <= upper_mean,
        f"mean {lower}={lower_mean:.2f} vs {upper}={upper_mean:.2f}",
    )


def _positive_under_load(
    result: FigureResult, series_name: str, threshold: float
) -> tuple[bool, str]:
    points = _series(result, series_name)
    heavy = [x for x in points if x >= threshold]
    value = _mean(points[x] for x in heavy)
    return value > 0.0, f"mean improvement at load: {value:.1f}%"


def _plateau(points: Mapping[float, float], weights: Sequence[float]) -> tuple[bool, str]:
    values = [points[w] for w in weights]
    spread = max(values) - min(values)
    return spread <= 10.0, f"plateau spread {spread:.2f} points"


def validate_all(scale: ExperimentScale) -> list[CheckResult]:
    """Run every figure sweep and evaluate its paper claims."""
    checks: list[CheckResult] = []

    a = fig4a(scale)
    checks.append(_check("fig4a", "CCA at or below EDF-HP (miss %)",
                         lambda: _dominance(a)))
    checks.append(_check(
        "fig4a",
        "miss percent rises with load",
        lambda: (
            _mean(_series(a, "EDF-HP")[x] for x in (8.0, 9.0, 10.0))
            > _mean(_series(a, "EDF-HP")[x] for x in (1.0, 2.0, 3.0)),
            "",
        ),
    ))

    b = fig4b(scale)
    checks.append(_check("fig4b", "positive miss improvement under load",
                         lambda: _positive_under_load(b, "Miss Percent", 6.0)))
    checks.append(_check("fig4b", "positive lateness improvement under load",
                         lambda: _positive_under_load(b, "Mean Lateness", 6.0)))

    c = fig4c(scale)

    def restart_peak() -> tuple[bool, str]:
        edf = _series(c, "EDF-HP")
        peak = max(edf, key=edf.get)
        declines = edf[10.0] < edf[peak]
        return (
            5.0 <= peak <= 9.0 and declines,
            f"peak at {peak:g} tr/s, value {edf[peak]:.3f}",
        )

    checks.append(_check(
        "fig4c", "restarts peak near 8 tr/s then decline", restart_peak
    ))
    checks.append(_check("fig4c", "CCA restarts below EDF-HP",
                         lambda: _dominance(c)))

    d = fig4d(scale)
    checks.append(_check("fig4d", "CCA at or below EDF-HP (high variance)",
                         lambda: _dominance(d)))

    e = fig4e(scale)
    checks.append(_check("fig4e", "positive improvement (high variance)",
                         lambda: _positive_under_load(e, "Mean Lateness", 1.0)))

    f = fig4f(scale)

    def contention_relief() -> tuple[bool, str]:
        edf = _series(f, "EDF-HP")
        cca = _series(f, "CCA")
        return (
            edf[100.0] > edf[1000.0] and cca[100.0] <= edf[100.0],
            f"EDF-HP {edf[100.0]:.1f}->{edf[1000.0]:.1f} over 100..1000",
        )

    checks.append(_check(
        "fig4f", "contention falls with DB size; CCA below EDF-HP",
        contention_relief,
    ))

    a5 = fig5a(scale)
    for name in a5.series:
        points = dict(a5.series[name])
        checks.append(_check(
            "fig5a",
            f"penalty-weight plateau at {name}",
            lambda points=points: _plateau(
                points, (1.0, 2.0, 5.0, 10.0, 15.0, 20.0)
            ),
        ))

    b5 = fig5b(scale)
    checks.append(_check("fig5b", "CCA at or below EDF-HP (disk miss %)",
                         lambda: _dominance(b5)))

    c5 = fig5c(scale)

    def monotone_disk_restarts() -> tuple[bool, str]:
        edf = _series(c5, "EDF-HP")
        cca = _series(c5, "CCA")
        light = _mean(edf[x] for x in (1.0, 2.0, 3.0))
        heavy = _mean(edf[x] for x in (5.0, 6.0, 7.0))
        cca_heavy = _mean(cca[x] for x in (5.0, 6.0, 7.0))
        return (
            heavy > 2.0 * light and cca_heavy < heavy,
            f"EDF-HP {light:.2f}->{heavy:.2f}, CCA stays {cca_heavy:.2f}",
        )

    checks.append(_check(
        "fig5c",
        "EDF-HP disk restarts grow monotonically; CCA stays flat",
        monotone_disk_restarts,
    ))

    d5 = fig5d(scale)
    checks.append(_check("fig5d", "positive disk improvement under load",
                         lambda: _positive_under_load(d5, "Mean Lateness", 4.0)))

    e5 = fig5e(scale)
    checks.append(_check("fig5e", "CCA at or below EDF-HP across DB sizes",
                         lambda: _dominance(e5)))

    f5 = fig5f(scale)
    checks.append(_check(
        "fig5f",
        "penalty-weight plateau (disk)",
        lambda: _plateau(dict(f5.series["4 TPS"]), (1.0, 2.0, 5.0, 10.0, 15.0, 20.0)),
    ))

    return checks


def render_report(checks: Sequence[CheckResult]) -> str:
    """Human-readable validation report."""
    lines = ["Reproduction self-check", "=" * 23]
    lines.extend(str(check) for check in checks)
    n_passed = sum(1 for check in checks if check.passed)
    lines.append("-" * 23)
    lines.append(f"{n_passed}/{len(checks)} claims verified")
    return "\n".join(lines)
