"""Base parameter sets (paper Tables 1 and 2) and run scaling.

``MAIN_MEMORY_BASE`` is Table 1; ``DISK_BASE`` is Table 2.  The paper
averages 10 seeds x 1000 transactions (main memory) and 30 seeds x 300
transactions (disk); that is the ``full`` scale.  Because full-scale
sweeps take minutes, the harness also offers ``default`` (a faithful but
lighter sampling) and ``quick`` (CI-sized) scales, selected with the
``REPRO_SCALE`` environment variable or per call.

The base database size is the tables' literal 30 items: with ~20 updates
per transaction on a 30-item database essentially every pair of
transactions conflicts, which is the deliberately extreme data-contention
regime in which the paper's improvement magnitudes (up to ~30 %/~20 % on
main memory, ~95 %/~40 % on disk) reproduce; Figures 4f and 5e then relax
contention by sweeping the size up to 1000/600.  See DESIGN.md §6.
"""

from __future__ import annotations

import dataclasses
import os

from repro.config import SimulationConfig

#: Table 1 — base parameters, main memory resident database.
MAIN_MEMORY_BASE = SimulationConfig(
    n_transaction_types=50,
    updates_mean=20.0,
    updates_std=10.0,
    compute_per_update=4.0,
    db_size=30,
    min_slack=0.2,
    max_slack=8.0,
    abort_cost=4.0,
    penalty_weight=1.0,
    disk_resident=False,
    n_transactions=1000,
    arrival_rate=5.0,
)

#: Table 2 — base parameters, disk resident database.
DISK_BASE = MAIN_MEMORY_BASE.replace(
    disk_resident=True,
    abort_cost=5.0,
    disk_access_time=25.0,
    disk_access_prob=0.1,
    n_transactions=300,
)

#: The paper's seed counts.
MAIN_MEMORY_SEEDS: tuple[int, ...] = tuple(range(1, 11))
DISK_SEEDS: tuple[int, ...] = tuple(range(1, 31))


@dataclasses.dataclass(frozen=True)
class ExperimentScale:
    """How big to run an experiment.

    ``transactions_factor`` scales each run's transaction count and
    ``n_seeds_*`` the seed lists; ``full`` reproduces the paper exactly.
    """

    name: str
    n_seeds_main_memory: int
    n_seeds_disk: int
    transactions_factor: float

    @classmethod
    def full(cls) -> "ExperimentScale":
        return cls("full", 10, 30, 1.0)

    @classmethod
    def default(cls) -> "ExperimentScale":
        return cls("default", 5, 10, 0.5)

    @classmethod
    def quick(cls) -> "ExperimentScale":
        return cls("quick", 3, 4, 0.25)

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        """Scale named by ``REPRO_SCALE`` (default: ``default``).

        ``REPRO_FULL=1`` is accepted as an alias for
        ``REPRO_SCALE=full``.
        """
        if os.environ.get("REPRO_FULL") == "1":
            return cls.full()
        name = os.environ.get("REPRO_SCALE", "default").strip().lower()
        factories = {
            "full": cls.full,
            "default": cls.default,
            "quick": cls.quick,
        }
        if name not in factories:
            raise ValueError(
                f"REPRO_SCALE must be one of {sorted(factories)}, got {name!r}"
            )
        return factories[name]()

    def seeds_for(self, config: SimulationConfig) -> tuple[int, ...]:
        if config.disk_resident:
            return DISK_SEEDS[: self.n_seeds_disk]
        return MAIN_MEMORY_SEEDS[: self.n_seeds_main_memory]

    def scale_config(self, config: SimulationConfig) -> SimulationConfig:
        """Shrink a run's transaction count for sub-full scales."""
        n = max(50, int(round(config.n_transactions * self.transactions_factor)))
        return config.replace(n_transactions=n)
