"""One experiment per paper table/figure.

Every function takes an :class:`~repro.experiments.config.ExperimentScale`
and returns a :class:`FigureResult` whose series carry the same x/y data
the paper plots.  Figures that share a sweep (4a/4b/4c share the
main-memory arrival-rate sweep; 5b/5c/5d the disk one) reuse a per-scale
cache so ``python -m repro all`` does each sweep once.

The expected *shapes* (not absolute values — our substrate is a re-built
simulator, not the authors' SIMPACK binary) are recorded in each result's
``paper_expectation`` and checked by ``tests/experiments/``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping, Optional, Sequence

from repro.config import SimulationConfig
from repro.core.policy import make_policy
from repro.experiments import parallel
from repro.experiments.cache import ResultCache
from repro.experiments.config import DISK_BASE, MAIN_MEMORY_BASE, ExperimentScale
from repro.experiments.parallel import SweepCell, cells_for_sweep
from repro.experiments.runner import compare_policies, sweep
from repro.metrics.comparison import improvement_percent
from repro.metrics.summary import RunSummary
from repro.obs.registry import MetricsRegistry

Series = list[tuple[float, float]]


@dataclasses.dataclass(frozen=True)
class FigureResult:
    """The data behind one reproduced table or figure."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: dict[str, Series]
    paper_expectation: str = ""
    notes: str = ""


# ---------------------------------------------------------------------------
# Shared sweeps, cached per scale
# ---------------------------------------------------------------------------

_SWEEP_CACHE: dict[tuple[str, str], dict[float, dict[str, RunSummary]]] = {}

MM_ARRIVAL_RATES = tuple(float(rate) for rate in range(1, 11))
DISK_ARRIVAL_RATES = tuple(float(rate) for rate in range(1, 8))
HIGH_VARIANCE_RATES = tuple(round(0.2 * step, 1) for step in range(1, 10))
PENALTY_WEIGHTS = (0.0, 1.0, 2.0, 5.0, 10.0, 15.0, 20.0)
MM_DB_SIZES = tuple(range(100, 1001, 100))
DISK_DB_SIZES = tuple(range(100, 601, 100))


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """A declarative description of one paper sweep.

    Everything an experiment needs — and everything the observability
    layer needs to *enumerate* the experiment without running it:
    :meth:`cells` yields the exact :class:`SweepCell` cross product the
    executor will run, which is what ``repro trace`` uses to pick a cell
    and what run manifests hash to fingerprint a figure.
    """

    key: str
    """Memo-cache key; unique per distinct (base, axis, vary) triple."""
    base: SimulationConfig
    axis: tuple[float, ...]
    vary: Callable[[SimulationConfig, float], SimulationConfig]
    policies: tuple[str, ...] = ("EDF-HP", "CCA")

    def configs(self, scale: ExperimentScale) -> dict[float, SimulationConfig]:
        """x-axis value -> scaled config, in axis order."""
        scaled = scale.scale_config(self.base)
        return {x: self.vary(scaled, x) for x in self.axis}

    def seeds(self, scale: ExperimentScale) -> tuple[int, ...]:
        return tuple(scale.seeds_for(self.base))

    def canonical_policies(self) -> tuple[str, ...]:
        """Policy names in their canonical spelling (cache addressing)."""
        return tuple(
            make_policy(name, penalty_weight=1.0).name for name in self.policies
        )

    def cells(self, scale: ExperimentScale) -> list[SweepCell]:
        """Every (x, policy, seed) cell this sweep will execute."""
        return cells_for_sweep(
            self.configs(scale), self.seeds(scale), self.canonical_policies()
        )

    def run(self, scale: ExperimentScale) -> dict[float, dict[str, RunSummary]]:
        """Execute (or recall from the in-process memo) this sweep."""
        cache_key = (self.key, scale.name)
        if cache_key not in _SWEEP_CACHE:
            _SWEEP_CACHE[cache_key] = sweep(
                self.configs(scale), self.seeds(scale), self.policies
            )
        return _SWEEP_CACHE[cache_key]


def clear_cache() -> None:
    """Forget cached sweeps (used by tests)."""
    _SWEEP_CACHE.clear()


MM_RATE_SWEEP = SweepSpec(
    key="mm-rate",
    base=MAIN_MEMORY_BASE,
    axis=MM_ARRIVAL_RATES,
    vary=lambda cfg, rate: cfg.replace(arrival_rate=rate),
)

DISK_RATE_SWEEP = SweepSpec(
    key="disk-rate",
    base=DISK_BASE,
    axis=DISK_ARRIVAL_RATES,
    vary=lambda cfg, rate: cfg.replace(arrival_rate=rate),
)

HIGH_VARIANCE_SWEEP = SweepSpec(
    key="mm-high-variance",
    base=MAIN_MEMORY_BASE.replace(update_time_classes=(0.4, 4.0, 40.0)),
    axis=HIGH_VARIANCE_RATES,
    vary=lambda cfg, rate: cfg.replace(arrival_rate=rate),
)

MM_DBSIZE_SWEEP = SweepSpec(
    key="mm-dbsize",
    base=MAIN_MEMORY_BASE.replace(arrival_rate=10.0),
    axis=tuple(float(size) for size in MM_DB_SIZES),
    vary=lambda cfg, size: cfg.replace(db_size=int(size)),
)

DISK_DBSIZE_SWEEP = SweepSpec(
    key="disk-dbsize",
    base=DISK_BASE.replace(arrival_rate=4.0),
    axis=tuple(float(size) for size in DISK_DB_SIZES),
    vary=lambda cfg, size: cfg.replace(db_size=int(size)),
)

MM_WEIGHT_SWEEPS: dict[float, SweepSpec] = {
    rate: SweepSpec(
        key=f"mm-weight-{rate:g}",
        base=MAIN_MEMORY_BASE.replace(arrival_rate=rate),
        axis=PENALTY_WEIGHTS,
        vary=lambda cfg, weight: cfg.replace(penalty_weight=weight),
        policies=("CCA",),
    )
    for rate in (5.0, 8.0)
}

DISK_WEIGHT_SWEEP = SweepSpec(
    key="disk-weight",
    base=DISK_BASE.replace(arrival_rate=4.0),
    axis=PENALTY_WEIGHTS,
    vary=lambda cfg, weight: cfg.replace(penalty_weight=weight),
    policies=("CCA",),
)


def _improvement_series(
    swept: Mapping[float, Mapping[str, RunSummary]],
) -> dict[str, Series]:
    miss: Series = []
    lateness: Series = []
    for x in sorted(swept):
        edf = swept[x]["EDF-HP"]
        cca = swept[x]["CCA"]
        miss.append(
            (x, improvement_percent(edf.miss_percent.mean, cca.miss_percent.mean))
        )
        lateness.append(
            (x, improvement_percent(edf.mean_lateness.mean, cca.mean_lateness.mean))
        )
    return {"Miss Percent": miss, "Mean Lateness": lateness}


def _metric_series(
    swept: Mapping[float, Mapping[str, RunSummary]],
    metric: str,
) -> dict[str, Series]:
    out: dict[str, Series] = {}
    for x in sorted(swept):
        for policy, summary in swept[x].items():
            value = getattr(summary, metric).mean
            out.setdefault(policy, []).append((x, value))
    return out


# ---------------------------------------------------------------------------
# Tables 1 and 2
# ---------------------------------------------------------------------------

def table1(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Table 1: base parameters, main memory resident database."""
    cfg = MAIN_MEMORY_BASE
    notes = (
        f"Transaction types: {cfg.n_transaction_types}; "
        f"updates/transaction ~ N({cfg.updates_mean:g}, {cfg.updates_std:g}); "
        f"computation/update: {cfg.compute_per_update:g} ms; "
        f"database size: {cfg.db_size} (the table's literal value — a "
        f"deliberately extreme-contention hot set; see DESIGN.md §6); "
        f"slack: {cfg.min_slack*100:g}%..{cfg.max_slack*100:g}%; "
        f"abort cost: {cfg.abort_cost:g} ms; "
        f"penalty weight: {cfg.penalty_weight:g}. "
        f"Capacity (no aborts): 1000 / ({cfg.updates_mean:g} x "
        f"{cfg.compute_per_update:g}) = 12.5 tr/s."
    )
    return FigureResult(
        figure_id="table1",
        title="Table 1: base parameters (main memory)",
        x_label="",
        y_label="",
        series={},
        notes=notes,
    )


def table2(scale: Optional[ExperimentScale] = None) -> FigureResult:
    """Table 2: base parameters, disk resident database."""
    cfg = DISK_BASE
    notes = (
        f"As Table 1, plus: abort cost {cfg.abort_cost:g} ms; "
        f"disk access time {cfg.disk_access_time:g} ms; "
        f"disk access probability {cfg.disk_access_prob:g}. "
        f"Disk utilization at capacity: 12.5 x 2 x 25 / 1000 = 62.5%."
    )
    return FigureResult(
        figure_id="table2",
        title="Table 2: base parameters (disk resident)",
        x_label="",
        y_label="",
        series={},
        notes=notes,
    )


# ---------------------------------------------------------------------------
# Figure 4 — main memory database
# ---------------------------------------------------------------------------

def fig4a(scale: ExperimentScale) -> FigureResult:
    """Figure 4a: miss percent of EDF-HP and CCA vs arrival rate."""
    swept = MM_RATE_SWEEP.run(scale)
    return FigureResult(
        figure_id="fig4a",
        title="Miss percent of EDF, CCA (base parameters)",
        x_label="Arrival Rate (trs/sec)",
        y_label="Miss percent",
        series=_metric_series(swept, "miss_percent"),
        paper_expectation=(
            "Both curves rise with load; CCA at or below EDF-HP throughout, "
            "with the gap widening as the restart rate grows."
        ),
    )


def fig4b(scale: ExperimentScale) -> FigureResult:
    """Figure 4b: improvement of CCA over EDF-HP (base parameters)."""
    swept = MM_RATE_SWEEP.run(scale)
    return FigureResult(
        figure_id="fig4b",
        title="Improvement of CCA over EDF-HP (base parameters)",
        x_label="Arrival Rate (trs/sec)",
        y_label="Improvement (%)",
        series=_improvement_series(swept),
        paper_expectation=(
            "Up to ~30% mean-lateness and ~20% miss-percent improvement, "
            "tracking the shape of the restart curve (fig4c)."
        ),
    )


def fig4c(scale: ExperimentScale) -> FigureResult:
    """Figure 4c: restarts per transaction vs arrival rate."""
    swept = MM_RATE_SWEEP.run(scale)
    return FigureResult(
        figure_id="fig4c",
        title="Restarts per transaction (base parameters)",
        x_label="Arrival Rate (trs/sec)",
        y_label="Restarts per transaction",
        series=_metric_series(swept, "restarts_per_transaction"),
        paper_expectation=(
            "Restarts climb steeply to a peak (paper: around 8 tr/s), then "
            "decline sharply; CCA stays below EDF-HP before the peak."
        ),
    )


def fig4d(scale: ExperimentScale) -> FigureResult:
    """Figure 4d: miss percent with high-variance update times."""
    swept = HIGH_VARIANCE_SWEEP.run(scale)
    return FigureResult(
        figure_id="fig4d",
        title="Miss percent, high variance (update time classes 0.4/4/40 ms)",
        x_label="Arrival Rate (trs/sec)",
        y_label="Miss percent",
        series=_metric_series(swept, "miss_percent"),
        paper_expectation=(
            "With execution times spanning 4..1200 ms (capacity ~3.37 tr/s), "
            "preemption chances grow; CCA still at or below EDF-HP."
        ),
    )


def fig4e(scale: ExperimentScale) -> FigureResult:
    """Figure 4e: improvement of CCA, high-variance update times."""
    swept = HIGH_VARIANCE_SWEEP.run(scale)
    return FigureResult(
        figure_id="fig4e",
        title="Improvement of CCA over EDF-HP (high variance)",
        x_label="Arrival Rate (trs/sec)",
        y_label="Improvement (%)",
        series=_improvement_series(swept),
        paper_expectation=(
            "Slightly larger improvements than the base-parameter case "
            "(more preemption opportunities)."
        ),
    )


def fig4f(scale: ExperimentScale) -> FigureResult:
    """Figure 4f: effect of database size at arrival rate 10."""
    swept = MM_DBSIZE_SWEEP.run(scale)
    return FigureResult(
        figure_id="fig4f",
        title="Miss percent vs DB size (base parameters, arrival rate 10)",
        x_label="DB size",
        y_label="Miss percent",
        series=_metric_series(swept, "miss_percent"),
        paper_expectation=(
            "Smaller databases mean heavier data contention; CCA's advantage "
            "is largest at small DB sizes and both curves flatten as "
            "contention vanishes."
        ),
    )


# ---------------------------------------------------------------------------
# Figure 5 — penalty weight (main memory) and disk resident database
# ---------------------------------------------------------------------------

def fig5a(scale: ExperimentScale) -> FigureResult:
    """Figure 5a: effect of penalty weight (main memory, 5 and 8 TPS)."""
    series: dict[str, Series] = {}
    for rate, spec in sorted(MM_WEIGHT_SWEEPS.items()):
        swept = spec.run(scale)
        series[f"{rate:g} TPS"] = [
            (w, swept[w]["CCA"].miss_percent.mean) for w in sorted(swept)
        ]
    return FigureResult(
        figure_id="fig5a",
        title="Effect of penalty-weight (main memory, base parameters)",
        x_label="Penalty-weight",
        y_label="Miss percent",
        series=series,
        paper_expectation=(
            "Miss percent is insensitive to the penalty weight over a wide "
            "range (w >= 1); w = 0 (EDF-HP behaviour) is the worst point "
            "under load."
        ),
    )


def fig5b(scale: ExperimentScale) -> FigureResult:
    """Figure 5b: miss percent of EDF-HP and CCA (disk resident)."""
    swept = DISK_RATE_SWEEP.run(scale)
    return FigureResult(
        figure_id="fig5b",
        title="Miss percent of EDF, CCA (disk resident, base parameters)",
        x_label="Arrival Rate (trs/sec)",
        y_label="Miss percent",
        series=_metric_series(swept, "miss_percent"),
        paper_expectation="CCA at or below EDF-HP across 1..7 tr/s.",
    )


def fig5c(scale: ExperimentScale) -> FigureResult:
    """Figure 5c: restarts per transaction (disk resident)."""
    swept = DISK_RATE_SWEEP.run(scale)
    return FigureResult(
        figure_id="fig5c",
        title="Restarts per transaction (disk resident, base parameters)",
        x_label="Arrival Rate (trs/sec)",
        y_label="Restarts per transaction",
        series=_metric_series(swept, "restarts_per_transaction"),
        paper_expectation=(
            "EDF-HP restarts rise monotonically with arrival rate (wounded "
            "noncontributing executions during IO waits); CCA stays low and "
            "flat, as in the main-memory case."
        ),
    )


def fig5d(scale: ExperimentScale) -> FigureResult:
    """Figure 5d: improvement of CCA over EDF-HP (disk resident)."""
    swept = DISK_RATE_SWEEP.run(scale)
    return FigureResult(
        figure_id="fig5d",
        title="Improvement of CCA over EDF-HP (disk resident)",
        x_label="Arrival Rate (trs/sec)",
        y_label="Improvement (%)",
        series=_improvement_series(swept),
        paper_expectation=(
            "Up to ~95% mean-lateness and ~40% miss-percent improvement — "
            "larger than main memory because CCA also avoids "
            "noncontributing executions."
        ),
    )


def fig5e(scale: ExperimentScale) -> FigureResult:
    """Figure 5e: effect of database size (disk resident, rate 4)."""
    swept = DISK_DBSIZE_SWEEP.run(scale)
    return FigureResult(
        figure_id="fig5e",
        title="Miss percent vs DB size (disk resident, arrival rate 4)",
        x_label="DB size",
        y_label="Miss percent",
        series=_metric_series(swept, "miss_percent"),
        paper_expectation=(
            "CCA's advantage grows as the database shrinks (heavier data "
            "contention), mirroring the main-memory result."
        ),
    )


def fig5f(scale: ExperimentScale) -> FigureResult:
    """Figure 5f: effect of penalty weight (disk resident, 4 TPS)."""
    swept = DISK_WEIGHT_SWEEP.run(scale)
    series = {
        "4 TPS": [(w, swept[w]["CCA"].miss_percent.mean) for w in sorted(swept)]
    }
    return FigureResult(
        figure_id="fig5f",
        title="Effect of penalty-weight (disk resident, base parameters)",
        x_label="Penalty-weight",
        y_label="Miss percent",
        series=series,
        paper_expectation=(
            "Performance insensitive to the penalty weight over a wide range."
        ),
    )


#: Registry: experiment id -> callable(scale) -> FigureResult.
ALL_EXPERIMENTS: dict[str, Callable[[ExperimentScale], FigureResult]] = {
    "table1": table1,
    "table2": table2,
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig4c": fig4c,
    "fig4d": fig4d,
    "fig4e": fig4e,
    "fig4f": fig4f,
    "fig5a": fig5a,
    "fig5b": fig5b,
    "fig5c": fig5c,
    "fig5d": fig5d,
    "fig5e": fig5e,
    "fig5f": fig5f,
}


#: Registry: experiment id -> the sweeps it runs, in execution order.
#: Tables carry no sweeps; fig5a runs one weight sweep per arrival rate.
#: This is what lets observability tooling enumerate an experiment's
#: cells (``repro trace``, run manifests) without executing it.
FIGURE_SWEEPS: dict[str, tuple[SweepSpec, ...]] = {
    "table1": (),
    "table2": (),
    "fig4a": (MM_RATE_SWEEP,),
    "fig4b": (MM_RATE_SWEEP,),
    "fig4c": (MM_RATE_SWEEP,),
    "fig4d": (HIGH_VARIANCE_SWEEP,),
    "fig4e": (HIGH_VARIANCE_SWEEP,),
    "fig4f": (MM_DBSIZE_SWEEP,),
    "fig5a": tuple(spec for _, spec in sorted(MM_WEIGHT_SWEEPS.items())),
    "fig5b": (DISK_RATE_SWEEP,),
    "fig5c": (DISK_RATE_SWEEP,),
    "fig5d": (DISK_RATE_SWEEP,),
    "fig5e": (DISK_DBSIZE_SWEEP,),
    "fig5f": (DISK_WEIGHT_SWEEP,),
}

assert set(FIGURE_SWEEPS) == set(ALL_EXPERIMENTS)


def experiment_cells(figure_id: str, scale: ExperimentScale) -> list[SweepCell]:
    """Every cell the experiment would execute, across all its sweeps."""
    try:
        specs = FIGURE_SWEEPS[figure_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {figure_id!r}; known: {sorted(FIGURE_SWEEPS)}"
        ) from None
    return [cell for spec in specs for cell in spec.cells(scale)]


def run_experiment(
    figure_id: str,
    scale: ExperimentScale,
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    trace: Optional[parallel.TraceHook] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> FigureResult:
    """Run one experiment by its paper id (e.g. ``"fig4a"``).

    ``jobs``/``cache``/``trace``/``metrics`` (when given) override the
    execution defaults for the duration of this experiment, so its
    sweeps fan out over worker processes, reuse the on-disk result
    cache, and feed the metrics registry.  Note the in-process memo
    above still short-circuits repeated sweeps within a session;
    :func:`clear_cache` resets it.
    """
    try:
        experiment = ALL_EXPERIMENTS[figure_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {figure_id!r}; known: {sorted(ALL_EXPERIMENTS)}"
        ) from None
    with parallel.execution(
        jobs=jobs if jobs is not None else parallel.UNSET,
        cache=cache if cache is not None else parallel.UNSET,
        trace=trace if trace is not None else parallel.UNSET,
        metrics=metrics if metrics is not None else parallel.UNSET,
    ):
        return experiment(scale)
