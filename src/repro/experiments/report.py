"""Rendering experiment results: ASCII tables and CSV export.

The paper presents line plots; a terminal harness prints the underlying
series as aligned columns (one row per x value, one column per series)
so the reader can compare the same numbers.  CSV export feeds external
plotting.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.experiments.figures import FigureResult


def render_figure(result: FigureResult) -> str:
    """A human-readable block for one experiment's data."""
    lines = [f"== {result.figure_id}: {result.title} =="]
    if result.paper_expectation:
        lines.append(f"paper expectation: {result.paper_expectation}")
    if result.notes:
        lines.append(result.notes)
    if result.series:
        xs = sorted({x for series in result.series.values() for x, _ in series})
        names = list(result.series)
        header = [result.x_label or "x"] + names
        by_series = {
            name: dict(points) for name, points in result.series.items()
        }
        rows = [header]
        for x in xs:
            row = [f"{x:g}"]
            for name in names:
                value = by_series[name].get(x)
                row.append("-" if value is None else f"{value:.3f}")
            rows.append(row)
        widths = [
            max(len(row[col]) for row in rows) for col in range(len(header))
        ]
        for index, row in enumerate(rows):
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_certification(samples) -> str:
    """One summary line per certified cell of a ``--certify`` sample.

    ``samples`` is a sequence of
    :class:`~repro.certify.runner.CellCertification`; the full verdicts
    live in the run manifest — this is the console digest.
    """
    if not samples:
        return "[certify: no cells certified]"
    lines = []
    for sample in samples:
        result = sample.result
        verdict = "certified" if result.certified else "NOT CERTIFIED"
        detail = ""
        if not result.certified:
            by_rule = result.violations_by_rule()
            detail = " (" + ", ".join(
                f"{code}:{count}" for code, count in sorted(by_rule.items())
            ) + ")"
        lines.append(
            f"[certify {sample.experiment} x={sample.cell.x:g} "
            f"seed={sample.cell.seed} policy={sample.cell.policy}: "
            f"{verdict}{detail} — {result.n_committed} committed, "
            f"{result.n_wounds} wounds, {result.n_graph_edges} edges]"
        )
    return "\n".join(lines)


def write_csv(result: FigureResult, directory: Path) -> Path:
    """Write one experiment's series to ``<directory>/<figure_id>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.figure_id}.csv"
    xs = sorted({x for series in result.series.values() for x, _ in series})
    names = list(result.series)
    by_series = {name: dict(points) for name, points in result.series.items()}
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([result.x_label or "x"] + names)
        for x in xs:
            writer.writerow(
                [x] + [by_series[name].get(x, "") for name in names]
            )
    return path
