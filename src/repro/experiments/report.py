"""Rendering experiment results: ASCII tables and CSV export.

The paper presents line plots; a terminal harness prints the underlying
series as aligned columns (one row per x value, one column per series)
so the reader can compare the same numbers.  CSV export feeds external
plotting.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.experiments.figures import FigureResult


def render_figure(result: FigureResult) -> str:
    """A human-readable block for one experiment's data."""
    lines = [f"== {result.figure_id}: {result.title} =="]
    if result.paper_expectation:
        lines.append(f"paper expectation: {result.paper_expectation}")
    if result.notes:
        lines.append(result.notes)
    if result.series:
        xs = sorted({x for series in result.series.values() for x, _ in series})
        names = list(result.series)
        header = [result.x_label or "x"] + names
        by_series = {
            name: dict(points) for name, points in result.series.items()
        }
        rows = [header]
        for x in xs:
            row = [f"{x:g}"]
            for name in names:
                value = by_series[name].get(x)
                row.append("-" if value is None else f"{value:.3f}")
            rows.append(row)
        widths = [
            max(len(row[col]) for row in rows) for col in range(len(header))
        ]
        for index, row in enumerate(rows):
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_certification(samples) -> str:
    """One summary line per certified cell of a ``--certify`` sample.

    ``samples`` is a sequence of
    :class:`~repro.certify.runner.CellCertification`; the full verdicts
    live in the run manifest — this is the console digest.
    """
    if not samples:
        return "[certify: no cells certified]"
    lines = []
    for sample in samples:
        result = sample.result
        verdict = "certified" if result.certified else "NOT CERTIFIED"
        detail = ""
        if not result.certified:
            by_rule = result.violations_by_rule()
            detail = " (" + ", ".join(
                f"{code}:{count}" for code, count in sorted(by_rule.items())
            ) + ")"
        lines.append(
            f"[certify {sample.experiment} x={sample.cell.x:g} "
            f"seed={sample.cell.seed} policy={sample.cell.policy}: "
            f"{verdict}{detail} — {result.n_committed} committed, "
            f"{result.n_wounds} wounds, {result.n_graph_edges} edges]"
        )
    return "\n".join(lines)


def render_engine_fallbacks(records) -> str:
    """One line per kernel cell healed onto the reference engine.

    ``records`` is a sequence of engine-fallback dicts (see
    :func:`repro.experiments.parallel.take_fallbacks`); the full records
    live in the run manifest — this is the console digest.
    """
    if not records:
        return ""
    lines = [f"[engine fallbacks: {len(records)} kernel cell(s) healed onto "
             "the reference engine]"]
    for record in records:
        cell = record.get("cell", {})
        bundle = record.get("bundle")
        where = f" bundle={bundle}" if bundle else ""
        repro_note = "" if record.get("reproduced") else " (not reproduced)"
        lines.append(
            f"  cell x={cell.get('x', '?')} policy={cell.get('policy', '?')} "
            f"seed={cell.get('seed', '?')}: {record.get('exception', '?')}"
            f"{repro_note}{where}"
        )
    return "\n".join(lines)


def _series_parts(key: str) -> tuple[str, dict]:
    """Split a registry series key ``name{k=v,...}`` into name + labels."""
    if "{" not in key:
        return key, {}
    name, rest = key.split("{", 1)
    labels = dict(part.split("=", 1) for part in rest.rstrip("}").split(","))
    return name, labels


def render_kernel_digest(snapshot) -> str:
    """Console digest of the kernel introspection counters.

    Aggregates the ``kernel.*`` counter family (see docs/KERNEL.md) and
    the ``sweep.engine`` engine-selection tallies across policies into a
    few lines; returns ``""`` when the snapshot carries neither (e.g. a
    fully cached run, or one that predates introspection).
    """
    counters = snapshot.get("counters", {})
    engines: dict[str, float] = {}
    by_label: dict[str, dict[str, float]] = {}
    scalars: dict[str, float] = {}
    for key, value in counters.items():
        name, labels = _series_parts(key)
        if name == "sweep.engine":
            engine = labels.get("engine", "?")
            engines[engine] = engines.get(engine, 0) + value
        elif name == "kernel.fusion_spans":
            kinds = by_label.setdefault("spans", {})
            kind = labels.get("kind", "?")
            kinds[kind] = kinds.get(kind, 0) + value
        elif name == "kernel.penalty_scans":
            modes = by_label.setdefault("scans", {})
            mode = labels.get("mode", "?")
            modes[mode] = modes.get(mode, 0) + value
        elif name == "kernel.cca_prunes":
            sites = by_label.setdefault("prunes", {})
            site = labels.get("site", "?")
            sites[site] = sites.get(site, 0) + value
        elif name.startswith("kernel."):
            scalars[name] = scalars.get(name, 0) + value
    if not engines and not by_label and not scalars:
        return ""
    lines = ["[kernel digest]"]
    if engines:
        mix = " ".join(
            f"{engine}={int(count)}" for engine, count in sorted(engines.items())
        )
        lines.append(f"  engines: {mix}")
    spans = by_label.get("spans", {})
    n_spans = sum(spans.values())
    if n_spans:
        ops = scalars.get("kernel.fused_ops", 0)
        lines.append(
            f"  fusion: {int(n_spans)} spans "
            f"(free {int(spans.get('free', 0))}, "
            f"locked {int(spans.get('locked', 0))}), "
            f"{int(ops)} ops fused ({ops / n_spans:.2f}/span), "
            f"{int(scalars.get('kernel.fusion_truncated', 0))} truncated, "
            f"{int(scalars.get('kernel.fusion_arrival_crossings', 0))} "
            "arrival crossings"
        )
    scans = by_label.get("scans", {})
    if scans:
        lines.append(
            "  penalty scans: "
            + " ".join(
                f"{mode}={int(count)}" for mode, count in sorted(scans.items())
            )
        )
    prunes = by_label.get("prunes", {})
    if prunes:
        lines.append(
            "  cca prunes: "
            + " ".join(
                f"{site}={int(count)}" for site, count in sorted(prunes.items())
            )
        )
    builds = scalars.get("kernel.mask_builds", 0)
    fired = scalars.get("kernel.events_fired", 0)
    if builds or fired:
        lines.append(
            f"  mask builds: {int(builds)}; kernel events: {int(fired)}"
        )
    return "\n".join(lines)


def write_csv(result: FigureResult, directory: Path) -> Path:
    """Write one experiment's series to ``<directory>/<figure_id>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.figure_id}.csv"
    xs = sorted({x for series in result.series.values() for x, _ in series})
    names = list(result.series)
    by_series = {name: dict(points) for name, points in result.series.items()}
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([result.x_label or "x"] + names)
        for x in xs:
            writer.writerow(
                [x] + [by_series[name].get(x, "") for name in names]
            )
    return path
