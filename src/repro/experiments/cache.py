"""Content-addressed on-disk cache of simulation results.

A sweep cell — one :class:`~repro.config.SimulationConfig` run for one
seed under one policy — is a pure function of its inputs (workloads are
generated deterministically from ``(config, seed)`` and the simulator
draws no further randomness), so its :class:`SimulationResult` can be
cached on disk and replayed for free.  The key is a SHA-256 over the
config's :meth:`~repro.config.SimulationConfig.canonical_dict`, the
seed, the policy name, and :data:`SCHEMA_VERSION`; changing any of
those — including the serialization schema itself — addresses a
different entry, so stale results can never be served.

Entries live under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``) as
one JSON file per cell, fanned out by key prefix.  Writes are atomic
(temp file + ``os.replace``) so concurrent workers never observe a
partial entry; corrupt or truncated files are discarded and recomputed,
never crashed on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.config import SimulationConfig
from repro.core.simulator import SimulationResult, TransactionRecord

#: Bump when the serialized form of :class:`SimulationResult` (or the
#: meaning of any cached field) changes; old entries are then ignored.
SCHEMA_VERSION = 1

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def cache_key(
    config: SimulationConfig,
    seed: int,
    policy_name: str,
    schema_version: Optional[int] = None,
) -> str:
    """Content hash addressing one simulated cell.

    Any change to any configuration field, the seed, the policy name, or
    the schema version (default: the current :data:`SCHEMA_VERSION`)
    yields a different key.
    """
    if schema_version is None:
        schema_version = SCHEMA_VERSION
    payload = json.dumps(
        {
            "config": config.canonical_dict(),
            "seed": seed,
            "policy": policy_name,
            "schema": schema_version,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# SimulationResult <-> JSON
# ---------------------------------------------------------------------------

_RECORD_FIELDS = ("tid", "type_id", "arrival_time", "deadline", "commit_time", "restarts")


def result_to_dict(result: SimulationResult) -> dict:
    """A JSON-ready dict capturing *all* of a result's stored fields.

    Per-transaction records are kept (as compact rows) so every derived
    metric — mean lateness included — is bit-identical after a round
    trip; Python's JSON float encoding is exact (shortest round-trip
    repr).
    """
    return {
        "policy_name": result.policy_name,
        "n_committed": result.n_committed,
        "n_missed": result.n_missed,
        "total_restarts": result.total_restarts,
        "makespan": result.makespan,
        "cpu_utilization": result.cpu_utilization,
        "disk_utilization": result.disk_utilization,
        "mean_plist_size": result.mean_plist_size,
        "n_dropped": result.n_dropped,
        "records": [
            [getattr(record, field) for field in _RECORD_FIELDS]
            for record in result.records
        ],
    }


def result_from_dict(data: dict) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`result_to_dict`.

    Raises ``KeyError``/``TypeError``/``ValueError`` on malformed input;
    the cache turns those into a miss.
    """
    records = tuple(
        TransactionRecord(**dict(zip(_RECORD_FIELDS, row, strict=True)))
        for row in data["records"]
    )
    return SimulationResult(
        policy_name=data["policy_name"],
        n_committed=data["n_committed"],
        n_missed=data["n_missed"],
        total_restarts=data["total_restarts"],
        makespan=data["makespan"],
        cpu_utilization=data["cpu_utilization"],
        disk_utilization=data["disk_utilization"],
        mean_plist_size=data["mean_plist_size"],
        records=records,
        n_dropped=data["n_dropped"],
    )


# ---------------------------------------------------------------------------
# The cache proper
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class CacheCounters:
    """Hit/miss/store tallies since construction (or the last reset)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    discarded: int = 0
    """Entries found corrupt/stale and thrown away (counted as misses too)."""
    put_errors: int = 0
    """Failed :meth:`ResultCache.safe_put` writes (disk full, read-only
    cache dir, ...); the first one disables further writes."""


class ResultCache:
    """On-disk store of :class:`SimulationResult` keyed by cell content.

    ``get`` never raises on bad entries: unreadable, truncated, or
    schema-mismatched files are deleted (best effort) and reported as
    misses, so a corrupted cache only costs recomputation.  ``safe_put``
    never raises on write errors: a full disk or read-only cache
    directory costs the cache, not the sweep.
    """

    def __init__(self, root: Optional[Path | str] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.counters = CacheCounters()
        self.write_disabled = False
        """Set after the first failed write; a broken cache directory is
        not retried once per cell for the rest of the sweep."""

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.json"

    def reset_counters(self) -> None:
        self.counters = CacheCounters()

    # -- lookup / store ----------------------------------------------------

    def get(
        self, config: SimulationConfig, seed: int, policy_name: str
    ) -> Optional[SimulationResult]:
        """The cached result for a cell, or ``None`` (a miss)."""
        key = cache_key(config, seed, policy_name)
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry["schema"] != SCHEMA_VERSION or entry["key"] != key:
                raise ValueError("stale or misfiled cache entry")
            result = result_from_dict(entry["result"])
        except FileNotFoundError:
            self.counters.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError, IndexError):
            # Corrupt, truncated, or stale: discard and recompute.
            self._discard(path)
            self.counters.discarded += 1
            self.counters.misses += 1
            return None
        self.counters.hits += 1
        return result

    def put(
        self,
        config: SimulationConfig,
        seed: int,
        policy_name: str,
        result: SimulationResult,
    ) -> Path:
        """Store a cell's result atomically; returns the entry path."""
        key = cache_key(config, seed, policy_name)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "result": result_to_dict(result),
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, separators=(",", ":"))
                # Flush user-space buffers and force the data to disk
                # *before* the rename publishes the entry: a worker (or
                # host) killed mid-write can leave a stale ``.tmp``
                # file, never a truncated entry at the final path.
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.counters.stores += 1
        return path

    def safe_put(
        self,
        config: SimulationConfig,
        seed: int,
        policy_name: str,
        result: SimulationResult,
    ) -> Optional[Path]:
        """Best-effort :meth:`put`: write errors degrade, never raise.

        An ``OSError`` (disk full, ``PermissionError`` on ``mkdir``,
        read-only filesystem, ...) increments ``counters.put_errors``
        and sets :attr:`write_disabled`, after which further calls are
        no-ops — the sweep keeps its results, it just stops
        checkpointing them.  Returns the entry path, or ``None`` when
        the write failed or writes are disabled.
        """
        if self.write_disabled:
            return None
        try:
            return self.put(config, seed, policy_name, result)
        except OSError:
            self.counters.put_errors += 1
            self.write_disabled = True
            return None

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
