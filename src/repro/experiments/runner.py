"""Multi-seed paired runs and parameter sweeps.

The paper's methodology is *paired comparison*: for each seed, generate
one workload and replay it under every policy, then average each policy's
metrics across seeds.  :func:`compare_policies` does that for one
configuration; :func:`sweep` repeats it along a parameter axis (arrival
rate, database size, penalty weight, ...).

All three entry points route through
:mod:`repro.experiments.parallel`: every (x, policy, seed) cell is an
independent unit of work, fanned out over ``jobs`` worker processes and
optionally served from / stored to an on-disk
:class:`~repro.experiments.cache.ResultCache`.  Workload generation is
deterministic in ``(config, seed)``, so regenerating a seed's workload
per cell preserves the paired-comparison semantics, and results are
merged in cell-key order — parallel output is identical to serial
output for the same seeds (proven by
``tests/experiments/test_parallel.py``).
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

from repro.config import SimulationConfig
from repro.core.factory import make_simulator
from repro.core.policy import PriorityPolicy, make_policy
from repro.core.simulator import SimulationResult
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import (
    CellFailure,
    SweepCell,
    SweepError,
    TraceHook,
    cells_for_sweep,
    execute_cells,
    simulate_cell,
    simulate_cell_traced,
)
from repro.obs.registry import MetricsRegistry
from repro.metrics.summary import RunSummary, summarize
from repro.workload.generator import generate_workload

PolicyFactory = Callable[[SimulationConfig], PriorityPolicy]
"""Builds a fresh policy for a configuration (CCA reads the penalty
weight from it)."""


def policy_factory(name: str) -> PolicyFactory:
    """A :data:`PolicyFactory` from a paper policy name.

    CCA-family policies take their penalty weight from the configuration
    they are instantiated for, so weight sweeps need no special casing.
    """

    def build(config: SimulationConfig) -> PriorityPolicy:
        return make_policy(name, penalty_weight=config.penalty_weight)

    return build


def run_policy(
    config: SimulationConfig,
    policy: PolicyFactory | str,
    seeds: Sequence[int],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    trace: Optional[TraceHook] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> list[SimulationResult]:
    """One result per seed for a single policy.

    Named policies go through the parallel executor (and cache); ad-hoc
    :data:`PolicyFactory` callables are not content-addressable or
    picklable, so they run serially in-process.
    """
    if isinstance(policy, str):
        canonical = make_policy(policy, penalty_weight=config.penalty_weight).name
        cells = [
            SweepCell(x=0.0, policy=canonical, seed=seed, config=config)
            for seed in seeds
        ]
        results = execute_cells(
            cells, jobs=jobs, cache=cache, trace=trace, metrics=metrics
        )
        # Under on_error=skip, dropped cells are simply absent; the
        # returned list then covers the surviving seeds only.
        return [
            results[(0.0, canonical, seed)]
            for seed in seeds
            if (0.0, canonical, seed) in results
        ]
    factory = policy
    out = []
    for seed in seeds:
        workload = generate_workload(config, seed)
        simulator = make_simulator(config, workload, factory(config))
        out.append(simulator.run())
    return out


def compare_policies(
    config: SimulationConfig,
    seeds: Sequence[int],
    policies: Sequence[str] = ("EDF-HP", "CCA"),
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    trace: Optional[TraceHook] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> dict[str, RunSummary]:
    """Seed-averaged summaries for several policies on paired workloads.

    Each seed's workload is regenerated deterministically for every
    policy, so the comparison still isolates the scheduling decision.
    """
    swept = sweep(
        {0.0: config}, seeds, policies,
        jobs=jobs, cache=cache, trace=trace, metrics=metrics,
    )
    return swept[0.0]


def sweep(
    configs: Mapping[float, SimulationConfig],
    seeds: Sequence[int],
    policies: Sequence[str] = ("EDF-HP", "CCA"),
    progress: Optional[Callable[[float], None]] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    trace: Optional[TraceHook] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> dict[float, dict[str, RunSummary]]:
    """Paired comparison at each point of a parameter axis.

    ``configs`` maps x-axis value -> configuration; the result maps
    x -> policy name -> :class:`RunSummary`.  All cells of the whole
    sweep are executed in one batch (maximal parallelism); ``progress``
    is then invoked once per x value, in ``configs`` order.
    """
    # Canonicalize policy spellings ("cca" -> "CCA") so cells — and
    # therefore cache entries — are addressed consistently.
    canonical = {
        name: make_policy(name, penalty_weight=1.0).name for name in policies
    }
    cells = cells_for_sweep(configs, seeds, list(canonical.values()))
    results = execute_cells(
        cells, jobs=jobs, cache=cache, trace=trace, metrics=metrics
    )
    out: dict[float, dict[str, RunSummary]] = {}
    for x in configs:
        out[x] = {}
        for name in policies:
            # Cells dropped under on_error=skip are excluded from the
            # summary — identically at any jobs count, since the failure
            # schedule is process-independent.
            survived = [
                results[(x, canonical[name], seed)]
                for seed in seeds
                if (x, canonical[name], seed) in results
            ]
            if not survived:
                raise SweepError(
                    [
                        CellFailure(
                            key=(x, canonical[name], seed),
                            attempts=0,
                            exception="AllSeedsDropped",
                            message=(
                                f"every seed of x={x:g} policy={name} failed "
                                f"or was skipped; nothing left to summarize"
                            ),
                        )
                        for seed in seeds
                    ]
                )
            out[x][name] = summarize(survived)
        if progress is not None:
            progress(x)
    return out


__all__ = [
    "PolicyFactory",
    "compare_policies",
    "policy_factory",
    "run_policy",
    "simulate_cell",
    "simulate_cell_traced",
    "sweep",
]
