"""Multi-seed paired runs and parameter sweeps.

The paper's methodology is *paired comparison*: for each seed, generate
one workload and replay it under every policy, then average each policy's
metrics across seeds.  :func:`compare_policies` does that for one
configuration; :func:`sweep` repeats it along a parameter axis (arrival
rate, database size, penalty weight, ...).
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

from repro.config import SimulationConfig
from repro.core.policy import PriorityPolicy, make_policy
from repro.core.simulator import RTDBSimulator, SimulationResult
from repro.metrics.summary import RunSummary, summarize
from repro.workload.generator import generate_workload

PolicyFactory = Callable[[SimulationConfig], PriorityPolicy]
"""Builds a fresh policy for a configuration (CCA reads the penalty
weight from it)."""


def policy_factory(name: str) -> PolicyFactory:
    """A :data:`PolicyFactory` from a paper policy name.

    CCA-family policies take their penalty weight from the configuration
    they are instantiated for, so weight sweeps need no special casing.
    """

    def build(config: SimulationConfig) -> PriorityPolicy:
        return make_policy(name, penalty_weight=config.penalty_weight)

    return build


def run_policy(
    config: SimulationConfig,
    policy: PolicyFactory | str,
    seeds: Sequence[int],
) -> list[SimulationResult]:
    """One result per seed for a single policy."""
    factory = policy_factory(policy) if isinstance(policy, str) else policy
    results = []
    for seed in seeds:
        workload = generate_workload(config, seed)
        simulator = RTDBSimulator(config, workload, factory(config))
        results.append(simulator.run())
    return results


def compare_policies(
    config: SimulationConfig,
    seeds: Sequence[int],
    policies: Sequence[str] = ("EDF-HP", "CCA"),
) -> dict[str, RunSummary]:
    """Seed-averaged summaries for several policies on paired workloads.

    Workloads are generated once per seed and replayed under every
    policy, so the comparison isolates the scheduling decision.
    """
    per_policy: dict[str, list[SimulationResult]] = {name: [] for name in policies}
    for seed in seeds:
        workload = generate_workload(config, seed)
        for name in policies:
            policy = make_policy(name, penalty_weight=config.penalty_weight)
            per_policy[name].append(RTDBSimulator(config, workload, policy).run())
    return {name: summarize(results) for name, results in per_policy.items()}


def sweep(
    configs: Mapping[float, SimulationConfig],
    seeds: Sequence[int],
    policies: Sequence[str] = ("EDF-HP", "CCA"),
    progress: Optional[Callable[[float], None]] = None,
) -> dict[float, dict[str, RunSummary]]:
    """Paired comparison at each point of a parameter axis.

    ``configs`` maps x-axis value -> configuration; the result maps
    x -> policy name -> :class:`RunSummary`.
    """
    out: dict[float, dict[str, RunSummary]] = {}
    for x, config in configs.items():
        out[x] = compare_policies(config, seeds, policies)
        if progress is not None:
            progress(x)
    return out
