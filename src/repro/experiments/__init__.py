"""Experiment harness: one entry per paper table/figure.

* :mod:`repro.experiments.config` — the Table 1 / Table 2 base parameter
  sets, the seed lists, and run-scale selection (quick / default / full);
* :mod:`repro.experiments.runner` — multi-seed paired runs and sweeps;
* :mod:`repro.experiments.parallel` — the sweep-cell executor: process
  fan-out (``jobs``), deterministic merge, execution defaults;
* :mod:`repro.experiments.cache` — content-addressed on-disk cache of
  per-cell simulation results;
* :mod:`repro.experiments.figures` — ``fig4a`` .. ``fig5f`` plus the two
  parameter tables, each returning a :class:`FigureResult`;
* :mod:`repro.experiments.report` — ASCII rendering and CSV export.

Regenerate any figure from the command line::

    python -m repro fig4a            # default scale
    REPRO_SCALE=full python -m repro fig4c
    python -m repro all --csv out/
"""

from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.config import (
    DISK_BASE,
    DISK_SEEDS,
    MAIN_MEMORY_BASE,
    MAIN_MEMORY_SEEDS,
    ExperimentScale,
)
from repro.experiments.parallel import (
    CellFailure,
    RetryPolicy,
    SweepCell,
    SweepError,
    SweepStats,
    execute_cells,
    simulate_cell,
)
from repro.experiments.figures import (
    ALL_EXPERIMENTS,
    FigureResult,
    run_experiment,
)
from repro.experiments.runner import compare_policies, run_policy, sweep
from repro.experiments.report import render_figure, write_csv

__all__ = [
    "ALL_EXPERIMENTS",
    "CellFailure",
    "DISK_BASE",
    "DISK_SEEDS",
    "ExperimentScale",
    "FigureResult",
    "MAIN_MEMORY_BASE",
    "MAIN_MEMORY_SEEDS",
    "ResultCache",
    "RetryPolicy",
    "SweepCell",
    "SweepError",
    "SweepStats",
    "cache_key",
    "compare_policies",
    "execute_cells",
    "render_figure",
    "run_experiment",
    "run_policy",
    "simulate_cell",
    "sweep",
    "write_csv",
]
