"""RTSan: runtime validation of the paper's schedule invariants.

A :class:`Sanitizer` attaches to one
:class:`~repro.core.simulator.RTDBSimulator` through the existing
observability seams — the trace hook (schedule-semantic events) and the
engine's post-event hook (global state) — and validates, after every
event, that the schedule obeys the §3.3.4 theorems and the lock table
stays consistent.  It *reads* simulator state only; a sanitized run
produces bit-identical :class:`~repro.core.simulator.SimulationResult`
output (``tests/checks/test_sanitizer.py`` holds this as an
invariant).

Checks (see docs/CHECKS.md for the paper mapping):

* ``RTS001`` — lock-table consistency: internal maps agree, every held
  lock has a live owner, every waiter really conflicts with a current
  holder of its item.
* ``RTS002`` — Theorem 1: a pre-analysis (CCA-family) schedule never
  produces a ``lock_wait`` event.
* ``RTS003`` — Theorem 2: no two transactions wound each other at the
  same scheduling instant (no circular abort).
* ``RTS004`` — wound-wait / priority total-order consistency: under
  deadline-static policies every wound goes from a higher-priority
  transaction to a lower-priority one, and at every dispatch the
  priority assignment is a stable, NaN-free, strict total order.
* ``RTS005`` — calendar time monotonicity: the engine never fires an
  event before the clock.
* ``RTS006`` — ``IOwait-schedule`` safety: a secondary transaction
  dispatched during the primary's IO wait must be compatible (no
  conflict, no conditional conflict) with every partially executed
  transaction, and the primary must actually be IO-waiting.

Enabling: ``SimulationConfig(sanitize=True)``, the simulator's
``sanitize=`` keyword, or ``repro <experiment> --sanitize``.  Disabled
(the default), no sanitizer object exists and the hot path pays
nothing beyond the trace hook's existing ``is not None`` check.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Optional

from repro.checks.violations import EventTrail, InvariantViolation
from repro.core.scheduler import choose_primary, is_compatible
from repro.rtdb.transaction import Transaction, TxState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.simulator import RTDBSimulator
    from repro.sim.events import Event

#: Tolerance for clock comparisons (matches the engine's float noise).
_EPS = 1e-9


def _compact(value: object) -> object:
    """Trail-friendly form of a trace field value."""
    if isinstance(value, Transaction):
        return f"tx{value.tid}"
    if isinstance(value, (list, tuple)):
        return tuple(_compact(item) for item in value)
    return value


class Sanitizer:
    """Per-run invariant checker; raises :class:`InvariantViolation`."""

    def __init__(self, sim: "RTDBSimulator", history: int = 64) -> None:
        self.sim = sim
        self.trail = EventTrail(history)
        self.events_checked = 0
        self._last_event_time = 0.0
        self._wound_time = -math.inf
        self._wound_edges: set[tuple[int, int]] = set()

    # -- plumbing ----------------------------------------------------------

    def _fail(
        self, code: str, message: str, tids: Iterable[int] = ()
    ) -> None:
        raise InvariantViolation(
            code,
            message,
            time=self.sim.now,
            tids=tids,
            trace=self.trail.tail(12),
            progress={
                "events_checked": self.events_checked,
                "sim_time": self.sim.now,
            },
        )

    # -- trace-hook half (schedule semantics) ------------------------------

    def on_trace(self, name: str, time: float = 0.0, **fields: object) -> None:
        """Validate one schedule-level event (simulator trace hook)."""
        self.trail.record(
            time, name, tuple((k, _compact(v)) for k, v in fields.items())
        )
        if name == "lock_wait":
            self._check_no_lock_wait(fields)
        elif name == "abort":
            self._check_wound(time, fields)
        elif name == "dispatch":
            self._check_dispatch(fields)

    def _check_no_lock_wait(self, fields: dict) -> None:
        """RTS002 / Theorem 1: there is no lock wait in CCA."""
        if self.sim.policy.uses_pre_analysis:
            tx = fields.get("tx")
            tid = tx.tid if isinstance(tx, Transaction) else -1
            self._fail(
                "RTS002",
                f"transaction {tid} blocked on item "
                f"{fields.get('item')} under pre-analysis policy "
                f"{self.sim.policy.name}; Theorem 1 forbids lock waits",
                tids=(tid,),
            )

    def _check_wound(self, time: float, fields: dict) -> None:
        victim = fields.get("tx")
        wounder = fields.get("by")
        if not isinstance(victim, Transaction) or not isinstance(
            wounder, Transaction
        ):
            return
        # RTS003 / Theorem 2: wounds at one scheduling instant must not
        # form a mutual pair (a circular abort would deadlock progress).
        if time > self._wound_time + _EPS:
            self._wound_time = time
            self._wound_edges.clear()
        self._wound_edges.add((wounder.tid, victim.tid))
        if (victim.tid, wounder.tid) in self._wound_edges:
            self._fail(
                "RTS003",
                f"mutual wound pair: {wounder.tid} and {victim.tid} "
                f"wounded each other at the same instant",
                tids=(wounder.tid, victim.tid),
            )
        # RTS004 (static half): under deadline-static, non-wait-promote
        # policies a wound must go from higher to lower priority.  The
        # victim's key is restart-invariant for static policies, so
        # checking after its restart is sound.  Continuous policies
        # (LSF, CCA) are excluded: a restart legitimately changes their
        # keys, and deadlock-break wounds may invert the order.
        policy = self.sim.policy
        if policy.continuous or policy.wait_promote:
            return
        if not self.sim._priority_key(wounder) > self.sim._priority_key(victim):
            self._fail(
                "RTS004",
                f"wound inverts the priority order: {wounder.tid} "
                f"(priority {self.sim._priority_key(wounder)}) wounded "
                f"{victim.tid} (priority {self.sim._priority_key(victim)}) "
                f"under static policy {policy.name}",
                tids=(wounder.tid, victim.tid),
            )

    def _check_dispatch(self, fields: dict) -> None:
        tx = fields.get("tx")
        if not isinstance(tx, Transaction):
            return
        self._check_priority_total_order()
        self._check_secondary_compatibility(tx)

    def _check_priority_total_order(self) -> None:
        """RTS004 (dynamic half): keys are stable, NaN-free, distinct."""
        sim = self.sim
        seen: dict[tuple, int] = {}
        for tid in sorted(sim.live):
            tx = sim.live[tid]
            key = sim._priority_key(tx)
            again = sim._priority_key(tx)
            if key != again:
                self._fail(
                    "RTS004",
                    f"priority key of transaction {tid} is unstable within "
                    f"one scheduling point: {key} != {again}",
                    tids=(tid,),
                )
            if any(
                isinstance(part, float) and math.isnan(part)
                for part in _flatten(key)
            ):
                self._fail(
                    "RTS004",
                    f"priority key of transaction {tid} contains NaN, "
                    f"which breaks the total order: {key}",
                    tids=(tid,),
                )
            if key in seen:
                self._fail(
                    "RTS004",
                    f"transactions {seen[key]} and {tid} share priority "
                    f"key {key}; the dispatch order is not a total order",
                    tids=(seen[key], tid),
                )
            seen[key] = tid

    def _check_secondary_compatibility(self, tx: Transaction) -> None:
        """RTS006: IOwait-schedule never runs a conflicting secondary."""
        sim = self.sim
        if not sim.policy.uses_pre_analysis or sim.disk is None:
            return
        primary = choose_primary(sim.live.values(), sim._selection_key)
        if primary is None or primary.tid == tx.tid:
            return
        # Equal policy priority means ``tx`` is itself an admissible
        # primary: the tid component of the selection key is a
        # determinism device, not a paper-mandated order, and the model
        # checker legitimately dispatches any member of the top tie
        # group.
        if sim._policy_priority(primary) == sim._policy_priority(tx):
            return
        # ``tx`` outranked by ``primary`` yet dispatched: it is a
        # secondary, legal only while the primary — any top-tied
        # admissible one — waits for IO ...
        top = sim._policy_priority(primary)
        if not any(
            other.state is TxState.IO_WAIT
            for other in sim.live.values()
            if sim._policy_priority(other) == top
        ):
            self._fail(
                "RTS006",
                f"secondary {tx.tid} dispatched while primary "
                f"{primary.tid} is {primary.state.value}, not io_wait",
                tids=(tx.tid, primary.tid),
            )
        # ... and only if compatible with every partially executed
        # transaction (no conflict, no conditional conflict).
        partially = [sim._plist[tid] for tid in sorted(sim._plist)]
        if not is_compatible(tx, partially, sim.oracle):
            conflicting = sorted(
                other.tid
                for other in partially
                if other.tid != tx.tid
                and sim.oracle.conflict(tx, other).possible
            )
            self._fail(
                "RTS006",
                f"secondary {tx.tid} (conditionally) conflicts with "
                f"partially executed transaction(s) {conflicting}; "
                f"IOwait-schedule must idle instead (noncontributing "
                f"execution hazard)",
                tids=(tx.tid, *conflicting),
            )

    # -- engine-hook half (global state) -----------------------------------

    def on_engine_event(self, event: "Event") -> None:
        """Validate global state after every engine event fires."""
        self.events_checked += 1
        self._check_monotonic(event)
        self._check_lock_table()

    def _check_monotonic(self, event: "Event") -> None:
        """RTS005: the calendar never runs backwards."""
        if event.time < self._last_event_time - _EPS:
            self._fail(
                "RTS005",
                f"event {event.kind!r} fired at t={event.time:g}, before "
                f"the previous event at t={self._last_event_time:g}",
            )
        self._last_event_time = max(self._last_event_time, event.time)

    def _check_lock_table(self) -> None:
        """RTS001: holders are live, maps agree, waiters conflict."""
        sim = self.sim
        lockmgr = sim.lockmgr
        try:
            lockmgr.assert_consistent()
        except AssertionError as exc:
            self._fail("RTS001", f"lock table inconsistent: {exc}")
        # Walk waiting items too: a waiter queued on an *unheld* item
        # should have been woken, and only the waiter checks catch it.
        for item in sorted(lockmgr.locked_items() | lockmgr.waiting_items()):
            for holder in lockmgr.holders(item):
                if sim.live.get(holder.tid) is not holder:
                    self._fail(
                        "RTS001",
                        f"item {item} is held by transaction "
                        f"{holder.tid}, which is not live "
                        f"(state {holder.state.value}); a lock release "
                        f"was lost",
                        tids=(holder.tid,),
                    )
            for waiter in lockmgr.waiters(item):
                self._check_waiter(item, waiter)

    def _check_waiter(self, item: int, waiter: Transaction) -> None:
        sim = self.sim
        if sim.live.get(waiter.tid) is not waiter:
            self._fail(
                "RTS001",
                f"non-live transaction {waiter.tid} "
                f"(state {waiter.state.value}) still queued on item {item}",
                tids=(waiter.tid,),
            )
        if waiter.state is not TxState.LOCK_BLOCKED or waiter.blocked_on != item:
            # A waiter woken by a release is removed from the queue in
            # the same event; anything else is a stale queue entry.
            self._fail(
                "RTS001",
                f"transaction {waiter.tid} queued on item {item} but is "
                f"{waiter.state.value} (blocked_on={waiter.blocked_on})",
                tids=(waiter.tid,),
            )
        op = waiter.current_operation
        if not sim.lockmgr.conflicting_holders(waiter, item, op.is_write):
            self._fail(
                "RTS001",
                f"transaction {waiter.tid} waits on item {item} but no "
                f"current holder conflicts with it; it should have been "
                f"woken",
                tids=(waiter.tid,),
            )


def _flatten(key: object) -> Iterable[object]:
    """Every leaf of a (possibly nested) priority tuple."""
    if isinstance(key, tuple):
        for part in key:
            yield from _flatten(part)
    else:
        yield key


def attach(sim: "RTDBSimulator", history: int = 64) -> Optional[Sanitizer]:
    """Build a sanitizer wired to ``sim``'s engine hook.

    The simulator composes :meth:`Sanitizer.on_trace` into its trace
    fan-out itself (the sanitizer must observe events *after* any
    user hook, so a violation's trail includes the offending event).
    """
    sanitizer = Sanitizer(sim, history)
    sim.sim.on_event = sanitizer.on_engine_event
    return sanitizer
