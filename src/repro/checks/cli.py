"""``repro lint`` — the determinism linter's command-line entry point.

Examples::

    repro lint                      # lint the installed repro package
    repro lint src/repro            # lint a source tree
    repro lint --format json        # machine-readable report
    repro lint --select DET001,DET006 path/to/file.py
    repro lint --list-rules         # print the rule catalog

Exit status: 0 when clean (suppressed findings do not count), 1 when
any finding or parse error remains, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.checks.linter import lint_paths
from repro.checks.report import (
    EXIT_USAGE,
    add_list_rules_flag,
    handle_list_rules,
    print_report,
    render_json,
    render_text,
    verdict_exit_code,
)
from repro.checks.rules import all_rules


def default_lint_root() -> Path:
    """The installed ``repro`` package directory."""
    import repro

    return Path(repro.__file__).parent


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Static determinism linter: flags nondeterminism hazards "
            "(wall-clock reads, unseeded RNG, set-order dependence, "
            "id()-ordering, float accumulation in priority keys, "
            "environment reads) in simulation-path modules.  See "
            "docs/CHECKS.md for rule codes and suppression syntax."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=None,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to check (default: all)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings silenced by # repro: allow[...]",
    )
    add_list_rules_flag(parser)
    return parser


def lint_main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_lint_parser().parse_args(
        list(argv) if argv is not None else None
    )
    catalog_exit = handle_list_rules(args, all_rules())
    if catalog_exit is not None:
        return catalog_exit
    select = None
    if args.select is not None:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
    paths = args.paths if args.paths else [default_lint_root()]
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return EXIT_USAGE
    try:
        result = lint_paths(paths, select)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    report = (
        render_json(result)
        if args.format == "json"
        else render_text(result, verbose=args.show_suppressed)
    )
    print_report(report)
    return verdict_exit_code(result.clean)


if __name__ == "__main__":
    sys.exit(lint_main())
