"""Structured invariant violations raised by the RTSan sanitizer.

An :class:`InvariantViolation` names the broken invariant (a stable
``RTSnnn`` code mapping to a paper theorem — see ``docs/CHECKS.md``),
the simulated time, the transactions involved, and the tail of the
event trace leading up to the violation, so a failure in a long sweep
is immediately debuggable without re-running under ``repro trace``.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Sequence

#: The sanitizer's invariant catalog; messages live with the checks in
#: :mod:`repro.checks.sanitizer`, the paper mapping in docs/CHECKS.md.
INVARIANT_CODES: dict[str, str] = {
    "RTS001": "lock-table consistency",
    "RTS002": "Theorem 1: no lock wait under pre-analysis (CCA)",
    "RTS003": "Theorem 2: no mutual wound pair",
    "RTS004": "wound-wait / priority total-order consistency",
    "RTS005": "calendar time monotonicity",
    "RTS006": "IO-wait secondary compatibility",
}


class InvariantViolation(RuntimeError):
    """A paper invariant failed during a sanitized simulation run."""

    def __init__(
        self,
        code: str,
        message: str,
        *,
        time: float = 0.0,
        tids: Iterable[int] = (),
        trace: Sequence[tuple] = (),
        progress: Optional[dict] = None,
    ) -> None:
        if code not in INVARIANT_CODES:
            raise ValueError(f"unknown invariant code {code!r}")
        self.code = code
        self.invariant = INVARIANT_CODES[code]
        self.time = time
        self.tids = tuple(tids)
        self.trace = tuple(trace)
        self.progress: dict = dict(progress) if progress else {}
        self.raw_message = message
        super().__init__(self._format(message))

    def __reduce__(self):  # type: ignore[override]
        # The default reduce would re-call ``cls(formatted_message)``,
        # which fails code validation; rebuild from the structured
        # fields instead so violations survive worker pickling (and the
        # fallback path's failure records keep their context).
        return (
            _rebuild_violation,
            (
                self.code,
                self.raw_message,
                self.time,
                self.tids,
                self.trace,
                self.progress,
            ),
        )

    def _format(self, message: str) -> str:
        parts = [f"{self.code} ({self.invariant}) at t={self.time:g}: {message}"]
        if self.tids:
            parts.append(f"  transactions involved: {list(self.tids)}")
        if self.trace:
            parts.append("  recent events:")
            for time, name, fields in self.trace:
                detail = " ".join(f"{k}={v}" for k, v in fields)
                parts.append(f"    t={time:<10g} {name:<16} {detail}")
        return "\n".join(parts)


def _rebuild_violation(
    code: str,
    message: str,
    time: float,
    tids: tuple,
    trace: tuple,
    progress: dict,
) -> "InvariantViolation":
    """Pickle helper for :class:`InvariantViolation`."""
    return InvariantViolation(
        code, message, time=time, tids=tids, trace=trace, progress=progress
    )


class EventTrail:
    """Bounded ring of recent trace events, kept for violation reports."""

    __slots__ = ("_ring",)

    def __init__(self, maxlen: int = 64) -> None:
        self._ring: deque[tuple] = deque(maxlen=maxlen)

    def record(self, time: float, name: str, fields: tuple) -> None:
        self._ring.append((time, name, fields))

    def tail(self, n: Optional[int] = None) -> tuple[tuple, ...]:
        events = tuple(self._ring)
        return events if n is None else events[-n:]

    def __len__(self) -> int:
        return len(self._ring)
