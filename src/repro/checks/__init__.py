"""Machine-checked reproducibility: determinism linter + RTSan.

Two engines guard the promises the experiment stack rests on:

* the **determinism linter** (:mod:`repro.checks.linter`, CLI
  ``repro lint``) statically proves, at lint time, that simulation-path
  code contains no nondeterminism hazards — so parallel == serial and
  cache keys stay stable;
* the **invariant sanitizer** (:mod:`repro.checks.sanitizer`, "RTSan",
  CLI ``--sanitize``) validates, after every simulation event, that the
  schedule obeys the paper's §3.3.4 theorems and the lock table stays
  consistent.

See ``docs/CHECKS.md`` for rule codes, suppression syntax, and the
invariant → theorem mapping.
"""

from repro.checks.linter import Finding, LintResult, lint_file, lint_paths
from repro.checks.rules import Rule, Scope, all_rules, get_rule
from repro.checks.sanitizer import Sanitizer
from repro.checks.violations import INVARIANT_CODES, InvariantViolation

__all__ = [
    "Finding",
    "INVARIANT_CODES",
    "InvariantViolation",
    "LintResult",
    "Rule",
    "Sanitizer",
    "Scope",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
]
