"""AST-based determinism linter over the ``repro`` source tree.

:func:`lint_paths` walks ``.py`` files, classifies each one into a rule
scope (see :mod:`repro.checks.rules`), and runs a single
:class:`ast.NodeVisitor` pass that flags nondeterminism hazards:

* ``DET001`` — wall-clock reads (``time.time``, ``datetime.now``, ...)
* ``DET002`` — module-level / unseeded RNG (``random.random``,
  ``random.Random()`` without a seed, ``uuid4``, ``os.urandom``, ...)
* ``DET003`` — order-sensitive iteration over sets/frozensets
* ``DET004`` — ``id()``-based ordering
* ``DET005`` — float accumulation inside priority/penalty/key functions
* ``DET006`` — ``os.environ`` reads outside ``experiments/``
* ``DET007`` — ordering by string ``hash()`` (``key=hash``, ``hash(...)``
  in priority/key functions, str-keyed set-literal iteration)
* ``DET008`` — plain-``dict`` lock/transaction-table views
  (``.values()``/``.items()``/``.keys()``) consumed inside
  scheduling-decision functions without an explicit ordering

A finding on a line carrying ``# repro: allow[DET00x]`` (optionally a
comma-separated list, optionally followed by a justification) is
recorded as *suppressed* rather than reported; ``repro lint`` exits 0
when only suppressed findings remain.

The pass uses only the stdlib ``ast``/``re`` machinery — no third-party
dependencies — and is purely syntactic: it tracks import aliases and
per-function assignments, but does no cross-module type inference.
Heuristic rules (DET003/DET005) therefore flag *patterns*; a documented
suppression is the intended escape hatch for the deterministic
instances.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.checks.rules import (
    EXPERIMENTS_DIR,
    SIM_PATH_DIRS,
    Rule,
    Scope,
    all_rules,
    is_known,
)

#: ``# repro: allow[DET001]`` / ``allow[DET001,DET005] -- justification``
_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[\s*([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\s*\]"
)

# -- what each rule bans ----------------------------------------------------

#: DET001: call targets returning host time.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: DET002: functions of the process-global ``random`` module.
_GLOBAL_RNG_FUNCS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: DET002: intrinsically nondeterministic call targets.
_ENTROPY_CALLS = frozenset({"uuid.uuid1", "uuid.uuid4", "os.urandom"})

#: DET003: methods that return sets whatever their receiver.
_SET_RETURNING_METHODS = frozenset(
    {
        "intersection",
        "union",
        "difference",
        "symmetric_difference",
        # repo-local conventions (LockManager / Database diagnostics)
        "held_items",
        "locked_items",
    }
)

#: DET003: builtins through which set iteration order escapes.  Note
#: that ``sum()`` over floats is order-dependent, hence banned here.
_ORDER_SENSITIVE_CONSUMERS = frozenset({"list", "tuple", "sum", "enumerate"})

#: DET003: builtins that consume an iterable order-insensitively.
_ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "min", "max", "len", "any", "all", "set", "frozenset"}
)

#: DET005: function names that smell like priority/ordering keys.
_KEY_FUNC_RE = re.compile(r"priority|penalty|(^|_)key($|_)", re.IGNORECASE)

#: DET006: environment accessors.
_ENVIRON_PREFIX = "os.environ"
_ENVIRON_CALLS = frozenset({"os.getenv"})

#: DET007: sorters whose ``key=`` argument escapes into an ordering.
_KEYED_SORTERS = frozenset({"sorted", "min", "max"})

#: DET008: function names that make a scheduling decision.
_DECISION_FUNC_RE = re.compile(
    r"choose|dispatch|schedul|resolve|select|wound|preempt|pick",
    re.IGNORECASE,
)

#: DET008: receiver names that smell like lock/transaction tables.
_TABLE_NAME_RE = re.compile(
    r"live|plist|lock|waiter|holder|blocked|table", re.IGNORECASE
)

#: DET008: dict-view methods whose order is insertion history.
_DICT_VIEW_METHODS = frozenset({"values", "items", "keys"})


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    suppressed: bool = False

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "suppressed": self.suppressed,
        }


@dataclasses.dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = dataclasses.field(default_factory=list)
    """Unsuppressed violations, in (path, line, col, code) order."""
    suppressed: list[Finding] = dataclasses.field(default_factory=list)
    """Violations silenced by an inline ``# repro: allow[...]``."""
    files_checked: int = 0
    errors: list[str] = dataclasses.field(default_factory=list)
    """Files that could not be parsed (syntax errors, encoding)."""

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def counts_by_code(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for finding in self.findings:
            out[finding.code] = out.get(finding.code, 0) + 1
        return dict(sorted(out.items()))


# ---------------------------------------------------------------------------
# Scope classification
# ---------------------------------------------------------------------------

def applicable_rules(path: Path) -> tuple[Rule, ...]:
    """Which rules apply to the module at ``path``.

    Classification keys off the path segment after the last ``repro``
    package directory: sim-path sub-packages get every rule,
    ``experiments/`` none, the rest of the package only the
    ``NON_EXPERIMENTS`` rules.  Files outside a ``repro`` package get
    every rule.
    """
    parts = path.parts
    anchor = None
    for index, part in enumerate(parts):
        if part == "repro":
            anchor = index
    if anchor is None or anchor + 1 >= len(parts):
        return all_rules()
    head = parts[anchor + 1]
    if head in SIM_PATH_DIRS:
        return all_rules()
    if head == EXPERIMENTS_DIR:
        return ()
    return tuple(
        rule for rule in all_rules() if rule.scope is Scope.NON_EXPERIMENTS
    )


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number (1-based) -> codes allowed on that line."""
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            codes = frozenset(
                code.strip() for code in match.group(1).split(",")
            )
            out[lineno] = codes
    return out


# ---------------------------------------------------------------------------
# The AST pass
# ---------------------------------------------------------------------------

class _FunctionScope:
    """Per-function assignment tracking for the heuristic rules."""

    __slots__ = (
        "name",
        "is_key_func",
        "is_decision_func",
        "set_locals",
        "float_locals",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.is_key_func = bool(_KEY_FUNC_RE.search(name))
        self.is_decision_func = bool(_DECISION_FUNC_RE.search(name))
        self.set_locals: set[str] = set()
        self.float_locals: set[str] = set()


class _Checker(ast.NodeVisitor):
    """Single-pass visitor emitting findings for every active rule."""

    def __init__(self, path: str, codes: frozenset[str]) -> None:
        self.path = path
        self.codes = codes
        self.found: list[Finding] = []
        #: local alias -> canonical dotted module/object path.
        self.aliases: dict[str, str] = {}
        self.scopes: list[_FunctionScope] = []
        #: AST nodes fed to an order-insensitive consumer (DET008).
        self._order_blessed: set[int] = set()

    # -- helpers -----------------------------------------------------------

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        if code not in self.codes:
            return
        self.found.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )

    def _dotted(self, node: ast.expr) -> Optional[str]:
        """Canonical dotted name of an attribute chain, alias-resolved."""
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.aliases.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def _scope(self) -> Optional[_FunctionScope]:
        return self.scopes[-1] if self.scopes else None

    def _is_set_expr(self, node: ast.expr) -> bool:
        """Syntactic judgement: does ``node`` evaluate to a set?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_RETURNING_METHODS
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Name):
            scope = self._scope()
            return scope is not None and node.id in scope.set_locals
        return False

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.aliases[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports cannot name stdlib hazards
        for alias in node.names:
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"

    # -- function scopes ---------------------------------------------------

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self.scopes.append(_FunctionScope(node.name))
        try:
            self.generic_visit(node)
        finally:
            self.scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- assignments (set-typed / float-typed local tracking) --------------

    def _note_assignment(self, target: ast.expr, value: ast.expr) -> None:
        scope = self._scope()
        if scope is None or not isinstance(target, ast.Name):
            return
        if self._is_set_expr(value):
            scope.set_locals.add(target.id)
        else:
            scope.set_locals.discard(target.id)
        if isinstance(value, ast.Constant) and isinstance(value.value, float):
            scope.float_locals.add(target.id)
        else:
            scope.float_locals.discard(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_assignment(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._note_assignment(node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        scope = self._scope()
        if (
            scope is not None
            and scope.is_key_func
            and isinstance(node.op, ast.Add)
            and isinstance(node.target, ast.Name)
            and node.target.id in scope.float_locals
        ):
            self._emit(
                node,
                "DET005",
                f"float accumulation '{node.target.id} += ...' inside "
                f"{scope.name}(); summation order must be deterministic "
                f"(sorted operands, math.fsum, or a justified suppression)",
            )
        self.generic_visit(node)

    # -- loops and comprehensions (DET003) ---------------------------------

    def _check_iteration(self, iterable: ast.expr, where: str) -> None:
        if self._is_set_expr(iterable):
            self._emit(
                iterable,
                "DET003",
                f"iteration over a set in {where}: set order depends on "
                f"hash-table history; iterate sorted(...) or a list/dict",
            )
        if isinstance(iterable, ast.Set) and iterable.elts and all(
            isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            for elt in iterable.elts
        ):
            self._emit(
                iterable,
                "DET007",
                f"iteration over a str-keyed set literal in {where}: str "
                f"hashes are salted per process (PYTHONHASHSEED), so the "
                f"order differs run to run; use a tuple or sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, "a for loop")
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter, "a comprehension")
        self.generic_visit(node)

    # -- calls (DET001/DET002/DET003/DET004/DET005/DET006) -----------------

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_INSENSITIVE_CONSUMERS
            and node.func.id not in self.aliases
        ):
            for arg in node.args:
                self._order_blessed.add(id(arg))
        self._check_table_view(node)
        dotted = self._dotted(node.func)

        if dotted is not None:
            if dotted in _WALL_CLOCK_CALLS:
                self._emit(
                    node,
                    "DET001",
                    f"wall-clock read {dotted}(): simulation code must "
                    f"use the simulated clock (Simulator.now)",
                )
            self._check_rng_call(node, dotted)
            if dotted in _ENVIRON_CALLS:
                self._emit(
                    node,
                    "DET006",
                    f"{dotted}() read outside experiments/: pass the value "
                    f"in via configuration instead",
                )

        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "sort":
            self._check_hash_key(node)
        if isinstance(func, ast.Name):
            name = func.id
            if name in _KEYED_SORTERS and name not in self.aliases:
                self._check_hash_key(node)
            if (
                name == "hash"
                and name not in self.aliases
                and (scope := self._scope()) is not None
                and scope.is_key_func
            ):
                self._emit(
                    node,
                    "DET007",
                    f"hash() inside {scope.name}(): str hashes are salted "
                    f"per process (PYTHONHASHSEED), so a hash-derived "
                    f"priority differs run to run; key on the value itself",
                )
            if name == "id" and name not in self.aliases:
                self._emit(
                    node,
                    "DET004",
                    "id() is a process-dependent address; order/hash by a "
                    "stable field (tid, name) instead",
                )
            if name in _ORDER_SENSITIVE_CONSUMERS:
                for arg in node.args:
                    if self._is_set_expr(arg):
                        self._emit(
                            arg,
                            "DET003",
                            f"{name}() over a set leaks hash-table order; "
                            f"wrap the set in sorted(...)",
                        )
            scope = self._scope()
            if (
                name == "sum"
                and name not in self.aliases
                and scope is not None
                and scope.is_key_func
            ):
                self._emit(
                    node,
                    "DET005",
                    f"sum() inside {scope.name}(): float summation order "
                    f"must be deterministic (sum over sorted operands or "
                    f"use math.fsum)",
                )
        self.generic_visit(node)

    def _check_table_view(self, node: ast.Call) -> None:
        """DET008: dict-view read of a lock/transaction table inside a
        scheduling-decision function, unless an order-insensitive
        consumer (``sorted``, ``min``, ``any``, ...) absorbs it."""
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _DICT_VIEW_METHODS
            and not node.args
            and not node.keywords
        ):
            return
        scope = self._scope()
        if scope is None or not scope.is_decision_func:
            return
        if id(node) in self._order_blessed:
            return
        receiver = self._dotted(func.value)
        if receiver is None:
            return
        if not _TABLE_NAME_RE.search(receiver.rsplit(".", 1)[-1]):
            return
        self._emit(
            node,
            "DET008",
            f"{receiver}.{func.attr}() inside {scope.name}(): plain-dict "
            f"table order is insertion history (arrival/abort "
            f"bookkeeping), not a tie-break; consume sorted(...) or "
            f"reduce with an explicit priority key",
        )

    def _check_hash_key(self, node: ast.Call) -> None:
        """DET007: a ``key=`` argument that orders by ``hash()``."""
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            value = keyword.value
            uses_hash = (
                isinstance(value, ast.Name)
                and value.id == "hash"
                and value.id not in self.aliases
            ) or (
                isinstance(value, ast.Lambda)
                and any(
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Name)
                    and inner.func.id == "hash"
                    for inner in ast.walk(value.body)
                )
            )
            if uses_hash:
                self._emit(
                    value,
                    "DET007",
                    "ordering by hash(): str hashes are salted per process "
                    "(PYTHONHASHSEED), so the sort order differs run to "
                    "run; key on a stable field instead",
                )

    def _check_rng_call(self, node: ast.Call, dotted: str) -> None:
        module, _, attr = dotted.rpartition(".")
        if module == "random" and attr in _GLOBAL_RNG_FUNCS:
            self._emit(
                node,
                "DET002",
                f"random.{attr}() uses the process-global RNG; draw from "
                f"a seeded repro.sim.random stream instead",
            )
        elif dotted == "random.Random" and not node.args and not node.keywords:
            self._emit(
                node,
                "DET002",
                "random.Random() without a seed draws OS entropy; pass an "
                "explicit seed",
            )
        elif dotted.startswith("numpy.random.") or dotted == "numpy.random":
            self._emit(
                node,
                "DET002",
                f"{dotted}(): numpy's global RNG is process state; use a "
                f"seeded generator",
            )
        elif dotted in _ENTROPY_CALLS or module == "secrets":
            self._emit(
                node,
                "DET002",
                f"{dotted}() is nondeterministic by design; derive ids "
                f"from seeds or stable fields",
            )

    # -- bare attribute access (DET006: os.environ[...] etc.) --------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = self._dotted(node)
        if dotted is not None and (
            dotted == _ENVIRON_PREFIX or dotted.startswith(_ENVIRON_PREFIX + ".")
        ):
            self._emit(
                node,
                "DET006",
                "os.environ read outside experiments/: pass the value in "
                "via configuration instead",
            )
            return  # don't re-flag the inner links of the same chain
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if self.aliases.get(node.id) == _ENVIRON_PREFIX:
            self._emit(
                node,
                "DET006",
                "os.environ read outside experiments/: pass the value in "
                "via configuration instead",
            )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def lint_source(
    source: str,
    path: str,
    codes: Iterable[str],
    filename: Optional[str] = None,
) -> tuple[list[Finding], list[Finding]]:
    """Lint one module's source; returns (findings, suppressed)."""
    tree = ast.parse(source, filename=filename or path)
    checker = _Checker(path, frozenset(codes))
    checker.visit(tree)
    allowed = parse_suppressions(source)
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in checker.found:
        if finding.code in allowed.get(finding.line, frozenset()):
            suppressed.append(
                dataclasses.replace(finding, suppressed=True)
            )
        else:
            active.append(finding)
    return active, suppressed


def lint_file(
    path: Path, select: Optional[Iterable[str]] = None
) -> tuple[list[Finding], list[Finding]]:
    """Lint one file under its scope's rules (optionally intersected
    with an explicit ``select`` set of codes)."""
    codes = {rule.code for rule in applicable_rules(path)}
    if select is not None:
        codes &= set(select)
    if not codes:
        return [], []
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path), codes)


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    out: set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(path.rglob("*.py"))
        else:
            out.add(path)
    return sorted(out)


def lint_paths(
    paths: Sequence[Path], select: Optional[Iterable[str]] = None
) -> LintResult:
    """Lint every Python file under ``paths``.

    ``select`` restricts checking to the given codes (they must exist in
    the registry).  Findings are sorted by (path, line, col, code) so
    output is stable across filesystems.
    """
    if select is not None:
        unknown = [code for code in select if not is_known(code)]
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(unknown)}")
    result = LintResult()
    for path in iter_python_files(paths):
        if not path.exists():
            result.errors.append(f"{path}: no such file")
            continue
        try:
            active, suppressed = lint_file(path, select)
        except SyntaxError as exc:
            result.errors.append(f"{path}: syntax error: {exc.msg} "
                                 f"(line {exc.lineno})")
            continue
        result.findings.extend(active)
        result.suppressed.extend(suppressed)
        result.files_checked += 1
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    result.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return result
