"""Text and JSON reporters for lint results.

The JSON schema is versioned and stable — CI jobs and editor
integrations parse it, and ``tests/checks/test_lint_cli.py`` pins it:

.. code-block:: json

    {
      "version": 1,
      "files_checked": 42,
      "clean": false,
      "findings": [
        {"path": "...", "line": 10, "col": 5, "code": "DET001",
         "message": "...", "suppressed": false}
      ],
      "suppressed": [ ...same shape, "suppressed": true... ],
      "errors": ["path: syntax error ..."],
      "summary": {"DET001": 1},
      "rules": {"DET001": {"name": "...", "summary": "...",
                           "scope": "sim-path"}}
    }
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Iterable, Mapping, Optional

from repro.checks.linter import LintResult
from repro.checks.rules import all_rules

#: Bump when the JSON reporter's shape changes incompatibly.
JSON_SCHEMA_VERSION = 1

# ---------------------------------------------------------------------------
# Shared CLI scaffolding — the contract every check CLI follows
# ---------------------------------------------------------------------------
#
# ``repro lint``, ``repro certify`` and ``repro analyze`` all expose the
# same surface: a ``--format text|json`` switch, a versioned JSON
# envelope, a broken-pipe-safe report printer, and the 0/1/2 exit
# mapping (clean / findings / usage error).  The helpers below are that
# contract in one place.

#: The three-way exit contract shared by every check CLI.
EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE = 0, 1, 2


def verdict_exit_code(clean: bool) -> int:
    """Map a check verdict onto the shared exit contract."""
    return EXIT_CLEAN if clean else EXIT_FINDINGS


def print_report(text: str) -> None:
    """Print a report, tolerating a closed downstream pipe.

    When a pager or ``head`` closes the pipe early the exit status still
    carries the verdict, so the report body is best-effort.
    """
    try:
        print(text)
    except BrokenPipeError:
        sys.stderr.close()


def json_envelope(kind: str, schema: int, payload: Mapping[str, Any]) -> str:
    """Serialize a payload inside the self-identifying JSON envelope.

    Every check CLI's machine output leads with ``kind`` (the document
    type) and ``schema`` (its pinned version) so consumers can dispatch
    and refuse layouts they do not understand.
    """
    document = {"kind": kind, "schema": schema, **payload}
    return json.dumps(document, indent=2, sort_keys=True)


def render_catalog(rules: Iterable[Any]) -> str:
    """The ``--list-rules`` catalog: code, name, summary per rule.

    ``rules`` is any iterable of objects with ``code``/``name``/
    ``summary`` attributes (lint, certify, and analyze rules all carry
    them); rules that also carry a ``scope`` get it shown inline.
    """
    lines = []
    for rule in rules:
        scope = getattr(rule, "scope", None)
        tag = f" [{scope.value}]" if scope is not None else ""
        lines.append(f"{rule.code}  {rule.name:<26}{tag}\n        {rule.summary}")
    return "\n".join(lines)


def add_list_rules_flag(
    parser: argparse.ArgumentParser, what: str = "rule"
) -> None:
    """Register the shared ``--list-rules`` flag on a check CLI parser.

    Every check CLI (lint, certify, analyze, mc) exposes the same
    catalog escape hatch; registering it here keeps flag name and help
    wording identical everywhere.
    """
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help=f"print the {what} catalog and exit",
    )


def handle_list_rules(args: argparse.Namespace, rules: Iterable[Any]) -> Optional[int]:
    """The shared ``--list-rules`` short-circuit.

    Returns :data:`EXIT_CLEAN` when the flag was given (after printing
    the catalog), ``None`` otherwise — callers write
    ``if (code := handle_list_rules(args, all_rules())) is not None:
    return code`` and carry on.
    """
    if getattr(args, "list_rules", False):
        print_report(render_catalog(rules))
        return EXIT_CLEAN
    return None


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(f"{finding.location}: {finding.code} {finding.message}")
    for error in result.errors:
        lines.append(f"error: {error}")
    if verbose:
        for finding in result.suppressed:
            lines.append(
                f"{finding.location}: {finding.code} suppressed "
                f"(# repro: allow[{finding.code}])"
            )
    counts = result.counts_by_code()
    breakdown = (
        " (" + ", ".join(f"{code}: {n}" for code, n in counts.items()) + ")"
        if counts
        else ""
    )
    lines.append(
        f"{len(result.findings)} finding(s){breakdown}, "
        f"{len(result.suppressed)} suppressed, "
        f"{result.files_checked} file(s) checked"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (see the module docstring for the schema)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "clean": result.clean,
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "errors": list(result.errors),
        "summary": result.counts_by_code(),
        "rules": {
            rule.code: {
                "name": rule.name,
                "summary": rule.summary,
                "scope": rule.scope.value,
            }
            for rule in all_rules()
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
