"""Text and JSON reporters for lint results.

The JSON schema is versioned and stable — CI jobs and editor
integrations parse it, and ``tests/checks/test_lint_cli.py`` pins it:

.. code-block:: json

    {
      "version": 1,
      "files_checked": 42,
      "clean": false,
      "findings": [
        {"path": "...", "line": 10, "col": 5, "code": "DET001",
         "message": "...", "suppressed": false}
      ],
      "suppressed": [ ...same shape, "suppressed": true... ],
      "errors": ["path: syntax error ..."],
      "summary": {"DET001": 1},
      "rules": {"DET001": {"name": "...", "summary": "...",
                           "scope": "sim-path"}}
    }
"""

from __future__ import annotations

import json

from repro.checks.linter import LintResult
from repro.checks.rules import all_rules

#: Bump when the JSON reporter's shape changes incompatibly.
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(f"{finding.location}: {finding.code} {finding.message}")
    for error in result.errors:
        lines.append(f"error: {error}")
    if verbose:
        for finding in result.suppressed:
            lines.append(
                f"{finding.location}: {finding.code} suppressed "
                f"(# repro: allow[{finding.code}])"
            )
    counts = result.counts_by_code()
    breakdown = (
        " (" + ", ".join(f"{code}: {n}" for code, n in counts.items()) + ")"
        if counts
        else ""
    )
    lines.append(
        f"{len(result.findings)} finding(s){breakdown}, "
        f"{len(result.suppressed)} suppressed, "
        f"{result.files_checked} file(s) checked"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (see the module docstring for the schema)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "clean": result.clean,
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "errors": list(result.errors),
        "summary": result.counts_by_code(),
        "rules": {
            rule.code: {
                "name": rule.name,
                "summary": rule.summary,
                "scope": rule.scope.value,
            }
            for rule in all_rules()
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
