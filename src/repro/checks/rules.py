"""The determinism rule registry: codes, scopes, and rationale.

Every lint rule the :mod:`repro.checks.linter` enforces is declared
here as a :class:`Rule` with a stable ``DETnnn`` code.  The registry is
the single source of truth for the CLI's ``--list-rules`` output, the
JSON reporter's rule table, and ``docs/CHECKS.md``.

Scopes
------

The whole experiment stack promises that simulation results are a pure
function of ``(config, seed, policy)`` — the result cache, the parallel
executor's serial/parallel parity, and the paper reproductions all rest
on it.  Different parts of the tree carry different shares of that
promise:

* ``SIM_PATH`` — modules on the simulation path (``sim/``, ``core/``,
  ``rtdb/``, ``analysis/``, ``workload/``, ``occ/``, ``mp/``): any
  nondeterminism here silently changes results, so every rule applies.
* ``NON_EXPERIMENTS`` — everything except ``experiments/``: reading the
  process environment is an experiment-harness concern (scales, cache
  dirs, fault specs); anywhere else it smuggles host state into what
  should be a pure function.

Files outside the ``repro`` package (test fixtures, ad-hoc scripts) are
checked against every rule — the strictest interpretation.
"""

from __future__ import annotations

import dataclasses
import enum


class Scope(enum.Enum):
    """Where a rule applies (see the module docstring)."""

    SIM_PATH = "sim-path"
    NON_EXPERIMENTS = "non-experiments"


#: Top-level ``repro`` sub-packages on the simulation path: code here
#: runs inside (or feeds values into) a simulation and must be
#: bit-deterministic in ``(config, seed, policy)``.
SIM_PATH_DIRS = frozenset(
    {"sim", "core", "rtdb", "analysis", "workload", "occ", "mp"}
)

#: The one sub-package allowed to read the process environment.
EXPERIMENTS_DIR = "experiments"


@dataclasses.dataclass(frozen=True)
class Rule:
    """One lint rule: a stable code plus the hazard it guards against."""

    code: str
    name: str
    summary: str
    """One line, shown next to each finding."""
    rationale: str
    """Why the construct breaks determinism (docs / --list-rules)."""
    scope: Scope


_REGISTRY: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    """Add ``rule`` to the registry (codes must be unique)."""
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, in code order."""
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def get_rule(code: str) -> Rule:
    """The rule registered under ``code`` (KeyError if unknown)."""
    return _REGISTRY[code]


def is_known(code: str) -> bool:
    return code in _REGISTRY


DET001 = register(
    Rule(
        code="DET001",
        name="wall-clock-read",
        summary="wall-clock read on the simulation path",
        rationale=(
            "time.time()/perf_counter()/datetime.now() return host time, "
            "which differs run to run; simulation code must derive every "
            "timestamp from the simulated clock so results are a pure "
            "function of (config, seed, policy)."
        ),
        scope=Scope.SIM_PATH,
    )
)

DET002 = register(
    Rule(
        code="DET002",
        name="unseeded-rng",
        summary="module-level / unseeded random number generation",
        rationale=(
            "random.random() and friends draw from the process-global "
            "generator (seeded from the OS), uuid4/secrets/os.urandom are "
            "nondeterministic by design, and random.Random() without a "
            "seed falls back to OS entropy.  All simulation randomness "
            "must come from the named, seeded streams in "
            "repro.sim.random."
        ),
        scope=Scope.SIM_PATH,
    )
)

DET003 = register(
    Rule(
        code="DET003",
        name="unordered-iteration",
        summary="order-sensitive iteration over a set/frozenset",
        rationale=(
            "set iteration order depends on hash-table layout, which "
            "depends on insertion/deletion history and (for str keys) "
            "per-process hash randomization.  Scheduling loops, "
            "accumulations and serializations must iterate a sorted() or "
            "otherwise deterministically ordered view."
        ),
        scope=Scope.SIM_PATH,
    )
)

DET004 = register(
    Rule(
        code="DET004",
        name="id-based-ordering",
        summary="id() used on the simulation path",
        rationale=(
            "id() is a process-dependent memory address: ordering, "
            "hashing or comparing by it differs across runs and "
            "processes, breaking serial/parallel parity.  Order by a "
            "stable field (tid, deadline, name) instead."
        ),
        scope=Scope.SIM_PATH,
    )
)

DET005 = register(
    Rule(
        code="DET005",
        name="float-accumulation-in-key",
        summary="float accumulation inside a priority/penalty/key function",
        rationale=(
            "float addition is not associative, so an accumulated "
            "priority component is only reproducible if the summation "
            "order is itself deterministic.  Either iterate a "
            "deterministically ordered collection (and say so in a "
            "suppression), sum over sorted() operands, or use math.fsum."
        ),
        scope=Scope.SIM_PATH,
    )
)

DET006 = register(
    Rule(
        code="DET006",
        name="environ-read",
        summary="process-environment read outside experiments/",
        rationale=(
            "os.environ/os.getenv smuggle host state into code whose "
            "output must depend only on explicit parameters; environment "
            "knobs belong in the experiments/ harness, which resolves "
            "them into SimulationConfig fields."
        ),
        scope=Scope.NON_EXPERIMENTS,
    )
)

DET007 = register(
    Rule(
        code="DET007",
        name="hash-based-ordering",
        summary="ordering depends on string hash() (PYTHONHASHSEED hazard)",
        rationale=(
            "hash(str) is salted per process: unless PYTHONHASHSEED is "
            "pinned, every run hashes strings differently, so sorting by "
            "hash(...), hash-keyed priority functions, and iteration over "
            "str-keyed set literals produce a different order each run.  "
            "Order by the value itself or another stable field instead."
        ),
        scope=Scope.SIM_PATH,
    )
)

DET008 = register(
    Rule(
        code="DET008",
        name="dict-table-scheduling-iteration",
        summary=(
            "plain-dict lock/transaction table iterated in a "
            "scheduling decision"
        ),
        rationale=(
            "dict iteration order is insertion history: for the live "
            "table, the lock table, and the P-list that means arrival "
            "and abort bookkeeping, not a documented tie-break.  A "
            "scheduling decision that consumes candidates in table "
            "order silently changes schedules whenever bookkeeping "
            "changes the insertion order (re-admission, restart "
            "incarnations, table compaction).  Consume a sorted(...) "
            "view or reduce with an explicit priority key, or attach a "
            "suppression naming the ordering that makes table order "
            "irrelevant."
        ),
        scope=Scope.SIM_PATH,
    )
)
