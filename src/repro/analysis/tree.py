"""Analyzed transaction trees: hasaccessed / mightaccess / leaves.

Implements the paper's recursive definitions.  With ``K`` the set of nodes
on the root-to-``P`` path (inclusive)::

    hasaccessed(P) = union of accesses(k) for k in K
    mightaccess(P) = hasaccessed(P)                       if P is a leaf
                   = union of mightaccess(c) for children c  otherwise

(The non-leaf case of ``mightaccess`` implicitly includes
``hasaccessed(P)`` because every child's ``mightaccess`` does.)

These sets are computed once per program and cached — that is the paper's
"pre-analysis": the space/time trade the authors argue is worthwhile for
an RTDBS.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.program import ProgramNode, TransactionProgram


class TransactionTree:
    """A :class:`TransactionProgram` with its analysis sets computed."""

    def __init__(self, program: TransactionProgram) -> None:
        self.program = program
        self._hasaccessed: dict[str, frozenset[int]] = {}
        self._mightaccess: dict[str, frozenset[int]] = {}
        self._leaves: dict[str, tuple[ProgramNode, ...]] = {}
        self._analyze(program.root, frozenset())

    def _analyze(
        self, node: ProgramNode, accumulated: frozenset[int]
    ) -> tuple[frozenset[int], tuple[ProgramNode, ...]]:
        hasaccessed = accumulated | node.accesses
        self._hasaccessed[node.label] = hasaccessed
        if node.is_leaf:
            mightaccess: frozenset[int] = hasaccessed
            leaves: tuple[ProgramNode, ...] = (node,)
        else:
            might: set[int] = set()
            leaf_list: list[ProgramNode] = []
            for child in node.children:
                child_might, child_leaves = self._analyze(child, hasaccessed)
                might |= child_might
                leaf_list.extend(child_leaves)
            mightaccess = frozenset(might)
            leaves = tuple(leaf_list)
        self._mightaccess[node.label] = mightaccess
        self._leaves[node.label] = leaves
        return mightaccess, leaves

    @property
    def name(self) -> str:
        return self.program.name

    @property
    def root(self) -> ProgramNode:
        return self.program.root

    def node(self, label: str) -> ProgramNode:
        return self.program.node(label)

    def hasaccessed(self, label: str) -> frozenset[int]:
        """Items accessed from the root through node ``label``.

        Note the paper's convention: a transaction is assumed to access
        its items *when it begins and immediately after its decision
        points*, so "has accessed" at a node includes that node's own
        segment accesses.
        """
        return self._hasaccessed[label]

    def mightaccess(self, label: str) -> frozenset[int]:
        """Items any continuation from node ``label`` might access."""
        return self._mightaccess[label]

    def leaves(self, label: str) -> tuple[ProgramNode, ...]:
        """Leaves of the subtree rooted at node ``label``."""
        return self._leaves[label]

    def labels(self) -> Iterator[str]:
        return iter(self._hasaccessed)

    def __repr__(self) -> str:
        return f"TransactionTree({self.name!r})"
