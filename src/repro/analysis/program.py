"""Transaction program representation.

A transaction program is a loop-free program over database items.  The
statements where the program commits itself to a subset of its data set
(by executing a conditional) are its *decision points*.  Between decision
points the program accesses a known set of items.

We represent a program directly as the tree the paper derives from it:
each :class:`ProgramNode` carries the set of items accessed after entering
the node and before the next decision point; its children are the branches
of that decision point.  A node with no children is a leaf — the program
runs to commit without further decisions.

Example — the paper's Figure 1/2 programs::

    program_b = linear_program("B", [1, 2, 3])

    program_a = TransactionProgram(
        "A",
        ProgramNode(
            "A",
            accesses=[0],                       # reads w
            children=[
                ProgramNode("Aa", accesses=[1, 2, 3]),   # w > 100
                ProgramNode("Ab", accesses=[4, 5, 6]),   # w <= 100
            ],
        ),
    )
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence


class ProgramNode:
    """One node of a transaction tree.

    ``accesses`` is the set of items the transaction accesses between
    entering this node and reaching its next decision point (paper:
    ``accesses(T_P)``).  ``children`` are the outcomes of that decision
    point; an empty list marks a leaf.
    """

    __slots__ = ("label", "accesses", "children", "parent")

    def __init__(
        self,
        label: str,
        accesses: Iterable[int] = (),
        children: Optional[Sequence["ProgramNode"]] = None,
    ) -> None:
        self.label = label
        self.accesses = frozenset(accesses)
        self.children: tuple[ProgramNode, ...] = tuple(children or ())
        self.parent: Optional[ProgramNode] = None
        for child in self.children:
            if child.parent is not None:
                raise ValueError(
                    f"node {child.label!r} already has a parent; programs are trees"
                )
            child.parent = self

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def walk(self) -> Iterator["ProgramNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"{len(self.children)} branches"
        return f"ProgramNode({self.label!r}, {sorted(self.accesses)}, {kind})"


class TransactionProgram:
    """A named transaction program (the root of a transaction tree).

    Validates the tree shape: labels must be unique (they identify nodes
    in relation tables) and the structure must be a proper tree.
    """

    def __init__(self, name: str, root: ProgramNode) -> None:
        if not name:
            raise ValueError("program name must be non-empty")
        self.name = name
        self.root = root
        self._nodes: dict[str, ProgramNode] = {}
        for node in root.walk():
            if node.label in self._nodes:
                raise ValueError(f"duplicate node label {node.label!r} in {name!r}")
            self._nodes[node.label] = node

    def node(self, label: str) -> ProgramNode:
        """Look up a node by label."""
        try:
            return self._nodes[label]
        except KeyError:
            raise KeyError(f"program {self.name!r} has no node {label!r}") from None

    @property
    def nodes(self) -> Iterator[ProgramNode]:
        return iter(self._nodes.values())

    @property
    def data_set(self) -> frozenset[int]:
        """Every item any execution of this program might access."""
        items: set[int] = set()
        for node in self.root.walk():
            items |= node.accesses
        return frozenset(items)

    @property
    def has_decision_points(self) -> bool:
        return not self.root.is_leaf

    def __repr__(self) -> str:
        return (
            f"TransactionProgram({self.name!r}, "
            f"{len(self._nodes)} nodes, {len(self.data_set)} items)"
        )


def linear_program(name: str, items: Iterable[int]) -> TransactionProgram:
    """A program with no decision points (a single-node tree).

    This is the shape the paper's simulation workload uses: the full data
    set is accessed unconditionally, so conflict and safety are exact.
    """
    return TransactionProgram(name, ProgramNode(name, accesses=items))
