"""Conflict and safety relations between analyzed transactions.

Paper definitions (Section 3.2.2), for transaction ``T^N`` at node ``P``
and transaction ``T^M`` at node ``Q``:

Conflict (symmetric; drives ``IOwait-schedule``):

* *conflict* — for **every** pair of leaves ``(p, q)`` below ``P`` and
  ``Q``, ``mightaccess(p) ∩ mightaccess(q) ≠ ∅``: no matter how either
  executes, their data sets overlap.
* *conditionally conflict* — some leaf pair overlaps and some doesn't:
  whether they conflict depends on future decisions.
* *don't conflict* — no leaf pair overlaps.

Safety (asymmetric; drives the penalty of conflict).  "``T^N`` is safe
wrt ``T^M``" asks: if ``T^M`` runs to commit, must ``T^N`` be rolled
back, or does blocking suffice?

* *safe* — ``hasaccessed(T^N_P) ∩ mightaccess(T^M_Q) = ∅``: ``T^M`` can
  never touch an item ``T^N`` already accessed, so blocking suffices.
* *unsafe* — for **every** leaf ``q`` below ``Q``,
  ``hasaccessed(T^N_P) ∩ mightaccess(q) ≠ ∅``: every execution of ``T^M``
  touches something ``T^N`` accessed; ``T^N`` must be rolled back.
* *conditionally unsafe* — overlap exists but some execution of ``T^M``
  avoids it.
"""

from __future__ import annotations

import enum

from repro.analysis.tree import TransactionTree


class Conflict(enum.Enum):
    """Ternary conflict relation."""

    NONE = "dont_conflict"
    CONDITIONAL = "conditionally_conflict"
    CERTAIN = "conflict"

    @property
    def possible(self) -> bool:
        """True when a conflict may (or must) occur."""
        return self is not Conflict.NONE


class Safety(enum.Enum):
    """Ternary safety relation."""

    SAFE = "safe"
    CONDITIONALLY_UNSAFE = "conditionally_unsafe"
    UNSAFE = "unsafe"

    @property
    def needs_rollback(self) -> bool:
        """True when running the other transaction may force a rollback."""
        return self is not Safety.SAFE


def conflict_between(
    tree_a: TransactionTree,
    label_a: str,
    tree_b: TransactionTree,
    label_b: str,
) -> Conflict:
    """Conflict relation between ``tree_a`` at ``label_a`` and ``tree_b``
    at ``label_b``.

    Symmetric: ``conflict_between(a, pa, b, pb) ==
    conflict_between(b, pb, a, pa)``.
    """
    leaves_a = tree_a.leaves(label_a)
    leaves_b = tree_b.leaves(label_b)
    any_overlap = False
    all_overlap = True
    for leaf_a in leaves_a:
        might_a = tree_a.mightaccess(leaf_a.label)
        for leaf_b in leaves_b:
            if might_a & tree_b.mightaccess(leaf_b.label):
                any_overlap = True
            else:
                all_overlap = False
            if any_overlap and not all_overlap:
                # Mixed verdicts cannot change anymore: conditional.
                return Conflict.CONDITIONAL
    if not any_overlap:
        return Conflict.NONE
    return Conflict.CERTAIN


def safety_of(
    tree_subject: TransactionTree,
    label_subject: str,
    tree_runner: TransactionTree,
    label_runner: str,
) -> Safety:
    """Safety of the *subject* transaction wrt the *runner*.

    The runner is the transaction about to be scheduled (``Ta`` in the
    paper); the subject is a partially executed transaction.  ``UNSAFE``
    means every execution of the runner forces the subject's rollback.
    """
    has = tree_subject.hasaccessed(label_subject)
    if not has & tree_runner.mightaccess(label_runner):
        return Safety.SAFE
    all_overlap = all(
        has & tree_runner.mightaccess(leaf.label)
        for leaf in tree_runner.leaves(label_runner)
    )
    if all_overlap:
        return Safety.UNSAFE
    return Safety.CONDITIONALLY_UNSAFE
