"""Precomputed pairwise relation tables.

The paper's scheduler consults conflict/safety relations at every
scheduling decision, so it pre-analyzes the (fixed, known) set of
transaction programs and stores the relations in tables — trading space
for scheduling speed.  :class:`RelationTable` is that store: it memoizes
``conflict_between`` and ``safety_of`` over (program, node) pairs.

Because a transaction's knowable state is exactly its current tree node
(the paper assumes items are accessed at start and immediately after each
decision point), a (program name, node label) pair fully keys the
relations for a live transaction.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.relations import Conflict, Safety, conflict_between, safety_of
from repro.analysis.tree import TransactionTree


class RelationTable:
    """Memoized conflict/safety relations over a set of analyzed programs."""

    def __init__(self, trees: Iterable[TransactionTree]) -> None:
        self._trees: dict[str, TransactionTree] = {}
        for tree in trees:
            if tree.name in self._trees:
                raise ValueError(f"duplicate program name {tree.name!r}")
            self._trees[tree.name] = tree
        self._conflict: dict[tuple[str, str, str, str], Conflict] = {}
        self._safety: dict[tuple[str, str, str, str], Safety] = {}

    def tree(self, name: str) -> TransactionTree:
        try:
            return self._trees[name]
        except KeyError:
            raise KeyError(f"no analyzed program named {name!r}") from None

    @property
    def programs(self) -> tuple[str, ...]:
        return tuple(self._trees)

    def conflict(
        self, name_a: str, label_a: str, name_b: str, label_b: str
    ) -> Conflict:
        """Conflict relation between two (program, node) states."""
        key = (name_a, label_a, name_b, label_b)
        result = self._conflict.get(key)
        if result is None:
            result = conflict_between(
                self.tree(name_a), label_a, self.tree(name_b), label_b
            )
            self._conflict[key] = result
            # The relation is symmetric; cache the mirror too.
            self._conflict[(name_b, label_b, name_a, label_a)] = result
        return result

    def safety(
        self,
        subject_name: str,
        subject_label: str,
        runner_name: str,
        runner_label: str,
    ) -> Safety:
        """Safety of the subject state wrt the runner state (asymmetric)."""
        key = (subject_name, subject_label, runner_name, runner_label)
        result = self._safety.get(key)
        if result is None:
            result = safety_of(
                self.tree(subject_name),
                subject_label,
                self.tree(runner_name),
                runner_label,
            )
            self._safety[key] = result
        return result

    def precompute(self) -> None:
        """Eagerly fill both tables for every (program, node) pair.

        Useful to move all analysis cost to system start-up, as the paper
        intends; the scheduler then only does dictionary lookups.
        """
        states = [
            (name, node.label)
            for name, tree in self._trees.items()
            for node in tree.program.root.walk()
        ]
        # Conflict is symmetric, so each unordered state pair is computed
        # once (``conflict`` caches the mirror key itself); safety is
        # asymmetric and still needs both directions.
        for i, (name_a, label_a) in enumerate(states):
            for name_b, label_b in states[i:]:
                self.conflict(name_a, label_a, name_b, label_b)
                self.safety(name_a, label_a, name_b, label_b)
                self.safety(name_b, label_b, name_a, label_a)
