"""Transaction pre-analysis (paper Section 3.2.2).

The paper models every transaction program as a *transaction tree*: the
root is the program entry, and each *decision point* (a conditional that
commits the transaction to a subset of its data set) branches the tree.
From per-node access sets the analysis derives, for every node ``P``:

* ``hasaccessed(P)`` — items accessed on the path from the root to ``P``;
* ``mightaccess(P)`` — items any continuation from ``P`` might access;
* ``leaves(P)`` — the leaves reachable from ``P``.

Those sets induce the ternary **conflict** relation (conflict /
conditionally conflict / don't conflict) used by ``IOwait-schedule`` and
the ternary **safety** relation (safe / conditionally unsafe / unsafe)
used by the penalty-of-conflict computation.

Modules:

* :mod:`repro.analysis.program` — program representation and builders;
* :mod:`repro.analysis.tree` — the analyzed transaction tree;
* :mod:`repro.analysis.relations` — conflict and safety relations;
* :mod:`repro.analysis.table` — precomputed pairwise relation tables.
"""

from repro.analysis.program import (
    ProgramNode,
    TransactionProgram,
    linear_program,
)
from repro.analysis.relations import (
    Conflict,
    Safety,
    conflict_between,
    safety_of,
)
from repro.analysis.table import RelationTable
from repro.analysis.tree import TransactionTree

__all__ = [
    "Conflict",
    "ProgramNode",
    "RelationTable",
    "Safety",
    "TransactionProgram",
    "TransactionTree",
    "conflict_between",
    "linear_program",
    "safety_of",
]
