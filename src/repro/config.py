"""Simulation configuration shared by workload generation and the system.

The defaults mirror Table 1 (main memory) of the paper; Table 2 (disk
resident) is the same with ``disk_resident=True``, ``abort_cost=5`` and
the disk parameters.  All times are in **milliseconds** of simulated time,
matching the paper's units.

The database-size default is the tables' literal 30 items — a
deliberately tiny hot set (transactions update ~20 of 30 items, so
essentially every pair conflicts).  Calibration against the paper's
reported improvement magnitudes confirms this reading; Figures 4f and 5e
then sweep the size up to 1000/600 to relax contention (DESIGN.md §6).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence


@dataclasses.dataclass(frozen=True)
class SimulationConfig:
    """All parameters of one simulated RTDBS configuration."""

    # --- workload (Table 1 / Table 2) ---
    n_transaction_types: int = 50
    updates_mean: float = 20.0
    updates_std: float = 10.0
    db_size: int = 30
    min_slack: float = 0.2
    """Lower bound of slack as a fraction of resource time (paper: 20 %)."""
    max_slack: float = 8.0
    """Upper bound of slack as a fraction of resource time (paper: 800 %)."""
    compute_per_update: float = 4.0
    """CPU time per item update, ms (Table 1)."""
    update_time_classes: Optional[Sequence[float]] = None
    """If set, transaction types are split into equal classes with these
    per-update compute times (paper §4.2 uses (0.4, 4, 40)); overrides
    ``compute_per_update``."""
    read_fraction: float = 0.0
    """Fraction of each transaction type's accesses that are reads
    (shared locks).  0 reproduces the paper's write-only analysis; > 0
    enables the shared-lock extension (paper future work)."""

    # --- scheduling ---
    abort_cost: float = 4.0
    """CPU time to roll back one transaction, ms (Table 1: 4; Table 2: 5)."""
    penalty_weight: float = 1.0
    """w in Pr(T) = -(deadline + w * penalty-of-conflict)."""

    # --- disk (Table 2; ignored when disk_resident is False) ---
    disk_resident: bool = False
    disk_access_time: float = 25.0
    disk_access_prob: float = 0.1
    disk_scheduling: str = "fcfs"
    """IO queue discipline: "fcfs" (Table 2) or "priority" (real-time IO
    scheduling — the disk serves the highest-priority waiter next)."""

    # --- criticalness (paper future work: "multiple criticalness") ---
    criticalness_levels: int = 1
    """Number of criticalness classes.  1 reproduces the paper's
    same-criticalness workloads; with k > 1 each transaction draws a
    uniform class in 0..k-1 (higher = more critical), which the
    ``CriticalnessCCAPolicy`` orders lexicographically above deadlines."""

    # --- engine selection ---
    engine: str = "auto"
    """Which simulation engine runs the cell: "auto" (default) picks the
    array-oriented kernel engine (:mod:`repro.core.kernel`) whenever the
    configuration supports it and silently falls back to the reference
    engine otherwise (sanitized runs, samplers, custom components);
    "kernel" requires the kernel engine and raises if unsupported;
    "reference" forces the original object-graph engine.  The two
    engines are bit-identical (tests/sim/test_kernel_parity.py), so this
    choice affects wall-clock speed only."""

    # --- validation (repro.checks) ---
    sanitize: bool = False
    """Attach the RTSan invariant sanitizer to every simulation run:
    after each event the lock table, the §3.3.4 theorems (no lock wait
    under CCA, no mutual wound pair), priority total-order consistency,
    calendar monotonicity and IOwait-schedule compatibility are
    validated, raising :class:`repro.checks.InvariantViolation` on the
    first breach.  Results are bit-identical with or without it; off by
    default and zero-cost when off (docs/CHECKS.md)."""

    # --- deadline semantics ---
    firm_deadlines: bool = False
    """Soft deadlines (paper default: late transactions keep running and
    count as misses) vs firm deadlines ([Har91]: a transaction that
    reaches its deadline uncommitted is aborted and discarded)."""

    # --- run shape ---
    n_transactions: int = 1000
    arrival_rate: float = 5.0
    """Mean transaction arrivals per second (lambda of the Poisson process)."""
    arrival_model: str = "poisson"
    """"poisson" (the paper) or "bursty" (interrupted Poisson: ON/OFF
    phases with the same long-run rate — see workload.arrivals)."""
    burst_factor: float = 4.0
    """Bursty model: arrival-rate multiplier during ON phases."""
    burst_fraction: float = 0.2
    """Bursty model: long-run fraction of time spent in ON phases."""
    mean_burst_ms: float = 2000.0
    """Bursty model: mean ON-phase duration."""

    def __post_init__(self) -> None:
        if self.n_transaction_types < 1:
            raise ValueError("need at least one transaction type")
        if self.db_size < 1:
            raise ValueError("database must contain at least one item")
        if self.min_slack < 0 or self.max_slack < self.min_slack:
            raise ValueError(
                f"invalid slack range [{self.min_slack}, {self.max_slack}]"
            )
        if self.arrival_rate <= 0:
            raise ValueError("arrival rate must be positive")
        if self.abort_cost < 0:
            raise ValueError("abort cost must be non-negative")
        if not 0.0 <= self.disk_access_prob <= 1.0:
            raise ValueError("disk access probability must be in [0, 1]")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read fraction must be in [0, 1]")
        if self.disk_scheduling not in ("fcfs", "priority"):
            raise ValueError(
                f"disk scheduling must be 'fcfs' or 'priority', "
                f"got {self.disk_scheduling!r}"
            )
        if self.arrival_model not in ("poisson", "bursty"):
            raise ValueError(
                f"arrival model must be 'poisson' or 'bursty', "
                f"got {self.arrival_model!r}"
            )
        if self.criticalness_levels < 1:
            raise ValueError("need at least one criticalness level")
        if self.engine not in ("auto", "kernel", "reference"):
            raise ValueError(
                f"engine must be 'auto', 'kernel' or 'reference', "
                f"got {self.engine!r}"
            )
        if self.update_time_classes is not None and not self.update_time_classes:
            raise ValueError("update_time_classes must be non-empty when given")

    @property
    def mean_interarrival(self) -> float:
        """Mean time between arrivals in ms (the clock unit)."""
        return 1000.0 / self.arrival_rate

    def compute_time_for_type(self, type_id: int) -> float:
        """Per-update CPU time for a transaction type.

        With ``update_time_classes`` set, the types are partitioned into
        ``len(update_time_classes)`` contiguous, near-equal classes
        (paper §4.2: 50 types into 3 classes of 0.4 / 4 / 40 ms).
        """
        if not 0 <= type_id < self.n_transaction_types:
            raise ValueError(f"type id {type_id} out of range")
        if self.update_time_classes is None:
            return self.compute_per_update
        n_classes = len(self.update_time_classes)
        class_index = type_id * n_classes // self.n_transaction_types
        return self.update_time_classes[class_index]

    def replace(self, **changes: object) -> "SimulationConfig":
        """A copy of this config with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def canonical_dict(self) -> dict:
        """All fields as a stable, JSON-ready mapping.

        Field names are sorted and sequence values converted to lists, so
        the result serializes identically across processes and sessions.
        The experiment result cache hashes this to fingerprint a
        configuration; every field participates, so changing *any*
        parameter changes the fingerprint.
        """
        raw = dataclasses.asdict(self)
        return {
            name: list(value) if isinstance(value, (tuple, list)) else value
            for name, value in sorted(raw.items())
        }
