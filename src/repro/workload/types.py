"""Transaction type tables.

Every transaction executed by the system is an instance of one of
``n_transaction_types`` types (paper: 50).  A type fixes the items its
instances update and the CPU time per update; the paper regenerates the
table for every run (seed), which this module does too.

The paper chooses "the actual database items ... uniformly from the range
of database size".  We sample each type's items *without replacement*:
updating the same item twice within one transaction would just be a
re-access of an already-held lock, thinning the effective update count.
When a type's update count exceeds the database size it is capped (only
reachable in stress tests with tiny databases).
"""

from __future__ import annotations

import dataclasses

from repro.config import SimulationConfig
from repro.sim.random import RandomStream


@dataclasses.dataclass(frozen=True)
class TransactionType:
    """One pre-analyzed transaction type.

    ``write_flags`` marks which accesses take write locks; empty means
    all of them (the paper's write-only setting).
    """

    type_id: int
    items: tuple[int, ...]
    compute_per_update: float
    write_flags: tuple[bool, ...] = ()

    def __post_init__(self) -> None:
        if not self.items:
            raise ValueError("a transaction type must update at least one item")
        if len(set(self.items)) != len(self.items):
            raise ValueError("transaction type items must be distinct")
        if self.compute_per_update <= 0:
            raise ValueError("compute per update must be positive")
        if not self.write_flags:
            object.__setattr__(self, "write_flags", (True,) * len(self.items))
        elif len(self.write_flags) != len(self.items):
            raise ValueError("write_flags must match items in length")

    @property
    def n_updates(self) -> int:
        return len(self.items)

    @property
    def program_name(self) -> str:
        return f"type{self.type_id}"

    @property
    def cpu_time(self) -> float:
        """Isolated CPU demand of one instance."""
        return self.n_updates * self.compute_per_update


def make_type_table(
    config: SimulationConfig, stream: RandomStream
) -> list[TransactionType]:
    """Generate the per-run transaction type table.

    Update counts are N(updates_mean, updates_std) truncated below at 1
    and above at the database size; per-update compute time comes from
    ``config.compute_time_for_type`` (constant, or the high-variance
    class assignment of Section 4.2).
    """
    table: list[TransactionType] = []
    for type_id in range(config.n_transaction_types):
        n_updates = stream.positive_int_normal(config.updates_mean, config.updates_std)
        n_updates = min(n_updates, config.db_size)
        items = stream.sample_without_replacement(config.db_size, n_updates)
        write_flags = tuple(
            not stream.coin(config.read_fraction) for _ in items
        )
        table.append(
            TransactionType(
                type_id=type_id,
                items=tuple(items),
                compute_per_update=config.compute_time_for_type(type_id),
                write_flags=write_flags,
            )
        )
    return table
