"""Workload generation (paper Sections 4 and 5, Tables 1 and 2).

Transactions enter the system in a Poisson process; each is an instance
of one of 50 transaction types; a type updates a normally distributed
number of items chosen uniformly from the database; deadlines add a
uniformly chosen slack fraction on top of the resource time:

    deadline = arrival_time + resource_time * (1 + slack_percent)

Modules:

* :mod:`repro.workload.types` — per-run transaction type tables;
* :mod:`repro.workload.arrivals` — the Poisson arrival process;
* :mod:`repro.workload.deadlines` — the slack-based deadline model;
* :mod:`repro.workload.generator` — assembles full workloads
  (:class:`~repro.rtdb.transaction.TransactionSpec` lists);
* :mod:`repro.workload.programs` — tree programs with decision points
  for the conditional-conflict extension experiments.
"""

from repro.workload.arrivals import bursty_arrivals, poisson_arrivals
from repro.workload.deadlines import assign_deadline
from repro.workload.generator import WorkloadGenerator, generate_workload
from repro.workload.programs import TreeWorkloadGenerator
from repro.workload.serialization import load_workload, save_workload
from repro.workload.types import TransactionType, make_type_table

__all__ = [
    "TransactionType",
    "TreeWorkloadGenerator",
    "WorkloadGenerator",
    "assign_deadline",
    "bursty_arrivals",
    "generate_workload",
    "load_workload",
    "make_type_table",
    "poisson_arrivals",
    "save_workload",
]
