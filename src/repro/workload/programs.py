"""Tree-program workloads: decision points exercised at runtime.

The paper's simulations use flat programs and leave "the effects of
conditionally unsafe and conditionally conflict" to future work
(Section 6).  This module provides that extension: it generates
transaction *types* that are genuine transaction trees — a root segment
of accesses followed by decision points that commit the instance to one
of several branch segments — and instances that resolve those decisions
at run time.

Each generated :class:`~repro.rtdb.transaction.TransactionSpec` carries a
``node_schedule`` that tells the simulator at which operation index the
transaction's knowledge state advances to which tree node; the
:class:`~repro.core.oracle.TreeOracle` then evaluates conflict/safety
against the *current node*, so the scheduler sees CONDITIONALLY_UNSAFE
and CONDITIONALLY_CONFLICT states exactly as the paper defines them.
"""

from __future__ import annotations

from repro.analysis.program import ProgramNode, TransactionProgram
from repro.analysis.table import RelationTable
from repro.analysis.tree import TransactionTree
from repro.config import SimulationConfig
from repro.rtdb.transaction import Operation, TransactionSpec
from repro.sim.random import RandomStream, StreamFactory
from repro.workload.deadlines import assign_deadline
from repro.workload.arrivals import poisson_arrivals


class TreeWorkloadGenerator:
    """Workloads whose transaction types contain decision points.

    Parameters beyond the shared :class:`SimulationConfig`:

    ``branch_probability``
        Chance that a program (sub)segment ends in a decision point
        rather than a leaf.
    ``n_branches``
        Fan-out of each decision point.
    ``max_depth``
        Maximum number of nested decision points per program.
    """

    def __init__(
        self,
        config: SimulationConfig,
        seed: int,
        branch_probability: float = 0.7,
        n_branches: int = 2,
        max_depth: int = 2,
    ) -> None:
        if not 0.0 <= branch_probability <= 1.0:
            raise ValueError("branch probability must be in [0, 1]")
        if n_branches < 2:
            raise ValueError("a decision point needs at least 2 branches")
        if max_depth < 1:
            raise ValueError("max depth must be >= 1")
        self.config = config
        self.seed = seed
        self.branch_probability = branch_probability
        self.n_branches = n_branches
        self.max_depth = max_depth
        self._factory = StreamFactory(seed)

    # -- program construction -------------------------------------------

    def make_programs(self) -> list[TransactionProgram]:
        """One tree program per transaction type."""
        stream = self._factory.stream("tree-types")
        return [
            self._make_program(type_id, stream)
            for type_id in range(self.config.n_transaction_types)
        ]

    def _make_program(self, type_id: int, stream: RandomStream) -> TransactionProgram:
        total = stream.positive_int_normal(
            self.config.updates_mean, self.config.updates_std
        )
        total = min(total, max(1, self.config.db_size // 2))
        name = f"tree{type_id}"
        root = self._make_node(name, total, depth=0, used=set(), stream=stream)
        return TransactionProgram(name, root)

    def _make_node(
        self,
        label: str,
        budget: int,
        depth: int,
        used: set[int],
        stream: RandomStream,
    ) -> ProgramNode:
        """Build a (sub)tree with roughly ``budget`` accesses per path.

        ``used`` holds the items already accessed on the path from the
        root, so a single execution path never repeats an item.
        """
        may_branch = (
            depth < self.max_depth
            and budget >= 2
            and stream.coin(self.branch_probability)
        )
        segment_size = max(1, budget // 2) if may_branch else budget
        segment = self._fresh_items(segment_size, used, stream)
        if not may_branch:
            return ProgramNode(label, accesses=segment)
        remaining = budget - len(segment)
        children = []
        path_used = used | set(segment)
        for branch in range(self.n_branches):
            child_label = f"{label}.{branch}"
            # Each branch samples independently: siblings may overlap each
            # other (that is what makes conflicts *conditional*).
            children.append(
                self._make_node(
                    child_label,
                    max(1, remaining),
                    depth + 1,
                    set(path_used),
                    stream,
                )
            )
        return ProgramNode(label, accesses=segment, children=children)

    def _fresh_items(
        self, count: int, used: set[int], stream: RandomStream
    ) -> list[int]:
        available = self.config.db_size - len(used)
        count = min(count, available)
        items: list[int] = []
        while len(items) < count:
            item = stream.randint(0, self.config.db_size - 1)
            if item not in used:
                used.add(item)
                items.append(item)
        return items

    # -- workload construction ------------------------------------------

    def generate(self) -> tuple[RelationTable, list[TransactionSpec]]:
        """The relation table and the instance workload.

        The relation table is what the paper's pre-analysis would hand to
        the scheduler; pass it to a
        :class:`~repro.core.oracle.TreeOracle`.
        """
        config = self.config
        programs = self.make_programs()
        trees = [TransactionTree(program) for program in programs]
        table = RelationTable(trees)

        arrival_stream = self._factory.stream("arrivals")
        choice_stream = self._factory.stream("type-choice")
        slack_stream = self._factory.stream("slack")
        path_stream = self._factory.stream("decision-path")
        io_stream = self._factory.stream("disk-io")

        arrivals = poisson_arrivals(
            arrival_stream, config.arrival_rate, config.n_transactions
        )
        specs: list[TransactionSpec] = []
        for tid, arrival_time in enumerate(arrivals):
            tree = choice_stream.choice(trees)
            operations, node_schedule = self._instantiate_path(
                tree, path_stream, io_stream
            )
            resource_time = sum(op.compute_time + op.io_time for op in operations)
            deadline = assign_deadline(
                arrival_time,
                resource_time,
                slack_stream,
                config.min_slack,
                config.max_slack,
            )
            specs.append(
                TransactionSpec(
                    tid=tid,
                    type_id=int(tree.name.removeprefix("tree")),
                    arrival_time=arrival_time,
                    deadline=deadline,
                    operations=operations,
                    program_name=tree.name,
                    node_schedule=node_schedule,
                )
            )
        return table, specs

    def _instantiate_path(
        self,
        tree: TransactionTree,
        path_stream: RandomStream,
        io_stream: RandomStream,
    ) -> tuple[tuple[Operation, ...], tuple[tuple[int, str], ...]]:
        """Walk the tree choosing one branch per decision point."""
        config = self.config
        operations: list[Operation] = []
        node_schedule: list[tuple[int, str]] = []
        node = tree.root
        while True:
            for item in sorted(node.accesses):
                operations.append(
                    Operation(
                        item=item,
                        compute_time=config.compute_per_update,
                        io_time=(
                            config.disk_access_time
                            if config.disk_resident
                            and io_stream.coin(config.disk_access_prob)
                            else 0.0
                        ),
                    )
                )
            if node.is_leaf:
                break
            node = path_stream.choice(node.children)
            node_schedule.append((len(operations), node.label))
        return tuple(operations), tuple(node_schedule)
