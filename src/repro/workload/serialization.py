"""Workload serialization: save and replay exact workloads.

The paired-comparison methodology depends on replaying *identical*
workloads; serializing them makes runs shareable across machines and
lets a failing schedule be archived next to a bug report.  The format is
JSON Lines — one transaction spec per line — with a header line carrying
a format version.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.rtdb.transaction import Operation, TransactionSpec

FORMAT_VERSION = 1
_HEADER_KEY = "repro_workload_version"


def spec_to_dict(spec: TransactionSpec) -> dict:
    """Plain-data representation of one transaction spec."""
    return {
        "tid": spec.tid,
        "type_id": spec.type_id,
        "arrival_time": spec.arrival_time,
        "deadline": spec.deadline,
        "program_name": spec.program_name,
        "criticalness": spec.criticalness,
        "node_schedule": [list(pair) for pair in spec.node_schedule],
        "operations": [
            {
                "item": op.item,
                "compute_time": op.compute_time,
                "io_time": op.io_time,
                "is_write": op.is_write,
            }
            for op in spec.operations
        ],
    }


def spec_from_dict(data: dict) -> TransactionSpec:
    """Inverse of :func:`spec_to_dict` (validates via the constructors)."""
    return TransactionSpec(
        tid=int(data["tid"]),
        type_id=int(data["type_id"]),
        arrival_time=float(data["arrival_time"]),
        deadline=float(data["deadline"]),
        program_name=str(data.get("program_name", "")),
        criticalness=int(data.get("criticalness", 0)),
        node_schedule=tuple(
            (int(index), str(label))
            for index, label in data.get("node_schedule", [])
        ),
        operations=tuple(
            Operation(
                item=int(op["item"]),
                compute_time=float(op["compute_time"]),
                io_time=float(op.get("io_time", 0.0)),
                is_write=bool(op.get("is_write", True)),
            )
            for op in data["operations"]
        ),
    )


def save_workload(workload: Sequence[TransactionSpec], path: str | Path) -> Path:
    """Write a workload as JSON Lines; returns the path."""
    path = Path(path)
    with open(path, "w") as handle:
        handle.write(json.dumps({_HEADER_KEY: FORMAT_VERSION}) + "\n")
        for spec in workload:
            handle.write(json.dumps(spec_to_dict(spec)) + "\n")
    return path


def load_workload(path: str | Path) -> list[TransactionSpec]:
    """Read a workload written by :func:`save_workload`."""
    path = Path(path)
    with open(path) as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"{path} is empty")
    header = json.loads(lines[0])
    version = header.get(_HEADER_KEY)
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path} has workload format version {version!r}; "
            f"this library reads version {FORMAT_VERSION}"
        )
    return [spec_from_dict(json.loads(line)) for line in lines[1:]]
