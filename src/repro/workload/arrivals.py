"""Arrival processes.

The paper's transactions "enter the system according to a Poisson
process with arrival rate lambda (i.e., exponentially distributed
inter-arrival times with mean value 1/lambda), and they are ready to
execute when they enter the system (release time equals arrival time)".

Real embedded workloads are rarely that smooth, so an **interrupted
Poisson process** is also provided (:func:`bursty_arrivals`): the source
alternates between exponentially distributed ON and OFF periods, firing
at a boosted rate while ON and a depressed rate while OFF, with the
long-run mean rate preserved.  Burstiness stresses exactly the transient
overloads CCA's continuous re-evaluation is designed to absorb.
"""

from __future__ import annotations

from repro.sim.random import RandomStream


def poisson_arrivals(
    stream: RandomStream,
    rate_per_second: float,
    count: int,
    start: float = 0.0,
) -> list[float]:
    """``count`` arrival times (ms) of a Poisson process.

    ``rate_per_second`` is the paper's lambda in transactions/second; the
    returned times are in milliseconds, the simulation clock unit.
    """
    if rate_per_second <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate_per_second}")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    mean_interarrival_ms = 1000.0 / rate_per_second
    times: list[float] = []
    now = start
    for _ in range(count):
        now += stream.exponential(mean_interarrival_ms)
        times.append(now)
    return times


def bursty_arrivals(
    stream: RandomStream,
    mean_rate_per_second: float,
    count: int,
    burst_factor: float = 4.0,
    burst_fraction: float = 0.2,
    mean_burst_ms: float = 2000.0,
    start: float = 0.0,
) -> list[float]:
    """``count`` arrival times (ms) of an interrupted Poisson process.

    The source spends (on average) ``burst_fraction`` of its time in ON
    periods of mean length ``mean_burst_ms``, arriving at
    ``burst_factor`` times the mean rate; OFF periods absorb the slack so
    the long-run rate stays ``mean_rate_per_second``:

        rate_on  = mean_rate * burst_factor
        rate_off = mean_rate * (1 - burst_fraction * burst_factor)
                             / (1 - burst_fraction)

    ``burst_factor`` may not exceed ``1 / burst_fraction`` (the OFF rate
    would go negative).  ``burst_factor = 1`` degenerates to Poisson.
    """
    if mean_rate_per_second <= 0:
        raise ValueError("mean arrival rate must be positive")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if not 0.0 < burst_fraction < 1.0:
        raise ValueError("burst fraction must be in (0, 1)")
    if burst_factor < 1.0:
        raise ValueError("burst factor must be >= 1")
    if burst_factor * burst_fraction > 1.0:
        raise ValueError(
            "burst_factor may not exceed 1/burst_fraction "
            "(the off-period rate would be negative)"
        )
    if mean_burst_ms <= 0:
        raise ValueError("mean burst duration must be positive")

    rate_on = mean_rate_per_second * burst_factor
    rate_off = (
        mean_rate_per_second
        * (1.0 - burst_fraction * burst_factor)
        / (1.0 - burst_fraction)
    )
    mean_gap_ms = mean_burst_ms * (1.0 - burst_fraction) / burst_fraction

    times: list[float] = []
    now = start
    in_burst = False
    phase_end = now + stream.exponential(mean_gap_ms)
    while len(times) < count:
        rate = rate_on if in_burst else rate_off
        if rate <= 0:
            now = phase_end
            in_burst = not in_burst
            phase_end = now + stream.exponential(
                mean_burst_ms if in_burst else mean_gap_ms
            )
            continue
        gap = stream.exponential(1000.0 / rate)
        if now + gap >= phase_end:
            now = phase_end
            in_burst = not in_burst
            phase_end = now + stream.exponential(
                mean_burst_ms if in_burst else mean_gap_ms
            )
            continue
        now += gap
        times.append(now)
    return times
