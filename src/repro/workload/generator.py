"""Assemble complete workloads.

A workload is the full, immutable input of one simulated run: every
transaction's type, arrival time, operations (with their disk legs
pre-drawn) and deadline.  Generating it *before* simulation — rather than
drawing variates during the run — means the exact same workload can be
replayed under every policy, giving the paired EDF-vs-CCA comparisons the
paper's methodology implies (same seeds, same transactions).

Stream separation (see :class:`repro.sim.random.StreamFactory`) keeps the
type table, arrival process, type choices, slack draws and disk-access
coin flips independent, so e.g. changing the arrival rate does not
perturb the type table of the same seed.
"""

from __future__ import annotations

from repro.config import SimulationConfig
from repro.rtdb.transaction import Operation, TransactionSpec
from repro.sim.random import StreamFactory
from repro.workload.deadlines import assign_deadline
from repro.workload.arrivals import bursty_arrivals, poisson_arrivals
from repro.workload.types import TransactionType, make_type_table


class WorkloadGenerator:
    """Generates the paper's workload for one (config, seed) pair."""

    def __init__(self, config: SimulationConfig, seed: int) -> None:
        self.config = config
        self.seed = seed
        self._factory = StreamFactory(seed)

    def make_types(self) -> list[TransactionType]:
        """The per-run transaction type table."""
        return make_type_table(self.config, self._factory.stream("types"))

    def generate(self) -> list[TransactionSpec]:
        """The full workload: ``config.n_transactions`` transaction specs,
        ordered by arrival time."""
        config = self.config
        types = self.make_types()
        arrival_stream = self._factory.stream("arrivals")
        choice_stream = self._factory.stream("type-choice")
        slack_stream = self._factory.stream("slack")
        io_stream = self._factory.stream("disk-io")
        criticalness_stream = self._factory.stream("criticalness")

        if config.arrival_model == "bursty":
            arrivals = bursty_arrivals(
                arrival_stream,
                config.arrival_rate,
                config.n_transactions,
                burst_factor=config.burst_factor,
                burst_fraction=config.burst_fraction,
                mean_burst_ms=config.mean_burst_ms,
            )
        else:
            arrivals = poisson_arrivals(
                arrival_stream, config.arrival_rate, config.n_transactions
            )
        specs: list[TransactionSpec] = []
        for tid, arrival_time in enumerate(arrivals):
            tx_type = choice_stream.choice(types)
            operations = tuple(
                Operation(
                    item=item,
                    compute_time=tx_type.compute_per_update,
                    io_time=(
                        config.disk_access_time
                        if config.disk_resident and io_stream.coin(config.disk_access_prob)
                        else 0.0
                    ),
                    is_write=is_write,
                )
                for item, is_write in zip(tx_type.items, tx_type.write_flags)
            )
            resource_time = sum(op.compute_time + op.io_time for op in operations)
            deadline = assign_deadline(
                arrival_time,
                resource_time,
                slack_stream,
                config.min_slack,
                config.max_slack,
            )
            criticalness = (
                criticalness_stream.randint(0, config.criticalness_levels - 1)
                if config.criticalness_levels > 1
                else 0
            )
            specs.append(
                TransactionSpec(
                    tid=tid,
                    type_id=tx_type.type_id,
                    arrival_time=arrival_time,
                    deadline=deadline,
                    operations=operations,
                    program_name=tx_type.program_name,
                    criticalness=criticalness,
                )
            )
        return specs


def generate_workload(config: SimulationConfig, seed: int) -> list[TransactionSpec]:
    """Convenience wrapper: one call, one workload."""
    return WorkloadGenerator(config, seed).generate()
