"""Slack-based deadline assignment.

Paper formula::

    deadline = arrival_time + resource_time * (1 + slack_percent)

with ``slack_percent`` uniform on [Min-slack, Max-slack] (Table 1: 20 %
to 800 %, expressed here as fractions 0.2 .. 8.0) and ``resource_time``
the transaction's isolated execution time — CPU plus disk legs.
"""

from __future__ import annotations

from repro.sim.random import RandomStream


def assign_deadline(
    arrival_time: float,
    resource_time: float,
    stream: RandomStream,
    min_slack: float,
    max_slack: float,
) -> float:
    """Deadline for a transaction arriving at ``arrival_time``."""
    if resource_time <= 0:
        raise ValueError(f"resource time must be positive, got {resource_time}")
    if min_slack < 0 or max_slack < min_slack:
        raise ValueError(f"invalid slack range [{min_slack}, {max_slack}]")
    slack_percent = stream.uniform(min_slack, max_slack)
    return arrival_time + resource_time * (1.0 + slack_percent)
