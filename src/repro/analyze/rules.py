"""The static-analysis rule registry: ``ANAnnn`` codes and rationale.

Mirrors :mod:`repro.checks.rules` (the linter) and
:mod:`repro.certify.rules` (the certifier): every verdict ``repro
analyze`` can emit is declared here with a stable code, and the
registry feeds ``--list-rules``, the JSON reporter and
``docs/ANALYZE.md``.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class AnalysisRule:
    """One analysis pass: a stable code plus what it proves."""

    code: str
    name: str
    summary: str
    """One line, shown next to each verdict."""
    rationale: str
    """What the pass establishes and why it matters (docs)."""


_REGISTRY: dict[str, AnalysisRule] = {}


def register(rule: AnalysisRule) -> AnalysisRule:
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule


def all_rules() -> tuple[AnalysisRule, ...]:
    """Every registered rule, in code order."""
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def get_rule(code: str) -> AnalysisRule:
    """The rule registered under ``code`` (KeyError if unknown)."""
    return _REGISTRY[code]


ANA001 = register(
    AnalysisRule(
        code="ANA001",
        name="conflict-mask-equivalence",
        summary="SpecMasks conflict tables match the reference SetOracle",
        rationale=(
            "The kernel engine answers conflict questions from per-slot "
            "bitmasks (SpecMasks.data/write/conflict_slots) instead of "
            "the reference set algebra.  This pass recomputes every "
            "slot's masks from its spec, checks flat_conflict against "
            "SetOracle.conflict for every transaction pair (by "
            "equivalence class, exhaustively), verifies symmetry, and "
            "expands every conflict_slots row against the class "
            "adjacency — so kernel-table drift is caught statically, "
            "with a minimal (pair, state, relation) counterexample, "
            "instead of hoping a differential simulation covers it."
        ),
    )
)

ANA002 = register(
    AnalysisRule(
        code="ANA002",
        name="safety-mask-equivalence",
        summary="flat_safety matches SetOracle.safety in every access state",
        rationale=(
            "Safety is asymmetric and depends on the subject's *current* "
            "access state, not just its declared sets.  This pass "
            "replays every reachable access state (each operation-list "
            "prefix) of every subject class against every runner class "
            "and checks the mask-form answer against the reference "
            "oracle — the exhaustive version of the randomized property "
            "test in tests/core/test_masks.py."
        ),
    )
)

ANA003 = register(
    AnalysisRule(
        code="ANA003",
        name="state-table-equivalence",
        summary="StateTable matrices match freshly recomputed tree relations",
        rationale=(
            "StateTable flattens the pre-analysis RelationTable into "
            "dense int8 matrices indexed by (program, node) state ids.  "
            "This pass rebuilds every program tree from scratch and "
            "recomputes conflict_between/safety_of for every state "
            "pair, comparing against the flattened codes and the "
            "state-id index — any encoding or indexing drift surfaces "
            "as a named state-pair counterexample."
        ),
    )
)

ANA004 = register(
    AnalysisRule(
        code="ANA004",
        name="relation-laws",
        summary="conflict is symmetric; no conflict implies safe",
        rationale=(
            "Section 3.2.2's relations obey laws the scheduler relies "
            "on: conflict is symmetric, and two transactions that "
            "cannot conflict can never make each other unsafe.  This "
            "pass checks both over every class pair (flat masks) and "
            "every state pair (tree tables); a violation means the "
            "relations themselves — not just an encoding — are broken."
        ),
    )
)

ANA005 = register(
    AnalysisRule(
        code="ANA005",
        name="static-feasibility",
        summary="every deadline covers the transaction's isolated run time",
        rationale=(
            "deadline = arrival + resource_time * (1 + slack) with "
            "slack >= min_slack >= 0, so no transaction should be "
            "impossible to meet even on an idle system.  A statically "
            "infeasible transaction marks a workload-generator or "
            "config regression and puts a hard floor under the miss "
            "rate before any simulation runs."
        ),
    )
)

ANA006 = register(
    AnalysisRule(
        code="ANA006",
        name="graph-metric-consistency",
        summary="conflict-graph metrics are internally consistent",
        rationale=(
            "The contention metrics feed sweep-cell predictions and the "
            "ROADMAP's batch-scheduling work, so they are cross-checked "
            "against their own definitions: degree sums equal twice the "
            "certain-pair count, pair fractions partition [0, 1], the "
            "reported compatible set is pairwise compatible, and the "
            "greedy bound never exceeds the exact optimum when both "
            "are computed."
        ),
    )
)
