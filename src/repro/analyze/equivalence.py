"""The equivalence prover: kernel flat tables vs reference relations.

The kernel engine (:mod:`repro.core.kernel`) never consults the
reference oracles at runtime — it answers every conflict/safety
question from precomputed integer tables
(:class:`~repro.core.masks.SpecMasks` for flat workloads,
:class:`~repro.core.masks.StateTable` for tree programs).  The
differential simulation battery exercises those tables only along the
schedules its cells happen to produce; this module instead checks them
*exhaustively and statically*:

* every slot's ``data``/``write`` mask is recomputed from its spec;
* ``flat_conflict``/``flat_safety`` are compared against
  :class:`~repro.core.oracle.SetOracle` for every pair of transaction
  equivalence classes — for safety, in **every reachable access
  state** (each operation-list prefix) of the subject;
* every ``conflict_slots`` row is expanded from the class adjacency
  and compared bit for bit;
* every :class:`~repro.core.masks.StateTable` entry is compared
  against freshly recomputed ``conflict_between``/``safety_of`` over
  rebuilt program trees.

Two specs are mask-equivalent iff they declare the same (item,
is_write) operation sequence — the workload generator reuses one type
table across ~5–20× more instances, so class-level enumeration keeps
the proof exhaustive *and* tractable (50 classes × all prefix states
instead of 1000² instance pairs).

On mismatch the prover emits a minimal :class:`Counterexample` — the
pair, the access state, and the disagreeing relation — and
:func:`mutate_spec_masks`/:func:`mutate_state_table` let tests and the
CLI prove the prover: a single flipped bit must surface as exactly
such a counterexample.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.analysis.relations import (
    Conflict,
    Safety,
    conflict_between,
    safety_of,
)
from repro.analysis.table import RelationTable
from repro.analysis.tree import TransactionTree
from repro.core.masks import (
    CONFLICT_FROM_CODE,
    CONFLICT_NONE,
    SAFETY_FROM_CODE,
    SAFETY_SAFE,
    SpecMasks,
    StateTable,
    flat_conflict,
    flat_safety,
    items_mask,
    mask_items,
)
from repro.core.oracle import SetOracle, replay_transaction
from repro.rtdb.transaction import Transaction, TransactionSpec

#: Enum -> kernel code, the inverse of the ``*_FROM_CODE`` tuples.
_CONFLICT_CODE = {relation: code for code, relation in enumerate(CONFLICT_FROM_CODE)}
_SAFETY_CODE = {relation: code for code, relation in enumerate(SAFETY_FROM_CODE)}

#: Stop collecting after this many counterexamples — one is enough to
#: fail the verdict, a handful is enough to debug, thousands is noise.
DEFAULT_LIMIT = 25


@dataclasses.dataclass(frozen=True)
class Counterexample:
    """One minimal disagreement between a kernel table and the reference.

    ``pair`` names the two parties (slot/program labels), ``state`` the
    access state the disagreement occurs in, ``relation`` which table
    disagreed.
    """

    rule: str
    relation: str
    pair: tuple[str, str]
    state: str
    expected: str
    actual: str

    def describe(self) -> str:
        a, b = self.pair
        return (
            f"{self.relation}({a}, {b}) in state [{self.state}]: "
            f"expected {self.expected}, got {self.actual}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "relation": self.relation,
            "pair": list(self.pair),
            "state": self.state,
            "expected": self.expected,
            "actual": self.actual,
        }


# ---------------------------------------------------------------------------
# Equivalence classes
# ---------------------------------------------------------------------------

def _class_key(spec: TransactionSpec) -> tuple[tuple[int, bool], ...]:
    """Two specs with equal keys have identical masks and relations."""
    return tuple((op.item, op.is_write) for op in spec.operations)


def spec_classes(
    specs: Sequence[TransactionSpec],
) -> list[list[int]]:
    """Slot indices grouped by mask-equivalence class, first-seen order."""
    by_key: dict[tuple[tuple[int, bool], ...], list[int]] = {}
    for slot, spec in enumerate(specs):
        by_key.setdefault(_class_key(spec), []).append(slot)
    return list(by_key.values())


def _slot_label(specs: Sequence[TransactionSpec], slot: int) -> str:
    return f"slot {slot} ({specs[slot].program_name})"


def _prefix_state(spec: TransactionSpec, n_ops: int) -> tuple[set[int], set[int]]:
    """(accessed, accessed_writes) after the first ``n_ops`` operations."""
    accessed = {op.item for op in spec.operations[:n_ops]}
    writes = {op.item for op in spec.operations[:n_ops] if op.is_write}
    return accessed, writes


# ---------------------------------------------------------------------------
# SpecMasks prover (ANA001 / ANA002 / ANA004)
# ---------------------------------------------------------------------------

def prove_spec_masks(
    specs: Sequence[TransactionSpec],
    db_size: int,
    masks: Optional[SpecMasks] = None,
    limit: int = DEFAULT_LIMIT,
) -> list[Counterexample]:
    """Exhaustively check ``masks`` against the reference ``SetOracle``.

    Covers every transaction pair (via mask-equivalence classes) and,
    for safety, every reachable access state of the subject.  Returns
    at most ``limit`` counterexamples; an empty list is the proof.
    """
    if masks is None:
        masks = SpecMasks.from_specs(specs, db_size)
    out: list[Counterexample] = []

    def emit(ce: Counterexample) -> bool:
        out.append(ce)
        return len(out) >= limit

    n_words = max(1, (db_size + 63) // 64)
    if len(masks.data) != len(specs) or len(masks.write) != len(specs):
        out.append(
            Counterexample(
                rule="ANA001",
                relation="shape",
                pair=("workload", "masks"),
                state="construction",
                expected=f"{len(specs)} slots",
                actual=f"{len(masks.data)} data / {len(masks.write)} write",
            )
        )
        return out
    if masks.n_words != n_words:
        emit(
            Counterexample(
                rule="ANA001",
                relation="n_words",
                pair=("workload", "masks"),
                state=f"db_size={db_size}",
                expected=str(n_words),
                actual=str(masks.n_words),
            )
        )

    # Pass 1 — every slot's masks recomputed from its declared sets.
    for slot, spec in enumerate(specs):
        expected_data = 0
        expected_write = 0
        for op in spec.operations:
            expected_data |= 1 << op.item
            if op.is_write:
                expected_write |= 1 << op.item
        for relation, expected, actual in (
            ("data-mask", expected_data, masks.data[slot]),
            ("write-mask", expected_write, masks.write[slot]),
        ):
            if expected != actual and emit(
                Counterexample(
                    rule="ANA001",
                    relation=relation,
                    pair=(_slot_label(specs, slot), "declared sets"),
                    state="static",
                    expected=str(mask_items(expected)),
                    actual=str(mask_items(actual)),
                )
            ):
                return out

    classes = spec_classes(specs)
    reps = [members[0] for members in classes]
    oracle = SetOracle()
    live = {rep: Transaction(specs[rep]) for rep in reps}

    # Pass 2 — conflict over every class pair, plus symmetry (ANA004).
    conflict_codes: dict[tuple[int, int], int] = {}
    for i, rep_a in enumerate(reps):
        for rep_b in reps[i:]:
            expected = _CONFLICT_CODE[oracle.conflict(live[rep_a], live[rep_b])]
            conflict_codes[(rep_a, rep_b)] = expected
            conflict_codes[(rep_b, rep_a)] = expected
            actual = flat_conflict(
                masks.data[rep_a],
                masks.write[rep_a],
                masks.data[rep_b],
                masks.write[rep_b],
            )
            mirrored = flat_conflict(
                masks.data[rep_b],
                masks.write[rep_b],
                masks.data[rep_a],
                masks.write[rep_a],
            )
            pair = (_slot_label(specs, rep_a), _slot_label(specs, rep_b))
            if actual != expected and emit(
                Counterexample(
                    rule="ANA001",
                    relation="conflict",
                    pair=pair,
                    state="declared sets",
                    expected=CONFLICT_FROM_CODE[expected].value,
                    actual=CONFLICT_FROM_CODE[actual].value,
                )
            ):
                return out
            if mirrored != actual and emit(
                Counterexample(
                    rule="ANA004",
                    relation="conflict-symmetry",
                    pair=pair,
                    state="declared sets",
                    actual=CONFLICT_FROM_CODE[mirrored].value,
                    expected=CONFLICT_FROM_CODE[actual].value,
                )
            ):
                return out

    # Pass 3 — every conflict_slots row expanded from the class
    # adjacency (the quadratic table, checked in O(n * classes)).
    class_of: dict[int, int] = {}
    class_bits: list[int] = []
    for index, members in enumerate(classes):
        bits = 0
        for slot in members:
            class_of[slot] = index
            bits |= 1 << slot
        class_bits.append(bits)
    rows = masks.conflict_slots
    if len(rows) != len(specs):
        emit(
            Counterexample(
                rule="ANA001",
                relation="conflict_slots-shape",
                pair=("workload", "masks"),
                state="construction",
                expected=f"{len(specs)} rows",
                actual=f"{len(rows)} rows",
            )
        )
        return out
    certain_with: list[int] = []  # class index -> OR of conflicting classes' bits
    for index, rep_a in enumerate(reps):
        bits = 0
        for other, rep_b in enumerate(reps):
            if conflict_codes[(rep_a, rep_b)] == _CONFLICT_CODE[Conflict.CERTAIN]:
                bits |= class_bits[other]
        certain_with.append(bits)
    for slot in range(len(specs)):
        expected_row = certain_with[class_of[slot]] & ~(1 << slot)
        if rows[slot] != expected_row:
            diff = rows[slot] ^ expected_row
            other = mask_items(diff)[0]
            if emit(
                Counterexample(
                    rule="ANA001",
                    relation="conflict_slots",
                    pair=(_slot_label(specs, slot), _slot_label(specs, other)),
                    state=f"row bit {other}",
                    expected=(
                        "set" if expected_row >> other & 1 else "clear"
                    ),
                    actual="set" if rows[slot] >> other & 1 else "clear",
                )
            ):
                return out

    # Pass 4 — safety over every ordered class pair in every reachable
    # access state of the subject, plus the no-conflict ⇒ safe law.
    for rep_subject in reps:
        spec_subject = specs[rep_subject]
        for n_ops in range(len(spec_subject.operations) + 1):
            accessed, writes = _prefix_state(spec_subject, n_ops)
            accessed_mask = items_mask(accessed)
            writes_mask = items_mask(writes)
            subject = replay_transaction(spec_subject, accessed, writes)
            state = (
                f"after {n_ops}/{len(spec_subject.operations)} ops, "
                f"accessed={sorted(accessed)}"
            )
            for rep_runner in reps:
                expected = _SAFETY_CODE[oracle.safety(subject, live[rep_runner])]
                actual = flat_safety(
                    accessed_mask,
                    writes_mask,
                    masks.data[rep_runner],
                    masks.write[rep_runner],
                )
                pair = (
                    _slot_label(specs, rep_subject),
                    _slot_label(specs, rep_runner),
                )
                if actual != expected and emit(
                    Counterexample(
                        rule="ANA002",
                        relation="safety",
                        pair=pair,
                        state=state,
                        expected=SAFETY_FROM_CODE[expected].value,
                        actual=SAFETY_FROM_CODE[actual].value,
                    )
                ):
                    return out
                if (
                    conflict_codes[(rep_subject, rep_runner)] == CONFLICT_NONE
                    and actual != SAFETY_SAFE
                    and emit(
                        Counterexample(
                            rule="ANA004",
                            relation="no-conflict-implies-safe",
                            pair=pair,
                            state=state,
                            expected=Safety.SAFE.value,
                            actual=SAFETY_FROM_CODE[actual].value,
                        )
                    )
                ):
                    return out
    return out


# ---------------------------------------------------------------------------
# StateTable prover (ANA003 / ANA004)
# ---------------------------------------------------------------------------

def prove_state_table(
    table: RelationTable,
    state_table: Optional[StateTable] = None,
    limit: int = DEFAULT_LIMIT,
) -> list[Counterexample]:
    """Check every ``StateTable`` entry against freshly rebuilt trees.

    The trees are re-analyzed from their programs (no cached sets are
    trusted) and ``conflict_between``/``safety_of`` recomputed for
    every (program, node) state pair, alongside the relation laws the
    scheduler relies on.
    """
    if state_table is None:
        state_table = StateTable(table)
    out: list[Counterexample] = []
    fresh = {
        name: TransactionTree(table.tree(name).program)
        for name in table.programs
    }

    for index, state in enumerate(state_table.states):
        if state_table.index_of(*state) != index:
            out.append(
                Counterexample(
                    rule="ANA003",
                    relation="state-index",
                    pair=(f"{state[0]}@{state[1]}", "state ids"),
                    state="construction",
                    expected=str(index),
                    actual=str(state_table.index_of(*state)),
                )
            )
            if len(out) >= limit:
                return out

    for i, (name_a, label_a) in enumerate(state_table.states):
        for j, (name_b, label_b) in enumerate(state_table.states):
            pair = (f"{name_a}@{label_a}", f"{name_b}@{label_b}")
            expected_conflict = _CONFLICT_CODE[
                conflict_between(fresh[name_a], label_a, fresh[name_b], label_b)
            ]
            actual_conflict = state_table.conflict_code(i, j)
            if actual_conflict != expected_conflict:
                out.append(
                    Counterexample(
                        rule="ANA003",
                        relation="conflict",
                        pair=pair,
                        state="(program, node) states",
                        expected=CONFLICT_FROM_CODE[expected_conflict].value,
                        actual=CONFLICT_FROM_CODE[actual_conflict].value,
                    )
                )
            expected_safety = _SAFETY_CODE[
                safety_of(fresh[name_a], label_a, fresh[name_b], label_b)
            ]
            actual_safety = state_table.safety_code(i, j)
            if actual_safety != expected_safety:
                out.append(
                    Counterexample(
                        rule="ANA003",
                        relation="safety",
                        pair=pair,
                        state="(program, node) states",
                        expected=SAFETY_FROM_CODE[expected_safety].value,
                        actual=SAFETY_FROM_CODE[actual_safety].value,
                    )
                )
            if state_table.conflict_code(i, j) != state_table.conflict_code(j, i):
                out.append(
                    Counterexample(
                        rule="ANA004",
                        relation="conflict-symmetry",
                        pair=pair,
                        state="(program, node) states",
                        expected=CONFLICT_FROM_CODE[
                            state_table.conflict_code(i, j)
                        ].value,
                        actual=CONFLICT_FROM_CODE[
                            state_table.conflict_code(j, i)
                        ].value,
                    )
                )
            if (
                actual_conflict == CONFLICT_NONE
                and actual_safety != SAFETY_SAFE
            ):
                out.append(
                    Counterexample(
                        rule="ANA004",
                        relation="no-conflict-implies-safe",
                        pair=pair,
                        state="(program, node) states",
                        expected=Safety.SAFE.value,
                        actual=SAFETY_FROM_CODE[actual_safety].value,
                    )
                )
            if len(out) >= limit:
                return out
    return out


# ---------------------------------------------------------------------------
# Mutations — proving the prover
# ---------------------------------------------------------------------------

#: Mutable tables, for ``--mutate KIND:ROW:BIT``.
MUTATION_KINDS = ("data", "write", "conflict", "state-safety", "state-conflict")


@dataclasses.dataclass(frozen=True)
class MaskMutation:
    """One deliberate single-bit (or single-entry) table corruption."""

    kind: str
    row: int
    bit: int
    """Bit index for mask kinds; column index for ``state-*`` kinds."""


def parse_mutation(text: str) -> MaskMutation:
    """Parse ``KIND:ROW:BIT`` (e.g. ``data:3:7``, ``state-safety:0:1``)."""
    parts = text.split(":")
    if len(parts) != 3:
        raise ValueError(
            f"mutation must be KIND:ROW:BIT, got {text!r} "
            f"(kinds: {', '.join(MUTATION_KINDS)})"
        )
    kind = parts[0].strip()
    if kind not in MUTATION_KINDS:
        raise ValueError(
            f"unknown mutation kind {kind!r}; "
            f"kinds: {', '.join(MUTATION_KINDS)}"
        )
    try:
        row, bit = int(parts[1]), int(parts[2])
    except ValueError:
        raise ValueError(
            f"mutation ROW and BIT must be integers, got {text!r}"
        ) from None
    if row < 0 or bit < 0:
        raise ValueError(f"mutation ROW and BIT must be >= 0, got {text!r}")
    return MaskMutation(kind=kind, row=row, bit=bit)


def mutate_spec_masks(masks: SpecMasks, mutation: MaskMutation) -> SpecMasks:
    """A copy of ``masks`` with one bit flipped per ``mutation``.

    ``data``/``write`` flip a bit of one slot's static mask;
    ``conflict`` flips one bit of one (otherwise correctly computed)
    ``conflict_slots`` row.  The original is never modified.
    """
    if mutation.kind not in ("data", "write", "conflict"):
        raise ValueError(
            f"mutation kind {mutation.kind!r} does not apply to SpecMasks"
        )
    if not 0 <= mutation.row < len(masks.data):
        raise ValueError(
            f"mutation row {mutation.row} out of range "
            f"(workload has {len(masks.data)} slots)"
        )
    data = list(masks.data)
    write = list(masks.write)
    if mutation.kind == "data":
        data[mutation.row] ^= 1 << mutation.bit
    elif mutation.kind == "write":
        write[mutation.row] ^= 1 << mutation.bit
    mutated = SpecMasks(data, write, masks.n_words)
    if mutation.kind == "conflict":
        if not 0 <= mutation.bit < len(masks.data):
            raise ValueError(
                f"conflict mutation bit {mutation.bit} out of range "
                f"(rows have {len(masks.data)} slot bits)"
            )
        rows = list(masks.conflict_slots)
        rows[mutation.row] ^= 1 << mutation.bit
        # Pre-seed the cached_property so the flipped rows are what the
        # prover (and any consumer) observes.
        mutated.__dict__["conflict_slots"] = rows
    return mutated


def mutate_state_table(
    state_table: StateTable, mutation: MaskMutation
) -> StateTable:
    """Corrupt one ``StateTable`` entry in place (and return it).

    ``row``/``bit`` index the (subject, runner) state pair; the stored
    code is bumped to the next relation value — the smallest possible
    corruption of an int8 table entry.
    """
    if mutation.kind == "state-safety":
        matrix = state_table.safety
    elif mutation.kind == "state-conflict":
        matrix = state_table.conflict
    else:
        raise ValueError(
            f"mutation kind {mutation.kind!r} does not apply to StateTable"
        )
    n = len(state_table.states)
    if not (0 <= mutation.row < n and 0 <= mutation.bit < n):
        raise ValueError(
            f"state mutation ({mutation.row}, {mutation.bit}) out of "
            f"range (table has {n} states)"
        )
    matrix[mutation.row, mutation.bit] = (
        int(matrix[mutation.row, mutation.bit]) + 1
    ) % 3
    return state_table
