"""Text and JSON reporters for ``repro analyze``.

Same contract as the linter's and certifier's reporters: the text form
is for humans, the JSON form is versioned machine output (CI smoke,
tooling), and the digest renderers are the one-screen summaries the
sweep runner (``repro <fig> --analyze``) and ``repro validate`` print.
"""

from __future__ import annotations

from typing import Optional

from repro.analyze.feasibility import CellPrediction, classify_regime
from repro.analyze.runner import AnalysisResult
from repro.checks.report import json_envelope

#: Version of the JSON report layout.  Bump on breaking changes.
JSON_SCHEMA_VERSION = 1


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    """Human-readable analysis report."""
    where = (
        f"{result.experiment} (scale {result.scale})"
        if result.experiment is not None
        else "workload"
    )
    lines = [
        f"analyze: {where} — {result.n_transactions} transactions, "
        f"{result.graph.n_classes} program classes, db {result.db_size}"
    ]
    if result.sample_x is not None:
        lines.append(
            f"sample cell: x={result.sample_x:g}, seed={result.sample_seed}"
        )
    for verdict in result.verdicts:
        status = "PASS" if verdict.passed else "FAIL"
        lines.append(f"  {verdict.code}  {verdict.name:<26} {status}")
        if not verdict.passed or verbose:
            lines.append(f"          {verdict.detail}")
    lines.append(_graph_line(result))
    if result.cells:
        lines.append(_cells_line(result.cells))
        if verbose:
            for cell in result.cells:
                lines.append(
                    f"    x={cell.x:g} seed={cell.seed}: "
                    f"cpu {cell.cpu_utilization:.2f}, "
                    f"io {cell.io_utilization:.2f}, "
                    f"conflict {cell.conflict_density:.3f}, "
                    f"{cell.regime}, miss floor "
                    f"{100.0 * cell.predicted_miss_floor:.1f}%"
                )
    failed = [verdict for verdict in result.verdicts if not verdict.passed]
    if failed:
        lines.append(f"ANALYSIS FAILED: {len(failed)} verdict(s)")
    else:
        lines.append("ANALYSIS CLEAN")
    return "\n".join(lines)


def _graph_line(result: AnalysisResult) -> str:
    graph = result.graph
    bound = "exact" if graph.max_compatible_exact else "greedy bound"
    theorem1 = "yes" if graph.theorem1_no_wait else "no"
    return (
        f"graph: conflict {100.0 * graph.conflict_fraction:.1f}% certain, "
        f"{100.0 * graph.conditional_fraction:.1f}% conditional; "
        f"degrees {graph.degree_min}-{graph.degree_max} "
        f"(mean {graph.degree_mean:.1f}); "
        f"max compatible set {graph.max_compatible_set} ({bound}); "
        f"Theorem 1 no-wait: {theorem1}"
    )


def _cells_line(cells: list[CellPrediction]) -> str:
    by_regime: dict[str, int] = {}
    for cell in cells:
        by_regime[cell.regime] = by_regime.get(cell.regime, 0) + 1
    regimes = ", ".join(
        f"{name} {by_regime[name]}"
        for name in ("light", "moderate", "saturated")
        if name in by_regime
    )
    worst = max(cell.predicted_miss_floor for cell in cells)
    return (
        f"cells: {len(cells)} predicted — {regimes}; "
        f"worst miss floor {100.0 * worst:.1f}%"
    )


def render_json(result: AnalysisResult) -> str:
    """Machine-readable report with a pinned schema version."""
    return json_envelope("repro-analysis", JSON_SCHEMA_VERSION, result.to_dict())


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def render_analysis_digest(
    result: AnalysisResult, figure_result: Optional[object] = None
) -> str:
    """The console digest ``--analyze`` prints after a sweep.

    One verdict line, then one line per x value with the predicted
    regime/utilization — and, when ``figure_result`` carries the
    figure's observed miss-percent series, the observed numbers next to
    the predicted floor.  An observed miss rate *below* the static
    floor is impossible (the floor counts transactions no scheduler can
    save), so any such cell is flagged.
    """
    failed = [v.code for v in result.verdicts if not v.passed]
    verdict = (
        "clean"
        if not failed
        else f"FAILED ({', '.join(failed)})"
    )
    lines = [
        f"[analyze {result.experiment or 'workload'}: {verdict} — "
        f"{len(result.verdicts)} verdicts on sample x={result.sample_x:g} "
        f"seed={result.sample_seed}]"
        if result.sample_x is not None
        else f"[analyze {result.experiment or 'workload'}: {verdict}]"
    ]
    if not result.cells:
        return "\n".join(lines)

    observed: dict[str, dict[float, float]] = {}
    if figure_result is not None and _is_miss_figure(figure_result):
        observed = {
            name: dict(points)
            for name, points in figure_result.series.items()
        }

    by_x: dict[float, list[CellPrediction]] = {}
    for cell in result.cells:
        by_x.setdefault(cell.x, []).append(cell)
    for x in sorted(by_x):
        cells = by_x[x]
        cpu = _mean([cell.cpu_utilization for cell in cells])
        io = _mean([cell.io_utilization for cell in cells])
        floor = 100.0 * _mean([cell.predicted_miss_floor for cell in cells])
        line = (
            f"  x={x:g}: {classify_regime(cpu, io)} "
            f"(cpu {cpu:.2f}, io {io:.2f}), miss floor {floor:.1f}%"
        )
        seen = [
            (name, series[x])
            for name, series in observed.items()
            if x in series
        ]
        if seen:
            shown = ", ".join(f"{name} {value:.1f}%" for name, value in seen)
            line += f"; observed {shown}"
            if any(value < floor - 1e-6 for _, value in seen):
                line += "  << BELOW STATIC FLOOR"
        lines.append(line)
    return "\n".join(lines)


def _is_miss_figure(figure_result: object) -> bool:
    label = getattr(figure_result, "y_label", "")
    return isinstance(label, str) and "miss" in label.lower()
