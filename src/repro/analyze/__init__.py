"""Static workload analysis: the fourth layer of the checks stack.

``repro analyze`` inspects a workload and the conflict model *without
simulating*:

* the **equivalence prover** (:mod:`repro.analyze.equivalence`)
  exhaustively checks the kernel's flat tables
  (:class:`~repro.core.masks.SpecMasks`,
  :class:`~repro.core.masks.StateTable`) against the reference
  relations (:mod:`repro.analysis.relations`,
  :mod:`repro.core.oracle`) over every transaction pair and every
  reachable access state, emitting a minimal counterexample on
  mismatch;
* the **conflict-graph analyzer** (:mod:`repro.analyze.graph`) computes
  the workload's static contention structure — conflict /
  conditional / unsafe pair fractions, degree distribution, maximal
  compatible sets, Theorem-1 applicability;
* the **feasibility pass** (:mod:`repro.analyze.feasibility`) bounds
  per-transaction execution time against deadline slack and predicts
  each sweep cell's contention regime, recorded in the run manifest's
  schema-v6 ``analysis`` section and rendered against observed metrics
  by ``repro validate``.

The verdicts carry stable ``ANAnnn`` codes (:mod:`repro.analyze.rules`)
and the CLI follows the shared ``repro lint``/``repro certify``
contract: exit 0 when every verdict passes, 1 on any failure, 2 on
usage errors.  See ``docs/ANALYZE.md``.
"""

from repro.analyze.rules import all_rules, get_rule
from repro.analyze.runner import AnalysisResult, Verdict, analyze_experiment

__all__ = [
    "AnalysisResult",
    "Verdict",
    "all_rules",
    "analyze_experiment",
    "get_rule",
]
