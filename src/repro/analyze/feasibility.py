"""Static feasibility bounds and contention-regime prediction per cell.

Everything here is computable from the generated workload alone — no
simulation: the deadline formula gives each transaction a static slack
over its isolated execution time, the arrival span bounds offered CPU
and disk utilization, and the conflict-graph density summarizes how
much of that load contends.  The per-cell predictions land in the run
manifest's schema-v6 ``analysis`` section, and ``repro validate``
renders them against the observed miss rates — a free sanity check on
every sweep, and the ground-truth feature extractor the ROADMAP's
learned-oracle item needs.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.analyze.graph import ConflictGraph
from repro.config import SimulationConfig
from repro.rtdb.transaction import TransactionSpec
from repro.workload.generator import generate_workload

#: Utilization thresholds of the predicted contention regime.  Below
#: ``LIGHT`` the system should keep up comfortably; above ``1.0`` the
#: offered load exceeds capacity and misses are guaranteed at steady
#: state; between the two, contention decides.
LIGHT_UTILIZATION = 0.7

#: Tolerance for deadline-vs-resource-time comparisons (the deadline is
#: computed from the same floats, so exact equality is legitimate).
_EPSILON = 1e-9


@dataclasses.dataclass(frozen=True)
class CellPrediction:
    """Static predictions for one sweep cell's workload."""

    x: float
    seed: int
    n: int
    infeasible: int
    """Transactions whose deadline precedes arrival + resource_time —
    unmeetable even on an idle system."""
    min_slack_ms: float
    """Smallest deadline - arrival - resource_time over the workload."""
    mean_slack_ratio: float
    """Mean (deadline - arrival) / resource_time - 1 (the paper's slack
    draw, recovered from the generated deadlines)."""
    cpu_utilization: float
    """Total CPU demand / arrival span."""
    io_utilization: float
    """Total disk demand / arrival span (0 for main-memory workloads)."""
    conflict_density: float
    """Certain-conflict fraction of unordered transaction pairs."""
    regime: str
    """"light" | "moderate" | "saturated" (from resource utilization)."""
    predicted_miss_floor: float
    """infeasible / n — a hard lower bound on the miss fraction."""

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        return {"cell": {"x": out.pop("x"), "seed": out.pop("seed")},
                "predicted": out}


def classify_regime(cpu_utilization: float, io_utilization: float) -> str:
    """The predicted contention regime from offered utilizations."""
    load = max(cpu_utilization, io_utilization)
    if load >= 1.0:
        return "saturated"
    if load >= LIGHT_UTILIZATION:
        return "moderate"
    return "light"


def predict_specs(
    specs: Sequence[TransactionSpec], x: float, seed: int
) -> CellPrediction:
    """Static predictions for an already generated workload."""
    n = len(specs)
    if n == 0:
        return CellPrediction(
            x=x, seed=seed, n=0, infeasible=0, min_slack_ms=0.0,
            mean_slack_ratio=0.0, cpu_utilization=0.0, io_utilization=0.0,
            conflict_density=0.0, regime="light", predicted_miss_floor=0.0,
        )
    slacks = [
        spec.deadline - spec.arrival_time - spec.resource_time
        for spec in specs
    ]
    infeasible = sum(1 for slack in slacks if slack < -_EPSILON)
    ratios = [
        (spec.deadline - spec.arrival_time) / spec.resource_time - 1.0
        for spec in specs
    ]
    arrivals = [spec.arrival_time for spec in specs]
    span = max(arrivals) - min(arrivals)
    # The busy window is at least one transaction long; guards n=1 and
    # degenerate same-instant arrivals without producing infinities.
    span = max(span, max(spec.resource_time for spec in specs))
    total_cpu = sum(spec.cpu_time for spec in specs)
    total_io = sum(spec.resource_time - spec.cpu_time for spec in specs)
    cpu_utilization = total_cpu / span
    io_utilization = total_io / span
    # Greedy-only compatible sets: cell predictions need the density,
    # not the exact optimum, and stay cheap across a whole sweep.
    metrics = ConflictGraph.from_specs(specs).metrics(exact_limit=0)
    return CellPrediction(
        x=x,
        seed=seed,
        n=n,
        infeasible=infeasible,
        min_slack_ms=min(slacks),
        mean_slack_ratio=sum(ratios) / n,
        cpu_utilization=cpu_utilization,
        io_utilization=io_utilization,
        conflict_density=metrics.conflict_fraction,
        regime=classify_regime(cpu_utilization, io_utilization),
        predicted_miss_floor=infeasible / n,
    )


def predict_cell(config: SimulationConfig, x: float, seed: int) -> CellPrediction:
    """Generate the cell's workload and predict it statically."""
    return predict_specs(generate_workload(config, seed), x, seed)
