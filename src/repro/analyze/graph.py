"""Static conflict-graph metrics over a workload's program trees.

The Transactional Conflict Problem literature ties achievable
throughput to the *structure* of the conflict graph — density, degree
distribution, how many transactions are mutually compatible — yet the
simulator only ever consumes the relations pairwise.  This module
extracts that structure statically, from the paper's tree relations
(:func:`~repro.analysis.relations.conflict_between` /
:func:`~repro.analysis.relations.safety_of`) alone:

* pair fractions: certainly-conflicting / conditionally-conflicting /
  compatible unordered pairs, and (conditionally) unsafe ordered pairs;
* the degree distribution of the certain-conflict graph;
* maximal-compatible-set size — **exact** (branch-and-bound maximum
  independent set) when the workload is small enough, a **greedy lower
  bound** otherwise;
* Theorem-1 applicability: when no relation is conditional, every
  scheduling question is statically decidable and the paper's no-wait
  property (Theorem 1) applies unconditionally.

Transactions sharing a program tree form one node class, so the class
matrix is tiny (the paper's 50 types) while the reported fractions and
degrees are over *instances* — exactly what a scheduler at runtime
would face.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.analysis.program import linear_program
from repro.analysis.relations import Conflict, Safety, conflict_between, safety_of
from repro.analysis.tree import TransactionTree
from repro.rtdb.transaction import TransactionSpec

#: Above this many instances the exact maximum-compatible-set search is
#: replaced by the greedy lower bound (branch and bound is exponential).
EXACT_SET_LIMIT = 32


@dataclasses.dataclass(frozen=True)
class GraphMetrics:
    """The static contention structure of one workload."""

    n: int
    """Transaction instances."""
    n_classes: int
    """Distinct program trees."""
    n_pairs: int
    """Unordered instance pairs."""
    certain_pairs: int
    conditional_pairs: int
    compatible_pairs: int
    unsafe_pairs: int
    """Ordered (subject, runner) pairs unsafe at the root state."""
    conditionally_unsafe_pairs: int
    conflict_fraction: float
    conditional_fraction: float
    unsafe_fraction: float
    degree_min: int
    degree_mean: float
    degree_max: int
    degree_histogram: tuple[tuple[int, int], ...]
    """Sorted (degree, instance count) pairs of the certain-conflict graph."""
    max_compatible_set: int
    max_compatible_exact: bool
    """True when the size is the exact optimum, False for the greedy bound."""
    theorem1_no_wait: bool
    """No conditional relation anywhere: every conflict/safety question
    is statically decidable, so CCA's no-wait property (paper Theorem 1)
    applies to the whole workload unconditionally."""

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["degree_histogram"] = [list(pair) for pair in self.degree_histogram]
        return out


class ConflictGraph:
    """Instance-level conflict graph, computed via program-tree classes.

    ``trees`` are the distinct analyzed programs; ``members[i]`` is the
    tree index instance ``i`` runs.  All relations are evaluated at the
    trees' root states — the transaction's knowledge state on arrival,
    which is what static analysis can know.
    """

    def __init__(
        self, trees: Sequence[TransactionTree], members: Sequence[int]
    ) -> None:
        self.trees = tuple(trees)
        self.members = tuple(members)
        if any(not 0 <= m < len(self.trees) for m in self.members):
            raise ValueError("members must index into trees")
        k = len(self.trees)
        self.counts = [0] * k
        for member in self.members:
            self.counts[member] += 1
        roots = [tree.root.label for tree in self.trees]
        self._conflict: list[list[Conflict]] = [
            [
                conflict_between(self.trees[a], roots[a], self.trees[b], roots[b])
                for b in range(k)
            ]
            for a in range(k)
        ]
        self._safety: list[list[Safety]] = [
            [
                safety_of(self.trees[a], roots[a], self.trees[b], roots[b])
                for b in range(k)
            ]
            for a in range(k)
        ]

    @classmethod
    def from_specs(cls, specs: Sequence[TransactionSpec]) -> "ConflictGraph":
        """Graph of a flat workload: one linear tree per distinct
        (program, access-set) signature."""
        trees: list[TransactionTree] = []
        members: list[int] = []
        index_of: dict[tuple[str, frozenset[int]], int] = {}
        for spec in specs:
            key = (spec.program_name, spec.data_set)
            index = index_of.get(key)
            if index is None:
                index = len(trees)
                index_of[key] = index
                trees.append(
                    TransactionTree(
                        linear_program(spec.program_name, sorted(spec.data_set))
                    )
                )
            members.append(index)
        return cls(trees, members)

    # -- relations ---------------------------------------------------------

    def conflict(self, class_a: int, class_b: int) -> Conflict:
        return self._conflict[class_a][class_b]

    def safety(self, subject_class: int, runner_class: int) -> Safety:
        return self._safety[subject_class][runner_class]

    def degrees(self) -> list[int]:
        """Per-instance degree in the certain-conflict graph."""
        k = len(self.trees)
        class_degree = []
        for a in range(k):
            degree = sum(
                self.counts[b]
                for b in range(k)
                if self._conflict[a][b] is Conflict.CERTAIN
            )
            if self._conflict[a][a] is Conflict.CERTAIN:
                degree -= 1  # no self-loop
            class_degree.append(degree)
        return [class_degree[member] for member in self.members]

    def is_pairwise_compatible(self, instances: Sequence[int]) -> bool:
        """True iff every pair of the given instances cannot conflict."""
        for i, a in enumerate(instances):
            for b in instances[i + 1:]:
                if (
                    self._conflict[self.members[a]][self.members[b]]
                    is not Conflict.NONE
                ):
                    return False
        return True

    # -- maximal compatible sets -------------------------------------------

    def compatible_set(
        self, exact_limit: int = EXACT_SET_LIMIT
    ) -> tuple[list[int], bool]:
        """A maximum(-ish) set of mutually compatible instances.

        Returns ``(instances, exact)``: the exact optimum (maximum
        independent set of the may-conflict graph, branch and bound)
        when ``n <= exact_limit``, else a greedy lower bound built
        lowest-degree-first.
        """
        n = len(self.members)
        if n == 0:
            return [], True
        if n <= exact_limit:
            return self._exact_compatible_set(), True
        return self._greedy_compatible_set(), False

    def _edge(self, instance_a: int, instance_b: int) -> bool:
        return (
            self._conflict[self.members[instance_a]][self.members[instance_b]]
            is not Conflict.NONE
        )

    def _exact_compatible_set(self) -> list[int]:
        n = len(self.members)
        neighbor = [0] * n
        for a in range(n):
            for b in range(a + 1, n):
                if self._edge(a, b):
                    neighbor[a] |= 1 << b
                    neighbor[b] |= 1 << a
        best_mask = 0
        best_size = 0

        def expand(candidates: int, chosen: int, size: int) -> None:
            nonlocal best_mask, best_size
            if size + candidates.bit_count() <= best_size:
                return  # even taking everything left cannot win
            if not candidates:
                if size > best_size:
                    best_size, best_mask = size, chosen
                return
            low = candidates & -candidates
            vertex = low.bit_length() - 1
            # Branch 1: take the vertex, dropping its neighbors.
            expand(candidates & ~low & ~neighbor[vertex], chosen | low, size + 1)
            # Branch 2: skip it.
            expand(candidates & ~low, chosen, size)

        expand((1 << n) - 1, 0, 0)
        return [i for i in range(n) if best_mask >> i & 1]

    def _greedy_compatible_set(self) -> list[int]:
        degrees = self.degrees()
        order = sorted(range(len(self.members)), key=lambda i: (degrees[i], i))
        chosen: list[int] = []
        chosen_count = [0] * len(self.trees)
        for instance in order:
            cls = self.members[instance]
            ok = True
            for other_cls, count in enumerate(chosen_count):
                if count and self._conflict[cls][other_cls] is not Conflict.NONE:
                    ok = False
                    break
            if ok:
                chosen.append(instance)
                chosen_count[cls] += 1
        return sorted(chosen)

    # -- the metrics -------------------------------------------------------

    def metrics(self, exact_limit: Optional[int] = None) -> GraphMetrics:
        if exact_limit is None:
            exact_limit = EXACT_SET_LIMIT
        n = len(self.members)
        k = len(self.trees)
        n_pairs = n * (n - 1) // 2
        certain = conditional = 0
        unsafe = conditionally_unsafe = 0
        for a in range(k):
            for b in range(a, k):
                if a == b:
                    pairs = self.counts[a] * (self.counts[a] - 1) // 2
                else:
                    pairs = self.counts[a] * self.counts[b]
                relation = self._conflict[a][b]
                if relation is Conflict.CERTAIN:
                    certain += pairs
                elif relation is Conflict.CONDITIONAL:
                    conditional += pairs
            for b in range(k):
                ordered = self.counts[a] * self.counts[b]
                if a == b:
                    ordered -= self.counts[a]
                relation_s = self._safety[a][b]
                if relation_s is Safety.UNSAFE:
                    unsafe += ordered
                elif relation_s is Safety.CONDITIONALLY_UNSAFE:
                    conditionally_unsafe += ordered
        compatible = n_pairs - certain - conditional
        ordered_pairs = n * (n - 1)
        degrees = self.degrees()
        histogram: dict[int, int] = {}
        for degree in degrees:
            histogram[degree] = histogram.get(degree, 0) + 1
        chosen, exact = self.compatible_set(exact_limit)
        theorem1 = conditional == 0 and conditionally_unsafe == 0
        return GraphMetrics(
            n=n,
            n_classes=k,
            n_pairs=n_pairs,
            certain_pairs=certain,
            conditional_pairs=conditional,
            compatible_pairs=compatible,
            unsafe_pairs=unsafe,
            conditionally_unsafe_pairs=conditionally_unsafe,
            conflict_fraction=certain / n_pairs if n_pairs else 0.0,
            conditional_fraction=conditional / n_pairs if n_pairs else 0.0,
            unsafe_fraction=unsafe / ordered_pairs if ordered_pairs else 0.0,
            degree_min=min(degrees) if degrees else 0,
            degree_mean=sum(degrees) / n if n else 0.0,
            degree_max=max(degrees) if degrees else 0,
            degree_histogram=tuple(sorted(histogram.items())),
            max_compatible_set=len(chosen),
            max_compatible_exact=exact,
            theorem1_no_wait=theorem1,
        )
