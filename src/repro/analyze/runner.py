"""Running the analysis passes over experiments and saved workloads.

``analyze_workload`` turns one workload into ANA001–ANA006 verdicts;
``analyze_experiment`` mirrors ``repro certify``'s deterministic
sampling (middle x, first seed — tables use the base configuration)
and adds per-cell feasibility predictions across the whole sweep.
``analysis_section`` shapes the result for the schema-v6 run manifest.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.analysis.program import linear_program
from repro.analysis.table import RelationTable
from repro.analysis.tree import TransactionTree
from repro.analyze.equivalence import (
    Counterexample,
    MaskMutation,
    mutate_spec_masks,
    mutate_state_table,
    prove_spec_masks,
    prove_state_table,
    spec_classes,
)
from repro.analyze.feasibility import CellPrediction, predict_cell, predict_specs
from repro.analyze.graph import ConflictGraph, GraphMetrics
from repro.analyze.rules import all_rules, get_rule
from repro.config import SimulationConfig
from repro.core.masks import SpecMasks, StateTable
from repro.experiments.config import (
    DISK_BASE,
    MAIN_MEMORY_BASE,
    ExperimentScale,
)
from repro.experiments.figures import FIGURE_SWEEPS, experiment_cells
from repro.rtdb.transaction import TransactionSpec
from repro.workload.generator import generate_workload

#: Base configuration behind each sweep-less experiment.
_TABLE_BASES = {"table1": MAIN_MEMORY_BASE, "table2": DISK_BASE}


@dataclasses.dataclass(frozen=True)
class Verdict:
    """One rule's outcome over one workload."""

    code: str
    name: str
    passed: bool
    detail: str
    counterexample: Optional[dict] = None

    def to_dict(self) -> dict:
        out = {
            "code": self.code,
            "name": self.name,
            "passed": self.passed,
            "detail": self.detail,
        }
        if self.counterexample is not None:
            out["counterexample"] = self.counterexample
        return out


@dataclasses.dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    experiment: Optional[str]
    scale: Optional[str]
    sample_x: Optional[float]
    sample_seed: Optional[int]
    n_transactions: int
    db_size: int
    verdicts: list[Verdict]
    graph: GraphMetrics
    cells: list[CellPrediction]

    @property
    def clean(self) -> bool:
        return all(verdict.passed for verdict in self.verdicts)

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "scale": self.scale,
            "sample": {"x": self.sample_x, "seed": self.sample_seed},
            "n_transactions": self.n_transactions,
            "db_size": self.db_size,
            "clean": self.clean,
            "verdicts": [verdict.to_dict() for verdict in self.verdicts],
            "graph": self.graph.to_dict(),
            "cells": [cell.to_dict() for cell in self.cells],
        }


def _verdict(
    code: str, failures: Sequence[Counterexample], ok_detail: str
) -> Verdict:
    rule = get_rule(code)
    if failures:
        detail = (
            f"{len(failures)} counterexample(s); first: "
            f"{failures[0].describe()}"
        )
        return Verdict(
            code=code,
            name=rule.name,
            passed=False,
            detail=detail,
            counterexample=failures[0].to_dict(),
        )
    return Verdict(code=code, name=rule.name, passed=True, detail=ok_detail)


def _graph_consistency(
    graph: ConflictGraph, metrics: GraphMetrics
) -> list[str]:
    """ANA006: the metrics cross-checked against their own definitions."""
    problems: list[str] = []
    degrees = graph.degrees()
    if sum(degrees) != 2 * metrics.certain_pairs:
        problems.append(
            f"degree sum {sum(degrees)} != 2 x certain pairs "
            f"{metrics.certain_pairs}"
        )
    if (
        metrics.certain_pairs + metrics.conditional_pairs
        + metrics.compatible_pairs
        != metrics.n_pairs
    ):
        problems.append("pair counts do not partition the pair universe")
    for name in ("conflict_fraction", "conditional_fraction", "unsafe_fraction"):
        value = getattr(metrics, name)
        if not 0.0 <= value <= 1.0:
            problems.append(f"{name} {value} outside [0, 1]")
    if sum(count for _, count in metrics.degree_histogram) != metrics.n:
        problems.append("degree histogram does not cover every instance")
    chosen, exact = graph.compatible_set()
    if len(chosen) != metrics.max_compatible_set:
        problems.append(
            f"reported compatible-set size {metrics.max_compatible_set} "
            f"!= recomputed {len(chosen)}"
        )
    if not graph.is_pairwise_compatible(chosen):
        problems.append("reported compatible set is not pairwise compatible")
    if exact and metrics.n:
        greedy, _ = graph.compatible_set(exact_limit=0)
        if len(greedy) > len(chosen):
            problems.append(
                f"greedy bound {len(greedy)} exceeds exact optimum "
                f"{len(chosen)}"
            )
    return problems


def analyze_workload(
    specs: Sequence[TransactionSpec],
    db_size: int,
    mutation: Optional[MaskMutation] = None,
) -> tuple[list[Verdict], ConflictGraph, GraphMetrics]:
    """All verdict passes over one workload.

    ``mutation`` corrupts the named kernel table before proving — the
    prover must then fail with a counterexample (this is how tests and
    CI prove the prover itself; see ``--mutate``).
    """
    masks = SpecMasks.from_specs(specs, db_size)
    if mutation is not None and mutation.kind in ("data", "write", "conflict"):
        masks = mutate_spec_masks(masks, mutation)
    seen: dict[str, TransactionTree] = {}
    for spec in specs:
        if spec.program_name not in seen:
            seen[spec.program_name] = TransactionTree(
                linear_program(spec.program_name, sorted(spec.data_set))
            )
    table = RelationTable(seen.values())
    state_table = StateTable(table)
    if mutation is not None and mutation.kind.startswith("state-"):
        state_table = mutate_state_table(state_table, mutation)

    counterexamples = prove_spec_masks(specs, db_size, masks=masks)
    counterexamples += prove_state_table(table, state_table=state_table)
    by_rule: dict[str, list[Counterexample]] = {}
    for ce in counterexamples:
        by_rule.setdefault(ce.rule, []).append(ce)

    classes = spec_classes(specs)
    k = len(classes)
    subject_states = sum(
        len(specs[members[0]].operations) + 1 for members in classes
    )
    n_states = len(state_table.states)

    graph = ConflictGraph.from_specs(specs)
    metrics = graph.metrics()
    infeasible = [
        spec
        for spec in specs
        if spec.deadline < spec.arrival_time + spec.resource_time - 1e-9
    ]
    graph_problems = _graph_consistency(graph, metrics)

    verdicts = [
        _verdict(
            "ANA001",
            by_rule.get("ANA001", []),
            f"{len(specs)} slot masks, {k} classes "
            f"({k * (k + 1) // 2} pairs), {len(specs)} conflict rows verified",
        ),
        _verdict(
            "ANA002",
            by_rule.get("ANA002", []),
            f"{k * k} ordered class pairs x {subject_states} reachable "
            f"subject states verified",
        ),
        _verdict(
            "ANA003",
            by_rule.get("ANA003", []),
            f"{n_states}x{n_states} state pairs verified against "
            f"rebuilt trees",
        ),
        _verdict(
            "ANA004",
            by_rule.get("ANA004", []),
            "conflict symmetry and no-conflict-implies-safe hold everywhere",
        ),
    ]
    rule5 = get_rule("ANA005")
    if infeasible:
        first = infeasible[0]
        verdicts.append(
            Verdict(
                code="ANA005",
                name=rule5.name,
                passed=False,
                detail=(
                    f"{len(infeasible)} statically infeasible transaction(s); "
                    f"first: tid {first.tid} deadline {first.deadline:.3f} < "
                    f"arrival {first.arrival_time:.3f} + resource "
                    f"{first.resource_time:.3f}"
                ),
            )
        )
    else:
        verdicts.append(
            Verdict(
                code="ANA005",
                name=rule5.name,
                passed=True,
                detail=f"all {len(specs)} deadlines cover isolated run time",
            )
        )
    rule6 = get_rule("ANA006")
    verdicts.append(
        Verdict(
            code="ANA006",
            name=rule6.name,
            passed=not graph_problems,
            detail=(
                "; ".join(graph_problems)
                if graph_problems
                else (
                    f"degree sum, pair partition, fraction bounds and "
                    f"compatible set verified over {metrics.n} instances"
                )
            ),
        )
    )
    assert [v.code for v in verdicts] == [r.code for r in all_rules()]
    return verdicts, graph, metrics


def _sample_point(
    experiment: str, scale: ExperimentScale
) -> tuple[float, int, SimulationConfig]:
    """The deterministic verdict sample: middle x, first seed."""
    base = _TABLE_BASES.get(experiment)
    if base is not None and not FIGURE_SWEEPS.get(experiment):
        config = scale.scale_config(base)
        return config.arrival_rate, scale.seeds_for(base)[0], config
    cells = experiment_cells(experiment, scale)
    xs = sorted({cell.x for cell in cells})
    mid_x = xs[len(xs) // 2]
    template = next(cell for cell in cells if cell.x == mid_x)
    return template.x, template.seed, template.config


def _cell_points(
    experiment: str, scale: ExperimentScale
) -> list[tuple[float, int, SimulationConfig]]:
    """Every (x, seed) workload of the sweep, policies deduplicated."""
    base = _TABLE_BASES.get(experiment)
    if base is not None and not FIGURE_SWEEPS.get(experiment):
        config = scale.scale_config(base)
        return [
            (config.arrival_rate, seed, config)
            for seed in scale.seeds_for(base)
        ]
    points: dict[tuple[float, int], SimulationConfig] = {}
    for cell in experiment_cells(experiment, scale):
        points.setdefault((cell.x, cell.seed), cell.config)
    return [(x, seed, config) for (x, seed), config in sorted(points.items())]


def analyze_experiment(
    experiment: str,
    scale: ExperimentScale,
    mutation: Optional[MaskMutation] = None,
    predict_cells: bool = True,
) -> AnalysisResult:
    """Verdict passes on the sample workload plus per-cell predictions."""
    if experiment not in FIGURE_SWEEPS:
        raise ValueError(
            f"unknown experiment {experiment!r}; "
            f"known: {', '.join(sorted(FIGURE_SWEEPS))}"
        )
    sample_x, sample_seed, config = _sample_point(experiment, scale)
    specs = generate_workload(config, sample_seed)
    verdicts, _, metrics = analyze_workload(
        specs, config.db_size, mutation=mutation
    )
    cells: list[CellPrediction] = []
    if predict_cells:
        for x, seed, cell_config in _cell_points(experiment, scale):
            if x == sample_x and seed == sample_seed and cell_config == config:
                cells.append(predict_specs(specs, x, seed))
            else:
                cells.append(predict_cell(cell_config, x, seed))
    return AnalysisResult(
        experiment=experiment,
        scale=scale.name,
        sample_x=sample_x,
        sample_seed=sample_seed,
        n_transactions=len(specs),
        db_size=config.db_size,
        verdicts=verdicts,
        graph=metrics,
        cells=cells,
    )


def analyze_specs(
    specs: Sequence[TransactionSpec],
    db_size: Optional[int] = None,
    mutation: Optional[MaskMutation] = None,
) -> AnalysisResult:
    """Analyze a saved workload (``repro analyze --workload``)."""
    if db_size is None:
        db_size = (
            max(item for spec in specs for item in spec.data_set) + 1
            if specs
            else 1
        )
    verdicts, _, metrics = analyze_workload(specs, db_size, mutation=mutation)
    return AnalysisResult(
        experiment=None,
        scale=None,
        sample_x=None,
        sample_seed=None,
        n_transactions=len(specs),
        db_size=db_size,
        verdicts=verdicts,
        graph=metrics,
        cells=[predict_specs(specs, 0.0, 0)] if specs else [],
    )


def analysis_section(result: AnalysisResult) -> dict:
    """The run manifest's ``analysis`` section (schema v6)."""
    return {
        "enabled": True,
        "clean": result.clean,
        "sample": {"x": result.sample_x, "seed": result.sample_seed},
        "verdicts": [verdict.to_dict() for verdict in result.verdicts],
        "graph": result.graph.to_dict(),
        "cells": [cell.to_dict() for cell in result.cells],
    }
