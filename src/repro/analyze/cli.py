"""``repro analyze`` — the static workload analyzer's entry point.

Examples::

    repro analyze fig4a                  # prove masks + tables, predict
                                         # every sweep cell statically
    repro analyze table1 --format json
    repro analyze fig5b --no-cells       # verdicts only, skip predictions
    repro analyze --workload load.jsonl  # analyze a saved workload
    repro analyze fig4a --mutate data:0:3   # corrupt one mask bit; the
                                            # prover must exit 1
    repro analyze --list-rules

No simulation runs anywhere: every verdict comes from the declared
specs, the reference set oracle, and the paper's tree relations.  Exit
status: 0 when every verdict passes, 1 when any fails, 2 on usage
errors — the same contract as ``repro lint`` and ``repro certify``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analyze.equivalence import MUTATION_KINDS, parse_mutation
from repro.analyze.report import render_json, render_text
from repro.analyze.rules import all_rules
from repro.checks.report import (
    EXIT_USAGE,
    add_list_rules_flag,
    handle_list_rules,
    print_report,
    verdict_exit_code,
)


def build_analyze_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description=(
            "Static workload analyzer: proves the kernel engine's flat "
            "conflict/safety tables equivalent to the reference oracle "
            "over every transaction pair and reachable access state "
            "(ANA001-004), checks static feasibility (ANA005), and "
            "computes conflict-graph metrics and per-cell contention "
            "predictions (ANA006) — all without simulating.  See "
            "docs/ANALYZE.md."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help=(
            "paper experiment to analyze (e.g. fig4a, table1); omit "
            "when analyzing a saved workload via --workload"
        ),
    )
    parser.add_argument(
        "--workload",
        type=Path,
        default=None,
        metavar="FILE",
        help="analyze a saved workload JSONL instead of an experiment",
    )
    parser.add_argument(
        "--db-size",
        type=int,
        default=None,
        metavar="N",
        help=(
            "database size for --workload mode (default: inferred from "
            "the largest item accessed)"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "default", "full"],
        default=None,
        help="run scale (default: $REPRO_SCALE or 'default')",
    )
    parser.add_argument(
        "--cells",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "predict every sweep cell's feasibility and contention "
            "regime (default: on; --no-cells proves equivalence only)"
        ),
    )
    parser.add_argument(
        "--mutate",
        default=None,
        metavar="KIND:ROW:BIT",
        help=(
            "flip one bit (or one table code) of the named kernel table "
            "before proving; the prover must then fail with a "
            f"counterexample.  Kinds: {', '.join(MUTATION_KINDS)}"
        ),
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="show per-verdict detail and per-cell predictions",
    )
    add_list_rules_flag(parser, what="analysis rule")
    return parser


def analyze_main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_analyze_parser().parse_args(
        list(argv) if argv is not None else None
    )
    catalog_exit = handle_list_rules(args, all_rules())
    if catalog_exit is not None:
        return catalog_exit

    mutation = None
    if args.mutate is not None:
        try:
            mutation = parse_mutation(args.mutate)
        except ValueError as exc:
            print(f"error: --mutate: {exc}", file=sys.stderr)
            return EXIT_USAGE

    if args.workload is not None:
        result = _analyze_workload_file(args, mutation)
    elif args.experiment is not None:
        result = _analyze_experiment(args, mutation)
    else:
        print(
            "error: an experiment id (or --workload FILE) is required",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if result is None:
        return EXIT_USAGE

    report = (
        render_json(result)
        if args.format == "json"
        else render_text(result, verbose=args.verbose)
    )
    print_report(report)
    return verdict_exit_code(result.clean)


def _analyze_experiment(args, mutation):
    from repro.analyze.runner import analyze_experiment
    from repro.cli import _resolve_scale
    from repro.experiments.figures import FIGURE_SWEEPS

    if args.experiment not in FIGURE_SWEEPS:
        print(
            f"error: unknown experiment {args.experiment!r}; "
            f"known: {', '.join(sorted(FIGURE_SWEEPS))}",
            file=sys.stderr,
        )
        return None
    return analyze_experiment(
        args.experiment,
        _resolve_scale(args.scale),
        mutation=mutation,
        predict_cells=args.cells,
    )


def _analyze_workload_file(args, mutation):
    from repro.analyze.runner import analyze_specs
    from repro.workload.serialization import load_workload

    if not args.workload.exists():
        print(f"error: no such file: {args.workload}", file=sys.stderr)
        return None
    try:
        specs = load_workload(args.workload)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    if args.db_size is not None and args.db_size < 1:
        print(
            f"error: --db-size must be >= 1, got {args.db_size}",
            file=sys.stderr,
        )
        return None
    try:
        return analyze_specs(specs, db_size=args.db_size, mutation=mutation)
    except (IndexError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
