"""Event-driven multiprocessor RTDBS simulator (main memory).

Shares the substrate of the single-CPU simulator — transactions, the
lock manager, policies, the penalty of conflict, conflict oracles — but
generalizes the dispatcher to ``n_cpus`` processors:

* At every scheduling point the dispatcher computes the *desired* set of
  up to ``n_cpus`` transactions:

  - policies without pre-analysis (EDF-HP, LSF-HP, FCFS) take the top-k
    runnable transactions by priority;
  - pre-analysis policies (CCA family) admit the globally
    highest-priority runnable transaction unconditionally (the primary),
    then greedily admit only transactions *compatible* — no conflict or
    conditional conflict — with every already-admitted and every
    partially executed transaction.  Spare CPUs idle rather than run a
    noncontributing execution, mirroring ``IOwait-schedule``.

* Running transactions outside the desired set are preempted; eager
  High Priority wounds fire when a transaction is placed on a CPU, as in
  the single-CPU model.  Unlike there, a wound victim may be *running*
  on another CPU (EDF-HP co-runners can conflict): the victim is
  preempted off its CPU and then rolled back.

* Lock requests between co-runners resolve by wound-wait: lower-priority
  holders are wounded, a higher-priority holder makes the requester wait
  (its CPU is freed and refilled).

The disk-resident configuration is intentionally out of scope here (the
paper's announced extension is for shared-memory multiprocessors; disk
contention is orthogonal to CPU parallelism).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.analysis.relations import Safety
from repro.config import SimulationConfig
from repro.core.oracle import ConflictOracle, SetOracle
from repro.core.penalty import penalty_of_conflict
from repro.core.policy import PriorityPolicy
from repro.core.scheduler import is_compatible
from repro.core.simulator import SimulationResult, TraceHook, TransactionRecord
from repro.rtdb.database import Database
from repro.rtdb.locks import LockManager
from repro.rtdb.recovery import FixedRecovery, RecoveryModel
from repro.rtdb.transaction import Transaction, TransactionSpec, TxState
from repro.sim.engine import Simulator

_EPS = 1e-9


@dataclasses.dataclass
class _CpuContext:
    """What one CPU is doing right now."""

    tx: Transaction
    phase: str  # "rollback" or "compute"
    start: float
    duration: float
    event: object


class MultiprocessorSimulator:
    """Simulate one main-memory workload on ``n_cpus`` processors."""

    def __init__(
        self,
        config: SimulationConfig,
        workload: Sequence[TransactionSpec],
        policy: PriorityPolicy,
        n_cpus: int = 2,
        oracle: Optional[ConflictOracle] = None,
        recovery: Optional[RecoveryModel] = None,
        include_rollback_in_penalty: bool = True,
        trace: Optional[TraceHook] = None,
        max_events: Optional[int] = None,
    ) -> None:
        if not workload:
            raise ValueError("workload must contain at least one transaction")
        if n_cpus < 1:
            raise ValueError(f"need at least one CPU, got {n_cpus}")
        if config.disk_resident:
            raise ValueError(
                "the multiprocessor simulator models the main-memory "
                "configuration only"
            )
        if policy.wait_promote:
            raise ValueError(
                "wait-promote policies (EDF-WP) are not supported on the "
                "multiprocessor simulator (priority inheritance across "
                "CPUs is out of scope)"
            )
        self.config = config
        self.workload = tuple(workload)
        self.policy = policy
        self.n_cpus = n_cpus
        self.oracle = oracle if oracle is not None else SetOracle()
        self.recovery = (
            recovery if recovery is not None else FixedRecovery(config.abort_cost)
        )
        self.include_rollback_in_penalty = include_rollback_in_penalty
        self.trace = trace
        self.max_events = (
            max_events if max_events is not None else 5000 * len(workload)
        )
        self.database = Database(config.db_size)
        tids = [spec.tid for spec in self.workload]
        if len(set(tids)) != len(tids):
            raise ValueError("workload contains duplicate transaction ids")
        for spec in self.workload:
            for op in spec.operations:
                self.database.validate_item(op.item)

        self.sim = Simulator()
        self.lockmgr = LockManager()
        self.live: dict[int, Transaction] = {}
        self._plist: dict[int, Transaction] = {}
        self._contexts: dict[int, _CpuContext] = {}  # keyed by tx.tid
        self._busy_time = 0.0
        self._dispatching = False
        self._redispatch = False

        self.total_restarts = 0
        self.records: list[TransactionRecord] = []
        self._plist_area = 0.0
        self._plist_changed_at = 0.0
        self._finished = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the whole workload and return aggregate results."""
        if self._finished:
            raise RuntimeError("a simulator instance runs exactly once")
        for spec in self.workload:
            self.sim.schedule_at(
                spec.arrival_time, self._on_arrival, kind="arrival", payload=spec
            )
        self.sim.run(max_events=self.max_events)
        self._finished = True
        if self.live:
            raise RuntimeError(
                f"simulation ended with {len(self.live)} uncommitted "
                "transactions; scheduler liveness bug"
            )
        self.lockmgr.assert_consistent()
        if self.lockmgr.locked_items():
            raise RuntimeError("locks left held after all transactions committed")
        self._account_plist()
        makespan = self.sim.now
        n_missed = sum(1 for r in self.records if r.missed)
        capacity = makespan * self.n_cpus
        return SimulationResult(
            policy_name=f"{self.policy.name}x{self.n_cpus}",
            n_committed=len(self.records),
            n_missed=n_missed,
            total_restarts=self.total_restarts,
            makespan=makespan,
            cpu_utilization=(self._busy_time / capacity if capacity > 0 else 0.0),
            disk_utilization=0.0,
            mean_plist_size=(self._plist_area / makespan if makespan > 0 else 0.0),
            records=tuple(self.records),
        )

    def penalty_of_conflict(self, tx: Transaction) -> float:
        """SystemView hook for the CCA policy."""
        return penalty_of_conflict(
            tx,
            self._plist.values(),
            self.oracle,
            recovery=self.recovery,
            include_rollback=self.include_rollback_in_penalty,
            effective_service=self._effective_service,
        )

    def _effective_service(self, tx: Transaction) -> float:
        """Service received, counting the in-flight compute phase."""
        service = tx.service_received
        context = self._contexts.get(tx.tid)
        if context is not None and context.phase == "compute":
            service += self.sim.now - context.start
        return service

    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def running(self) -> tuple[Transaction, ...]:
        return tuple(context.tx for context in self._contexts.values())

    # ------------------------------------------------------------------
    # Priority keys
    # ------------------------------------------------------------------

    def _priority_key(self, tx: Transaction) -> tuple:
        return (self.policy.priority(tx, self), -tx.tid)

    def _selection_key(self, tx: Transaction) -> tuple:
        return (
            self.policy.priority(tx, self),
            1 if tx.tid in self._contexts else 0,
            -tx.tid,
        )

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _on_arrival(self, event) -> None:
        spec: TransactionSpec = event.payload
        tx = Transaction(spec)
        self.live[tx.tid] = tx
        self._trace("arrival", tx=tx)
        self._dispatch()

    def _on_phase_complete(self, event) -> None:
        tx: Transaction = event.payload
        context = self._contexts.get(tx.tid)
        if context is None or context.event is not event:
            raise RuntimeError("phase completion for a transaction not on a CPU")
        self._busy_time += context.duration
        if context.phase == "rollback":
            tx.pending_rollback_work = 0.0
        else:
            tx.service_received += context.duration
            tx.remaining_compute = 0.0
            tx.op_index += 1
        del self._contexts[tx.tid]
        self._continue(tx)
        # Progressing this transaction may have freed a CPU (a wound
        # preempted a co-runner) or blocked it; refill.
        self._dispatch()

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------

    def _dispatch(self) -> None:
        if self._dispatching:
            self._redispatch = True
            return
        self._dispatching = True
        try:
            while True:
                self._redispatch = False
                self._dispatch_once()
                if not self._redispatch:
                    break
        finally:
            self._dispatching = False

    def _dispatch_once(self) -> None:
        desired = self._choose_set()
        desired_tids = {tx.tid for tx in desired}
        # Preempt running transactions that fell out of the desired set.
        for tid in [t for t in self._contexts if t not in desired_tids]:
            self._preempt(self._contexts[tid].tx)
        # Place the newly admitted ones.
        for tx in desired:
            if tx.tid in self._contexts or tx.state is TxState.RUNNING:
                continue
            self._place(tx)
            if self._redispatch:
                # State changed under us (a block or commit inside
                # _place's progression); restart the dispatch pass.
                return

    def _choose_set(self) -> list[Transaction]:
        """The up-to-``n_cpus`` transactions that should be running."""
        runnable = [
            tx
            for tx in self.live.values()  # repro: allow[DET008] -- order-insensitive: sorted by the full selection key two lines down
            if tx.state in (TxState.READY, TxState.RUNNING)
        ]
        if not runnable:
            return []
        ordered = sorted(runnable, key=self._selection_key, reverse=True)
        if not self.policy.uses_pre_analysis:
            return ordered[: self.n_cpus]
        # CCA-MP: the primary unconditionally, then compatible fill.
        chosen: list[Transaction] = [ordered[0]]
        for tx in ordered[1:]:
            if len(chosen) >= self.n_cpus:
                break
            others = [t for t in self._plist.values() if t.tid != tx.tid]  # repro: allow[DET008] -- order-insensitive: the P-list is only probed for compatibility
            others.extend(t for t in chosen if t.tid != tx.tid)
            if is_compatible(tx, others, self.oracle):
                chosen.append(tx)
        return chosen

    def _place(self, tx: Transaction) -> None:
        """Put ``tx`` on a free CPU and progress it."""
        if len(self._contexts) >= self.n_cpus:
            raise RuntimeError("no free CPU to place a transaction on")
        tx.state = TxState.RUNNING
        if tx.first_dispatch_time is None:
            tx.first_dispatch_time = self.sim.now
        self._trace("dispatch", tx=tx)
        self._resolve_conflicts_at_dispatch(tx)
        self._continue(tx)

    def _resolve_conflicts_at_dispatch(self, tx: Transaction) -> None:
        """Eager High Priority wounds, as in the single-CPU model.

        A victim may be running on another CPU (EDF-HP-MP co-runners can
        conflict); it is preempted off that CPU first.
        """
        tx_key = self._priority_key(tx)
        victims = [
            other
            for other in self._plist.values()  # repro: allow[DET008] -- same-instant wounds; P-list order is admission order, stable in (config, seed, policy)
            if other.tid != tx.tid
            and self.oracle.safety(other, tx) is Safety.UNSAFE
            and self._priority_key(other) < tx_key
        ]
        for victim in victims:
            if victim.tid in self._contexts:
                self._preempt(victim)
            cost = self.recovery.rollback_time(victim)
            self._abort(victim, wounded_by=tx)
            tx.pending_rollback_work += cost

    def _preempt(self, tx: Transaction) -> None:
        """Take ``tx`` off its CPU mid-phase; it returns to READY."""
        context = self._contexts.pop(tx.tid)
        elapsed = self.sim.now - context.start
        self.sim.cancel(context.event)
        self._busy_time += elapsed
        if context.phase == "rollback":
            tx.pending_rollback_work = max(0.0, tx.pending_rollback_work - elapsed)
        else:
            tx.service_received += elapsed
            tx.remaining_compute -= elapsed
            if tx.remaining_compute <= _EPS:
                tx.remaining_compute = 0.0
                tx.op_index += 1
        tx.state = TxState.READY
        self._trace("preempt", tx=tx)
        # A preemption outside a dispatch pass (a wound against a
        # co-runner) frees a CPU; make sure the next dispatch refills it.
        self._redispatch = True

    # ------------------------------------------------------------------
    # Per-transaction progression
    # ------------------------------------------------------------------

    def _continue(self, tx: Transaction) -> None:
        """Drive ``tx`` (RUNNING, not mid-phase) to its next suspension."""
        while True:
            if tx.pending_rollback_work > _EPS:
                self._start_phase(tx, "rollback", tx.pending_rollback_work)
                return
            if tx.remaining_compute > _EPS:
                self._start_phase(tx, "compute", tx.remaining_compute)
                return
            if tx.is_done:
                self._commit(tx)
                return
            if not self._start_operation(tx):
                return

    def _start_phase(self, tx: Transaction, phase: str, duration: float) -> None:
        event = self.sim.schedule(
            duration, self._on_phase_complete, kind=f"{phase}_done", payload=tx
        )
        self._contexts[tx.tid] = _CpuContext(
            tx=tx, phase=phase, start=self.sim.now, duration=duration, event=event
        )

    def _start_operation(self, tx: Transaction) -> bool:
        op = tx.current_operation
        blockers = self.lockmgr.conflicting_holders(tx, op.item, op.is_write)
        if blockers:
            if all(self._should_wound(tx, holder) for holder in blockers):
                for holder in blockers:
                    if holder.tid in self._contexts:
                        self._preempt(holder)
                    cost = self.recovery.rollback_time(holder)
                    self._abort(holder, wounded_by=tx)
                    tx.pending_rollback_work += cost
            else:
                tx.state = TxState.LOCK_BLOCKED
                tx.blocked_on = op.item
                self.lockmgr.enqueue_waiter(tx, op.item)
                self._trace("lock_wait", tx=tx, item=op.item, holders=blockers)
                self._dispatch()
                return False
        if not self.lockmgr.acquire(tx, op.item, exclusive=op.is_write):
            raise RuntimeError(f"lock {op.item} not grantable after resolution")
        tx.record_access(op.item, write=op.is_write)
        self._advance_node(tx)
        self._note_partially_executed(tx)
        tx.remaining_compute = op.compute_time
        return True

    def _should_wound(self, tx: Transaction, holder: Transaction) -> bool:
        # Pre-analysis policies never co-schedule conflicting
        # transactions, so a held lock can only belong to a partially
        # executed transaction the dispatch already outranked: wound
        # (mirrors the single-CPU doctrine and Theorem 1).
        if self.policy.uses_pre_analysis:
            return True
        if self._priority_key(tx) > self._priority_key(holder):
            return True
        return self._would_deadlock(tx, holder)

    def _would_deadlock(self, tx: Transaction, holder: Transaction) -> bool:
        seen: set[int] = set()
        frontier = [holder]
        while frontier:
            current = frontier.pop()
            if current.tid == tx.tid:
                return True
            if current.tid in seen:
                continue
            seen.add(current.tid)
            if current.state is TxState.LOCK_BLOCKED and current.blocked_on is not None:
                frontier.extend(self.lockmgr.holders(current.blocked_on))
            if len(seen) > len(self.live):
                raise RuntimeError("wait-for walk exceeded the live set")
        return False

    def _advance_node(self, tx: Transaction) -> None:
        for op_index, label in tx.spec.node_schedule:
            if op_index == tx.op_index:
                tx.node_label = label
                self._trace("decision", tx=tx, node=label)

    # ------------------------------------------------------------------
    # Commit / abort
    # ------------------------------------------------------------------

    def _commit(self, tx: Transaction) -> None:
        tx.commit(self.sim.now)
        woken = self.lockmgr.release_all(tx)
        del self.live[tx.tid]
        self._plist_discard(tx)
        self.records.append(
            TransactionRecord(
                tid=tx.tid,
                type_id=tx.spec.type_id,
                arrival_time=tx.arrival_time,
                deadline=tx.deadline,
                commit_time=self.sim.now,
                restarts=tx.restarts,
            )
        )
        self._trace("commit", tx=tx)
        for waiter in woken:
            self._wake_waiter(waiter)
        self._dispatch()

    def _abort(self, victim: Transaction, wounded_by: Transaction) -> None:
        if victim.tid in self._contexts:
            raise RuntimeError("preempt a running victim before aborting it")
        if victim.state is TxState.LOCK_BLOCKED and victim.blocked_on is not None:
            self.lockmgr.remove_waiter(victim, victim.blocked_on)
        woken = self.lockmgr.release_all(victim)
        victim.restart()
        self.total_restarts += 1
        self._plist_discard(victim)
        self._trace("abort", tx=victim, by=wounded_by)
        for waiter in woken:
            if waiter.tid != wounded_by.tid:
                self._wake_waiter(waiter)

    def _wake_waiter(self, tx: Transaction) -> None:
        if tx.state is TxState.LOCK_BLOCKED:
            tx.state = TxState.READY
            tx.blocked_on = None
            self._trace("lock_wake", tx=tx)

    # ------------------------------------------------------------------
    # P-list bookkeeping
    # ------------------------------------------------------------------

    def _note_partially_executed(self, tx: Transaction) -> None:
        if tx.tid not in self._plist:
            self._account_plist()
            self._plist[tx.tid] = tx

    def _plist_discard(self, tx: Transaction) -> None:
        if tx.tid in self._plist:
            self._account_plist()
            del self._plist[tx.tid]

    def _account_plist(self) -> None:
        now = self.sim.now
        self._plist_area += len(self._plist) * (now - self._plist_changed_at)
        self._plist_changed_at = now

    def _trace(self, name: str, **fields) -> None:
        if self.trace is not None:
            self.trace(name, time=self.sim.now, **fields)
