"""Shared-memory multiprocessor scheduling (paper future work).

The paper's conclusion announces "a combination of CCA and EDF-HP for
shared memory multiprocessors"; this package implements that extension
for the main-memory configuration:

* **EDF-HP-MP** — the k highest-priority ready transactions run, one per
  CPU; data conflicts between co-runners resolve by High Priority
  wound-wait exactly as on one CPU.
* **CCA-MP** — the highest-priority transaction always runs (the
  primary, wounding its unsafe victims at dispatch as on one CPU);
  every *additional* CPU only runs a transaction compatible with all
  currently running and partially executed transactions — the
  ``IOwait-schedule`` rule generalized from "the CPU freed by an IO
  wait" to "any spare CPU".  Extra CPUs idle rather than perform
  noncontributing executions.

See :class:`repro.mp.simulator.MultiprocessorSimulator`.
"""

from repro.mp.simulator import MultiprocessorSimulator

__all__ = ["MultiprocessorSimulator"]
