"""Bundled micro-workloads the model checker ships with.

Each case is a hand-built two/three-transaction scenario small enough to
explore exhaustively yet engineered to reach one interesting region of
the schedule space: dispatch-time wounds, lock handoffs over IO,
crossing lock orders (the deadlock-break path), ``IOwait-schedule``
idling, and pure priority ties (the partial-order-reduction showcase).
The seeded mutants' demo pairs reference these by name, and CI model
checks every case under every policy.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.config import SimulationConfig
from repro.rtdb.transaction import Operation, TransactionSpec

#: Policies the checker quantifies over by default: one per paper family
#: (High Priority, Wait-Promote, plain wait, least-slack, baseline FCFS,
#: and the cost-conscious algorithm itself).
ALL_MC_POLICIES: tuple[str, ...] = (
    "EDF-HP",
    "EDF-WP",
    "EDF-Wait",
    "LSF-HP",
    "FCFS",
    "CCA",
)


@dataclasses.dataclass(frozen=True)
class WorkloadCase:
    """One bundled scenario: a config plus a literal transaction list."""

    name: str
    summary: str
    config: SimulationConfig
    specs: tuple[TransactionSpec, ...]


_MM = SimulationConfig(db_size=8, n_transactions=2, abort_cost=4.0)
_DISK = SimulationConfig(
    db_size=8, n_transactions=2, abort_cost=5.0, disk_resident=True
)


def _spec(
    tid: int,
    arrival: float,
    deadline: float,
    ops: Sequence[Operation],
) -> TransactionSpec:
    return TransactionSpec(
        tid=tid,
        type_id=tid % 50,
        arrival_time=arrival,
        deadline=deadline,
        operations=tuple(ops),
    )


_CASES: dict[str, WorkloadCase] = {}


def _register(case: WorkloadCase) -> WorkloadCase:
    _CASES[case.name] = case
    return case


CONTENDED_PAIR = _register(
    WorkloadCase(
        name="contended-pair",
        summary="a tighter-deadline transaction arrives mid-flight and "
        "must wound (never wait on) the partially executed one",
        config=_MM,
        specs=(
            _spec(1, 0.0, 100.0, [Operation(0, 4.0), Operation(1, 4.0)]),
            _spec(2, 2.0, 40.0, [Operation(0, 4.0), Operation(1, 4.0)]),
        ),
    )
)

HANDOFF_DISK = _register(
    WorkloadCase(
        name="handoff-disk",
        summary="simultaneous arrivals; the lower-priority transaction "
        "runs into a lock held by the IO-waiting primary and the "
        "lock must hand off cleanly at commit",
        config=_DISK,
        specs=(
            _spec(
                1,
                0.0,
                50.0,
                [Operation(0, 2.0, io_time=25.0), Operation(1, 2.0)],
            ),
            _spec(2, 0.0, 80.0, [Operation(0, 4.0)]),
        ),
    )
)

IO_CROSS = _register(
    WorkloadCase(
        name="io-cross",
        summary="two transactions lock items in opposite order across "
        "IO legs — the schedule that reaches a wait-for cycle "
        "unless the scheduler breaks it at creation",
        config=_DISK,
        specs=(
            _spec(
                1,
                0.0,
                60.0,
                [Operation(0, 2.0, io_time=25.0), Operation(1, 2.0)],
            ),
            _spec(
                2,
                0.0,
                70.0,
                [Operation(1, 2.0, io_time=25.0), Operation(0, 2.0)],
            ),
        ),
    )
)

IOWAIT_PAIR = _register(
    WorkloadCase(
        name="iowait-pair",
        summary="the primary IO-waits while a conflicting ready "
        "transaction tempts IOwait-schedule — the CPU must idle "
        "rather than run it",
        config=_DISK,
        specs=(
            _spec(
                1,
                0.0,
                60.0,
                [Operation(0, 2.0, io_time=25.0), Operation(1, 2.0)],
            ),
            _spec(2, 1.0, 90.0, [Operation(1, 4.0)]),
        ),
    )
)

TIE_TWINS = _register(
    WorkloadCase(
        name="tie-twins",
        summary="identical deadlines, disjoint items: every tie-break "
        "order commutes, which partial-order reduction should "
        "prove without exploring them",
        config=_MM,
        specs=(
            _spec(1, 0.0, 50.0, [Operation(0, 4.0)]),
            _spec(2, 0.0, 50.0, [Operation(1, 4.0)]),
        ),
    )
)

TIE_CONFLICT = _register(
    WorkloadCase(
        name="tie-conflict",
        summary="identical deadlines, overlapping items: genuinely "
        "different outcomes per tie-break, all of which must stay "
        "serializable and wound one-directionally",
        config=_MM,
        specs=(
            _spec(1, 0.0, 50.0, [Operation(0, 4.0), Operation(1, 4.0)]),
            _spec(2, 0.0, 50.0, [Operation(1, 4.0), Operation(2, 4.0)]),
        ),
    )
)


def all_cases() -> tuple[WorkloadCase, ...]:
    """Every bundled case, in registration order."""
    return tuple(_CASES.values())


def get_case(name: str) -> WorkloadCase:
    try:
        return _CASES[name]
    except KeyError:
        known = ", ".join(sorted(_CASES))
        raise KeyError(
            f"unknown bundled workload {name!r} (known: {known})"
        ) from None
