"""Seeded scheduler bugs the model checker must catch.

Each mutant is a :class:`ControlledSimulator` subclass with exactly one
scheduling rule broken — the classic mutation-testing probe for a
checker's teeth.  The clean engine passes ``repro mc`` on every bundled
workload; every mutant here must *fail* it (exit 1) with a minimal,
replayable counterexample, and CI enforces both directions.

The mutants live here, not in ``core/``, so the reference engine stays
byte-identical to what the experiments run; the explorer swaps the
simulator class and nothing else.  Each registry entry carries a demo
``(workload, policy)`` pair on which the bug is reachable within a few
schedules, plus the MC rule its counterexample must cite.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Type

from repro.analysis.relations import Safety
from repro.modelcheck.controlled import ControlledSimulator
from repro.rtdb.transaction import Transaction


class InvertedWoundSimulator(ControlledSimulator):
    """Bug: eager High Priority resolution wounds *higher*-priority
    partially executed transactions instead of lower — the comparison
    in the dispatch-time resolution is flipped."""

    def _resolve_conflicts_at_dispatch(self, tx: Transaction) -> None:
        tx_key = self._priority_key(tx)
        victims = [
            other
            for other in self._plist.values()
            if other.tid != tx.tid
            and self.oracle.safety(other, tx) is Safety.UNSAFE
            and self._priority_key(other) > tx_key  # bug: > instead of <
        ]
        for victim in victims:
            cost = self.recovery.rollback_time(victim)
            self._abort(victim, wounded_by=tx, cause="dispatch")
            tx.pending_rollback_work += cost


class ConflictBlindIOWaitSimulator(ControlledSimulator):
    """Bug: ``IOwait-schedule`` skips the compatibility test and runs
    the highest-priority ready transaction even when it conflicts with a
    partially executed one."""

    def _choose_secondary(
        self, runnable: Sequence[Transaction]
    ) -> Optional[Transaction]:
        from repro.core.scheduler import tie_group

        return self._pick_tx(
            "secondary",
            tie_group(runnable, self._selection_key, self._policy_priority),
        )


class WaitInsteadOfWoundSimulator(ControlledSimulator):
    """Bug: conflicts are never resolved by wounding — the requester
    always waits, so a pre-analysis schedule can reach a lock wait
    (violating Theorem 1)."""

    def _resolve_conflicts_at_dispatch(self, tx: Transaction) -> None:
        pass

    def _should_wound(self, tx: Transaction, holder: Transaction) -> bool:
        return False


class NoDeadlockBreakSimulator(ControlledSimulator):
    """Bug: Wait-Promote never breaks a wait-for cycle at creation —
    the one wound EDF-WP is allowed to make is dropped, so a reachable
    deadlock stands."""

    def _should_wound(self, tx: Transaction, holder: Transaction) -> bool:
        if self.policy.wait_promote:
            return False
        return super()._should_wound(tx, holder)


class DropWakeSimulator(ControlledSimulator):
    """Bug: a transaction dequeued by a lock release is never moved back
    to READY — the wake-up is lost and it stays LOCK_BLOCKED forever."""

    def _wake_waiter(self, tx: Transaction) -> None:
        pass


@dataclasses.dataclass(frozen=True)
class MutantSpec:
    """One seeded bug: the class, what it breaks, where to show it."""

    name: str
    summary: str
    simulator: Type[ControlledSimulator]
    expect_rule: str
    """The MC rule its minimal counterexample must cite."""
    demo_workload: str
    """Bundled workload name on which the bug is reachable quickly."""
    demo_policy: str


_MUTANTS: dict[str, MutantSpec] = {}


def _register(spec: MutantSpec) -> MutantSpec:
    _MUTANTS[spec.name] = spec
    return spec


INVERTED_WOUND = _register(
    MutantSpec(
        name="inverted-wound",
        summary="dispatch-time resolution wounds higher-priority victims",
        simulator=InvertedWoundSimulator,
        expect_rule="MC006",
        demo_workload="handoff-disk",
        demo_policy="EDF-HP",
    )
)

CONFLICT_BLIND = _register(
    MutantSpec(
        name="conflict-blind-iowait",
        summary="IOwait-schedule runs conflicting secondaries",
        simulator=ConflictBlindIOWaitSimulator,
        expect_rule="MC006",
        demo_workload="iowait-pair",
        demo_policy="CCA",
    )
)

WAIT_INSTEAD_OF_WOUND = _register(
    MutantSpec(
        name="wait-instead-of-wound",
        summary="conflicts wait instead of wounding (breaks Theorem 1)",
        simulator=WaitInsteadOfWoundSimulator,
        expect_rule="MC001",
        demo_workload="contended-pair",
        demo_policy="CCA",
    )
)

NO_DEADLOCK_BREAK = _register(
    MutantSpec(
        name="no-deadlock-break",
        summary="Wait-Promote never breaks wait-for cycles",
        simulator=NoDeadlockBreakSimulator,
        expect_rule="MC004",
        demo_workload="io-cross",
        demo_policy="EDF-WP",
    )
)

DROP_WAKE = _register(
    MutantSpec(
        name="drop-wake",
        summary="lock-release wake-ups are dropped, stranding waiters",
        simulator=DropWakeSimulator,
        expect_rule="MC003",
        demo_workload="handoff-disk",
        demo_policy="EDF-HP",
    )
)


def all_mutants() -> tuple[MutantSpec, ...]:
    """Every registered mutant, in registration order."""
    return tuple(_MUTANTS.values())


def get_mutant(name: str) -> MutantSpec:
    try:
        return _MUTANTS[name]
    except KeyError:
        known = ", ".join(sorted(_MUTANTS))
        raise KeyError(f"unknown mutant {name!r} (known: {known})") from None
